// Ablation — per-second arithmetic (the paper's §6.2 simulation) vs the
// event-driven buffered player: does the offline model's quality
// constitution survive contact with startup delay, throughput estimation,
// buffering and stalls?
#include <cstdio>

#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "video/abr.h"
#include "video/player.h"
#include "video/session.h"

namespace {

using namespace mfhttp;

ViewportTrace viewer_trace(const DeviceProfile& device, std::uint64_t seed,
                           TimeMs duration_ms) {
  ViewportTrace::Params tp;
  tp.device = device;
  ViewportTrace trace(tp);
  VideoDragSource source(device, {}, Rng(seed));
  GestureRecognizer recognizer(device);
  TimeMs now = 0;
  while (now < duration_ms) {
    TouchTrace t = source.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = recognizer.on_touch_event(ev)) trace.add_gesture(*g);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();
  VideoAsset::Params vp;
  vp.duration_s = 60;
  VideoAsset video(vp);
  ViewportTrace trace = viewer_trace(device, 17, 60'000);

  MfHttpTileScheduler mf;
  GreedyDashScheduler greedy;
  RateBasedTileScheduler rate_based;
  BufferBasedTileScheduler buffer_based;
  MfHttpBufferedScheduler mf_bba;

  std::printf("=== Ablation: offline per-second model vs buffered player ===\n");
  std::printf("%-10s %-12s | %12s | %12s %10s %10s %10s\n", "bw(KB/s)", "scheme",
              "offline res", "player res", "startup", "stalls", "hit rate");
  for (double kbps : {250.0, 500.0, 1000.0}) {
    auto bw = BandwidthTrace::constant(kb_per_sec(kbps));
    for (const TileScheduler* sched :
         {static_cast<const TileScheduler*>(&mf),
          static_cast<const TileScheduler*>(&greedy),
          static_cast<const TileScheduler*>(&rate_based),
          static_cast<const TileScheduler*>(&buffer_based),
          static_cast<const TileScheduler*>(&mf_bba)}) {
      auto offline =
          run_streaming_session(video, trace, bw, *sched, StreamingSessionParams{});
      auto live = run_buffered_session(video, trace, bw, *sched,
                                       BufferedPlayerParams{});
      std::printf("%-10.0f %-12s | %11.0fp | %11.0fp %8lldms %10d %9.0f%%\n",
                  kbps, sched->name().c_str(), offline.mean_resolution(video),
                  live.mean_scheduled_resolution(video),
                  static_cast<long long>(live.startup_delay_ms), live.stall_count,
                  100.0 * live.mean_hit_fraction());
    }
  }
  std::printf(
      "\n(the offline model and the buffered player should rank schedulers\n"
      " identically for throughput-driven schemes; buffer-driven schemes are\n"
      " meaningless offline (no buffer exists there, hence the 360p floor).\n"
      " The player adds the costs the model abstracts away — startup delay,\n"
      " estimation lag, and the viewport-miss rate when the user turns after\n"
      " tiles were chosen)\n");
  return 0;
}
