// Drop-in replacement for BENCHMARK_MAIN() adding the standard mfhttp flags
// (cli/standard_options.h): --metrics-json <path> dumps the process-wide
// metrics snapshot (obs/metrics.h) after the benchmarks run, so bench
// trajectories can track internal counters, not just end-to-end figures;
// --fault-plan <path> installs an ambient fault plan every session in the
// binary runs under; --cache-config <path> tunes cache-aware benches. All
// three are removed from argv before benchmark::Initialize sees them.
#pragma once

#include <benchmark/benchmark.h>

#include "cli/standard_options.h"

#define MFHTTP_BENCHMARK_MAIN()                                         \
  int main(int argc, char** argv) {                                     \
    mfhttp::cli::StandardOptions standard_options(argc, argv);          \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }                                                                     \
  int main(int, char**)
