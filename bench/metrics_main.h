// Drop-in replacement for BENCHMARK_MAIN() adding a --metrics-json <path>
// flag: after the benchmarks run, the process-wide metrics snapshot
// (obs/metrics.h) is dumped as one JSON document, so bench trajectories can
// track internal counters, not just end-to-end figures. The flag is removed
// from argv before benchmark::Initialize sees it.
#pragma once

#include <benchmark/benchmark.h>

#include "obs/metrics.h"

#define MFHTTP_BENCHMARK_MAIN()                                         \
  int main(int argc, char** argv) {                                     \
    mfhttp::obs::MetricsDumpGuard metrics_guard(argc, argv);            \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }                                                                     \
  int main(int, char**)
