// Micro-benchmarks (google-benchmark) for the middleware's hot paths: the
// touch-to-policy latency budget. The paper runs the optimizer "whenever a
// user touch event is detected" (§3.4.2), so everything here must fit well
// under one frame (~16 ms).
#include <benchmark/benchmark.h>

#include "core/flow_controller.h"
#include "core/knapsack.h"
#include "core/scroll_tracker.h"
#include "geom/swept_region.h"
#include "gesture/velocity_tracker.h"
#include "net/link.h"
#include "scroll/fling.h"
#include "util/rng.h"
#include "video/tiling.h"

namespace {

using namespace mfhttp;

const DeviceProfile kDevice = DeviceProfile::nexus6();

void BM_FlingModelConstruct(benchmark::State& state) {
  FlingParams params;
  params.ppi = 493;
  double v = 500;
  for (auto _ : state) {
    FlingModel m(v, params);
    benchmark::DoNotOptimize(m.total_distance_px());
    v = v < 20'000 ? v + 1 : 500;
  }
}
BENCHMARK(BM_FlingModelConstruct);

void BM_FlingDistanceAt(benchmark::State& state) {
  FlingParams params;
  params.ppi = 493;
  FlingModel m(8000, params);
  double t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.distance_at(t));
    t = t < m.duration_ms() ? t + 0.5 : 0;
  }
}
BENCHMARK(BM_FlingDistanceAt);

void BM_VelocityTrackerLsq2(benchmark::State& state) {
  TouchTrace trace;
  for (TimeMs t = 0; t <= 96; t += 8)
    trace.push_back({t, {static_cast<double>(t) * 3, static_cast<double>(t) * -5},
                     t == 0 ? TouchAction::kDown : TouchAction::kMove});
  for (auto _ : state) {
    VelocityTracker tracker(VelocityStrategy::kLsq2);
    for (const TouchEvent& ev : trace) tracker.add(ev);
    benchmark::DoNotOptimize(tracker.velocity());
  }
}
BENCHMARK(BM_VelocityTrackerLsq2);

void BM_SweptRegionTest(benchmark::State& state) {
  Rng rng(1);
  SweptRegion sweep{Rect{0, 0, 1440, 2560}, Vec2{300, 5500}};
  std::vector<Rect> objects;
  for (int i = 0; i < 256; ++i)
    objects.push_back({rng.uniform(-500, 2000), rng.uniform(-500, 9000),
                       rng.uniform(50, 800), rng.uniform(50, 800)});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersects_swept_region(sweep, objects[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_SweptRegionTest);

ScrollAnalysis make_analysis(int objects, double step_ms) {
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = step_ms;
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -12'000};
  std::vector<MediaObject> objs;
  for (int i = 0; i < objects; ++i)
    objs.push_back(make_single_version_object("o", Rect{100, i * 600.0, 800, 400},
                                              50'000, "u"));
  ScrollPrediction pred = tracker.predict(g, Rect{0, 0, 1440, 2560});
  return tracker.analyze(pred, objs);
}

void BM_ScrollAnalyze(benchmark::State& state) {
  // End-to-end §3.3 analysis: the per-gesture geometry work.
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = static_cast<double>(state.range(1));
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -12'000};
  std::vector<MediaObject> objs;
  for (int i = 0; i < state.range(0); ++i)
    objs.push_back(make_single_version_object("o", Rect{100, i * 600.0, 800, 400},
                                              50'000, "u"));
  ScrollPrediction pred = tracker.predict(g, Rect{0, 0, 1440, 2560});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.analyze(pred, objs));
  }
}
BENCHMARK(BM_ScrollAnalyze)->Args({32, 1})->Args({32, 4})->Args({128, 4});

void BM_FlowOptimize(benchmark::State& state) {
  // The full §3.4 optimization on a realistic gesture's worth of objects.
  ScrollAnalysis analysis = make_analysis(static_cast<int>(state.range(0)), 4.0);
  std::vector<MediaObject> objs;
  for (int i = 0; i < state.range(0); ++i) {
    MediaObject o;
    o.id = "o";
    o.rect = {100, i * 600.0, 800, 400};
    o.versions = {{360, 10'000, "l"}, {720, 40'000, "m"}, {1080, 120'000, "h"}};
    objs.push_back(o);
  }
  FlowController fc(FlowController::Params{});
  auto bw = BandwidthTrace::constant(2e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.optimize(analysis, objs, bw));
  }
}
BENCHMARK(BM_FlowOptimize)->Arg(16)->Arg(64);

void BM_PrefixKnapsackDp(benchmark::State& state) {
  Rng rng(7);
  std::vector<KnapsackItem> items;
  Bytes cap = 0;
  for (int i = 0; i < state.range(0); ++i) {
    cap += rng.uniform_int(20'000, 120'000);
    KnapsackItem it;
    it.capacity = cap;
    Bytes w = rng.uniform_int(5'000, 60'000);
    double v = rng.uniform(0.1, 0.5);
    for (int j = 0; j < 4; ++j) {
      it.weights.push_back(w * (j + 1));
      it.values.push_back(v * (j + 1));
    }
    items.push_back(std::move(it));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_prefix_knapsack(items, 1024));
  }
}
BENCHMARK(BM_PrefixKnapsackDp)->Arg(16)->Arg(64);

void BM_VisibleTiles(benchmark::State& state) {
  TileGrid grid(4, 4, 3840, 1920);
  FieldOfView fov;
  double yaw = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.visible_tiles({yaw, 0.2}, fov));
    yaw += 0.01;
  }
}
BENCHMARK(BM_VisibleTiles);

void BM_LinkThroughput(benchmark::State& state) {
  // Simulated-seconds per wall-second of the rate-limited link.
  for (auto _ : state) {
    Simulator sim;
    Link::Params p;
    p.bandwidth = BandwidthTrace::constant(2e6);
    p.sharing = Link::Sharing::kFairShare;
    Link link(sim, p);
    int done = 0;
    for (int i = 0; i < 64; ++i)
      link.submit(100'000, [&done](Bytes, bool c) {
        if (c) ++done;
      });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_LinkThroughput);

}  // namespace

BENCHMARK_MAIN();
