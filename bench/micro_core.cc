// Micro-benchmarks (google-benchmark) for the middleware's hot paths: the
// touch-to-policy latency budget. The paper runs the optimizer "whenever a
// user touch event is detected" (§3.4.2), so everything here must fit well
// under one frame (~16 ms).
#include <benchmark/benchmark.h>

#include "core/flow_controller.h"
#include "core/knapsack.h"
#include "core/scroll_tracker.h"
#include "geom/swept_region.h"
#include "gesture/velocity_tracker.h"
#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "metrics_main.h"
#include "net/link.h"
#include "scroll/fling.h"
#include "util/rng.h"
#include "video/dash.h"
#include "video/scheduler.h"
#include "video/tiling.h"
#include "web/blocklist_controller.h"
#include "web/corpus.h"

namespace {

using namespace mfhttp;

const DeviceProfile kDevice = DeviceProfile::nexus6();

void BM_FlingModelConstruct(benchmark::State& state) {
  FlingParams params;
  params.ppi = 493;
  double v = 500;
  for (auto _ : state) {
    FlingModel m(v, params);
    benchmark::DoNotOptimize(m.total_distance_px());
    v = v < 20'000 ? v + 1 : 500;
  }
}
BENCHMARK(BM_FlingModelConstruct);

void BM_FlingDistanceAt(benchmark::State& state) {
  FlingParams params;
  params.ppi = 493;
  FlingModel m(8000, params);
  double t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.distance_at(t));
    t = t < m.duration_ms() ? t + 0.5 : 0;
  }
}
BENCHMARK(BM_FlingDistanceAt);

void BM_VelocityTrackerLsq2(benchmark::State& state) {
  TouchTrace trace;
  for (TimeMs t = 0; t <= 96; t += 8)
    trace.push_back({t, {static_cast<double>(t) * 3, static_cast<double>(t) * -5},
                     t == 0 ? TouchAction::kDown : TouchAction::kMove});
  for (auto _ : state) {
    VelocityTracker tracker(VelocityStrategy::kLsq2);
    for (const TouchEvent& ev : trace) tracker.add(ev);
    benchmark::DoNotOptimize(tracker.velocity());
  }
}
BENCHMARK(BM_VelocityTrackerLsq2);

void BM_SweptRegionTest(benchmark::State& state) {
  Rng rng(1);
  SweptRegion sweep{Rect{0, 0, 1440, 2560}, Vec2{300, 5500}};
  std::vector<Rect> objects;
  for (int i = 0; i < 256; ++i)
    objects.push_back({rng.uniform(-500, 2000), rng.uniform(-500, 9000),
                       rng.uniform(50, 800), rng.uniform(50, 800)});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersects_swept_region(sweep, objects[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_SweptRegionTest);

ScrollAnalysis make_analysis(int objects, double step_ms) {
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = step_ms;
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -12'000};
  std::vector<MediaObject> objs;
  for (int i = 0; i < objects; ++i)
    objs.push_back(make_single_version_object("o", Rect{100, i * 600.0, 800, 400},
                                              50'000, "u"));
  ScrollPrediction pred = tracker.predict(g, Rect{0, 0, 1440, 2560});
  return tracker.analyze(pred, objs);
}

void BM_ScrollAnalyze(benchmark::State& state) {
  // End-to-end §3.3 analysis: the per-gesture geometry work.
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = static_cast<double>(state.range(1));
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -12'000};
  std::vector<MediaObject> objs;
  for (int i = 0; i < state.range(0); ++i)
    objs.push_back(make_single_version_object("o", Rect{100, i * 600.0, 800, 400},
                                              50'000, "u"));
  ScrollPrediction pred = tracker.predict(g, Rect{0, 0, 1440, 2560});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.analyze(pred, objs));
  }
}
BENCHMARK(BM_ScrollAnalyze)->Args({32, 1})->Args({32, 4})->Args({128, 4});

void BM_ScrollAnalyzeIndexed(benchmark::State& state) {
  // Same analysis through the y-sorted ObjectIntervalIndex: the index prunes
  // objects whose vertical span never meets the swept region, so cost tracks
  // the objects the gesture can reach instead of the whole page. Compare
  // against BM_ScrollAnalyze at the same Args.
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = static_cast<double>(state.range(1));
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -12'000};
  std::vector<MediaObject> objs;
  for (int i = 0; i < state.range(0); ++i)
    objs.push_back(make_single_version_object("o", Rect{100, i * 600.0, 800, 400},
                                              50'000, "u"));
  ObjectIntervalIndex index(objs);
  ScrollPrediction pred = tracker.predict(g, Rect{0, 0, 1440, 2560});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.analyze(pred, objs, index));
  }
}
BENCHMARK(BM_ScrollAnalyzeIndexed)->Args({32, 1})->Args({32, 4})->Args({128, 4});

void BM_FlowOptimize(benchmark::State& state) {
  // The full §3.4 optimization on a realistic gesture's worth of objects.
  ScrollAnalysis analysis = make_analysis(static_cast<int>(state.range(0)), 4.0);
  std::vector<MediaObject> objs;
  for (int i = 0; i < state.range(0); ++i) {
    MediaObject o;
    o.id = "o";
    o.rect = {100, i * 600.0, 800, 400};
    o.versions = {{360, 10'000, "l"}, {720, 40'000, "m"}, {1080, 120'000, "h"}};
    objs.push_back(o);
  }
  FlowController fc(FlowController::Params{});
  auto bw = BandwidthTrace::constant(2e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.optimize(analysis, objs, bw));
  }
}
BENCHMARK(BM_FlowOptimize)->Arg(16)->Arg(64);

void BM_FlowReplan(benchmark::State& state) {
  // The stateful hot path the middleware actually runs per touch: identical
  // analysis every iteration, so the incremental solver's full-reuse exit and
  // the persistent build buffers carry the whole cost. Compare against
  // BM_FlowOptimize at the same Arg for the touch-to-policy win.
  ScrollAnalysis analysis = make_analysis(static_cast<int>(state.range(0)), 4.0);
  std::vector<MediaObject> objs;
  for (int i = 0; i < state.range(0); ++i) {
    MediaObject o;
    o.id = "o";
    o.rect = {100, i * 600.0, 800, 400};
    o.versions = {{360, 10'000, "l"}, {720, 40'000, "m"}, {1080, 120'000, "h"}};
    objs.push_back(o);
  }
  FlowController fc(FlowController::Params{});
  auto bw = BandwidthTrace::constant(2e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.replan(analysis, objs, bw));
  }
}
BENCHMARK(BM_FlowReplan)->Arg(16)->Arg(64);

void BM_PrefixKnapsackDp(benchmark::State& state) {
  Rng rng(7);
  std::vector<KnapsackItem> items;
  Bytes cap = 0;
  for (int i = 0; i < state.range(0); ++i) {
    cap += rng.uniform_int(20'000, 120'000);
    KnapsackItem it;
    it.capacity = cap;
    Bytes w = rng.uniform_int(5'000, 60'000);
    double v = rng.uniform(0.1, 0.5);
    for (int j = 0; j < 4; ++j) {
      it.weights.push_back(w * (j + 1));
      it.values.push_back(v * (j + 1));
    }
    items.push_back(std::move(it));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_prefix_knapsack(items, 1024));
  }
}
BENCHMARK(BM_PrefixKnapsackDp)->Arg(16)->Arg(64);

std::vector<KnapsackItem> knapsack_items(int n) {
  Rng rng(7);  // same instance family as BM_PrefixKnapsackDp
  std::vector<KnapsackItem> items;
  Bytes cap = 0;
  for (int i = 0; i < n; ++i) {
    cap += rng.uniform_int(20'000, 120'000);
    KnapsackItem it;
    it.capacity = cap;
    Bytes w = rng.uniform_int(5'000, 60'000);
    double v = rng.uniform(0.1, 0.5);
    for (int j = 0; j < 4; ++j) {
      it.weights.push_back(w * (j + 1));
      it.values.push_back(v * (j + 1));
    }
    items.push_back(std::move(it));
  }
  return items;
}

void BM_PrefixKnapsackIncrementalTailChange(benchmark::State& state) {
  // The touch-to-touch pattern replan() hits: same objects, the last item's
  // capacity/value tail nudged per touch. Baseline: BM_PrefixKnapsackDp at
  // the same Arg re-solves the whole table every time.
  std::vector<KnapsackItem> items = knapsack_items(static_cast<int>(state.range(0)));
  KnapsackScratch scratch;
  solve_prefix_knapsack_incremental(items, 1024, &scratch);
  double nudge = 0.001;
  for (auto _ : state) {
    items.back().values.back() += nudge;
    nudge = -nudge;
    benchmark::DoNotOptimize(
        solve_prefix_knapsack_incremental(items, 1024, &scratch));
  }
}
BENCHMARK(BM_PrefixKnapsackIncrementalTailChange)->Arg(16)->Arg(64);

void BM_PrefixKnapsackIncrementalUnchanged(benchmark::State& state) {
  // Identical instance every call — the full-reuse early exit.
  std::vector<KnapsackItem> items = knapsack_items(static_cast<int>(state.range(0)));
  KnapsackScratch scratch;
  solve_prefix_knapsack_incremental(items, 1024, &scratch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_prefix_knapsack_incremental(items, 1024, &scratch));
  }
}
BENCHMARK(BM_PrefixKnapsackIncrementalUnchanged)->Arg(16)->Arg(64);

void BM_VisibleTiles(benchmark::State& state) {
  TileGrid grid(4, 4, 3840, 1920);
  FieldOfView fov;
  double yaw = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.visible_tiles({yaw, 0.2}, fov));
    yaw += 0.01;
  }
}
BENCHMARK(BM_VisibleTiles);

void BM_TilePlan(benchmark::State& state) {
  // Per-segment tile/rate selection — the video-path per-second budget.
  VideoAsset::Params vp;
  vp.ladder = default_ladder();
  VideoAsset video(vp);
  MfHttpTileScheduler scheduler;
  FieldOfView fov;
  double yaw = 0;
  int seg = 0;
  for (auto _ : state) {
    std::vector<bool> visible = video.grid().visible_tiles({yaw, 0.1}, fov);
    benchmark::DoNotOptimize(
        scheduler.plan_segment(video, seg, visible, Bytes{400'000}));
    yaw += 0.05;
    seg = (seg + 1) % video.segment_count();
  }
}
BENCHMARK(BM_TilePlan);

void BM_ProxyBlocklistSession(benchmark::State& state) {
  // The §5.1 request path end to end: intercept -> defer -> policy release,
  // streaming through the MITM proxy over the bottleneck link.
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng corpus_rng(11);
  // First strongly limited-viewport site: most images start on the block list.
  const SiteSpec* spec = &alexa25_specs().front();
  for (const SiteSpec& s : alexa25_specs())
    if (s.viewport_ratio < 0.2) {
      spec = &s;
      break;
    }
  const WebPage page = generate_page(*spec, device, corpus_rng);
  const Rect viewport{0, 0, static_cast<double>(device.screen_w_px),
                      static_cast<double>(device.screen_h_px)};
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(device);
  tp.coverage_step_ms = 4.0;
  tp.content_bounds = page.bounds();
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -9'000};
  ScrollAnalysis analysis =
      tracker.analyze(tracker.predict(g, viewport), page.images);
  FlowController flow(FlowController::Params{});
  DownloadPolicy policy =
      flow.optimize(analysis, page.images, BandwidthTrace::constant(2e6));

  for (auto _ : state) {
    Simulator sim;
    Link::Params cp;
    cp.bandwidth = BandwidthTrace::constant(2e6);
    cp.sharing = Link::Sharing::kFairShare;
    Link server_link(sim, Link::Params{});
    ObjectStore store;
    for (const MediaObject& img : page.images)
      store.put(parse_url(img.top_version().url)->path, img.top_version().size);
    SimHttpOrigin origin(sim, &store, &server_link);
    auto pipeline = FetchPipelineBuilder(sim, &origin).client_link(cp).build();
    MitmProxy& proxy = pipeline->proxy();
    BlockListController controller(page, viewport, &proxy);
    proxy.set_interceptor(&controller);
    int done = 0;
    for (const MediaObject& img : page.images) {
      FetchCallbacks cb;
      cb.on_complete = [&done](const FetchResult&) { ++done; };
      proxy.fetch(HttpRequest::get(*parse_url(img.top_version().url)),
                  std::move(cb));
    }
    controller.on_policy(analysis, policy);
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_ProxyBlocklistSession);

void BM_LinkThroughput(benchmark::State& state) {
  // Simulated-seconds per wall-second of the rate-limited link.
  for (auto _ : state) {
    Simulator sim;
    Link::Params p;
    p.bandwidth = BandwidthTrace::constant(2e6);
    p.sharing = Link::Sharing::kFairShare;
    Link link(sim, p);
    int done = 0;
    for (int i = 0; i < 64; ++i)
      link.submit(100'000, [&done](Bytes, bool c) {
        if (c) ++done;
      });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_LinkThroughput);

}  // namespace

MFHTTP_BENCHMARK_MAIN();
