// Ablation — flow-controller optimizer (§3.4.2, DESIGN.md §7.1 & §7.4):
//   (a) solution quality: DP vs greedy value-density vs exhaustive optimum,
//   (b) capacity-unit discretization: optimality gap vs DP runtime,
//   (c) runtime scaling in n (objects) and W (capacity).
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/knapsack.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace mfhttp;

std::vector<KnapsackItem> random_instance(Rng& rng, int n, int m,
                                          Bytes step_capacity, Bytes max_weight) {
  std::vector<KnapsackItem> items;
  Bytes cap = 0;
  for (int i = 0; i < n; ++i) {
    cap += rng.uniform_int(0, step_capacity);
    KnapsackItem it;
    it.capacity = cap;
    Bytes w = rng.uniform_int(1, max_weight / (m + 1));
    double v = rng.uniform(0.0, 0.5);
    for (int j = 0; j < m; ++j) {
      it.weights.push_back(w);
      it.values.push_back(v);
      w += rng.uniform_int(1, max_weight / (m + 1));
      v += rng.uniform(0.0, 0.4);
    }
    items.push_back(std::move(it));
  }
  return items;
}

double time_ms(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  std::printf("=== Ablation: prefix-capacity knapsack solvers ===\n\n");

  // (a) Quality vs the exhaustive optimum on small instances.
  {
    Rng rng(1);
    RunningStats dp_gap, bnb_gap, greedy_gap;
    for (int iter = 0; iter < 200; ++iter) {
      auto items = random_instance(rng, 6, 2, 50, 60);
      auto best = solve_prefix_knapsack_bruteforce(items);
      auto dp = solve_prefix_knapsack(items, 1);
      auto bnb = solve_prefix_knapsack_bnb(items);
      auto greedy = solve_prefix_knapsack_greedy(items);
      if (best.total_value <= 0) continue;
      dp_gap.add(1.0 - dp.total_value / best.total_value);
      bnb_gap.add(1.0 - bnb.solution.total_value / best.total_value);
      greedy_gap.add(1.0 - greedy.total_value / best.total_value);
    }
    std::printf("--- (a) optimality gap vs exhaustive search (200 instances) ---\n");
    std::printf("DP (unit=1):      mean gap %6.2f%%  max %6.2f%%\n",
                dp_gap.mean() * 100, dp_gap.max() * 100);
    std::printf("branch-and-bound: mean gap %6.2f%%  max %6.2f%%\n",
                bnb_gap.mean() * 100, bnb_gap.max() * 100);
    std::printf("greedy density:   mean gap %6.2f%%  max %6.2f%%\n\n",
                greedy_gap.mean() * 100, greedy_gap.max() * 100);
  }

  // (b) Discretization: value retained and runtime vs capacity unit.
  {
    Rng rng(2);
    auto items = random_instance(rng, 50, 4, 300'000, 400'000);
    auto exact = solve_prefix_knapsack(items, 256);
    std::printf("--- (b) capacity-unit discretization (50 objects x 4 versions) ---\n");
    std::printf("%12s %14s %12s\n", "unit (B)", "value kept", "time (ms)");
    for (Bytes unit : {256, 1024, 4096, 16384, 65536}) {
      KnapsackSolution sol;
      double ms = time_ms([&] { sol = solve_prefix_knapsack(items, unit); });
      std::printf("%12lld %13.2f%% %12.2f\n", static_cast<long long>(unit),
                  100.0 * sol.total_value / exact.total_value, ms);
    }
    std::printf("\n");
  }

  // (c) Runtime scaling with n.
  {
    Rng rng(3);
    std::printf("--- (c) runtime scaling (byte-scale instances, m = 4) ---\n");
    std::printf("%8s %14s %14s %14s\n", "n", "DP 1KB (ms)", "B&B (ms)",
                "greedy (ms)");
    for (int n : {10, 20, 40, 80, 160}) {
      auto items = random_instance(rng, n, 4, 100'000, 200'000);
      double dp_ms = time_ms([&] { solve_prefix_knapsack(items, 1024); });
      double bnb_ms = time_ms([&] { solve_prefix_knapsack_bnb(items, 500'000); });
      double gr_ms = time_ms([&] { solve_prefix_knapsack_greedy(items); });
      std::printf("%8d %14.2f %14.2f %14.3f\n", n, dp_ms, bnb_ms, gr_ms);
    }
  }
  std::printf("\n(the paper argues n, m, W are small per gesture, so the DP's\n"
              " O(n m W) cost is negligible at interactive timescales)\n");
  return 0;
}
