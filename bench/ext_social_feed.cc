// Extension experiment — the paper's third motivating application (Fig. 3):
// instant playback in an infinite social video feed, swept over bandwidth
// and fling intensity. Not a figure from the evaluation section, but the
// scenario the introduction promises MF-HTTP generalizes to.
#include <cstdio>

#include "feed/feed_experiment.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  using namespace mfhttp;
  const DeviceProfile device = DeviceProfile::nexus6();
  FeedSpec spec;
  spec.post_count = 150;
  Rng rng(21);
  Feed feed = generate_feed(spec, device, rng);

  std::printf("=== Extension: social-feed instant playback ===\n");
  std::printf("feed: %zu posts, %zu clips, %.1f MB total\n\n", feed.posts.size(),
              feed.clip_count(), static_cast<double>(feed.total_full_bytes()) / 1e6);

  std::printf("--- bandwidth sweep (fling 9000 px/s) ---\n");
  std::printf("%-12s %18s %18s %14s %14s\n", "bw (MB/s)", "base instant",
              "mf-http instant", "base MB", "mf-http MB");
  for (double mbps : {1.5, 2.5, 4.0, 8.0}) {
    FeedSessionConfig cfg;
    cfg.device = device;
    cfg.seed = 5;
    cfg.client_bandwidth = mbps * 1e6;
    cfg.enable_mfhttp = false;
    FeedSessionResult base = run_feed_session(feed, cfg);
    cfg.enable_mfhttp = true;
    FeedSessionResult mf = run_feed_session(feed, cfg);
    std::printf("%-12.1f %13zu/%zu %13zu/%zu %14.1f %14.1f\n", mbps,
                base.clips_instant, base.clips_settled, mf.clips_instant,
                mf.clips_settled, static_cast<double>(base.bytes_downloaded) / 1e6,
                static_cast<double>(mf.bytes_downloaded) / 1e6);
  }

  std::printf("\n--- fling-intensity sweep (2.5 MB/s) ---\n");
  std::printf("%-14s %18s %18s %14s\n", "fling (px/s)", "mf instant rate",
              "thumbs served", "media avoided");
  for (double speed : {5000.0, 9000.0, 14000.0, 20000.0}) {
    FeedSessionConfig cfg;
    cfg.device = device;
    cfg.seed = 5;
    cfg.fling_speed_px_s = speed;
    cfg.weights = {1.0, 0.5};
    cfg.enable_mfhttp = true;
    FeedSessionResult mf = run_feed_session(feed, cfg);
    std::printf("%-14.0f %17.0f%% %18zu %14zu\n", speed,
                100.0 * mf.instant_play_rate, mf.thumbs_substituted,
                mf.media_avoided);
  }
  std::printf("\n(the faster the user flings, the longer the corridor of\n"
              " glimpsed clips served as cheap thumbnails instead of full files)\n");
  return 0;
}
