// Chaos matrix — the self-healing front door's acceptance artifact
// (DESIGN.md §14): seeded shard-fault plans x shard counts, each run three
// ways —
//
//   baseline     — no fault injected, supervision off: the fault-free
//                  goodput reference every retained ratio divides by;
//   unsupervised — the fault fires, nobody watches: the producer's only
//                  defence is the deadline-bounded push, so the wedged
//                  shard's sessions shed at the deadline and its backlog
//                  drains as stale 503s;
//   supervised   — the same fault under the FrontDoorSupervisor: the
//                  wedge is detected (time-to-detect), NEW sessions
//                  rendezvous-fail-over to the healthy cohort, the wedged
//                  slice's admission budget is re-distributed, and goodput
//                  holds.
//
// Every arm replays the identical seeded timeline, so events and request
// totals are exact across arms — every touch resolves to served or shed,
// never lost — and `goodput_retained` (completed / fault-free completed)
// is the figure of merit. Two hard gates ride along:
//
//   * byte identity — shards=1 threaded with the supervisor WATCHING (no
//     faults) must stay byte-identical to the unsharded inline path: the
//     §13 gate survives §14;
//   * --assert-retained X / --assert-supervised — CI's resilience gate:
//     the supervised arm must retain at least X of fault-free goodput and
//     never complete less than the unsupervised arm.
//
//   chaos_matrix [--sessions N] [--shards LIST] [--plan PATH]
//                [--touches N] [--universe N] [--arrival R] [--seed S]
//                [--queue N] [--deadline-ms N]
//                [--json BENCH_chaos.json]
//                [--assert-retained X] [--assert-supervised]
//
// Without --plan the matrix sweeps the two built-in plans: "shard-stall"
// (fault::FaultPlan::shard_stall — shard 0 freezes 1000 ms mid-run) and
// "shard-crash" (shard 0 stops serving for good at its 30th event).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cli/standard_options.h"
#include "fault/fault_plan.h"
#include "http/frontdoor.h"
#include "util/json.h"

namespace {

using namespace mfhttp;

struct Row {
  std::string plan;
  std::size_t shards = 1;
  std::string arm;  // baseline | unsupervised | supervised
  double wall_ms = 0;
  std::size_t events = 0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  double goodput_retained = 1.0;  // completed / this cell's baseline arm
  double shed_rate = 0;
  std::size_t shed_events = 0;
  std::size_t deadline_shed_events = 0;
  std::size_t failover_sessions = 0;
  std::uint64_t wedged_declared = 0;
  double time_to_detect_ms = 0;   // 0 = never detected (or no fault)
  double time_to_recover_ms = 0;  // 0 = not recovered within the run
  double p50_t2p_us = 0;
  double p99_t2p_us = 0;
};

std::vector<std::size_t> parse_list(const char* flag, const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(pos, comma - pos);
    char* end = nullptr;
    unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v == 0)
      CliOptions::fail(flag, s, "expected comma-separated positive ints");
    out.push_back(static_cast<std::size_t>(v));
    pos = comma + 1;
  }
  if (out.empty()) CliOptions::fail(flag, s, "expected at least one value");
  return out;
}

std::size_t parse_size(const char* flag, const std::string& s) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0)
    CliOptions::fail(flag, s, "expected a positive integer");
  return static_cast<std::size_t>(v);
}

// Supervisor tuning for the chaos arms: thresholds small enough that
// detection lands well inside a 1-second stall, large enough that a noisy
// shared runner de-scheduling a healthy worker cannot trip a false wedge
// (the fault-free baseline arm runs unsupervised either way).
SupervisorParams chaos_supervisor() {
  SupervisorParams p;
  p.enabled = true;
  p.check_interval_ms = 2;
  p.slow_after_ms = 10;
  p.wedged_after_ms = 25;
  p.hysteresis = {2, 2};
  return p;
}

Row run_arm(FrontDoorParams params, const std::string& plan_name,
            const std::string& arm, const fault::FaultPlan* plan,
            bool supervised) {
  if (plan != nullptr) params.fault_plan = *plan;
  params.supervisor = supervised ? chaos_supervisor() : SupervisorParams{};

  const FrontDoorResult r = run_front_door(params, FrontDoorMode::kThreaded);

  Row row;
  row.plan = plan_name;
  row.shards = params.shards;
  row.arm = arm;
  row.wall_ms = r.wall_ms;
  row.events = r.events;
  row.requests = r.requests;
  row.completed = r.completed;
  row.rejected = r.rejected;
  row.shed_rate = r.shed_rate;
  row.shed_events = r.shed_events;
  row.deadline_shed_events = r.deadline_shed_events;
  row.failover_sessions = r.failover_sessions;
  row.wedged_declared = r.wedged_declared;
  row.time_to_detect_ms = r.first_detect_ms;
  row.time_to_recover_ms = r.first_recover_ms;
  row.p50_t2p_us = r.p50_touch_to_policy_us;
  row.p99_t2p_us = r.p99_touch_to_policy_us;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sessions_s, shards_s, plan_path, touches_s, universe_s,
      arrival_s, seed_s, queue_s, deadline_s, json_path, assert_retained_s;
  bool assert_supervised = false;
  cli::StandardOptions standard_options(argc, argv, [&](CliOptions& options) {
    options
        .add_string("--sessions", "N", "sessions per arm (default 2000)",
                    &sessions_s)
        .add_string("--shards", "LIST",
                    "comma-separated shard counts (default 2,4)", &shards_s)
        .add_string("--plan", "PATH",
                    "chaos plan JSON; replaces the built-in plan sweep",
                    &plan_path)
        .add_string("--touches", "N", "touches per session (default 3)",
                    &touches_s)
        .add_string("--universe", "N", "URL universe size (default 2048)",
                    &universe_s)
        .add_string("--arrival", "R",
                    "session arrivals per second (default 2000)", &arrival_s)
        .add_string("--seed", "S", "master seed (default 1)", &seed_s)
        .add_string("--queue", "N", "per-shard queue capacity (default 256)",
                    &queue_s)
        .add_string("--deadline-ms", "N",
                    "per-event freshness budget (default 20)", &deadline_s)
        .add_string("--json", "PATH",
                    "result document (default BENCH_chaos.json)", &json_path)
        .add_string("--assert-retained", "X",
                    "exit 1 unless every supervised arm retains >= X of "
                    "fault-free goodput",
                    &assert_retained_s)
        .add_flag("--assert-supervised",
                  "exit 1 if any supervised arm is worse than its "
                  "unsupervised twin on BOTH goodput and P99",
                  &assert_supervised);
  });

  FrontDoorParams params;
  params.load.sessions = sessions_s.empty() ? 2000
                                            : parse_size("--sessions",
                                                         sessions_s);
  params.load.touches_per_session =
      touches_s.empty() ? 3 : parse_size("--touches", touches_s);
  params.load.url_universe =
      universe_s.empty() ? 2048 : parse_size("--universe", universe_s);
  params.load.session_arrival_per_s =
      arrival_s.empty()
          ? 2000
          : static_cast<double>(parse_size("--arrival", arrival_s));
  if (!seed_s.empty())
    params.load.seed = static_cast<std::uint64_t>(parse_size("--seed", seed_s));
  params.queue_capacity =
      queue_s.empty() ? 256 : parse_size("--queue", queue_s);
  params.enqueue_deadline_ms =
      deadline_s.empty()
          ? 20
          : static_cast<TimeMs>(parse_size("--deadline-ms", deadline_s));
  params.apply_scaled_admission();
  if (json_path.empty()) json_path = "BENCH_chaos.json";
  const std::vector<std::size_t> shard_counts =
      shards_s.empty() ? std::vector<std::size_t>{2, 4}
                       : parse_list("--shards", shards_s);

  // Plan sweep: one plan from --plan, else the two built-in scenarios.
  std::vector<fault::FaultPlan> plans;
  if (!plan_path.empty()) {
    std::string error;
    const auto loaded = fault::FaultPlan::load(plan_path, &error);
    if (!loaded) CliOptions::fail("--plan", plan_path, error.c_str());
    plans.push_back(*loaded);
  } else {
    plans.push_back(fault::FaultPlan::shard_stall(0, 20, 1000));
    fault::FaultPlan crash;
    crash.name = "shard-crash";
    fault::ShardFault f;
    f.kind = fault::ShardFault::Kind::kCrash;
    f.shard = 0;
    f.at_event = 30;
    crash.frontdoor.push_back(f);
    plans.push_back(crash);
  }
  for (fault::FaultPlan& plan : plans)
    if (plan.name.empty()) plan.name = "unnamed";

  // Gate first: shards=1 threaded with the supervisor watching (and no
  // fault) must stay byte-identical to the unsharded inline path.
  bool byte_identical = true;
  {
    FrontDoorParams gate = params;
    gate.shards = 1;
    gate.enqueue_deadline_ms = 0;  // inline has no queue for staleness
    gate.supervisor = chaos_supervisor();
    gate.supervisor.slow_after_ms = 5'000;  // generous: watch, never trip
    gate.supervisor.wedged_after_ms = 10'000;
    const FrontDoorResult inline_ref =
        run_front_door(gate, FrontDoorMode::kInline);
    const FrontDoorResult threaded =
        run_front_door(gate, FrontDoorMode::kThreaded);
    byte_identical =
        inline_ref.deterministic_json() == threaded.deterministic_json();
  }

  std::printf(
      "=== Chaos matrix: %zu sessions x %zu touches, universe %zu, seed %llu "
      "===\n",
      params.load.sessions, params.load.touches_per_session,
      params.load.url_universe,
      static_cast<unsigned long long>(params.load.seed));
  std::printf(
      "(hardware threads: %u; queue %zu, deadline %lld ms; shards=1 "
      "supervised byte-identity: %s)\n\n",
      std::thread::hardware_concurrency(), params.queue_capacity,
      static_cast<long long>(params.enqueue_deadline_ms),
      byte_identical ? "yes" : "NO");
  std::printf("%12s %7s %13s %9s %9s %8s %7s %8s %9s %12s\n", "plan", "shards",
              "arm", "completed", "retained", "shed", "failov",
              "detect", "recover", "p99 t2p us");

  std::vector<Row> rows;
  double worst_retained = 1.0;
  bool supervised_never_worse = true;

  for (const fault::FaultPlan& plan : plans) {
    for (std::size_t shards : shard_counts) {
      params.shards = shards;

      Row baseline =
          run_arm(params, plan.name, "baseline", nullptr, false);
      Row unsupervised =
          run_arm(params, plan.name, "unsupervised", &plan, false);
      Row supervised = run_arm(params, plan.name, "supervised", &plan, true);

      for (Row* row : {&baseline, &unsupervised, &supervised}) {
        row->goodput_retained =
            baseline.completed > 0
                ? static_cast<double>(row->completed) /
                      static_cast<double>(baseline.completed)
                : 0;
        std::printf(
            "%12s %7zu %13s %9zu %8.1f%% %7.1f%% %7zu %7.1f %8.1f %12.1f\n",
            row->plan.c_str(), row->shards, row->arm.c_str(), row->completed,
            row->goodput_retained * 100.0, row->shed_rate * 100.0,
            row->failover_sessions, row->time_to_detect_ms,
            row->time_to_recover_ms, row->p99_t2p_us);
        rows.push_back(*row);
      }
      worst_retained =
          std::min(worst_retained, supervised.goodput_retained);
      // "Never worse" is per-axis: under a crash, supervision wins goodput
      // outright; under a stall it deliberately trades a few percent of
      // goodput (instant sheds for sessions pinned to the wedged shard)
      // for an order-of-magnitude better P99 tail. Losing BOTH axes to the
      // unsupervised arm is the regression this flag exists to catch.
      supervised_never_worse =
          supervised_never_worse &&
          (supervised.completed >= unsupervised.completed ||
           supervised.p99_t2p_us <= unsupervised.p99_t2p_us);
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("chaos_matrix");
  w.key("sessions").value(params.load.sessions);
  w.key("touches_per_session").value(params.load.touches_per_session);
  w.key("url_universe").value(params.load.url_universe);
  w.key("seed").value(static_cast<unsigned long long>(params.load.seed));
  w.key("queue_capacity").value(params.queue_capacity);
  w.key("deadline_ms")
      .value(static_cast<long long>(params.enqueue_deadline_ms));
  w.key("hardware_threads")
      .value(static_cast<unsigned long long>(
          std::thread::hardware_concurrency()));
  w.key("byte_identical_with_supervision").value(byte_identical);
  w.key("supervised_never_worse").value(supervised_never_worse);
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("plan").value(row.plan);
    w.key("shards").value(row.shards);
    w.key("arm").value(row.arm);
    w.key("wall_ms").value(row.wall_ms);
    w.key("events").value(row.events);
    w.key("requests").value(row.requests);
    w.key("completed").value(row.completed);
    w.key("rejected").value(row.rejected);
    w.key("goodput_retained").value(row.goodput_retained);
    w.key("shed_rate").value(row.shed_rate);
    w.key("shed_events").value(row.shed_events);
    w.key("deadline_shed_events").value(row.deadline_shed_events);
    w.key("failover_sessions").value(row.failover_sessions);
    w.key("wedged_declared")
        .value(static_cast<unsigned long long>(row.wedged_declared));
    w.key("time_to_detect_ms").value(row.time_to_detect_ms);
    w.key("time_to_recover_ms").value(row.time_to_recover_ms);
    w.key("p50_touch_to_policy_us").value(row.p50_t2p_us);
    w.key("p99_touch_to_policy_us").value(row.p99_t2p_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr)
    CliOptions::fail("--json", json_path, "cannot open for writing");
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!byte_identical) {
    std::fprintf(stderr,
                 "FAIL: shards=1 threaded with supervision diverged from the "
                 "unsharded inline path\n");
    return 1;
  }
  if (!assert_retained_s.empty()) {
    char* end = nullptr;
    const double want = std::strtod(assert_retained_s.c_str(), &end);
    if (end == nullptr || *end != '\0' || want <= 0 || want > 1)
      CliOptions::fail("--assert-retained", assert_retained_s,
                       "expected a number in (0, 1]");
    if (worst_retained < want) {
      std::fprintf(stderr,
                   "FAIL: supervised goodput retained %.1f%% < required "
                   "%.1f%%\n",
                   worst_retained * 100.0, want * 100.0);
      return 1;
    }
    std::printf("retained gate passed: %.1f%% >= %.1f%%\n",
                worst_retained * 100.0, want * 100.0);
  }
  if (assert_supervised && !supervised_never_worse) {
    std::fprintf(stderr,
                 "FAIL: a supervised arm lost both goodput and P99 to its "
                 "unsupervised twin\n");
    return 1;
  }
  return 0;
}
