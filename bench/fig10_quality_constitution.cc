// Figure 10 — video quality constitution under different bandwidths.
//
// Three test videos, ten synthetic viewers each, bandwidth swept over the
// paper's 250..1000 KB/s range. For each (video, bandwidth, scheduler) the
// harness prints the percentage of playback time spent at each spherical
// resolution, with "NA" marking seconds where no resolution fit. The paper's
// result: MF-HTTP outperforms greedy whole-frame DASH at every bandwidth,
// holding high quality when bandwidth is low.
#include <cstdio>
#include <map>
#include <vector>

#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "video/session.h"

namespace {

using namespace mfhttp;

ViewportTrace make_viewer_trace(const DeviceProfile& device, std::uint64_t seed,
                                TimeMs duration_ms) {
  ViewportTrace::Params tp;
  tp.device = device;
  ViewportTrace trace(tp);
  VideoDragSource source(device, {}, Rng(seed));
  GestureRecognizer recognizer(device);
  TimeMs now = 0;
  while (now < duration_ms) {
    TouchTrace t = source.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = recognizer.on_touch_event(ev)) trace.add_gesture(*g);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();
  const int kViewers = 10;  // the paper's 10 volunteers
  const std::vector<double> kBandwidthsKB = {250, 500, 750, 1000};

  // Three videos of different content complexity (the paper's three YouTube
  // clips at 1080s/720s/480s/360s).
  std::vector<VideoAsset::Params> video_params(3);
  video_params[0].name = "video1";
  video_params[0].bitrate_multiplier = 1.0;
  video_params[0].seed = 7;
  video_params[1].name = "video2";
  video_params[1].bitrate_multiplier = 2.8;  // action-heavy: whole-frame 360s
  // floor ~280 KB/s exceeds the 250 KB/s budget (the paper's "NA" case)
  video_params[1].seed = 8;
  video_params[2].name = "video3";
  video_params[2].bitrate_multiplier = 0.8;  // mostly static scenery
  video_params[2].seed = 9;

  std::printf("=== Fig. 10: %% of time at each resolution (MF vs greedy DASH) ===\n");
  MfHttpTileScheduler mf;
  GreedyDashScheduler greedy;

  for (const VideoAsset::Params& vp : video_params) {
    VideoAsset video(vp);
    std::printf("\n--- %s (bitrate x%.2f) ---\n", vp.name.c_str(),
                vp.bitrate_multiplier);
    std::printf("%-10s %-12s %8s %8s %8s %8s %8s | %10s\n", "bw(KB/s)", "scheme",
                "NA", "360s", "480s", "720s", "1080s", "mean res");

    for (double kb : kBandwidthsKB) {
      auto bandwidth = BandwidthTrace::constant(kb_per_sec(kb));
      for (const TileScheduler* sched :
           {static_cast<const TileScheduler*>(&mf),
            static_cast<const TileScheduler*>(&greedy)}) {
        // Aggregate over the 10 viewers.
        std::map<int, int> seconds;
        double mean_res = 0;
        int total_seconds = 0;
        for (int viewer = 0; viewer < kViewers; ++viewer) {
          ViewportTrace trace =
              make_viewer_trace(device, 100 + static_cast<std::uint64_t>(viewer),
                                vp.duration_s * 1000);
          auto result = run_streaming_session(video, trace, bandwidth, *sched,
                                              StreamingSessionParams{});
          for (auto [q, n] : result.seconds_at_quality()) seconds[q] += n;
          mean_res += result.mean_resolution(video);
          total_seconds += static_cast<int>(result.segments.size());
        }
        mean_res /= kViewers;
        auto pct = [&](int q) {
          return 100.0 * seconds[q] / static_cast<double>(total_seconds);
        };
        std::printf("%-10.0f %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %9.0fp\n",
                    kb, sched->name().c_str(), pct(-1), pct(0), pct(1), pct(2),
                    pct(3), mean_res);
      }
    }
  }
  std::printf("\n(paper: MF-HTTP constantly outperforms greedy DASH at every\n"
              " bandwidth for all test videos, and keeps quality high when\n"
              " bandwidth is low)\n");
  return 0;
}
