// Figure 9 — bandwidth consumption trace of one 1080s 360°-video session.
//
// MF-HTTP (viewport tiles at high quality, the rest at floor quality) vs the
// baseline that streams the whole frame at a fixed 1080s resolution. The
// paper's observation: MF-HTTP consumes far less, and its curve tracks the
// number of tiles in the viewport (the valleys of the two series match).
#include <cstdio>

#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "video/session.h"

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  using namespace mfhttp;
  const DeviceProfile device = DeviceProfile::nexus6();

  VideoAsset::Params vp;
  vp.name = "video1";
  vp.duration_s = 60;
  VideoAsset video(vp);

  // One volunteer's drag-heavy viewing session.
  ViewportTrace::Params tp;
  tp.device = device;
  ViewportTrace trace(tp);
  VideoDragSource source(device, {}, Rng(17));
  GestureRecognizer recognizer(device);
  TimeMs now = 0;
  while (now < 60'000) {
    TouchTrace t = source.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = recognizer.on_touch_event(ev)) trace.add_gesture(*g);
  }

  auto bandwidth = BandwidthTrace::constant(kb_per_sec(1000));
  MfHttpTileScheduler mf;
  FixedRateScheduler baseline(3);  // whole frame at 1080s
  StreamingSessionParams params;

  auto r_mf = run_streaming_session(video, trace, bandwidth, mf, params);
  auto r_base = run_streaming_session(video, trace, bandwidth, baseline, params);

  std::printf("=== Fig. 9: bandwidth consumption, 1080s session (KB per second) ===\n");
  std::printf("%-8s %10s %12s %12s\n", "sec", "vis.tiles", "mf-http", "baseline");
  for (std::size_t i = 0; i < r_mf.segments.size(); ++i) {
    std::printf("%-8d %10d %12.1f %12.1f\n", r_mf.segments[i].segment,
                r_mf.segments[i].visible_tiles,
                static_cast<double>(r_mf.segments[i].bytes) / 1000.0,
                static_cast<double>(r_base.segments[i].bytes) / 1000.0);
  }
  std::printf("\ntotal: mf-http %.1f MB, baseline %.1f MB (%.1f%% reduction)\n",
              static_cast<double>(r_mf.total_bytes) / 1e6,
              static_cast<double>(r_base.total_bytes) / 1e6,
              100.0 * (1.0 - static_cast<double>(r_mf.total_bytes) /
                                 static_cast<double>(r_base.total_bytes)));

  // Correlation between visible-tile count and MF-HTTP bytes (the paper's
  // "valleys match" observation).
  double mv = 0, mb = 0;
  for (const SegmentRecord& s : r_mf.segments) {
    mv += s.visible_tiles;
    mb += static_cast<double>(s.bytes);
  }
  mv /= static_cast<double>(r_mf.segments.size());
  mb /= static_cast<double>(r_mf.segments.size());
  double cov = 0, vv = 0, vb = 0;
  for (const SegmentRecord& s : r_mf.segments) {
    double dv = s.visible_tiles - mv, db = static_cast<double>(s.bytes) - mb;
    cov += dv * db;
    vv += dv * dv;
    vb += db * db;
  }
  if (vv > 0 && vb > 0)
    std::printf("corr(visible tiles, mf-http bytes) = %.2f\n",
                cov / std::sqrt(vv * vb));
  return 0;
}
