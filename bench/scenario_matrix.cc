// Scenario matrix — the ScenarioSpec acceptance artifact (DESIGN.md §16):
// device class × network profile × workload, every cell wired through
// ScenarioSpec + from_scenario and scored on the same five columns (QoE,
// viewport-load P99, goodput, shed rate, cache hit ratio) plus an FNV
// fingerprint over every per-session deterministic quantity.
//
// Two properties are asserted in-binary, mirroring scale_matrix:
//
//   * paper_default_identical — the paper-default cells (phone_flagship ×
//     wlan × {paper_corpus, client_only}) are re-run through a hand-wired
//     fig7-style loop that never touches ScenarioSpec; the spec-driven rows
//     must reproduce it byte for byte. The scenario API is a new front door
//     on the fig6/fig7 harness, not a new harness.
//   * deterministic_across_workers — the full grid is re-run at every
//     --workers count (cells parallelized via sim::ParallelRunner) and the
//     concatenated deterministic row JSON must not change. A sweep whose
//     answers depend on thread count is not a benchmark.
//
//   scenario_matrix [--base spec.json] [--devices LIST] [--networks LIST]
//                   [--workloads LIST] [--repeats N] [--sites N]
//                   [--workers 1,2] [--json BENCH_scenario.json]
//
// The default base spec is the built-in grid-stress scenario (cache +
// admission sections on, a dynamic feed, a seeded-random-walk knob left to
// the network profiles) — the same document shipped as
// bench/scenarios/grid_stress.json. Note on the cache column: the fig7
// browsing harness fires exactly one gesture per session, so a prefetch-
// warmed object is never re-referenced and cache_hit_ratio is structurally
// 0 for the corpus workloads — the column is reported (and gated) so
// multi-gesture workloads light it up, not because it moves today. CI's
// scenario-smoke job runs the reduced grid (--sites 6 --repeats 1) and
// gates the output against
// bench/baselines/BENCH_scenario.json via tools/bench_gate.py.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cli/standard_options.h"
#include "scenario/matrix.h"
#include "scenario/wiring.h"
#include "sim/parallel_runner.h"
#include "util/json.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace {

using namespace mfhttp;
using scenario::MatrixCellResult;
using scenario::ScenarioSpec;

// The built-in grid-stress base: paper defaults plus a live cache and a
// tight admission throttle so the cache-hit and shed columns measure
// something in every cell. Kept in sync with bench/scenarios/grid_stress.json.
constexpr const char* kGridStressJson = R"json({
  "name": "grid_stress",
  "seed": 1,
  "cache": {
    "cache": {"capacity_bytes": 4000000, "default_ttl_ms": 8000},
    "prefetch": {"enabled": true, "max_bytes_per_plan": 400000}
  },
  "overload": {
    "admission": {
      "global_rate_per_s": 60, "global_burst": 24,
      "session_rate_per_s": 60, "session_burst": 24,
      "max_inflight_upstream": 12, "max_dispatch_queue": 48
    }
  }
})json";

std::vector<std::string> parse_list(const char* flag, const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (out.empty()) CliOptions::fail(flag, s, "expected a comma-separated list");
  return out;
}

std::vector<std::size_t> parse_worker_list(const std::string& s) {
  std::vector<std::size_t> out;
  for (const std::string& tok : parse_list("--workers", s)) {
    char* end = nullptr;
    unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v == 0)
      CliOptions::fail("--workers", s, "expected comma-separated positive ints");
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

int parse_int(const char* flag, const std::string& s, int min) {
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < min)
    CliOptions::fail(flag, s, "expected an integer in range");
  return static_cast<int>(v);
}

// The independent witness for paper_default_identical: fig7's exact config
// construction (bench/fig7_viewport_load_time.cc) aggregated with the same
// arithmetic as scenario::run_matrix_cell, but never touching ScenarioSpec.
MatrixCellResult hand_wired_paper_cell(const MatrixCellResult& like,
                                       bool enable_mfhttp, int sites,
                                       int repeats) {
  struct Fnv {
    std::uint64_t h = 0xcbf29ce484222325ull;
    void u64(std::uint64_t v) {
      const unsigned char* c = reinterpret_cast<const unsigned char*>(&v);
      for (std::size_t i = 0; i < sizeof(v); ++i) {
        h ^= c[i];
        h *= 0x100000001b3ull;
      }
    }
  };

  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  std::vector<WebPage> corpus = generate_corpus(device, rng);
  if (sites > 0 && static_cast<std::size_t>(sites) < corpus.size())
    corpus.resize(sites);

  MatrixCellResult out;
  out.scenario = like.scenario;
  out.device = like.device;
  out.network = like.network;
  out.workload = like.workload;

  Fnv fp;
  std::vector<TimeMs> load_times;
  double qoe_sum = 0;
  Bytes total_bytes = 0;
  TimeMs total_sim_ms = 0;
  std::size_t requests = 0, rejected = 0, shed = 0, hits = 0, misses = 0;
  for (const WebPage& page : corpus) {
    for (int session = 0; session < repeats; ++session) {
      BrowsingSessionConfig cfg;
      cfg.device = device;
      cfg.fill_sample_ms = 0;
      cfg.seed = 1000 + static_cast<std::uint64_t>(page.site.size()) +
                 static_cast<std::uint64_t>(session) * 7919;
      cfg.swipe_speed_px_s = 3000 + 2500 * session;
      cfg.enable_mfhttp = enable_mfhttp;
      BrowsingSessionResult r = run_browsing_session(page, cfg);
      ++out.sessions;
      load_times.push_back(r.initial_viewport_load_ms);
      qoe_sum += r.initial_viewport_load_ms >= 0
                     ? 1000.0 / (1000.0 + r.initial_viewport_load_ms)
                     : 0.0;
      total_bytes += r.bytes_downloaded;
      total_sim_ms += cfg.session_ms;
      requests += r.requests_total;
      rejected += r.requests_rejected;
      shed += r.requests_shed;
      hits += r.cache_hits;
      misses += r.cache_misses;
      fp.u64(static_cast<std::uint64_t>(r.initial_viewport_load_ms));
      fp.u64(static_cast<std::uint64_t>(r.final_viewport_load_ms));
      fp.u64(static_cast<std::uint64_t>(r.bytes_downloaded));
      fp.u64(r.images_completed);
      fp.u64(r.stranded_deferred);
    }
  }
  out.qoe = out.sessions > 0 ? qoe_sum / out.sessions : 0;
  std::sort(load_times.begin(), load_times.end());
  if (!load_times.empty()) {
    std::size_t idx = (load_times.size() * 99 + 99) / 100;
    if (idx > load_times.size()) idx = load_times.size();
    out.viewport_p99_ms = load_times[idx - 1];
  }
  out.goodput_bytes_per_s =
      total_sim_ms > 0 ? total_bytes * 1000.0 / total_sim_ms : 0;
  out.shed_rate =
      requests > 0 ? static_cast<double>(rejected + shed) / requests : 0;
  out.cache_hit_ratio =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  out.fingerprint = fp.h;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, devices_s, networks_s, workloads_s, repeats_s,
      sites_s, workers_s, json_path;
  cli::StandardOptions standard_options(argc, argv, [&](CliOptions& options) {
    options
        .add_string("--base", "PATH",
                    "base scenario JSON (default: built-in grid_stress)",
                    &base_path)
        .add_string("--devices", "LIST",
                    "device classes (default phone_flagship,phone_lowend,tablet10)",
                    &devices_s)
        .add_string("--networks", "LIST",
                    "network profiles (default wlan,lte,umts3g)", &networks_s)
        .add_string("--workloads", "LIST",
                    "workloads (default paper_corpus,client_only,"
                    "social_feed,tiled_video)",
                    &workloads_s)
        .add_string("--repeats", "N", "sessions per cell point (default: spec)",
                    &repeats_s)
        .add_string("--sites", "N",
                    "limit browsing cells to the first N corpus sites (0 = all)",
                    &sites_s)
        .add_string("--workers", "LIST",
                    "worker counts for the determinism sweep (default 1,2)",
                    &workers_s)
        .add_string("--json", "PATH",
                    "result document (default BENCH_scenario.json)", &json_path);
  });

  std::string error;
  std::optional<ScenarioSpec> base;
  if (base_path.empty()) {
    base = ScenarioSpec::from_json(kGridStressJson, &error);
  } else {
    base = ScenarioSpec::load(base_path, &error);
  }
  if (!base.has_value()) {
    std::fprintf(stderr, "scenario_matrix: bad base spec: %s\n", error.c_str());
    return 2;
  }
  if (!repeats_s.empty())
    base->workload.repeats = parse_int("--repeats", repeats_s, 1);
  if (!sites_s.empty())
    base->workload.corpus_sites = parse_int("--sites", sites_s, 0);
  if (json_path.empty()) json_path = "BENCH_scenario.json";

  const std::vector<std::string> devices =
      devices_s.empty()
          ? std::vector<std::string>{"phone_flagship", "phone_lowend", "tablet10"}
          : parse_list("--devices", devices_s);
  const std::vector<std::string> networks =
      networks_s.empty() ? std::vector<std::string>{"wlan", "lte", "umts3g"}
                         : parse_list("--networks", networks_s);
  const std::vector<std::string> workloads =
      workloads_s.empty()
          ? std::vector<std::string>{"paper_corpus", "client_only",
                                     "social_feed", "tiled_video"}
          : parse_list("--workloads", workloads_s);
  const std::vector<std::size_t> worker_counts =
      workers_s.empty() ? std::vector<std::size_t>{1, 2}
                        : parse_worker_list(workers_s);

  // The grid, plus the two paper-default rows the identity check owns.
  std::vector<ScenarioSpec> cells;
  for (const std::string& d : devices)
    for (const std::string& n : networks)
      for (const std::string& w : workloads)
        cells.push_back(scenario::cell_spec(*base, d, n, w));

  ScenarioSpec paper = ScenarioSpec::paper_default();
  paper.workload.corpus_sites = base->workload.corpus_sites;
  if (!repeats_s.empty()) paper.workload.repeats = base->workload.repeats;
  const std::size_t paper_first = cells.size();
  cells.push_back(
      scenario::cell_spec(paper, "phone_flagship", "wlan", "paper_corpus"));
  cells.push_back(
      scenario::cell_spec(paper, "phone_flagship", "wlan", "client_only"));

  std::printf("=== Scenario matrix: %zu devices x %zu networks x %zu workloads"
              " + 2 paper rows = %zu cells ===\n",
              devices.size(), networks.size(), workloads.size(), cells.size());
  std::printf("(base '%s', repeats %d, sites %s; workers sweep:",
              base->name.c_str(), base->workload.repeats,
              base->workload.corpus_sites > 0
                  ? std::to_string(base->workload.corpus_sites).c_str()
                  : "all");
  for (std::size_t w : worker_counts) std::printf(" %zu", w);
  std::printf("; hardware threads: %u)\n\n",
              std::thread::hardware_concurrency());

  // Run the whole grid at every worker count; rows are reported from the
  // first sweep, later sweeps only feed the byte-identity check.
  std::vector<MatrixCellResult> rows;
  std::string baseline_doc;
  bool deterministic_across_workers = true;
  for (std::size_t workers : worker_counts) {
    std::vector<MatrixCellResult> results(cells.size());
    sim::ParallelRunner runner(workers);
    runner.run(cells.size(), [&](std::size_t i) {
      results[i] = scenario::run_matrix_cell(cells[i]);
    });
    std::string doc;
    for (const MatrixCellResult& r : results) {
      doc += r.deterministic_json();
      doc += '\n';
    }
    if (baseline_doc.empty()) {
      baseline_doc = doc;
      rows = std::move(results);
    } else if (doc != baseline_doc) {
      deterministic_across_workers = false;
      std::fprintf(stderr, "FAIL: results at %zu workers diverged\n", workers);
    }
  }

  // The identity check: re-run the paper-default rows with fig7's hand-wired
  // loop and compare the deterministic JSON byte for byte.
  bool paper_default_identical = true;
  for (std::size_t k = 0; k < 2; ++k) {
    const MatrixCellResult& via_spec = rows[paper_first + k];
    const MatrixCellResult witness = hand_wired_paper_cell(
        via_spec, /*enable_mfhttp=*/k == 0, paper.workload.corpus_sites,
        paper.workload.repeats);
    if (witness.deterministic_json() != via_spec.deterministic_json()) {
      paper_default_identical = false;
      std::fprintf(stderr,
                   "FAIL: paper-default %s diverged from the fig7 harness\n"
                   "  spec:    %s\n  witness: %s\n",
                   via_spec.workload.c_str(),
                   via_spec.deterministic_json().c_str(),
                   witness.deterministic_json().c_str());
    }
  }

  std::printf("%-44s %5s %6s %9s %11s %6s %6s %6s\n", "cell", "sess", "qoe",
              "p99 ms", "goodput B/s", "shed", "hit", "wall");
  for (const MatrixCellResult& r : rows) {
    const std::string cell = r.device + "/" + r.network + "/" + r.workload;
    std::printf("%-44s %5zu %6.3f %9lld %11.0f %6.3f %6.3f %5.0fs\n",
                cell.c_str(), r.sessions, r.qoe,
                static_cast<long long>(r.viewport_p99_ms),
                r.goodput_bytes_per_s, r.shed_rate, r.cache_hit_ratio,
                r.wall_ms / 1000.0);
  }
  std::printf("\npaper_default_identical:       %s\n",
              paper_default_identical ? "yes" : "NO");
  std::printf("deterministic_across_workers:  %s\n",
              deterministic_across_workers ? "yes" : "NO");

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("scenario_matrix");
  w.key("base").value(base->name);
  w.key("repeats").value(base->workload.repeats);
  w.key("corpus_sites").value(base->workload.corpus_sites);
  w.key("paper_default_identical").value(paper_default_identical);
  w.key("deterministic_across_workers").value(deterministic_across_workers);
  w.key("rows").begin_array();
  for (const MatrixCellResult& r : rows) {
    w.begin_object();
    w.key("scenario").value(r.scenario);
    w.key("device").value(r.device);
    w.key("network").value(r.network);
    w.key("workload").value(r.workload);
    w.key("sessions").value(r.sessions);
    w.key("qoe").value(r.qoe);
    w.key("viewport_p99_ms").value(static_cast<long long>(r.viewport_p99_ms));
    w.key("goodput_bytes_per_s").value(r.goodput_bytes_per_s);
    w.key("shed_rate").value(r.shed_rate);
    w.key("cache_hit_ratio").value(r.cache_hit_ratio);
    w.key("fingerprint").value(static_cast<unsigned long long>(r.fingerprint));
    w.key("wall_ms").value(r.wall_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr)
    CliOptions::fail("--json", json_path, "cannot open for writing");
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  return paper_default_identical && deterministic_across_workers ? 0 : 1;
}
