// Loopback matrix — the real-socket transport's acceptance artifact
// (DESIGN.md §15): transport {sim, socket} x wire {clean, faulty}, every
// arm replaying the identical seeded fetch script through the one
// canonical FetchPipelineBuilder stack.
//
// Two hard gates ride in-binary, before the JSON is even written:
//
//   * parity — the clean socket arm must reproduce the clean sim arm's
//     per-fetch (status, body_size, request_ms, complete_ms) EXACTLY.
//     Real I/O happens in zero sim time and then replays SimHttpOrigin's
//     event shape, so any drift is a transport bug, not noise.
//   * taxonomy — on every arm, requests == completed + errored + shed.
//     A faulty wire may fail fetches, but it may never lose one.
//
// The faulty arms use each backend's native chaos: lossy_cellular for the
// sim stack (link/fetcher decorators) and flaky_socket for the real wire
// (seeded short reads, torn writes, RST, stalls in the aio layer). Both
// faulty arms run behind ResilientFetcher, so retries and breakers are
// part of what is being measured.
//
// CI runs `loopback_matrix --quick` and gates the document against
// bench/baselines/BENCH_loopback.json via tools/bench_gate.py: request
// counts exact, completion/error/shed rates as ratios, requests/sec and
// P99 fetch wall latency as wall metrics (skipped on shared runners).
//
//   loopback_matrix [--requests N] [--universe N] [--seed S]
//                   [--quick] [--json BENCH_loopback.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "cli/standard_options.h"
#include "fault/fault_plan.h"
#include "http/fetch_pipeline.h"
#include "http/sim_http.h"
#include "http/transport.h"
#include "net/bandwidth_trace.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"

namespace {

using namespace mfhttp;

struct ScriptEntry {
  std::string url;
  std::string etag;  // non-empty: conditional GET expecting 304
};

struct FetchRecord {
  int status = 0;
  Bytes body_size = 0;
  TimeMs request_ms = 0;
  TimeMs complete_ms = 0;
};

struct Row {
  std::string transport;  // sim | socket
  std::string wire;       // clean | faulty
  std::size_t requests = 0;
  std::size_t completed = 0;  // any real status except 503
  std::size_t errored = 0;    // status 0: transport/origin failure
  std::size_t shed = 0;       // 503
  bool taxonomy_accounted = false;
  double completed_rate = 0;
  double error_rate = 0;
  double shed_rate = 0;
  double wall_ms = 0;
  double requests_per_sec = 0;
  double p99_fetch_us = 0;
  std::vector<FetchRecord> records;  // for the in-binary parity gate
};

std::size_t parse_size(const char* flag, const std::string& s) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || s.empty())
    CliOptions::fail(flag, s, "expected a non-negative integer");
  return static_cast<std::size_t>(v);
}

// Same stores, same script, every arm: the parity gate depends on it.
void populate(ObjectStore& store, std::size_t universe, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < universe; ++i) {
    store.put("/obj/" + std::to_string(i) + ".bin",
              static_cast<Bytes>(rng.uniform_int(500, 60'000)),
              i % 3 == 0 ? "image/jpeg" : "text/html");
  }
}

std::vector<ScriptEntry> make_script(const ObjectStore& store,
                                     std::size_t universe,
                                     std::size_t requests,
                                     std::uint64_t seed) {
  Rng rng(seed ^ 0x5c717);
  std::vector<ScriptEntry> script;
  script.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    ScriptEntry entry;
    if (rng.chance(0.05)) {  // a miss: the 404 path stays exercised
      entry.url = "http://origin.example/missing/" + std::to_string(i);
    } else {
      std::string path = "/obj/" +
                         std::to_string(static_cast<std::size_t>(rng.uniform_int(
                             0, static_cast<std::int64_t>(universe) - 1))) +
                         ".bin";
      entry.url = "http://origin.example" + path;
      if (rng.chance(0.15))  // conditional GET: the 304 path stays exercised
        entry.etag = store.find(path)->etag;
    }
    script.push_back(std::move(entry));
  }
  return script;
}

Row run_arm(TransportKind kind, bool faulty,
            const std::vector<ScriptEntry>& script, std::size_t universe,
            std::uint64_t seed) {
  Row row;
  row.transport = transport_kind_name(kind);
  row.wire = faulty ? "faulty" : "clean";

  Simulator sim;
  ObjectStore store;
  populate(store, universe, seed);

  Link::Params origin_params;
  origin_params.bandwidth = BandwidthTrace::constant(1'000'000);
  origin_params.latency_ms = 2;
  Link origin_link(sim, origin_params);

  // Each backend's native chaos: the sim stack degrades its links and
  // fetchers, the socket stack degrades the actual read()/write() stream.
  fault::FaultPlan plan = kind == TransportKind::kSocket
                              ? fault::FaultPlan::flaky_socket(seed)
                              : fault::FaultPlan::lossy_cellular(seed);

  FetchPipelineBuilder builder(sim);
  builder.with_origin(&store, &origin_link);
  TransportConfig config;
  config.kind = kind;
  builder.with_transport(config);
  if (faulty) {
    builder.with_faults(&plan);
    builder.with_resilience();
  }
  Link::Params client_params;
  client_params.bandwidth = BandwidthTrace::constant(400'000);
  client_params.latency_ms = 30;
  builder.client_link(client_params);
  std::unique_ptr<FetchPipeline> pipeline = builder.build();

  std::vector<double> fetch_us;
  fetch_us.reserve(script.size());
  const auto arm_start = std::chrono::steady_clock::now();
  for (const ScriptEntry& entry : script) {
    std::optional<FetchResult> out;
    FetchCallbacks callbacks;
    callbacks.on_complete = [&](const FetchResult& r) { out = r; };
    HttpRequest request = HttpRequest::get(entry.url);
    if (!entry.etag.empty()) request.headers.set("If-None-Match", entry.etag);
    const auto t0 = std::chrono::steady_clock::now();
    pipeline->proxy().fetch(request, std::move(callbacks));
    sim.run();
    fetch_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());

    ++row.requests;
    if (!out.has_value()) continue;  // lost: taxonomy gate will catch it
    FetchRecord record{out->status, out->body_size, out->request_ms,
                       out->complete_ms};
    row.records.push_back(record);
    if (out->status == 0)
      ++row.errored;
    else if (out->status == 503)
      ++row.shed;
    else
      ++row.completed;
  }
  row.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - arm_start)
                    .count();

  row.taxonomy_accounted =
      row.requests == row.completed + row.errored + row.shed;
  const double n = static_cast<double>(row.requests);
  row.completed_rate = n > 0 ? static_cast<double>(row.completed) / n : 0;
  row.error_rate = n > 0 ? static_cast<double>(row.errored) / n : 0;
  row.shed_rate = n > 0 ? static_cast<double>(row.shed) / n : 0;
  row.requests_per_sec = row.wall_ms > 0 ? n / (row.wall_ms / 1000.0) : 0;
  std::sort(fetch_us.begin(), fetch_us.end());
  if (!fetch_us.empty())
    row.p99_fetch_us = fetch_us[static_cast<std::size_t>(
        static_cast<double>(fetch_us.size() - 1) * 0.99)];

  if (kind == TransportKind::kSocket && pipeline->transport() != nullptr)
    pipeline->transport()->drain();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string requests_s, universe_s, seed_s, json_path;
  bool quick = false;
  cli::StandardOptions standard_options(argc, argv, [&](CliOptions& options) {
    options
        .add_string("--requests", "N", "fetches per arm (default 300)",
                    &requests_s)
        .add_string("--universe", "N", "distinct origin objects (default 64)",
                    &universe_s)
        .add_string("--seed", "S", "master seed (default 1)", &seed_s)
        .add_flag("--quick", "CI-sized run: 60 fetches over 16 objects",
                  &quick)
        .add_string("--json", "PATH",
                    "result document (default BENCH_loopback.json)",
                    &json_path);
  });

  std::size_t requests =
      requests_s.empty() ? (quick ? 60 : 300) : parse_size("--requests",
                                                           requests_s);
  std::size_t universe =
      universe_s.empty() ? (quick ? 16 : 64) : parse_size("--universe",
                                                          universe_s);
  std::uint64_t seed =
      seed_s.empty() ? 1 : static_cast<std::uint64_t>(parse_size("--seed",
                                                                 seed_s));
  if (json_path.empty()) json_path = "BENCH_loopback.json";

  // One seeded script for every arm, derived from a throwaway store that is
  // populated exactly like each arm's own (same puts, same etags).
  ObjectStore script_store;
  populate(script_store, universe, seed);
  const std::vector<ScriptEntry> script =
      make_script(script_store, universe, requests, seed);

  std::vector<Row> rows;
  for (TransportKind kind : {TransportKind::kSim, TransportKind::kSocket}) {
    for (bool faulty : {false, true}) {
      Row row = run_arm(kind, faulty, script, universe, seed);
      std::printf(
          "%-6s %-6s  requests=%zu completed=%zu errored=%zu shed=%zu  "
          "%8.1f req/s  p99=%.0fus%s\n",
          row.transport.c_str(), row.wire.c_str(), row.requests,
          row.completed, row.errored, row.shed, row.requests_per_sec,
          row.p99_fetch_us, row.taxonomy_accounted ? "" : "  TAXONOMY LEAK");
      rows.push_back(std::move(row));
    }
  }

  // Gate 1: clean-wire parity, fetch by fetch, exact.
  const Row& sim_clean = rows[0];
  const Row& socket_clean = rows[2];
  bool parity_clean = sim_clean.records.size() == socket_clean.records.size();
  for (std::size_t i = 0; parity_clean && i < sim_clean.records.size(); ++i) {
    const FetchRecord& a = sim_clean.records[i];
    const FetchRecord& b = socket_clean.records[i];
    parity_clean = a.status == b.status && a.body_size == b.body_size &&
                   a.request_ms == b.request_ms &&
                   a.complete_ms == b.complete_ms;
    if (!parity_clean)
      std::fprintf(stderr,
                   "parity breach at fetch %zu (%s): sim (%d, %llu B, "
                   "%lld..%lld ms) vs socket (%d, %llu B, %lld..%lld ms)\n",
                   i, script[i].url.c_str(), a.status,
                   static_cast<unsigned long long>(a.body_size),
                   static_cast<long long>(a.request_ms),
                   static_cast<long long>(a.complete_ms), b.status,
                   static_cast<unsigned long long>(b.body_size),
                   static_cast<long long>(b.request_ms),
                   static_cast<long long>(b.complete_ms));
  }

  // Gate 2: nothing lost, anywhere.
  bool all_accounted = true;
  for (const Row& row : rows) all_accounted &= row.taxonomy_accounted;

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("loopback_matrix");
  w.key("requests_per_arm").value(requests);
  w.key("universe").value(universe);
  w.key("seed").value(static_cast<unsigned long long>(seed));
  w.key("parity_clean").value(parity_clean);
  w.key("all_taxonomy_accounted").value(all_accounted);
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("transport").value(row.transport);
    w.key("wire").value(row.wire);
    w.key("requests").value(row.requests);
    w.key("completed").value(row.completed);
    w.key("errored").value(row.errored);
    w.key("shed").value(row.shed);
    w.key("taxonomy_accounted").value(row.taxonomy_accounted);
    w.key("completed_rate").value(row.completed_rate);
    w.key("error_rate").value(row.error_rate);
    w.key("shed_rate").value(row.shed_rate);
    w.key("wall_ms").value(row.wall_ms);
    w.key("requests_per_sec").value(row.requests_per_sec);
    w.key("p99_fetch_us").value(row.p99_fetch_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr)
    CliOptions::fail("--json", json_path, "cannot open for writing");
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!parity_clean) {
    std::fprintf(stderr, "FAIL: clean socket arm diverged from the sim arm\n");
    return 1;
  }
  if (!all_accounted) {
    std::fprintf(stderr,
                 "FAIL: requests != completed + errored + shed on some arm\n");
    return 1;
  }
  return 0;
}
