// Ablation — value of scroll *prediction* for the web block list
// (DESIGN.md §7.3) and block-list behaviour across scroll intensity.
//
//   (a) Scroll-intensity sweep: how many images the block list saves and
//       what it costs, as flings get stronger.
//   (b) Predictive vs reactive release: MF-HTTP releases an image the moment
//       the fling physics prove it will enter the viewport; a lazy-loading
//       baseline only releases once the image actually crosses into the
//       current viewport. The difference is the time the final viewport
//       spends waiting for its images after the scroll settles.
#include <cstdio>
#include <optional>

#include "core/middleware.h"
#include "gesture/synthetic.h"
#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "web/blocklist_controller.h"
#include "web/browser.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace {

using namespace mfhttp;

// Reactive lazy-loading controller: releases an image only when it overlaps
// the *current* viewport, sampled periodically. No use of fling prediction.
class ReactiveController : public Interceptor {
 public:
  ReactiveController(const WebPage& page, Rect viewport0, MitmProxy* proxy)
      : page_(page), proxy_(proxy) {
    for (const MediaObject& img : page.images)
      if (!viewport0.overlaps(img.rect)) blocked_.insert(img.top_version().url);
  }

  InterceptDecision on_request(const HttpRequest& request) override {
    auto url = request.url();
    std::string s = url ? url->to_string() : request.target;
    return blocked_.contains(s) ? InterceptDecision::defer()
                                : InterceptDecision::allow();
  }

  // only_when_settled: release only once the viewport has stopped moving
  // (the common "wait for scrollend" lazy-loading pattern); otherwise track
  // the animated viewport continuously.
  void sample_viewport(const Rect& viewport, bool only_when_settled) {
    bool settled = viewport == prev_;
    prev_ = viewport;
    if (only_when_settled && !settled) return;
    for (const MediaObject& img : page_.images) {
      if (!viewport.overlaps(img.rect)) continue;
      const std::string& url = img.top_version().url;
      if (blocked_.erase(url) > 0) proxy_->release(url);
    }
  }

 private:
  const WebPage& page_;
  MitmProxy* proxy_;
  std::unordered_set<std::string> blocked_;
  Rect prev_;
};

struct RunResult {
  TimeMs final_vlt = -1;   // time from scroll end until final viewport loaded
  Bytes bytes = 0;
  std::size_t avoided = 0;
};

// Shared wiring for predictive (MF-HTTP) and reactive arms.
enum class Arm { kPredictive, kTrackingLazy, kScrollEndLazy };

RunResult run_arm(const WebPage& page, double swipe_speed, Arm arm,
                  BytesPerSec client_bw = 2e6) {
  const DeviceProfile device = DeviceProfile::nexus6();
  Simulator sim;
  Link::Params cp;
  cp.bandwidth = BandwidthTrace::constant(client_bw);
  cp.latency_ms = 8;
  cp.sharing = Link::Sharing::kFairShare;
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  for (const PageResource& r : page.structure) store.put(parse_url(r.url)->path, r.size);
  for (const MediaObject& img : page.images)
    store.put(parse_url(img.top_version().url)->path, img.top_version().size);
  SimHttpOrigin origin(sim, &store, &server_link);
  auto pipeline = FetchPipelineBuilder(sim, &origin).client_link(cp).build();
  MitmProxy& proxy = pipeline->proxy();
  Link& client_link = pipeline->client_link();

  Rect vp0{0, 0, device.screen_w_px, device.screen_h_px};
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(device);
  tp.coverage_step_ms = 4.0;
  tp.content_bounds = page.bounds();

  Middleware::Params mp;
  mp.tracker = tp;
  mp.flow.weights = {1.0, 0.0};
  mp.flow.ignore_bandwidth_constraint = true;
  mp.initial_viewport = vp0;
  Middleware middleware(mp, page.images, BandwidthTrace::constant(2e6), &sim);

  std::optional<BlockListController> predictive_ctl;
  std::optional<ReactiveController> reactive_ctl;
  if (arm == Arm::kPredictive) {
    predictive_ctl.emplace(page, vp0, &proxy);
    proxy.set_interceptor(&*predictive_ctl);
    middleware.set_policy_callback(
        [&](const ScrollAnalysis& a, const DownloadPolicy& p) {
          predictive_ctl->on_policy(a, p);
        });
  } else {
    reactive_ctl.emplace(page, vp0, &proxy);
    proxy.set_interceptor(&*reactive_ctl);
    // Poll the (ground-truth) viewport every 100 ms, like a lazy loader
    // watching onScroll events.
    bool settled_only = arm == Arm::kScrollEndLazy;
    for (TimeMs t = 0; t <= 30'000; t += 100)
      sim.schedule_at(t, [&, t, settled_only] {
        reactive_ctl->sample_viewport(middleware.viewport_at(t), settled_only);
      });
  }
  TouchEventMonitor monitor(device, [&](const Gesture& g) { middleware.on_gesture(g); });

  Browser browser(sim, &proxy, page);
  sim.schedule_at(0, [&] { browser.load(); });

  SwipeSpec spec;
  spec.start = {700, 1900};
  spec.direction = {0, -1};
  spec.speed_px_s = swipe_speed;
  spec.start_time_ms = 1500;
  for (const TouchEvent& ev : synthesize_swipe(spec))
    sim.schedule_at(ev.time_ms, [&, ev] { monitor.on_touch_event(ev); });

  sim.run_until(30'000);

  RunResult out;
  Rect final_vp = middleware.viewport_at(30'000);
  TimeMs vlt = browser.viewport_load_time(final_vp);
  TimeMs scroll_end = 1500 + 150 +
                      (middleware.last_analysis()
                           ? static_cast<TimeMs>(
                                 middleware.last_analysis()->prediction.duration_ms)
                           : 0);
  out.final_vlt = vlt < 0 ? -1 : std::max<TimeMs>(0, vlt - scroll_end);
  out.bytes = client_link.bytes_delivered_total();
  out.avoided = page.images.size() - browser.images_completed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  WebPage page;
  for (const SiteSpec& spec : alexa25_specs()) {
    if (spec.name == "sohu") {
      Rng r = rng.fork();
      page = generate_page(spec, device, r);
    }
  }

  std::printf("=== Ablation (a): block list vs scroll intensity (sohu-like) ===\n");
  std::printf("%12s %14s %12s\n", "fling(px/s)", "imgs avoided", "MB moved");
  for (double speed : {2000.0, 4000.0, 8000.0, 16000.0, 24000.0}) {
    RunResult r = run_arm(page, speed, Arm::kPredictive);
    std::printf("%12.0f %10zu/%zu %12.2f\n", speed, r.avoided, page.images.size(),
                static_cast<double>(r.bytes) / 1e6);
  }

  std::printf("\n=== Ablation (b): predictive release vs reactive lazy-loading ===\n");
  std::printf("(final-viewport load lag after the scroll settles, ms;\n"
              " 500 KB/s client link so fetch time is comparable to the fling)\n");
  std::printf("%12s %14s %14s %16s\n", "fling(px/s)", "predictive",
              "tracking-lazy", "scrollend-lazy");
  for (double speed : {4000.0, 8000.0, 16000.0}) {
    RunResult pred = run_arm(page, speed, Arm::kPredictive, 500e3);
    RunResult track = run_arm(page, speed, Arm::kTrackingLazy, 500e3);
    RunResult settle = run_arm(page, speed, Arm::kScrollEndLazy, 500e3);
    std::printf("%12.0f %14lld %14lld %16lld\n", speed,
                static_cast<long long>(pred.final_vlt),
                static_cast<long long>(track.final_vlt),
                static_cast<long long>(settle.final_vlt));
  }
  std::printf(
      "\n(predictive release starts fetching the moment the fling endpoint is\n"
      " known — the paper's core claim — and wins at moderate speeds. At\n"
      " extreme fling speeds the q = 0 policy also releases every transient\n"
      " corridor image, which contends with the final viewport on the shared\n"
      " link; the paper's cost weight q exists to prune exactly those.)\n");
  return 0;
}
