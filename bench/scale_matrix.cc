// Scale matrix — the parallel session engine's acceptance artifact
// (DESIGN.md §12): sessions x workers -> wall-clock, speedup over the
// serial baseline, and the exact touch-to-policy latency tail, with a
// byte-identity check proving worker count never changes results.
//
// Every row re-runs the identical seeded workload; the workers=1 row is the
// serial baseline (ParallelRunner executes inline, in index order). Before a
// row is reported its deterministic JSON — config, per-session aggregates,
// and a per-session FNV fingerprint over every policy decision — is compared
// byte-for-byte against the baseline's. Any divergence is a hard failure:
// a parallel speedup that changes answers is not an optimization.
//
//   scale_matrix [--sessions N] [--gestures N] [--workers 1,2,8]
//                [--seed S] [--json BENCH_scale.json]
//                [--assert-speedup X]   # fail unless best speedup >= X
//
// --assert-speedup is meant for CI's multi-core perf-smoke job; on a
// single-core container the matrix still proves determinism, but no wall-
// clock claim is made (speedup there is noise, not signal).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cli/standard_options.h"
#include "sim/session_world.h"
#include "util/json.h"
#include "util/stats.h"

namespace {

using namespace mfhttp;

struct Row {
  std::size_t workers = 1;
  double wall_ms = 0;
  double speedup = 1.0;
  double p50_touch_ms = 0;
  double p99_touch_ms = 0;
  std::uint64_t steals = 0;
  bool deterministic = true;
};

std::vector<std::size_t> parse_worker_list(const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(pos, comma - pos);
    char* end = nullptr;
    unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v == 0)
      CliOptions::fail("--workers", s, "expected comma-separated positive ints");
    out.push_back(static_cast<std::size_t>(v));
    pos = comma + 1;
  }
  if (out.empty())
    CliOptions::fail("--workers", s, "expected at least one worker count");
  return out;
}

std::size_t parse_size(const char* flag, const std::string& s) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0)
    CliOptions::fail(flag, s, "expected a positive integer");
  return static_cast<std::size_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::string sessions_s, gestures_s, workers_s, seed_s, json_path, assert_speedup_s;
  cli::StandardOptions standard_options(argc, argv, [&](CliOptions& options) {
    options.add_string("--sessions", "N", "session count (default 16)", &sessions_s)
        .add_string("--gestures", "N", "gestures per session (default 40)",
                    &gestures_s)
        .add_string("--workers", "LIST",
                    "comma-separated worker counts (default 1,2,4)", &workers_s)
        .add_string("--seed", "S", "master seed (default 1)", &seed_s)
        .add_string("--json", "PATH",
                    "result document (default BENCH_scale.json)", &json_path)
        .add_string("--assert-speedup", "X",
                    "exit 1 unless best speedup >= X (CI perf gate)",
                    &assert_speedup_s);
  });

  sim::ScaleSessionConfig config;
  if (!sessions_s.empty()) config.sessions = parse_size("--sessions", sessions_s);
  if (!gestures_s.empty())
    config.gestures_per_session = parse_size("--gestures", gestures_s);
  if (!seed_s.empty())
    config.seed = static_cast<std::uint64_t>(parse_size("--seed", seed_s));
  if (json_path.empty()) json_path = "BENCH_scale.json";
  std::vector<std::size_t> worker_counts =
      workers_s.empty() ? std::vector<std::size_t>{1, 2, 4}
                        : parse_worker_list(workers_s);

  std::printf("=== Scale matrix: %zu sessions, %zu gestures each, seed %llu ===\n",
              config.sessions, config.gestures_per_session,
              static_cast<unsigned long long>(config.seed));
  std::printf("(hardware threads: %u; workers=1 is the serial baseline every\n"
              " other row must reproduce byte for byte)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %8s %12s %12s %7s %6s\n", "workers", "wall ms",
              "speedup", "p50 t2p ms", "p99 t2p ms", "steals", "ident");

  std::string baseline_json;
  double baseline_wall_ms = 0;
  double best_speedup = 0;
  bool all_identical = true;
  std::vector<Row> rows;

  for (std::size_t workers : worker_counts) {
    config.workers = workers;
    sim::ScaleRunResult result = sim::run_scale_sessions(config);

    Row row;
    row.workers = workers;
    row.wall_ms = result.wall_ms;
    row.steals = result.stats.steals;

    Samples touch;
    for (const sim::ScaleSessionResult& s : result.sessions)
      for (double ms : s.touch_to_policy_ms) touch.add(ms);
    row.p50_touch_ms = touch.count() ? touch.percentile(50) : 0;
    row.p99_touch_ms = touch.count() ? touch.percentile(99) : 0;

    const std::string doc = result.deterministic_json();
    if (baseline_json.empty()) {
      // First row is the baseline (run workers=1 first for a meaningful
      // speedup column; any row works for the identity check).
      baseline_json = doc;
      baseline_wall_ms = result.wall_ms;
    }
    row.deterministic = doc == baseline_json;
    all_identical = all_identical && row.deterministic;
    row.speedup = row.wall_ms > 0 ? baseline_wall_ms / row.wall_ms : 0;
    best_speedup = std::max(best_speedup, row.speedup);

    std::printf("%8zu %10.1f %7.2fx %12.3f %12.3f %7llu %6s\n", row.workers,
                row.wall_ms, row.speedup, row.p50_touch_ms, row.p99_touch_ms,
                static_cast<unsigned long long>(row.steals),
                row.deterministic ? "yes" : "NO");
    rows.push_back(row);
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("scale_matrix");
  w.key("sessions").value(config.sessions);
  w.key("gestures_per_session").value(config.gestures_per_session);
  w.key("seed").value(static_cast<unsigned long long>(config.seed));
  w.key("hardware_threads").value(
      static_cast<unsigned long long>(std::thread::hardware_concurrency()));
  w.key("deterministic_across_workers").value(all_identical);
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("workers").value(row.workers);
    w.key("wall_ms").value(row.wall_ms);
    w.key("speedup").value(row.speedup);
    w.key("p50_touch_to_policy_ms").value(row.p50_touch_ms);
    w.key("p99_touch_to_policy_ms").value(row.p99_touch_ms);
    w.key("steals").value(static_cast<unsigned long long>(row.steals));
    w.key("deterministic").value(row.deterministic);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) CliOptions::fail("--json", json_path, "cannot open for writing");
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: per-session results diverged across worker counts\n");
    return 1;
  }
  if (!assert_speedup_s.empty()) {
    char* end = nullptr;
    const double want = std::strtod(assert_speedup_s.c_str(), &end);
    if (end == nullptr || *end != '\0' || want <= 0)
      CliOptions::fail("--assert-speedup", assert_speedup_s,
                       "expected a positive number");
    if (best_speedup < want) {
      std::fprintf(stderr, "FAIL: best speedup %.2fx < required %.2fx\n",
                   best_speedup, want);
      return 1;
    }
    std::printf("speedup gate passed: %.2fx >= %.2fx\n", best_speedup, want);
  }
  return 0;
}
