// Extension experiment — sustained browsing: instead of Fig. 7's single
// random scroll, a user works down a long page with a stream of think-time-
// separated flings (the BrowsingGestureSource model). For every place the
// viewport settles, how long until it is fully rendered, and what did the
// whole session cost?
#include <cstdio>
#include <optional>
#include <vector>

#include "core/middleware.h"
#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "util/stats.h"
#include "web/blocklist_controller.h"
#include "web/browser.h"
#include "web/corpus.h"

namespace {

using namespace mfhttp;

struct SessionStats {
  Samples settle_lag_ms;  // settle time -> viewport fully loaded
  Bytes bytes = 0;
  std::size_t images_fetched = 0;
  std::size_t images_total = 0;
};

SessionStats run(const WebPage& page, bool enable_mfhttp, std::uint64_t seed,
                 TimeMs session_ms) {
  const DeviceProfile device = DeviceProfile::nexus6();
  Simulator sim;
  Link::Params cp;
  cp.bandwidth = BandwidthTrace::constant(1e6);
  cp.latency_ms = 8;
  cp.sharing = Link::Sharing::kFairShare;
  Link server_link(sim, Link::Params{});
  ObjectStore store;
  for (const PageResource& r : page.structure) store.put(parse_url(r.url)->path, r.size);
  for (const MediaObject& img : page.images)
    store.put(parse_url(img.top_version().url)->path, img.top_version().size);
  SimHttpOrigin origin(sim, &store, &server_link);
  auto pipeline = FetchPipelineBuilder(sim, &origin).client_link(cp).build();
  MitmProxy& proxy = pipeline->proxy();
  Link& client_link = pipeline->client_link();

  Rect vp0{0, 0, device.screen_w_px, device.screen_h_px};
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(device);
  tp.coverage_step_ms = 8.0;
  tp.content_bounds = page.bounds();

  std::optional<Middleware> middleware;
  std::optional<BlockListController> controller;
  std::optional<TouchEventMonitor> monitor;
  if (enable_mfhttp) {
    Middleware::Params mp;
    mp.tracker = tp;
    mp.flow.weights = {1.0, 0.0};
    mp.flow.ignore_bandwidth_constraint = true;
    mp.initial_viewport = vp0;
    mp.gesture_uplink_ms = 8;
    middleware.emplace(mp, page.images, BandwidthTrace::constant(1e6), &sim);
    controller.emplace(page, vp0, &proxy);
    proxy.set_interceptor(&*controller);
    middleware->set_policy_callback(
        [&](const ScrollAnalysis& a, const DownloadPolicy& p) {
          controller->on_policy(a, p);
        });
    monitor.emplace(device, [&](const Gesture& g) { middleware->on_gesture(g); });
  }

  // Ground truth (same gestures in both arms thanks to the shared seed).
  ScrollTracker gt_tracker(tp);
  ViewportState gt_viewport(vp0, page.bounds());
  GestureRecognizer gt_recognizer(device);
  struct Settle {
    TimeMs time_ms;
    Rect viewport;
  };
  std::vector<Settle> settles;

  Browser browser(sim, &proxy, page);
  sim.schedule_at(0, [&] { browser.load(); });

  BrowsingGestureSource source(device, {}, Rng(seed));
  TimeMs t = 800;
  while (t < session_ms - 3000) {
    TouchTrace trace = source.next_swipe(t);
    t = trace.back().time_ms;
    for (const TouchEvent& ev : trace) {
      sim.schedule_at(ev.time_ms, [&, ev] {
        if (monitor) monitor->on_touch_event(ev);
        if (auto g = gt_recognizer.on_touch_event(ev)) {
          gt_viewport.interrupt(g->down_time_ms);
          gt_viewport.apply_contact_pan(*g);
          if (g->scrolls()) {
            ScrollPrediction pred =
                gt_tracker.predict(*g, gt_viewport.at(g->up_time_ms));
            gt_viewport.begin_animation(pred);
            settles.push_back(
                {pred.start_time_ms + static_cast<TimeMs>(pred.duration_ms),
                 pred.final_viewport()});
          }
        }
      });
    }
  }

  sim.run_until(session_ms);

  SessionStats out;
  out.bytes = client_link.bytes_delivered_total();
  out.images_total = page.images.size();
  out.images_fetched = browser.images_completed();
  for (const Settle& s : settles) {
    TimeMs loaded = browser.viewport_load_time(s.viewport);
    if (loaded < 0) continue;  // session ended before it finished
    out.settle_lag_ms.add(
        static_cast<double>(std::max<TimeMs>(0, loaded - s.time_ms)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  WebPage page;
  for (const SiteSpec& spec : alexa25_specs()) {
    Rng r = rng.fork();
    if (spec.name == "qq") page = generate_page(spec, device, r);
  }

  std::printf("=== Extension: sustained browsing session (qq-like, 30 s) ===\n");
  std::printf("(1 MB/s WLAN; fling stream with think time; lag = settle -> viewport ready)\n\n");
  std::printf("%-10s %6s %12s %12s %12s %14s %12s\n", "arm", "seeds", "mean lag",
              "median", "p90", "MB moved", "imgs");

  for (bool mfhttp : {false, true}) {
    Samples lag;
    RunningStats bytes;
    std::size_t fetched = 0, total = 0;
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      SessionStats s = run(page, mfhttp, seed, 30'000);
      for (double v : s.settle_lag_ms.values()) lag.add(v);
      bytes.add(static_cast<double>(s.bytes));
      fetched += s.images_fetched;
      total += s.images_total;
    }
    std::printf("%-10s %6d %10.0fms %10.0fms %10.0fms %14.1f %7zu/%zu\n",
                mfhttp ? "mf-http" : "baseline", 3, lag.mean(), lag.median(),
                lag.percentile(90), bytes.mean() / 1e6, fetched, total);
  }
  std::printf("\n(every settle should find its viewport already rendered; the\n"
              " baseline pays for that with the whole page, MF-HTTP with only\n"
              " the content the user actually swept across)\n");
  return 0;
}
