// Cache/prefetch matrix (ISSUE 4 tentpole driver): N sessions × bandwidth
// trace × {no-cache, cache, cache+prefetch} over the identical seeded
// workload (prefetch/cache_experiment.h). Reports the paper-style triple —
// viewport load time (P50/exact P99), on-deadline goodput, bytes-on-link —
// plus the cache and speculation accounting (hits, revalidations, prefetch
// issued/denied/useful, and prefetch-wasted bytes: the cost of acting on
// wrong scroll predictions).
//
// The acceptance gate this binary demonstrates: at >=16 sessions on at
// least one trace, the cache+prefetch arm must *strictly* beat no-cache on
// both P99 viewport load time and total bytes-on-link. The final VERDICT
// lines print that comparison per trace; CI runs `--smoke --json-out` and
// asserts on the emitted JSON.
//
// Flags (cli/standard_options.h plus locals):
//   --smoke            one 16-session sweep only (CI-sized)
//   --json-out <path>  write every cell's CacheExperimentResult as a JSON array
//   --cache-config <p> override cache sizing / prefetch budget
//   --metrics-json <p> obs registry snapshot at exit
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cli/standard_options.h"
#include "net/bandwidth_trace.h"
#include "prefetch/cache_experiment.h"
#include "util/rng.h"

namespace {

using namespace mfhttp;
using namespace mfhttp::prefetch;

struct TraceSpec {
  std::string name;
  BandwidthTrace bandwidth;
};

std::vector<TraceSpec> make_traces() {
  std::vector<TraceSpec> traces;
  traces.push_back({"steady", BandwidthTrace::constant(1'500'000)});
  // LTE-like walk: per-session downlink wobbling around 1.2 MB/s. Seeded
  // here so every run (and every arm) sees the same trace.
  Rng rng(7);
  traces.push_back({"lte-walk", BandwidthTrace::random_walk(
                                    rng, 1'200'000, 300'000, 400'000,
                                    2'000'000, 40, 500)});
  return traces;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_out;
  mfhttp::cli::StandardOptions standard_options(
      argc, argv, [&](CliOptions& options) {
        options.add_flag("--smoke", "single 16-session sweep (CI-sized)", &smoke);
        options.add_string("--json-out", "path",
                           "write all results as a JSON array", &json_out);
      });

  const std::vector<int> session_counts =
      smoke ? std::vector<int>{16} : std::vector<int>{8, 16, 32};
  const std::vector<TraceSpec> traces = make_traces();
  const CacheArm arms[] = {CacheArm::kNoCache, CacheArm::kCache,
                           CacheArm::kCachePrefetch};

  std::printf("=== Cache/prefetch matrix: sessions x trace x arm ===\n");
  std::printf("(shared origin hop is the contended resource; shared validating\n"
              " cache + prediction-driven warm-up relieve it — §4.2)\n\n");
  std::printf("%-10s %-9s %9s %9s %9s %10s %10s %9s %7s %7s %9s %11s\n", "trace",
              "arm", "sessions", "p50(ms)", "p99(ms)", "goodput/s", "MB-link",
              "hit-rate", "reval", "pf-iss", "pf-deny", "pf-wasteKB");

  std::vector<std::string> json_rows;
  bool any_trace_passes = false;
  for (const TraceSpec& trace : traces) {
    // The >=16-session no-cache / cache+prefetch pair the verdict compares.
    double nocache_p99 = 0, prefetch_p99 = 0;
    Bytes nocache_bytes = 0, prefetch_bytes = 0;
    bool have_pair = false;

    for (int sessions : session_counts) {
      for (CacheArm arm : arms) {
        CacheExperimentConfig config;
        config.sessions = sessions;
        config.arm = arm;
        config.trace_name = trace.name;
        config.client_bandwidth = trace.bandwidth;
        if (standard_options.has_cache_config())
          config.cache = standard_options.cache_config();

        const CacheExperimentResult r = run_cache_experiment(config);
        const double lookups =
            static_cast<double>(r.cache_hits + r.cache_misses);
        std::printf(
            "%-10s %-9s %9d %9.0f %9.0f %10.0f %10.2f %8.0f%% %7zu %7zu %9zu %11.1f\n",
            r.trace.c_str(), r.arm.c_str(), r.sessions, r.p50_load_ms,
            r.p99_load_ms, r.goodput_bytes_per_s,
            static_cast<double>(r.total_link_bytes) / 1e6,
            lookups > 0 ? 100.0 * static_cast<double>(r.cache_hits) / lookups
                        : 0.0,
            r.revalidations, r.prefetch_issued, r.prefetch_denied,
            static_cast<double>(r.prefetch_wasted_bytes) / 1e3);
        json_rows.push_back(r.to_json());

        if (sessions >= 16 && !have_pair) {
          if (arm == CacheArm::kNoCache) {
            nocache_p99 = r.p99_load_ms;
            nocache_bytes = r.total_link_bytes;
          } else if (arm == CacheArm::kCachePrefetch) {
            prefetch_p99 = r.p99_load_ms;
            prefetch_bytes = r.total_link_bytes;
            have_pair = true;
          }
        }
      }
      std::printf("\n");
    }

    const bool passes = have_pair && prefetch_p99 < nocache_p99 &&
                        prefetch_bytes < nocache_bytes;
    any_trace_passes = any_trace_passes || passes;
    if (have_pair) {
      std::printf(
          "VERDICT %-10s cache+prefetch vs no-cache @16+: p99 %.0f -> %.0f ms, "
          "link %.2f -> %.2f MB  [%s]\n\n",
          trace.name.c_str(), nocache_p99, prefetch_p99,
          static_cast<double>(nocache_bytes) / 1e6,
          static_cast<double>(prefetch_bytes) / 1e6,
          passes ? "PASS" : "FAIL");
    }
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    out << "[";
    for (std::size_t i = 0; i < json_rows.size(); ++i)
      out << (i > 0 ? ",\n " : "\n ") << json_rows[i];
    out << "\n]\n";
    if (!out) {
      std::fprintf(stderr, "error: --json-out %s: write failed\n",
                   json_out.c_str());
      return 2;
    }
    std::printf("results written to %s\n", json_out.c_str());
  }

  if (!any_trace_passes) {
    std::fprintf(stderr,
                 "FAIL: no trace shows cache+prefetch strictly beating "
                 "no-cache on p99 AND bytes at >=16 sessions\n");
    return 1;
  }
  return 0;
}
