// Ablation — the generic cost function c(f) of §3.4.1, instantiated three
// ways, and the Eq. 13 transfer-scheduling discipline.
//
//   (a) Cost model: byte-linear vs data-capped vs LTE radio energy. Each
//       shifts what the optimizer downloads for the same scroll: linear
//       prunes big objects, capped prunes beyond-quota bytes, and energy's
//       fixed per-fetch charge prunes *many small* objects.
//   (b) Scheduling: Eq. 13 hints that selected objects download in viewport
//       entry order (FIFO); parallel connections (fair share) are what
//       browsers actually do. Measured on viewport load time.
#include <cstdio>

#include "core/energy.h"
#include "core/flow_controller.h"
#include "core/middleware.h"
#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace {

using namespace mfhttp;

const DeviceProfile kDevice = DeviceProfile::nexus6();

struct PolicySummary {
  std::size_t downloads = 0;
  Bytes bytes = 0;
};

PolicySummary summarize(const DownloadPolicy& policy) {
  PolicySummary out;
  for (const DownloadDecision& d : policy.decisions)
    if (d.download()) ++out.downloads;
  out.bytes = policy.total_bytes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  Rng rng(42);
  WebPage page;
  for (const SiteSpec& spec : alexa25_specs()) {
    Rng r = rng.fork();
    if (spec.name == "qq") page = generate_page(spec, kDevice, r);
  }

  // One strong fling over the qq-like page.
  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(kDevice);
  tp.coverage_step_ms = 4.0;
  tp.content_bounds = page.bounds();
  ScrollTracker tracker(tp);
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = 0;
  g.up_time_ms = 150;
  g.release_velocity = {0, -16000};
  ScrollPrediction pred =
      tracker.predict(g, {0, 0, kDevice.screen_w_px, kDevice.screen_h_px});
  ScrollAnalysis analysis = tracker.analyze(pred, page.images);

  std::printf("=== Ablation (a): cost models over one 16k px/s fling (qq-like) ===\n");
  std::printf("(p = 1, q = 0.1; %zu images involved)\n\n",
              analysis.involved_by_entry_time().size());
  std::printf("%-22s %12s %14s\n", "cost model", "downloads", "bytes (KB)");

  struct Model {
    const char* name;
    CostFunction cost;
  } models[] = {
      {"linear (bytes)", linear_cost()},
      {"capped @300KB, 4x", capped_cost(300'000, 4.0)},
      {"LTE radio energy", radio_energy_cost(RadioEnergyParams::lte())},
      {"WiFi radio energy", radio_energy_cost(RadioEnergyParams::wifi())},
  };
  auto bw = BandwidthTrace::constant(2e6);
  for (const Model& m : models) {
    FlowController::Params params;
    params.weights = {1.0, 0.1};
    params.ignore_bandwidth_constraint = true;
    params.cost = m.cost;
    DownloadPolicy policy = FlowController(params).optimize(analysis, page.images, bw);
    PolicySummary s = summarize(policy);
    std::printf("%-22s %12zu %14.1f\n", m.name, s.downloads,
                static_cast<double>(s.bytes) / 1000.0);
  }

  std::printf("\n=== Ablation (b): client-hop scheduling discipline ===\n");
  std::printf("(sohu-like page, MF-HTTP on; Eq. 13 in-order FIFO vs parallel"
              " fair share)\n\n");
  Rng rng2(42);
  WebPage sohu;
  for (const SiteSpec& spec : alexa25_specs()) {
    Rng r = rng2.fork();
    if (spec.name == "sohu") sohu = generate_page(spec, kDevice, r);
  }
  std::printf("%-12s %-14s %18s %18s\n", "arm", "discipline",
              "initial VLT (ms)", "final VLT (ms)");
  for (bool mfhttp : {false, true}) {
    for (Link::Sharing sharing :
         {Link::Sharing::kFifo, Link::Sharing::kFairShare}) {
      BrowsingSessionConfig cfg;
      cfg.enable_mfhttp = mfhttp;
      cfg.fill_sample_ms = 0;
      cfg.seed = 7;
      cfg.client_bandwidth = 800e3;  // constrained: discipline matters
      cfg.client_sharing = sharing;
      BrowsingSessionResult r = run_browsing_session(sohu, cfg);
      std::printf("%-12s %-14s %18lld %18lld\n", mfhttp ? "mf-http" : "baseline",
                  sharing == Link::Sharing::kFifo ? "fifo (Eq.13)" : "fair-share",
                  static_cast<long long>(r.initial_viewport_load_ms),
                  static_cast<long long>(r.final_viewport_load_ms));
    }
  }
  std::printf(
      "\n(under contention the priority-less baseline collapses either way:\n"
      " its css->script chain queues behind ~70 images, and the viewport\n"
      " cannot finish before the page does. MF-HTTP's block list plus its\n"
      " structure > viewport > transient link priorities keep the critical\n"
      " path in front under both disciplines)\n");
  return 0;
}
