// Ablation — fling kinematics (§3.3.1): how fling duration T(v) and
// distance D(v) scale with release velocity and device pixel density, and
// what prediction horizon that buys the middleware (the time budget between
// finger release and the last object entering the viewport).
#include <cstdio>

#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "scroll/animation.h"
#include "scroll/device_profile.h"
#include "scroll/fling.h"

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  using namespace mfhttp;

  std::printf("=== Ablation: Android fling model, Eqs. (1)-(5) ===\n");
  std::printf("DECELERATION_RATE = %.6f\n\n", fling_deceleration_rate());

  std::printf("--- T(v), D(v) on the Nexus 6 (493 ppi) ---\n");
  std::printf("%12s %12s %14s %16s\n", "v (px/s)", "T(v) (ms)", "D(v) (px)",
              "screens scrolled");
  FlingParams nexus6;
  nexus6.ppi = 493;
  for (double v : {200.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0, 24650.0}) {
    FlingModel m(v, nexus6);
    std::printf("%12.0f %12.0f %14.0f %16.2f\n", v, m.duration_ms(),
                m.total_distance_px(), m.total_distance_px() / 2560.0);
  }

  std::printf("\n--- D(v) at v = 4000 px/s across devices ---\n");
  std::printf("%-12s %8s %12s %12s\n", "device", "ppi", "T (ms)", "D (px)");
  struct Dev {
    const char* name;
    DeviceProfile profile;
  } devices[] = {
      {"lowend", DeviceProfile::lowend()},
      {"tablet10", DeviceProfile::tablet10()},
      {"nexus5", DeviceProfile::nexus5()},
      {"nexus6", DeviceProfile::nexus6()},
  };
  for (const Dev& d : devices) {
    FlingParams p;
    p.ppi = d.profile.ppi;
    FlingModel m(4000, p);
    std::printf("%-12s %8.0f %12.0f %12.0f\n", d.name, d.profile.ppi,
                m.duration_ms(), m.total_distance_px());
  }

  std::printf("\n--- prediction horizon: time between release and object entry ---\n");
  std::printf("(how long before an object at distance d the middleware knows it's coming)\n");
  std::printf("%12s %16s %16s %16s\n", "v (px/s)", "entry@1 screen", "entry@2 screens",
              "horizon left");
  ScrollConfig cfg(DeviceProfile::nexus6());
  for (double v : {6000.0, 10000.0, 16000.0}) {
    ScrollAnimation a({0, -v}, cfg);
    double t1 = a.time_for_distance(2560);
    double t2 = a.time_for_distance(5120);
    if (a.total_distance() < 2560) {
      std::printf("%12.0f %16s %16s %16s\n", v, "unreached", "unreached", "-");
      continue;
    }
    std::printf("%12.0f %13.0f ms %13.0f ms %13.0f ms\n", v, t1,
                a.total_distance() >= 5120 ? t2 : -1.0, a.duration_ms() - t1);
  }
  std::printf("\n(every millisecond of horizon is lead time the flow controller\n"
              " has to fetch the object before the user sees the gap)\n");
  return 0;
}
