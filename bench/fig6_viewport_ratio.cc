// Figure 6 — "viewport size / webpage size" for the Alexa-like top-25 corpus.
//
// The paper reports 11 sites with full-size viewports (search engines and
// login pages) and 14 with limited-size viewports, bottoming out at 4.1%
// (Sohu). This harness regenerates the per-site ratio series.
#include <algorithm>
#include <cstdio>

#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "scroll/device_profile.h"
#include "util/rng.h"
#include "web/corpus.h"

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  using namespace mfhttp;
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  auto corpus = generate_corpus(device, rng);

  std::printf("=== Fig. 6: viewport size / webpage size (Alexa-like top 25) ===\n");
  std::printf("%-18s %12s %12s %10s %8s\n", "site", "page_h(px)", "vp_h(px)",
              "ratio", "class");

  int full = 0, limited = 0;
  double min_ratio = 1.0;
  std::string min_site;
  for (const WebPage& page : corpus) {
    double ratio = page.viewport_ratio(device.screen_h_px);
    bool is_full = ratio >= 1.0 - 1e-9;
    (is_full ? full : limited)++;
    if (ratio < min_ratio) {
      min_ratio = ratio;
      min_site = page.site;
    }
    std::printf("%-18s %12.0f %12.0f %9.1f%% %8s\n", page.site.c_str(), page.height,
                device.screen_h_px, ratio * 100.0, is_full ? "full" : "limited");
  }
  std::printf("\nfull-size viewports:    %d (paper: 11)\n", full);
  std::printf("limited-size viewports: %d (paper: 14)\n", limited);
  std::printf("minimum ratio:          %.1f%% at %s (paper: 4.1%% at Sohu)\n",
              min_ratio * 100.0, min_site.c_str());
  return 0;
}
