// Figure 8 — same-timestamp loading progress of two browsing sessions.
//
// The paper shows two screenshots taken at the same instant: the MF-HTTP
// session has finished loading the viewport while the baseline "still
// struggles downloading objects disregarding whether they are in the
// viewport". The machine-readable equivalent: the fraction of the (moving)
// viewport's image bytes present over time, sampled identically for both.
#include <algorithm>
#include <cstdio>

#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "web/corpus.h"
#include "web/experiment.h"

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  using namespace mfhttp;
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  // A YouTube-like limited-viewport page, matching the paper's example.
  WebPage page;
  for (const SiteSpec& spec : alexa25_specs()) {
    if (spec.name == "youtube") {
      Rng site_rng = rng.fork();
      page = generate_page(spec, device, site_rng);
      break;
    }
  }

  BrowsingSessionConfig cfg;
  cfg.device = device;
  cfg.fill_sample_ms = 200;
  cfg.seed = 7;

  cfg.enable_mfhttp = false;
  BrowsingSessionResult base = run_browsing_session(page, cfg);
  cfg.enable_mfhttp = true;
  BrowsingSessionResult mf = run_browsing_session(page, cfg);

  std::printf("=== Fig. 8: viewport fill over time (youtube-like page) ===\n");
  std::printf("%-10s %16s %16s\n", "time(ms)", "baseline fill", "mf-http fill");
  std::size_t n = std::min(base.fill_timeline.size(), mf.fill_timeline.size());
  bool base_done = false, mf_done = false;
  for (std::size_t i = 0; i < n; ++i) {
    auto [t, fb] = base.fill_timeline[i];
    double fm = mf.fill_timeline[i].second;
    std::printf("%-10lld %15.1f%% %15.1f%%\n", static_cast<long long>(t), fb * 100,
                fm * 100);
    if (!mf_done && fm >= 1.0 - 1e-9) {
      std::printf("           --- mf-http viewport fully loaded ---\n");
      mf_done = true;
    }
    if (!base_done && fb >= 1.0 - 1e-9) {
      std::printf("           --- baseline viewport fully loaded ---\n");
      base_done = true;
    }
    if (base_done && mf_done) break;
  }
  std::printf("\nviewport load time: baseline %lld ms, mf-http %lld ms\n",
              static_cast<long long>(base.initial_viewport_load_ms),
              static_cast<long long>(mf.initial_viewport_load_ms));
  std::printf("bytes over client link: baseline %lld, mf-http %lld\n",
              static_cast<long long>(base.bytes_downloaded),
              static_cast<long long>(mf.bytes_downloaded));
  return 0;
}
