// Pinned micro-benchmark matrix — the hot-path microarchitecture pass's
// acceptance artifact (DESIGN.md §17). One row per stage, every stage on a
// fixed seed:
//
//   coverage_scalar / coverage_batch   per-object swept-viewport kernels vs
//                                      the SoA batch over the arena
//   analyze_aos / analyze_arena        full ScrollTracker::analyze
//   touch_replan_aos / _arena          the full per-touch production path:
//                                      analyze + FlowController re-solve
//   header_parse                       HttpParser over a typical request
//   header_lookup                      HeaderMap get_view/contains/
//                                      content_length (must not allocate)
//   cache_key                          url reconstruction + If-None-Match
//                                      match, the sim cache's key path
//
// Each row carries an FNV-1a fingerprint over the stage's results — a pure
// function of the seed, gated exact by tools/bench_gate.py — plus wall
// ns/op and, on the SoA rows, the same-run speedup over the scalar/AoS
// twin. Decision parity (batch vs scalar, arena vs AoS) is asserted
// in-binary: a fast path that changes answers is a bug, not a win.
//
//   micro_matrix [--reps N] [--passes K] [--seed S] [--json BENCH_micro.json]
//                [--assert-speedup X]   # fail unless the batched coverage
//                                       # AND arena replan speedups >= X
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "cli/standard_options.h"
#include "core/flow_controller.h"
#include "core/object_arena.h"
#include "core/scroll_tracker.h"
#include "geom/coverage_batch.h"
#include "geom/swept_region.h"
#include "http/parser.h"
#include "util/json.h"
#include "util/rng.h"
#include "web/corpus.h"

// Global allocation counter for the zero-alloc gate on the header rows.
// Relaxed is fine: the bench is single-threaded.
namespace {
std::atomic<unsigned long long> g_allocs{0};
}

// Counting via malloc/free keeps the override self-contained; GCC's
// -Wmismatched-new-delete can't see the pairing through the counter, hence
// the pragma rather than a code change.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace mfhttp;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_double(std::uint64_t& h, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  fnv_bytes(h, &bits, sizeof(bits));
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof(v)); }

struct StageRow {
  std::string stage;
  unsigned long long ops = 0;
  double ns_per_op = 0;
  double speedup = 0;              // 0: no scalar twin
  std::uint64_t fingerprint = 0;
  long long allocs_per_op = -1;    // -1: not measured for this stage
  bool has_parity = false;
  bool parity_ok = false;
};

// Best-of-K timing: each stage's reps loop runs `passes` times and the
// fastest pass is reported. Min-time is the standard defense against
// scheduler preemption and frequency dips on shared runners — one slow pass
// in either twin would otherwise swing the reported speedup ratio by 2-4x.
template <typename Body>
double best_ns_per_op(unsigned long long passes, unsigned long long ops,
                      Body&& body) {
  double best = 0;
  for (unsigned long long p = 0; p < passes; ++p) {
    const auto t0 = Clock::now();
    body();
    const auto t1 = Clock::now();
    const double ns = static_cast<double>(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              t1 - t0)
                              .count()) /
                      static_cast<double>(ops);
    if (p == 0 || ns < best) best = ns;
  }
  return best;
}

void fnv_analysis(std::uint64_t& h, const ScrollAnalysis& analysis) {
  for (const ObjectCoverage& c : analysis.coverages) {
    fnv_u64(h, c.object_index);
    fnv_u64(h, (c.involved ? 1u : 0u) | (c.in_initial_viewport ? 2u : 0u) |
                   (c.in_final_viewport ? 4u : 0u));
    fnv_double(h, c.entry_time_ms);
    fnv_double(h, c.coverage_integral);
    fnv_double(h, c.final_coverage);
  }
}

void fnv_policy(std::uint64_t& h, const DownloadPolicy& policy) {
  for (const DownloadDecision& d : policy.decisions) {
    fnv_u64(h, d.object_index);
    fnv_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(d.version)));
    fnv_double(h, d.entry_time_ms);
    fnv_double(h, d.qoe);
    fnv_double(h, d.cost);
    fnv_double(h, d.value);
  }
  fnv_double(h, policy.objective);
  fnv_u64(h, static_cast<std::uint64_t>(policy.total_bytes));
}

Gesture fling(Vec2 v) {
  Gesture g;
  g.kind = GestureKind::kFling;
  g.down_time_ms = -150;
  g.up_time_ms = 0;
  g.down_pos = {700, 1800};
  g.up_pos = g.down_pos + v * 0.15;
  g.release_velocity = v;
  return g;
}

std::string typical_request_text() {
  return "GET /article/42?ref=home HTTP/1.1\r\n"
         "Host: news.example\r\n"
         "User-Agent: mfhttp-bench/1.0\r\n"
         "Accept: text/html,application/xhtml+xml\r\n"
         "Accept-Encoding: gzip, br\r\n"
         "Accept-Language: en-US,en;q=0.9\r\n"
         "Connection: keep-alive\r\n"
         "Cache-Control: max-age=0\r\n"
         "If-None-Match: \"a1b2c3d4\"\r\n"
         "Range: bytes=0-65535\r\n"
         "X-Mfhttp-Session: s-17\r\n"
         "\r\n";
}

unsigned long long parse_reps(const char* flag, const std::string& s) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0)
    CliOptions::fail(flag, s, "expected a positive integer");
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string reps_s, seed_s, passes_s, json_path, assert_speedup_s;
  cli::StandardOptions standard_options(argc, argv, [&](CliOptions& options) {
    options.add_string("--reps", "N", "repetitions per stage (default 400)", &reps_s)
        .add_string("--passes", "K",
                    "timing passes per stage, best one reported (default 5)",
                    &passes_s)
        .add_string("--seed", "S", "corpus/gesture seed (default 1)", &seed_s)
        .add_string("--json", "PATH", "result document (default BENCH_micro.json)",
                    &json_path)
        .add_string("--assert-speedup", "X",
                    "exit 1 unless batched coverage AND arena replan reach Xx "
                    "(CI perf gate)",
                    &assert_speedup_s);
  });
  const unsigned long long reps = reps_s.empty() ? 400 : parse_reps("--reps", reps_s);
  const unsigned long long passes =
      passes_s.empty() ? 5 : parse_reps("--passes", passes_s);
  const std::uint64_t seed = seed_s.empty() ? 1 : parse_reps("--seed", seed_s);
  if (json_path.empty()) json_path = "BENCH_micro.json";

  // Fixture: the densest fig7 corpus page (the Sohu-like limited-viewport
  // site) on the flagship profile, swept by the fig7 swipe ramp.
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(seed);
  std::vector<WebPage> corpus = generate_corpus(device, rng);
  const WebPage* page = &corpus.front();
  for (const WebPage& p : corpus)
    if (p.images.size() > page->images.size()) page = &p;
  const std::vector<MediaObject>& objects = page->images;
  ObjectArena arena(objects);

  ScrollTracker::Params tp;
  tp.scroll = ScrollConfig(device);
  tp.coverage_step_ms = 4.0;
  ScrollTracker tracker(tp);
  const Rect viewport{0, 0, device.screen_w_px, device.screen_h_px};
  std::vector<ScrollPrediction> preds;
  std::vector<SweptRegion> sweeps;
  for (int r = 0; r < 3; ++r) {
    Vec2 v{0, -(3000.0 + 2500.0 * r)};
    preds.push_back(tracker.predict(fling(v), viewport));
    sweeps.push_back(preds.back().sweep());
  }
  const auto bandwidth = BandwidthTrace::constant(500'000);

  std::printf("=== Micro matrix: %zu objects (%s), %llu reps, seed %llu ===\n\n",
              objects.size(), page->site.c_str(), reps,
              static_cast<unsigned long long>(seed));
  std::vector<StageRow> rows;
  bool all_parity_ok = true;

  // ---- coverage: scalar per-object loop vs SoA batch ----
  std::vector<double> frac_scalar(objects.size());
  std::vector<double> frac_batch(objects.size());
  StageRow scalar_row;
  scalar_row.stage = "coverage_scalar";
  scalar_row.ops = reps * sweeps.size() * objects.size();
  {
    scalar_row.ns_per_op = best_ns_per_op(passes, scalar_row.ops, [&] {
      for (unsigned long long rep = 0; rep < reps; ++rep)
        for (const SweptRegion& sweep : sweeps)
          for (std::size_t i = 0; i < objects.size(); ++i)
            frac_scalar[i] = first_overlap_fraction(sweep, objects[i].rect);
    });
    std::uint64_t h = kFnvOffset;
    for (const SweptRegion& sweep : sweeps)
      for (std::size_t i = 0; i < objects.size(); ++i)
        fnv_double(h, first_overlap_fraction(sweep, objects[i].rect));
    scalar_row.fingerprint = h;
  }
  rows.push_back(scalar_row);

  StageRow batch_row;
  batch_row.stage = "coverage_batch";
  batch_row.ops = scalar_row.ops;
  {
    const geom::RectSoA soa = arena.rects();
    batch_row.ns_per_op = best_ns_per_op(passes, batch_row.ops, [&] {
      for (unsigned long long rep = 0; rep < reps; ++rep)
        for (const SweptRegion& sweep : sweeps)
          geom::first_overlap_fraction_batch(sweep, soa, frac_batch.data());
    });
    std::uint64_t h = kFnvOffset;
    for (const SweptRegion& sweep : sweeps) {
      geom::first_overlap_fraction_batch(sweep, soa, frac_batch.data());
      for (std::size_t i = 0; i < objects.size(); ++i) fnv_double(h, frac_batch[i]);
    }
    batch_row.fingerprint = h;
    batch_row.speedup =
        batch_row.ns_per_op > 0 ? scalar_row.ns_per_op / batch_row.ns_per_op : 0;
    batch_row.has_parity = true;
    batch_row.parity_ok = batch_row.fingerprint == scalar_row.fingerprint;
    all_parity_ok = all_parity_ok && batch_row.parity_ok;
  }
  rows.push_back(batch_row);

  // ---- full analyze: AoS vs arena ----
  StageRow analyze_aos;
  analyze_aos.stage = "analyze_aos";
  analyze_aos.ops = reps * preds.size();
  {
    analyze_aos.ns_per_op = best_ns_per_op(passes, analyze_aos.ops, [&] {
      for (unsigned long long rep = 0; rep < reps; ++rep)
        for (const ScrollPrediction& pred : preds) {
          ScrollAnalysis a = tracker.analyze(pred, objects);
          (void)a;
        }
    });
    std::uint64_t h = kFnvOffset;
    for (const ScrollPrediction& pred : preds)
      fnv_analysis(h, tracker.analyze(pred, objects));
    analyze_aos.fingerprint = h;
  }
  rows.push_back(analyze_aos);

  StageRow analyze_arena;
  analyze_arena.stage = "analyze_arena";
  analyze_arena.ops = analyze_aos.ops;
  {
    analyze_arena.ns_per_op = best_ns_per_op(passes, analyze_arena.ops, [&] {
      for (unsigned long long rep = 0; rep < reps; ++rep)
        for (const ScrollPrediction& pred : preds) {
          ScrollAnalysis a = tracker.analyze(pred, arena);
          (void)a;
        }
    });
    std::uint64_t h = kFnvOffset;
    for (const ScrollPrediction& pred : preds)
      fnv_analysis(h, tracker.analyze(pred, arena));
    analyze_arena.fingerprint = h;
    analyze_arena.speedup = analyze_arena.ns_per_op > 0
                                ? analyze_aos.ns_per_op / analyze_arena.ns_per_op
                                : 0;
    analyze_arena.has_parity = true;
    analyze_arena.parity_ok = analyze_arena.fingerprint == analyze_aos.fingerprint;
    all_parity_ok = all_parity_ok && analyze_arena.parity_ok;
  }
  rows.push_back(analyze_arena);

  // ---- per-touch replan: the §3.4.2 production path (analyze + re-solve) ----
  // The knapsack re-solve is layout-insensitive once it has its analysis (it
  // walks candidate lists, not page objects), so timing replan() alone shows
  // parity but no layout speedup. What actually runs on every touch event is
  // analyze -> replan; that composite is the row, and it is what the
  // --assert-speedup gate measures.
  StageRow replan_aos;
  replan_aos.stage = "touch_replan_aos";
  replan_aos.ops = reps * preds.size();
  {
    FlowController fc{FlowController::Params{}};
    for (const ScrollPrediction& pred : preds)
      fc.replan(tracker.analyze(pred, objects), objects, bandwidth);  // warm
    replan_aos.ns_per_op = best_ns_per_op(passes, replan_aos.ops, [&] {
      for (unsigned long long rep = 0; rep < reps; ++rep)
        for (const ScrollPrediction& pred : preds) {
          DownloadPolicy p =
              fc.replan(tracker.analyze(pred, objects), objects, bandwidth);
          (void)p;
        }
    });
    std::uint64_t h = kFnvOffset;
    for (const ScrollPrediction& pred : preds)
      fnv_policy(h, fc.replan(tracker.analyze(pred, objects), objects,
                              bandwidth));
    replan_aos.fingerprint = h;
  }
  rows.push_back(replan_aos);

  StageRow replan_arena;
  replan_arena.stage = "touch_replan_arena";
  replan_arena.ops = replan_aos.ops;
  {
    FlowController fc{FlowController::Params{}};
    for (const ScrollPrediction& pred : preds)
      fc.replan(tracker.analyze(pred, arena), arena, bandwidth);  // warm
    replan_arena.ns_per_op = best_ns_per_op(passes, replan_arena.ops, [&] {
      for (unsigned long long rep = 0; rep < reps; ++rep)
        for (const ScrollPrediction& pred : preds) {
          DownloadPolicy p =
              fc.replan(tracker.analyze(pred, arena), arena, bandwidth);
          (void)p;
        }
    });
    std::uint64_t h = kFnvOffset;
    for (const ScrollPrediction& pred : preds)
      fnv_policy(h, fc.replan(tracker.analyze(pred, arena), arena, bandwidth));
    replan_arena.fingerprint = h;
    replan_arena.speedup = replan_arena.ns_per_op > 0
                               ? replan_aos.ns_per_op / replan_arena.ns_per_op
                               : 0;
    replan_arena.has_parity = true;
    replan_arena.parity_ok = replan_arena.fingerprint == replan_aos.fingerprint;
    all_parity_ok = all_parity_ok && replan_arena.parity_ok;
  }
  rows.push_back(replan_arena);

  // ---- header parse ----
  const std::string request_text = typical_request_text();
  StageRow header_parse;
  header_parse.stage = "header_parse";
  header_parse.ops = reps * 64;
  {
    header_parse.ns_per_op = best_ns_per_op(passes, header_parse.ops, [&] {
      for (unsigned long long op = 0; op < header_parse.ops; ++op) {
        HttpParser parser(HttpParser::Mode::kRequest);
        parser.feed(request_text);
        HttpRequest req = parser.take_request();
        (void)req;
      }
    });
    HttpParser parser(HttpParser::Mode::kRequest);
    parser.feed(request_text);
    HttpRequest req = parser.take_request();
    std::uint64_t h = kFnvOffset;
    fnv_u64(h, req.headers.size());
    for (const auto& entry : req.headers) {
      fnv_bytes(h, entry.name().data(), entry.name().size());
      fnv_bytes(h, entry.value().data(), entry.value().size());
    }
    header_parse.fingerprint = h;
  }
  rows.push_back(header_parse);

  // ---- header lookup (the zero-alloc gate) ----
  StageRow header_lookup;
  header_lookup.stage = "header_lookup";
  header_lookup.ops = reps * 256;
  {
    HttpParser parser(HttpParser::Mode::kRequest);
    parser.feed(request_text);
    const HttpRequest req = parser.take_request();
    static const char* const kNames[] = {"Host", "Connection", "If-None-Match",
                                         "Range", "Accept-Encoding",
                                         "X-Mfhttp-Session", "content-length"};
    std::uint64_t sink = 0;
    const unsigned long long allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    header_lookup.ns_per_op = best_ns_per_op(passes, header_lookup.ops, [&] {
      for (unsigned long long op = 0; op < header_lookup.ops; ++op) {
        for (const char* name : kNames)
          if (auto v = req.headers.get_view(name)) sink += v->size();
        sink += req.headers.contains("Transfer-Encoding") ? 1 : 0;
        sink += static_cast<std::uint64_t>(
            req.headers.content_length().value_or(0));
      }
    });
    const unsigned long long allocs_after =
        g_allocs.load(std::memory_order_relaxed);
    // The alloc delta spans every timing pass; one heap hit anywhere fails
    // (round up so a sub-1/op trickle cannot divide away to zero).
    const long long alloc_delta =
        static_cast<long long>(allocs_after - allocs_before);
    const long long lookup_total =
        static_cast<long long>(header_lookup.ops * passes);
    header_lookup.allocs_per_op =
        (alloc_delta + lookup_total - 1) / lookup_total;
    std::uint64_t h = kFnvOffset;
    fnv_u64(h, sink / header_lookup.ops);
    for (const char* name : kNames)
      if (auto v = req.headers.get_view(name)) fnv_bytes(h, v->data(), v->size());
    header_lookup.fingerprint = h;
  }
  rows.push_back(header_lookup);

  // ---- cache key path: url reconstruction + conditional-request match ----
  StageRow cache_key;
  cache_key.stage = "cache_key";
  cache_key.ops = reps * 64;
  {
    HttpParser parser(HttpParser::Mode::kRequest);
    parser.feed(request_text);
    const HttpRequest req = parser.take_request();
    const std::string etag = "\"a1b2c3d4\"";
    std::uint64_t matches = 0;
    std::string last_key;
    cache_key.ns_per_op = best_ns_per_op(passes, cache_key.ops, [&] {
      matches = 0;
      for (unsigned long long op = 0; op < cache_key.ops; ++op) {
        auto url = req.url();
        std::string key = url ? url->to_string() : req.target;
        const auto inm = req.headers.get_view("If-None-Match");
        if (inm && *inm == etag) ++matches;
        last_key = std::move(key);
      }
    });
    std::uint64_t h = kFnvOffset;
    fnv_bytes(h, last_key.data(), last_key.size());
    fnv_u64(h, matches / cache_key.ops);
    cache_key.fingerprint = h;
  }
  rows.push_back(cache_key);

  // ---- report ----
  const bool zero_alloc_lookups = header_lookup.allocs_per_op == 0;
  std::printf("%19s %14s %10s %8s %20s %7s %6s\n", "stage", "ops", "ns/op",
              "speedup", "fingerprint", "allocs", "parity");
  for (const StageRow& row : rows) {
    char speedup_s[24] = "-";
    if (row.speedup > 0)
      std::snprintf(speedup_s, sizeof(speedup_s), "%.2fx", row.speedup);
    char allocs_s[24] = "-";
    if (row.allocs_per_op >= 0)
      std::snprintf(allocs_s, sizeof(allocs_s), "%lld", row.allocs_per_op);
    std::printf("%19s %14llu %10.1f %8s %020llx %7s %6s\n", row.stage.c_str(),
                row.ops, row.ns_per_op, speedup_s,
                static_cast<unsigned long long>(row.fingerprint), allocs_s,
                row.has_parity ? (row.parity_ok ? "yes" : "NO") : "-");
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("micro_matrix");
  w.key("seed").value(static_cast<unsigned long long>(seed));
  w.key("reps").value(reps);
  w.key("site").value(page->site);
  w.key("objects").value(objects.size());
  w.key("all_parity_ok").value(all_parity_ok);
  w.key("zero_alloc_lookups").value(zero_alloc_lookups);
  w.key("rows").begin_array();
  for (const StageRow& row : rows) {
    w.begin_object();
    w.key("stage").value(row.stage);
    w.key("ops").value(row.ops);
    w.key("ns_per_op").value(row.ns_per_op);
    if (row.speedup > 0) w.key("speedup").value(row.speedup);
    // Hex string: fingerprints are 64-bit and JSON numbers are doubles.
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(row.fingerprint));
    w.key("fingerprint").value(fp);
    if (row.allocs_per_op >= 0) w.key("allocs_per_op").value(row.allocs_per_op);
    if (row.has_parity) w.key("parity_ok").value(row.parity_ok);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) CliOptions::fail("--json", json_path, "cannot open for writing");
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!all_parity_ok) {
    std::fprintf(stderr, "FAIL: a SoA stage diverged from its scalar twin\n");
    return 1;
  }
  if (!zero_alloc_lookups) {
    std::fprintf(stderr, "FAIL: header lookups allocated (%lld allocs/op)\n",
                 header_lookup.allocs_per_op);
    return 1;
  }
  if (!assert_speedup_s.empty()) {
    char* end = nullptr;
    const double want = std::strtod(assert_speedup_s.c_str(), &end);
    if (end == nullptr || *end != '\0' || want <= 0)
      CliOptions::fail("--assert-speedup", assert_speedup_s,
                       "expected a positive number");
    const double batch = batch_row.speedup;
    const double replan = replan_arena.speedup;
    if (batch < want || replan < want) {
      std::fprintf(stderr,
                   "FAIL: speedup gate: coverage_batch %.2fx, "
                   "touch_replan_arena %.2fx, required %.2fx\n",
                   batch, replan, want);
      return 1;
    }
    std::printf(
        "speedup gate passed: coverage_batch %.2fx, touch_replan_arena "
        "%.2fx >= %.2fx\n",
        batch, replan, want);
  }
  return 0;
}
