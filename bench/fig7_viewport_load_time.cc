// Figure 7 — viewport load time per website, baseline browser vs MF-HTTP.
//
// Each browsing session is a default viewport load followed by one random
// scrolling touch (q = 0, §6.1.1). The paper reports an average viewport
// load time reduction of 44.3% across the limited-viewport sites; the
// reproduction should land in the same band.
#include <cstdio>

#include "cli/standard_options.h"
#include "obs/metrics.h"
#include "util/stats.h"
#include "web/corpus.h"
#include "web/experiment.h"

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  using namespace mfhttp;
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  auto corpus = generate_corpus(device, rng);

  const int kSessionsPerSite = 3;  // repeated sessions, varied scroll seeds
  std::printf("=== Fig. 7: viewport load time, baseline vs MF-HTTP ===\n");
  std::printf("(2 MB/s shared client WLAN, one random scroll per session,\n"
              " %d sessions per site)\n\n", kSessionsPerSite);
  std::printf("%-18s %14s %14s %12s\n", "site", "baseline(ms)", "mf-http(ms)",
              "reduction");

  RunningStats limited_reduction;
  RunningStats all_reduction;
  for (const WebPage& page : corpus) {
    RunningStats base_ms, mf_ms;
    for (int session = 0; session < kSessionsPerSite; ++session) {
      BrowsingSessionConfig cfg;
      cfg.device = device;
      cfg.fill_sample_ms = 0;
      cfg.seed = 1000 + static_cast<std::uint64_t>(page.site.size()) +
                 static_cast<std::uint64_t>(session) * 7919;
      cfg.swipe_speed_px_s = 3000 + 2500 * session;  // vary scroll intensity
      cfg.enable_mfhttp = false;
      base_ms.add(static_cast<double>(
          run_browsing_session(page, cfg).initial_viewport_load_ms));
      cfg.enable_mfhttp = true;
      mf_ms.add(static_cast<double>(
          run_browsing_session(page, cfg).initial_viewport_load_ms));
    }
    double reduction =
        base_ms.mean() > 0 ? 1.0 - mf_ms.mean() / base_ms.mean() : 0.0;
    bool limited = page.viewport_ratio(device.screen_h_px) < 1.0;
    if (limited) limited_reduction.add(reduction);
    all_reduction.add(reduction);
    std::printf("%-18s %14.0f %14.0f %11.1f%%\n", page.site.c_str(),
                base_ms.mean(), mf_ms.mean(), reduction * 100.0);
  }
  std::printf("\nmean reduction, all 25 sites:           %5.1f%%  (paper: 44.3%%)\n",
              all_reduction.mean() * 100.0);
  std::printf("mean reduction, limited-viewport sites: %5.1f%%\n",
              limited_reduction.mean() * 100.0);
  std::printf("(full-size-viewport sites have nothing to block, diluting the\n"
              " all-sites average exactly as in the paper's Fig. 7)\n");
  return 0;
}
