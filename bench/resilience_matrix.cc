// Resilience matrix — what faults cost, and what the resilience layer buys
// back (ISSUE 2 acceptance scenario).
//
// Browsing sessions run under the lossy-cellular fault plan (repeated 3-s
// link outages, 10% origin 5xx/429, abrupt closes, transfer stalls) with the
// resilience stack (retries + per-origin breaker + deferred-queue watchdog +
// blocklist degradation) on and off, for both the MF-HTTP and baseline arms.
// The `stranded` column is the negative result: with resilience off, the
// MF-HTTP arm leaves deferred requests parked at the proxy forever.
//
// A second table shows the 360°-video schedulers under sustained bandwidth
// collapses: tile scheduling keeps playback alive where whole-frame DASH
// stalls, and hysteretic survival mode stops spending on invisible tiles
// for as long as the collapse lasts.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "fault/fault_plan.h"
#include "cli/standard_options.h"
#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "obs/metrics.h"
#include "video/session.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace {

using namespace mfhttp;

// Per-run deltas of the fault/resilience counters (the registry accumulates
// across the whole process).
struct FaultCounters {
  std::uint64_t retries, timeouts, breaker_opened, fast_fails, defer_timeouts,
      origin_errors, degraded_entries, proxy_failed;

  static std::uint64_t get(const char* name) {
    return obs::metrics().counter(name).value();
  }
  static FaultCounters snapshot() {
    return {get("http.resilient.retries_total"),
            get("http.resilient.timeouts_total"),
            get("http.breaker.opened_total"),
            get("http.resilient.fast_fails_total"),
            get("http.proxy.defer_timeouts_total"),
            get("fault.origin.errors_total"),
            get("fault.degraded.web.blocklist.entries_total"),
            get("http.proxy.failed_total")};
  }
  FaultCounters delta(const FaultCounters& before) const {
    return {retries - before.retries,
            timeouts - before.timeouts,
            breaker_opened - before.breaker_opened,
            fast_fails - before.fast_fails,
            defer_timeouts - before.defer_timeouts,
            origin_errors - before.origin_errors,
            degraded_entries - before.degraded_entries,
            proxy_failed - before.proxy_failed};
  }
};

void browsing_table(const WebPage& page, const fault::FaultPlan* plan) {
  std::printf("%-10s %-10s %8s %8s %8s %9s %9s %7s %7s %7s %7s %7s\n", "arm",
              "resil.", "init ms", "final ms", "MB", "imgs", "stranded",
              "retry", "tmo", "brk", "wdog", "5xx");
  for (bool enable_mfhttp : {false, true}) {
    for (bool resilience : {false, true}) {
      BrowsingSessionConfig config;
      config.enable_mfhttp = enable_mfhttp;
      config.fault_plan = plan;
      config.enable_resilience = resilience;
      config.fill_sample_ms = 0;
      const FaultCounters before = FaultCounters::snapshot();
      BrowsingSessionResult r = run_browsing_session(page, config);
      const FaultCounters d = FaultCounters::snapshot().delta(before);
      std::printf("%-10s %-10s %8lld %8lld %8.2f %6zu/%-2zu %9zu %7llu %7llu "
                  "%7llu %7llu %7llu\n",
                  enable_mfhttp ? "mf-http" : "baseline",
                  resilience ? "on" : "off",
                  static_cast<long long>(r.initial_viewport_load_ms),
                  static_cast<long long>(r.final_viewport_load_ms),
                  static_cast<double>(r.bytes_downloaded) / 1e6,
                  r.images_completed, r.images_total, r.stranded_deferred,
                  static_cast<unsigned long long>(d.retries),
                  static_cast<unsigned long long>(d.timeouts),
                  static_cast<unsigned long long>(d.breaker_opened),
                  static_cast<unsigned long long>(d.defer_timeouts),
                  static_cast<unsigned long long>(d.origin_errors));
    }
  }
}

void video_table() {
  const DeviceProfile device = DeviceProfile::nexus6();
  VideoAsset::Params vp;
  vp.name = "video1";
  vp.duration_s = 60;
  VideoAsset video(vp);

  // One volunteer's drag-heavy viewing session (same as the Fig. 9 bench).
  ViewportTrace::Params tp;
  tp.device = device;
  ViewportTrace trace(tp);
  VideoDragSource source(device, {}, Rng(17));
  GestureRecognizer recognizer(device);
  TimeMs now = 0;
  while (now < 60'000) {
    TouchTrace t = source.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = recognizer.on_touch_event(ev)) trace.add_gesture(*g);
  }

  // Long bandwidth collapses (to 5% of nominal) carve the trace: deeper than
  // the player's 1-s carry buffer can bridge, but shallow enough that a
  // visible-tiles-only survival plan still fits where full-frame plans
  // cannot. Sharp outages are less interesting here — nothing fits during
  // dead air, and budgets refill the second they end.
  fault::FaultPlan vplan;
  vplan.name = "cellular-collapse";
  fault::LinkFaultWindow collapse;
  collapse.kind = fault::LinkFaultWindow::Kind::kCollapse;
  collapse.at_ms = 5000;
  collapse.duration_ms = 10'000;
  collapse.repeat = 3;
  collapse.period_ms = 15'000;
  collapse.factor = 0.03;
  vplan.link.push_back(collapse);
  BandwidthTrace faulted = vplan.shape(BandwidthTrace::constant(kb_per_sec(1000)));

  GreedyDashScheduler greedy;
  MfHttpTileScheduler tiles;
  struct Row {
    const char* label;
    const TileScheduler* scheduler;
    int degrade_after_na;
  };
  const Row rows[] = {
      {"greedy whole-frame", &greedy, 0},
      {"mf-http tiles", &tiles, 0},
      {"mf-http + survival", &tiles, 2},
  };

  std::printf("%-22s %8s %8s %10s %8s\n", "policy", "NA s", "degr s", "MB",
              "mean q");
  for (const Row& row : rows) {
    StreamingSessionParams params;
    params.carry_cap_s = 0.25;  // small player buffer — can't ride out 10 s
    params.degrade_after_na = row.degrade_after_na;
    params.recover_after = 4;  // don't pop back to full-frame mid-collapse
    StreamingSessionResult r =
        run_streaming_session(video, trace, faulted, *row.scheduler, params);
    int degraded_s = 0;
    for (const SegmentRecord& s : r.segments) degraded_s += s.degraded ? 1 : 0;
    std::map<int, int> quality = r.seconds_at_quality();
    auto na = quality.find(-1);
    std::printf("%-22s %8d %8d %10.2f %8.2f\n", row.label,
                na != quality.end() ? na->second : 0, degraded_s,
                static_cast<double>(r.total_bytes) / 1e6,
                r.mean_resolution(video));
  }
  std::printf("\n(the tile scheduler's viewport-only fallback keeps playback alive\n"
              " where whole-frame DASH stalls; hysteretic survival mode additionally\n"
              " stops spending on invisible tiles while the collapse lasts)\n");
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);
  const DeviceProfile device = DeviceProfile::nexus6();
  Rng rng(42);
  WebPage page;
  for (const SiteSpec& spec : alexa25_specs()) {
    Rng r = rng.fork();
    if (spec.name == "qq") page = generate_page(spec, device, r);
  }

  // --fault-plan swaps in a caller-supplied plan; default is the canonical
  // lossy-cellular stress plan.
  const fault::FaultPlan plan = fault::global_plan() != nullptr
                                    ? *fault::global_plan()
                                    : fault::FaultPlan::lossy_cellular();

  std::printf("=== Resilience matrix: browsing under '%s' ===\n", plan.name.c_str());
  std::printf("(repeated 3-s outages, 10%% origin 5xx/429, stalls, abrupt closes;\n"
              " wdog = deferred-queue watchdog firings; stranded = requests still\n"
              " parked at session end — the cost of running without resilience)\n\n");
  browsing_table(page, &plan);

  // An explicit empty plan, not nullptr: nullptr would fall back to the
  // ambient global_plan() and silently fault the control rows.
  const fault::FaultPlan no_faults;
  std::printf("\n=== Control: same sessions, no faults ===\n\n");
  browsing_table(page, &no_faults);

  std::printf("\n=== 360-video survival mode under bandwidth collapses ===\n\n");
  video_table();
  return 0;
}
