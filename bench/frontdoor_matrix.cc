// Front-door matrix — the sharded serving path's acceptance artifact
// (DESIGN.md §13): sessions x shards -> sessions/sec, shed rate, cache hit
// ratio, and the P99 touch-to-policy tail, with two hard determinism gates:
//
//   * byte identity — for every session count, --shards 1 run through the
//     threaded producer/consumer path must emit deterministic_json() bytes
//     identical to the historical unsharded inline path. A shard layer that
//     changes answers at N=1 is a bug, not an optimization.
//   * routing stability (--assert-routing) — the session -> shard table is
//     recomputed after every row and its fingerprint must match the run's;
//     the TSan smoke leans on this to prove routing never races.
//
// Every (sessions, shards) row replays the identical seeded touch timeline;
// speedup is sessions/sec relative to that session count's shards=1 row.
//
//   frontdoor_matrix [--sessions 10000,100000] [--shards 1,2,4]
//                    [--touches N] [--universe N] [--seed S]
//                    [--json BENCH_frontdoor.json]
//                    [--assert-speedup X]   # fail unless best speedup >= X
//                    [--assert-routing]     # fail on any routing divergence
//
// --assert-speedup is for CI's multi-core perf jobs; on a single-core
// container the matrix still proves byte identity and routing stability,
// but wall-clock speedup there is noise, not signal.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cli/standard_options.h"
#include "http/frontdoor.h"
#include "util/json.h"

namespace {

using namespace mfhttp;

struct Row {
  std::size_t sessions = 0;
  std::size_t shards = 1;
  double wall_ms = 0;
  double sessions_per_sec = 0;
  double events_per_sec = 0;
  double speedup = 1.0;  // vs this session count's shards=1 row
  double shed_rate = 0;
  double cache_hit_ratio = 0;
  double p50_t2p_us = 0;
  double p99_t2p_us = 0;
  std::size_t requests = 0;
  std::size_t rejected = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t routing_fp = 0;
  bool byte_identical = true;  // shards=1 threaded vs unsharded inline
  bool routing_stable = true;
};

std::vector<std::size_t> parse_list(const char* flag, const std::string& s) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(pos, comma - pos);
    char* end = nullptr;
    unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v == 0)
      CliOptions::fail(flag, s, "expected comma-separated positive ints");
    out.push_back(static_cast<std::size_t>(v));
    pos = comma + 1;
  }
  if (out.empty()) CliOptions::fail(flag, s, "expected at least one value");
  return out;
}

std::size_t parse_size(const char* flag, const std::string& s) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0)
    CliOptions::fail(flag, s, "expected a positive integer");
  return static_cast<std::size_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::string sessions_s, shards_s, touches_s, universe_s, arrival_s, seed_s,
      json_path, assert_speedup_s;
  bool assert_routing = false;
  cli::StandardOptions standard_options(argc, argv, [&](CliOptions& options) {
    options
        .add_string("--sessions", "LIST",
                    "comma-separated session counts (default 10000)",
                    &sessions_s)
        .add_string("--shards", "LIST",
                    "comma-separated shard counts (default 1,2,4)", &shards_s)
        .add_string("--touches", "N", "touches per session (default 4)",
                    &touches_s)
        .add_string("--universe", "N", "URL universe size (default 4096)",
                    &universe_s)
        .add_string("--arrival", "R",
                    "session arrivals per second (default 2000)", &arrival_s)
        .add_string("--seed", "S", "master seed (default 1)", &seed_s)
        .add_string("--json", "PATH",
                    "result document (default BENCH_frontdoor.json)",
                    &json_path)
        .add_string("--assert-speedup", "X",
                    "exit 1 unless best speedup >= X (CI perf gate)",
                    &assert_speedup_s)
        .add_flag("--assert-routing",
                  "exit 1 if the routing table ever diverges", &assert_routing);
  });

  FrontDoorParams params;
  if (!seed_s.empty())
    params.load.seed = static_cast<std::uint64_t>(parse_size("--seed", seed_s));
  if (!touches_s.empty())
    params.load.touches_per_session = parse_size("--touches", touches_s);
  if (!universe_s.empty())
    params.load.url_universe = parse_size("--universe", universe_s);
  if (!arrival_s.empty())
    params.load.session_arrival_per_s =
        static_cast<double>(parse_size("--arrival", arrival_s));
  if (json_path.empty()) json_path = "BENCH_frontdoor.json";
  const std::vector<std::size_t> session_counts =
      sessions_s.empty() ? std::vector<std::size_t>{10000}
                         : parse_list("--sessions", sessions_s);
  const std::vector<std::size_t> shard_counts =
      shards_s.empty() ? std::vector<std::size_t>{1, 2, 4}
                       : parse_list("--shards", shards_s);

  std::printf(
      "=== Front-door matrix: %zu touches/session, universe %zu, seed %llu "
      "===\n",
      params.load.touches_per_session, params.load.url_universe,
      static_cast<unsigned long long>(params.load.seed));
  std::printf(
      "(hardware threads: %u; every shards=1 row is byte-checked against the\n"
      " unsharded inline path before it is reported)\n\n",
      std::thread::hardware_concurrency());
  std::printf("%9s %7s %10s %12s %8s %7s %7s %12s %6s\n", "sessions", "shards",
              "wall ms", "sess/s", "speedup", "shed", "hit", "p99 t2p us",
              "ident");

  std::vector<Row> rows;
  double best_speedup = 0;
  bool have_baseline = true;  // every session count had a shards=1 row
  bool all_identical = true;
  bool routing_ok = true;

  for (std::size_t sessions : session_counts) {
    params.load.sessions = sessions;
    params.apply_scaled_admission();

    // The historical unsharded path: one box, caller thread, no queues.
    // Its deterministic document is the byte-identity reference.
    params.shards = 1;
    const FrontDoorResult inline_ref =
        run_front_door(params, FrontDoorMode::kInline);
    const std::string reference_doc = inline_ref.deterministic_json();

    const std::size_t first_row = rows.size();
    for (std::size_t shards : shard_counts) {
      params.shards = shards;
      const FrontDoorResult r = run_front_door(params, FrontDoorMode::kThreaded);

      Row row;
      row.sessions = sessions;
      row.shards = shards;
      row.wall_ms = r.wall_ms;
      row.sessions_per_sec = r.sessions_per_sec;
      row.events_per_sec = r.events_per_sec;
      row.shed_rate = r.shed_rate;
      row.cache_hit_ratio = r.cache_hit_ratio;
      row.p50_t2p_us = r.p50_touch_to_policy_us;
      row.p99_t2p_us = r.p99_touch_to_policy_us;
      row.requests = r.requests;
      row.rejected = r.rejected;
      row.fingerprint = r.fingerprint;
      row.routing_fp = r.routing_fp;
      if (shards == 1) row.byte_identical = r.deterministic_json() == reference_doc;
      // Recompute the routing table from scratch: a pure function of
      // (session, shards) must land every session on the same shard again.
      row.routing_stable =
          routing_fingerprint(sessions, shards) == r.routing_fp;

      all_identical = all_identical && row.byte_identical;
      routing_ok = routing_ok && row.routing_stable;
      rows.push_back(row);
    }

    // Speedup is strictly relative to this session count's shards=1 row,
    // wherever it appears in the --shards list. Without a shards=1 row the
    // ratio has no baseline: speedups stay 0 and the --assert-speedup gate
    // refuses to pass below.
    double base_sessions_per_sec = 0;
    for (std::size_t i = first_row; i < rows.size(); ++i)
      if (rows[i].shards == 1) base_sessions_per_sec = rows[i].sessions_per_sec;
    have_baseline = have_baseline && base_sessions_per_sec > 0;

    for (std::size_t i = first_row; i < rows.size(); ++i) {
      Row& row = rows[i];
      row.speedup = base_sessions_per_sec > 0
                        ? row.sessions_per_sec / base_sessions_per_sec
                        : 0;
      best_speedup = std::max(best_speedup, row.speedup);
      std::printf("%9zu %7zu %10.1f %12.0f %7.2fx %6.1f%% %6.1f%% %12.1f %6s\n",
                  row.sessions, row.shards, row.wall_ms, row.sessions_per_sec,
                  row.speedup, row.shed_rate * 100.0,
                  row.cache_hit_ratio * 100.0, row.p99_t2p_us,
                  row.byte_identical && row.routing_stable ? "yes" : "NO");
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("frontdoor_matrix");
  w.key("touches_per_session").value(params.load.touches_per_session);
  w.key("url_universe").value(params.load.url_universe);
  w.key("seed").value(static_cast<unsigned long long>(params.load.seed));
  w.key("hardware_threads")
      .value(static_cast<unsigned long long>(std::thread::hardware_concurrency()));
  w.key("byte_identical_at_one_shard").value(all_identical);
  w.key("routing_stable").value(routing_ok);
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.key("sessions").value(row.sessions);
    w.key("shards").value(row.shards);
    w.key("wall_ms").value(row.wall_ms);
    w.key("sessions_per_sec").value(row.sessions_per_sec);
    w.key("events_per_sec").value(row.events_per_sec);
    w.key("speedup").value(row.speedup);
    w.key("shed_rate").value(row.shed_rate);
    w.key("cache_hit_ratio").value(row.cache_hit_ratio);
    w.key("p50_touch_to_policy_us").value(row.p50_t2p_us);
    w.key("p99_touch_to_policy_us").value(row.p99_t2p_us);
    w.key("requests").value(row.requests);
    w.key("rejected").value(row.rejected);
    w.key("fingerprint").value(static_cast<unsigned long long>(row.fingerprint));
    w.key("routing_fingerprint")
        .value(static_cast<unsigned long long>(row.routing_fp));
    w.key("byte_identical").value(row.byte_identical);
    w.key("routing_stable").value(row.routing_stable);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr)
    CliOptions::fail("--json", json_path, "cannot open for writing");
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: shards=1 threaded diverged from the unsharded path\n");
    return 1;
  }
  if (assert_routing && !routing_ok) {
    std::fprintf(stderr, "FAIL: session->shard routing diverged\n");
    return 1;
  }
  if (!assert_speedup_s.empty()) {
    char* end = nullptr;
    const double want = std::strtod(assert_speedup_s.c_str(), &end);
    if (end == nullptr || *end != '\0' || want <= 0)
      CliOptions::fail("--assert-speedup", assert_speedup_s,
                       "expected a positive number");
    if (!have_baseline) {
      std::fprintf(stderr,
                   "FAIL: --assert-speedup needs a shards=1 baseline row; "
                   "add 1 to --shards\n");
      return 1;
    }
    if (best_speedup < want) {
      std::fprintf(stderr, "FAIL: best speedup %.2fx < required %.2fx\n",
                   best_speedup, want);
      return 1;
    }
    std::printf("speedup gate passed: %.2fx >= %.2fx\n", best_speedup, want);
  }
  return 0;
}
