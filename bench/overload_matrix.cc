// Overload matrix — what admission control buys when many sessions share
// one middleware box (ISSUE 3 acceptance scenario).
//
// Sweeps session count x per-session arrival rate x protection arm over the
// identical seeded open-loop arrival trace:
//
//   none    — every request is served; the shared downlink degrades for
//             everyone and tail latency explodes,
//   bounded — bounded queues + the in-service concurrency cap (no rate
//             limiting, no brownout),
//   full    — token buckets, priority guards, concurrency caps, and the
//             brownout supervisor shedding speculative work first.
//
// Columns: goodput counts only bytes that arrived within their priority
// class's deadline (late bytes are waste, not goodput); P99 viewport is the
// exact 99th percentile load time of completed viewport-class requests;
// shed% is the fraction of requests explicitly bounced (429/503). The
// stranded column must read 0 in every arm: a request may complete or be
// rejected, but never hang forever.
#include <cstdio>

#include "cli/standard_options.h"
#include "sim/multi_session.h"

namespace {

using namespace mfhttp;
using overload::MultiSessionConfig;
using overload::MultiSessionResult;
using overload::Protection;

void row(const MultiSessionResult& r) {
  std::printf("%4d %6.1f %-8s %6zu %6zu %6zu %6zu %8zu %9.1f %9.0f %9.0f %6.1f%% %5d\n",
              r.sessions, r.rate_per_session_per_s, r.protection.c_str(),
              r.requests, r.completed, r.rejected + r.shed, r.failed, r.stranded,
              r.goodput_bytes_per_s / 1000.0, r.p50_viewport_ms, r.p99_viewport_ms,
              100.0 * r.shed_ratio, r.max_brownout_level);
}

}  // namespace

int main(int argc, char** argv) {
  mfhttp::cli::StandardOptions standard_options(argc, argv);

  std::printf("=== Overload matrix: N sessions, one proxy, shared downlink ===\n");
  std::printf("(open-loop Poisson arrivals; goodput counts on-deadline bytes only;\n"
              " bounce = rejected + shed; stranded must be 0 in every arm)\n\n");
  std::printf("%4s %6s %-8s %6s %6s %6s %6s %8s %9s %9s %9s %7s %5s\n", "sess",
              "rate/s", "arm", "reqs", "done", "bounce", "fail", "stranded",
              "goodKB/s", "p50vp ms", "p99vp ms", "shed%", "bmax");

  for (int sessions : {8, 32, 64}) {
    for (double rate : {1.5}) {
      for (Protection arm :
           {Protection::kNone, Protection::kBoundedOnly, Protection::kFull}) {
        MultiSessionConfig config;
        config.sessions = sessions;
        config.rate_per_session_per_s = rate;
        config.protection = arm;
        row(run_multi_session(config));
      }
      std::printf("\n");
    }
  }

  // The saturation point the acceptance criterion names: 64 sessions at
  // double rate, an order of magnitude past the downlink.
  std::printf("--- deep overload: 64 sessions, 3.0 req/s each ---\n");
  for (Protection arm :
       {Protection::kNone, Protection::kBoundedOnly, Protection::kFull}) {
    MultiSessionConfig config;
    config.sessions = 64;
    config.rate_per_session_per_s = 3.0;
    config.protection = arm;
    row(run_multi_session(config));
  }

  std::printf(
      "\n(the full arm keeps viewport-class tail latency flat by spending the\n"
      " downlink on work that can still meet its deadline; the unprotected arm\n"
      " serves everything eventually and nothing on time)\n");

  // Determinism gate: the same seeded config must reproduce the identical
  // result document — including every per-session shard — on a repeat run.
  // Aggregation is keyed by session id, so completion order can't leak in.
  MultiSessionConfig repeat;
  repeat.sessions = 32;
  repeat.protection = Protection::kFull;
  const std::string first = run_multi_session(repeat).to_json();
  const std::string second = run_multi_session(repeat).to_json();
  if (first != second) {
    std::fprintf(stderr,
                 "FAIL: repeated run of the same seed diverged\n%s\nvs\n%s\n",
                 first.c_str(), second.c_str());
    return 1;
  }
  std::printf("\ndeterminism gate passed: repeat run byte-identical "
              "(%zu sessions, per-session shards included)\n",
              static_cast<std::size_t>(repeat.sessions));
  return 0;
}
