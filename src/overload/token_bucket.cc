#include "overload/token_bucket.h"

#include <algorithm>

#include "util/check.h"

namespace mfhttp::overload {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst) {
  MFHTTP_CHECK(rate_per_s <= 0 || burst > 0);
}

void TokenBucket::refill(TimeMs now_ms) {
  if (now_ms <= last_ms_) return;  // time never runs backwards in the sim
  tokens_ = std::min(
      burst_, tokens_ + rate_per_s_ * static_cast<double>(now_ms - last_ms_) / 1000.0);
  last_ms_ = now_ms;
}

bool TokenBucket::try_take(TimeMs now_ms, double cost) {
  if (!enabled()) return true;
  refill(now_ms);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

double TokenBucket::level(TimeMs now_ms) {
  if (!enabled()) return burst_;
  refill(now_ms);
  return tokens_;
}

}  // namespace mfhttp::overload
