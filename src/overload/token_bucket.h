// Deterministic token bucket driven by simulated time.
//
// Tokens accrue continuously at `rate_per_s` up to `burst`; a request costs
// one token (or a caller-chosen cost). The bucket never reads a clock — the
// caller passes simulated `now_ms` — so admit/reject traces are exactly as
// reproducible as the simulation driving them. A rate of 0 disables the
// bucket entirely (always admits), which is how the bounded-only protection
// arm runs with queue bounds but no rate limiting.
#pragma once

#include "util/types.h"

namespace mfhttp::overload {

class TokenBucket {
 public:
  // rate_per_s: sustained tokens per second; burst: bucket capacity (also
  // the initial fill). rate_per_s <= 0 disables the bucket.
  TokenBucket(double rate_per_s, double burst);

  bool enabled() const { return rate_per_s_ > 0; }

  // Refill to `now_ms`, then take `cost` tokens if available. Disabled
  // buckets always succeed.
  bool try_take(TimeMs now_ms, double cost = 1.0);

  // Refill to `now_ms` and report the current fill (== burst when disabled).
  double level(TimeMs now_ms);

  double burst() const { return burst_; }
  double rate_per_s() const { return rate_per_s_; }

 private:
  void refill(TimeMs now_ms);

  double rate_per_s_;
  double burst_;
  double tokens_;
  TimeMs last_ms_ = 0;
};

}  // namespace mfhttp::overload
