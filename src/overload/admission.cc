#include "overload/admission.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp::overload {

namespace {

obs::Counter& admitted_counter() {
  static obs::Counter& c = obs::metrics().counter("overload.admission.admitted_total");
  return c;
}

obs::Counter& rejected_counter() {
  static obs::Counter& c = obs::metrics().counter("overload.admission.rejected_total");
  return c;
}

obs::Counter& shed_counter() {
  static obs::Counter& c = obs::metrics().counter("overload.admission.shed_total");
  return c;
}

}  // namespace

const char* to_string(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kNormal: return "normal";
    case BrownoutLevel::kNoSpeculation: return "no-speculation";
    case BrownoutLevel::kLowResOnly: return "low-res-only";
    case BrownoutLevel::kShed: return "shed";
  }
  return "?";
}

AdmissionParams shard_slice(const AdmissionParams& params, std::size_t shard,
                            std::size_t shards) {
  MFHTTP_CHECK(shards > 0 && shard < shards);
  if (shards == 1) return params;
  const double n = static_cast<double>(shards);
  // Positive integer bounds split ceil-wise so no shard's bound rounds to
  // zero (a shard that can admit nothing is a routing black hole);
  // non-positive sentinels ("unlimited") pass through untouched.
  const auto split = [shards](int bound) {
    if (bound <= 0) return bound;
    return static_cast<int>((static_cast<std::size_t>(bound) + shards - 1) /
                            shards);
  };
  AdmissionParams out = params;
  out.global_rate_per_s = params.global_rate_per_s / n;
  out.global_burst = params.global_burst / n;
  out.max_inflight_upstream = split(params.max_inflight_upstream);
  out.max_dispatch_queue = split(params.max_dispatch_queue);
  out.max_deferred_global = split(params.max_deferred_global);
  out.seed = splitmix64(params.seed ^ splitmix64(shard + 1));
  return out;
}

AdmissionParams failover_slice(const AdmissionParams& params, std::size_t shard,
                               std::size_t shards, std::size_t healthy) {
  MFHTTP_CHECK(shards > 0 && shard < shards);
  MFHTTP_CHECK(healthy > 0 && healthy <= shards);
  if (shards == 1) return params;
  const double n = static_cast<double>(healthy);
  const auto split = [healthy](int bound) {
    if (bound <= 0) return bound;
    return static_cast<int>((static_cast<std::size_t>(bound) + healthy - 1) /
                            healthy);
  };
  AdmissionParams out = params;
  out.global_rate_per_s = params.global_rate_per_s / n;
  out.global_burst = params.global_burst / n;
  out.max_inflight_upstream = split(params.max_inflight_upstream);
  out.max_dispatch_queue = split(params.max_dispatch_queue);
  out.max_deferred_global = split(params.max_deferred_global);
  // Keyed to the original shard index (NOT the healthy-cohort rank): the
  // jitter stream must survive re-slicing without a discontinuity.
  out.seed = splitmix64(params.seed ^ splitmix64(shard + 1));
  return out;
}

AdmissionController::AdmissionController(AdmissionParams params)
    : params_(params),
      rng_(params.seed),
      global_bucket_(params.global_rate_per_s, params.global_burst) {}

void AdmissionController::apply_budget(const AdmissionParams& sliced) {
  params_.global_rate_per_s = sliced.global_rate_per_s;
  params_.global_burst = sliced.global_burst;
  params_.max_inflight_upstream = sliced.max_inflight_upstream;
  params_.max_dispatch_queue = sliced.max_dispatch_queue;
  params_.max_deferred_global = sliced.max_deferred_global;
  global_bucket_ = TokenBucket(sliced.global_rate_per_s, sliced.global_burst);
}

TokenBucket& AdmissionController::session_bucket(const std::string& session) {
  auto it = session_buckets_.find(session);
  if (it == session_buckets_.end()) {
    it = session_buckets_
             .emplace(session,
                      TokenBucket(params_.session_rate_per_s, params_.session_burst))
             .first;
  }
  return it->second;
}

Decision AdmissionController::on_request(const std::string& session, int priority,
                                         TimeMs now_ms) {
  // Brownout shedding first: under pressure the cheapest thing to do with a
  // condemned request is to never touch a bucket or a queue on its behalf.
  // Level 1 sheds speculative work, level 2 also transient, level 3 also
  // viewport; structural requests always pass this gate.
  const int shed_below = static_cast<int>(brownout_);
  if (priority < shed_below && priority < kPriorityStructure) {
    shed_counter().inc();
    return {Verdict::kShed, "brownout"};
  }

  // Priority guard: low-priority work may not drain the global bucket's
  // reserve. The threshold gets a small seeded jitter so the cutoff dithers
  // instead of synchronising every session at one hard level.
  if (global_bucket_.enabled() && priority < kPriorityViewport) {
    const double guard =
        priority <= kPrioritySpeculative ? params_.speculative_guard
                                         : params_.transient_guard;
    if (guard > 0) {
      const double jitter =
          params_.guard_jitter > 0
              ? rng_.uniform(-params_.guard_jitter, params_.guard_jitter)
              : 0.0;
      const double floor = (guard + jitter) * global_bucket_.burst();
      if (global_bucket_.level(now_ms) < floor) {
        rejected_counter().inc();
        return {Verdict::kReject, "priority_guard"};
      }
    }
  }

  if (!session_bucket(session).try_take(now_ms)) {
    rejected_counter().inc();
    return {Verdict::kReject, "session_rate"};
  }
  if (!global_bucket_.try_take(now_ms)) {
    rejected_counter().inc();
    return {Verdict::kReject, "global_rate"};
  }

  admitted_counter().inc();
  return {Verdict::kAdmit, ""};
}

bool AdmissionController::try_defer(const std::string& session) {
  if (params_.max_deferred_global > 0 && deferred_total_ >= params_.max_deferred_global) {
    return false;
  }
  int& per_session = deferred_by_session_[session];
  if (params_.max_deferred_per_session > 0 &&
      per_session >= params_.max_deferred_per_session) {
    return false;
  }
  ++per_session;
  ++deferred_total_;
  return true;
}

void AdmissionController::on_undefer(const std::string& session) {
  auto it = deferred_by_session_.find(session);
  if (it == deferred_by_session_.end() || it->second <= 0) return;
  --it->second;
  --deferred_total_;
}

bool AdmissionController::try_acquire_upstream() {
  if (params_.max_inflight_upstream > 0 &&
      inflight_upstream_ >= params_.max_inflight_upstream) {
    return false;
  }
  ++inflight_upstream_;
  return true;
}

void AdmissionController::release_upstream() {
  if (inflight_upstream_ > 0) --inflight_upstream_;
}

bool AdmissionController::has_dispatch_room(int depth) const {
  return params_.max_dispatch_queue <= 0 || depth < params_.max_dispatch_queue;
}

bool AdmissionController::allow_prefetch(TimeMs now_ms) {
  static obs::Counter& denied =
      obs::metrics().counter("overload.admission.prefetch_denied_total");
  if (brownout_ != BrownoutLevel::kNormal) {
    denied.inc();
    return false;
  }
  if (params_.max_inflight_upstream > 0 &&
      static_cast<double>(inflight_upstream_) >=
          params_.prefetch_headroom_fraction *
              static_cast<double>(params_.max_inflight_upstream)) {
    denied.inc();
    return false;
  }
  if (global_bucket_.enabled() && params_.speculative_guard > 0 &&
      global_bucket_.level(now_ms) <
          params_.speculative_guard * global_bucket_.burst()) {
    denied.inc();
    return false;
  }
  return true;
}

}  // namespace mfhttp::overload
