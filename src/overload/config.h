// JSON-loadable configuration for the overload-protection subsystem.
//
// Benches and deployments describe admission + brownout tuning in one small
// document instead of a dozen flags:
//
//   {
//     "admission": {
//       "global_rate_per_s": 120, "global_burst": 40,
//       "session_rate_per_s": 6, "session_burst": 4,
//       "max_inflight_upstream": 16, "max_dispatch_queue": 64,
//       "max_deferred_per_session": 8, "max_deferred_global": 128,
//       "speculative_guard": 0.5, "transient_guard": 0.25,
//       "guard_jitter": 0.05, "seed": 7
//     },
//     "brownout": {
//       "tick_ms": 250, "queue_depth_high": 32,
//       "deferred_age_high_ms": 2000, "goodput_floor": 50000,
//       "enter_after": 2, "exit_after": 4
//     }
//   }
//
// Both sections and every field are optional; absent fields keep their
// defaults. Malformed JSON reports "line L, column C: why"; schema
// violations name the offending field.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "overload/admission.h"
#include "overload/brownout.h"

namespace mfhttp {
struct JsonValue;
}

namespace mfhttp::overload {

struct OverloadConfig {
  AdmissionParams admission;
  BrownoutParams brownout;

  static std::optional<OverloadConfig> from_json(std::string_view json,
                                                 std::string* error = nullptr);
  // Same schema over an already-parsed node, for configs that embed an
  // overload section (scenario::ScenarioSpec).
  static std::optional<OverloadConfig> from_value(const JsonValue& doc,
                                                  std::string* error = nullptr);
  static std::optional<OverloadConfig> load(const std::string& path,
                                            std::string* error = nullptr);
  std::string to_json() const;
};

}  // namespace mfhttp::overload
