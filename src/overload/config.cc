#include "overload/config.h"

#include "util/json.h"
#include "util/json_config.h"
#include "util/logging.h"

namespace mfhttp::overload {

std::optional<OverloadConfig> OverloadConfig::from_json(std::string_view json,
                                                        std::string* error) {
  std::optional<JsonValue> doc = jsoncfg::parse_object(json, error);
  if (!doc.has_value()) return std::nullopt;
  return from_value(*doc, error);
}

std::optional<OverloadConfig> OverloadConfig::from_value(const JsonValue& doc,
                                                         std::string* error) {
  OverloadConfig config;
  jsoncfg::Fields top(doc, "", error);

  if (const JsonValue* a = top.object("admission")) {
    jsoncfg::Fields f(*a, "admission", error);
    AdmissionParams& p = config.admission;
    f.number("global_rate_per_s", 0, &p.global_rate_per_s);
    f.number("global_burst", 0, &p.global_burst);
    f.number("session_rate_per_s", 0, &p.session_rate_per_s);
    f.number("session_burst", 0, &p.session_burst);
    f.integer("max_inflight_upstream", 0, &p.max_inflight_upstream);
    f.integer("max_dispatch_queue", 0, &p.max_dispatch_queue);
    f.integer("max_deferred_per_session", 0, &p.max_deferred_per_session);
    f.integer("max_deferred_global", 0, &p.max_deferred_global);
    f.number("speculative_guard", 0, &p.speculative_guard);
    f.number("transient_guard", 0, &p.transient_guard);
    f.number("guard_jitter", 0, &p.guard_jitter);
    f.seed("seed", &p.seed);
    if (f.ok() && (p.speculative_guard > 1 || p.transient_guard > 1))
      f.fail("guard fractions must be in [0, 1]");
    if (!f.finish()) return std::nullopt;
  }

  if (const JsonValue* b = top.object("brownout")) {
    jsoncfg::Fields f(*b, "brownout", error);
    BrownoutParams& p = config.brownout;
    f.time_ms("tick_ms", 1, &p.tick_ms);
    f.integer("queue_depth_high", 0, &p.queue_depth_high);
    f.time_ms("deferred_age_high_ms", 0, &p.deferred_age_high_ms);
    f.number("goodput_floor", 0, &p.goodput_floor);
    f.integer("enter_after", 1, &p.hysteresis.enter_after);
    f.integer("exit_after", 1, &p.hysteresis.exit_after);
    if (!f.finish()) return std::nullopt;
  }

  if (!top.finish()) return std::nullopt;
  return config;
}

std::optional<OverloadConfig> OverloadConfig::load(const std::string& path,
                                                  std::string* error) {
  std::string why;
  auto doc = jsoncfg::load_object(path, "overload config", &why);
  std::optional<OverloadConfig> config;
  if (doc.has_value()) {
    config = from_value(*doc, &why);
    if (!config.has_value())
      MFHTTP_WARN << "overload config '" << path << "': " << why;
  }
  if (!config.has_value() && error != nullptr)
    *error = "'" + path + "': " + why;
  return config;
}

std::string OverloadConfig::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("admission").begin_object();
  w.key("global_rate_per_s").value(admission.global_rate_per_s);
  w.key("global_burst").value(admission.global_burst);
  w.key("session_rate_per_s").value(admission.session_rate_per_s);
  w.key("session_burst").value(admission.session_burst);
  w.key("max_inflight_upstream").value(admission.max_inflight_upstream);
  w.key("max_dispatch_queue").value(admission.max_dispatch_queue);
  w.key("max_deferred_per_session").value(admission.max_deferred_per_session);
  w.key("max_deferred_global").value(admission.max_deferred_global);
  w.key("speculative_guard").value(admission.speculative_guard);
  w.key("transient_guard").value(admission.transient_guard);
  w.key("guard_jitter").value(admission.guard_jitter);
  w.key("seed").value(static_cast<unsigned long long>(admission.seed));
  w.end_object();
  w.key("brownout").begin_object();
  w.key("tick_ms").value(static_cast<long long>(brownout.tick_ms));
  w.key("queue_depth_high").value(brownout.queue_depth_high);
  w.key("deferred_age_high_ms").value(static_cast<long long>(brownout.deferred_age_high_ms));
  w.key("goodput_floor").value(brownout.goodput_floor);
  w.key("enter_after").value(brownout.hysteresis.enter_after);
  w.key("exit_after").value(brownout.hysteresis.exit_after);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace mfhttp::overload
