#include "overload/config.h"

#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"

namespace mfhttp::overload {

namespace {

// Reads a finite number field into `out`; returns false (and reports) when
// the member exists but is not a number or violates `min`.
bool read_number(const JsonValue& obj, const char* key, double min, double* out,
                 std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number_value < min) {
    if (error != nullptr) {
      *error = std::string("'") + key + "' must be a number >= " +
               std::to_string(min);
    }
    return false;
  }
  *out = v->number_value;
  return true;
}

bool read_int(const JsonValue& obj, const char* key, double min, int* out,
              std::string* error) {
  double d = *out;
  if (!read_number(obj, key, min, &d, error)) return false;
  *out = static_cast<int>(d);
  return true;
}

bool read_time(const JsonValue& obj, const char* key, double min, TimeMs* out,
               std::string* error) {
  double d = static_cast<double>(*out);
  if (!read_number(obj, key, min, &d, error)) return false;
  *out = static_cast<TimeMs>(d);
  return true;
}

}  // namespace

std::optional<OverloadConfig> OverloadConfig::from_json(std::string_view json,
                                                        std::string* error) {
  JsonParseError parse_error;
  auto doc = parse_json(json, &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) *error = parse_error.to_string();
    return std::nullopt;
  }
  if (!doc->is_object()) {
    if (error != nullptr) *error = "top-level value must be an object";
    return std::nullopt;
  }

  OverloadConfig config;
  if (const JsonValue* a = doc->find("admission"); a != nullptr) {
    if (!a->is_object()) {
      if (error != nullptr) *error = "'admission' must be an object";
      return std::nullopt;
    }
    AdmissionParams& p = config.admission;
    double seed = static_cast<double>(p.seed);
    if (!read_number(*a, "global_rate_per_s", 0, &p.global_rate_per_s, error) ||
        !read_number(*a, "global_burst", 0, &p.global_burst, error) ||
        !read_number(*a, "session_rate_per_s", 0, &p.session_rate_per_s, error) ||
        !read_number(*a, "session_burst", 0, &p.session_burst, error) ||
        !read_int(*a, "max_inflight_upstream", 0, &p.max_inflight_upstream, error) ||
        !read_int(*a, "max_dispatch_queue", 0, &p.max_dispatch_queue, error) ||
        !read_int(*a, "max_deferred_per_session", 0, &p.max_deferred_per_session,
                  error) ||
        !read_int(*a, "max_deferred_global", 0, &p.max_deferred_global, error) ||
        !read_number(*a, "speculative_guard", 0, &p.speculative_guard, error) ||
        !read_number(*a, "transient_guard", 0, &p.transient_guard, error) ||
        !read_number(*a, "guard_jitter", 0, &p.guard_jitter, error) ||
        !read_number(*a, "seed", 0, &seed, error)) {
      if (error != nullptr) *error = "'admission': " + *error;
      return std::nullopt;
    }
    p.seed = static_cast<std::uint64_t>(seed);
    if (p.speculative_guard > 1 || p.transient_guard > 1) {
      if (error != nullptr) {
        *error = "'admission': guard fractions must be in [0, 1]";
      }
      return std::nullopt;
    }
  }

  if (const JsonValue* b = doc->find("brownout"); b != nullptr) {
    if (!b->is_object()) {
      if (error != nullptr) *error = "'brownout' must be an object";
      return std::nullopt;
    }
    BrownoutParams& p = config.brownout;
    int enter = p.hysteresis.enter_after;
    int exit = p.hysteresis.exit_after;
    if (!read_time(*b, "tick_ms", 1, &p.tick_ms, error) ||
        !read_int(*b, "queue_depth_high", 0, &p.queue_depth_high, error) ||
        !read_time(*b, "deferred_age_high_ms", 0, &p.deferred_age_high_ms, error) ||
        !read_number(*b, "goodput_floor", 0, &p.goodput_floor, error) ||
        !read_int(*b, "enter_after", 1, &enter, error) ||
        !read_int(*b, "exit_after", 1, &exit, error)) {
      if (error != nullptr) *error = "'brownout': " + *error;
      return std::nullopt;
    }
    p.hysteresis.enter_after = enter;
    p.hysteresis.exit_after = exit;
  }

  return config;
}

std::optional<OverloadConfig> OverloadConfig::load(const std::string& path,
                                                  std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "'" + path + "': cannot open file";
    MFHTTP_WARN << "overload config '" << path << "': cannot open file";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string why;
  auto config = from_json(buffer.str(), &why);
  if (!config.has_value()) {
    if (error != nullptr) *error = "'" + path + "': " + why;
    MFHTTP_WARN << "overload config '" << path << "': " << why;
  }
  return config;
}

std::string OverloadConfig::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("admission").begin_object();
  w.key("global_rate_per_s").value(admission.global_rate_per_s);
  w.key("global_burst").value(admission.global_burst);
  w.key("session_rate_per_s").value(admission.session_rate_per_s);
  w.key("session_burst").value(admission.session_burst);
  w.key("max_inflight_upstream").value(admission.max_inflight_upstream);
  w.key("max_dispatch_queue").value(admission.max_dispatch_queue);
  w.key("max_deferred_per_session").value(admission.max_deferred_per_session);
  w.key("max_deferred_global").value(admission.max_deferred_global);
  w.key("speculative_guard").value(admission.speculative_guard);
  w.key("transient_guard").value(admission.transient_guard);
  w.key("guard_jitter").value(admission.guard_jitter);
  w.key("seed").value(static_cast<unsigned long long>(admission.seed));
  w.end_object();
  w.key("brownout").begin_object();
  w.key("tick_ms").value(static_cast<long long>(brownout.tick_ms));
  w.key("queue_depth_high").value(brownout.queue_depth_high);
  w.key("deferred_age_high_ms").value(static_cast<long long>(brownout.deferred_age_high_ms));
  w.key("goodput_floor").value(brownout.goodput_floor);
  w.key("enter_after").value(brownout.hysteresis.enter_after);
  w.key("exit_after").value(brownout.hysteresis.exit_after);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace mfhttp::overload
