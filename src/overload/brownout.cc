#include "overload/brownout.h"

#include "obs/metrics.h"
#include "util/check.h"
#include "util/strings.h"

namespace mfhttp::overload {

namespace {

obs::Gauge& level_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("overload.brownout.level");
  return g;
}

obs::Counter& transition_counter() {
  static obs::Counter& c =
      obs::metrics().counter("overload.brownout.transitions_total");
  return c;
}

}  // namespace

BrownoutSupervisor::BrownoutSupervisor(Simulator& sim, BrownoutParams params,
                                       Sampler sampler)
    : sim_(sim), params_(params), sampler_(std::move(sampler)) {
  MFHTTP_CHECK(params_.tick_ms > 0);
  MFHTTP_CHECK(sampler_ != nullptr);
  for (int i = 0; i < 3; ++i) {
    boundaries_.push_back(std::make_unique<fault::DegradationState>(
        strformat("brownout_l%d", i + 1), params_.hysteresis));
  }
}

BrownoutSupervisor::~BrownoutSupervisor() { stop(); }

void BrownoutSupervisor::start(ChangeFn on_change) {
  on_change_ = std::move(on_change);
  running_ = true;
  level_gauge().set(static_cast<double>(level_));
  if (on_change_) on_change_(level_);
  arm();
}

void BrownoutSupervisor::stop() {
  running_ = false;
  if (tick_event_ != Simulator::kInvalidEvent) {
    sim_.cancel(tick_event_);
    tick_event_ = Simulator::kInvalidEvent;
  }
}

void BrownoutSupervisor::arm() {
  tick_event_ = sim_.schedule_after(params_.tick_ms, [this] {
    tick_event_ = Simulator::kInvalidEvent;
    tick();
    if (running_) arm();
  });
}

int BrownoutSupervisor::score(const BrownoutSignals& s) const {
  int pressure = 0;
  if (params_.queue_depth_high > 0 && s.queue_depth >= params_.queue_depth_high) {
    ++pressure;
  }
  if (params_.deferred_age_high_ms > 0 &&
      s.max_deferred_age_ms >= params_.deferred_age_high_ms) {
    ++pressure;
  }
  // Low goodput only counts as pressure while there is work the link ought
  // to be moving; an idle system legitimately moves zero bytes.
  if (params_.goodput_floor > 0 && (s.queue_depth > 0 || s.inflight > 0) &&
      s.goodput < params_.goodput_floor) {
    ++pressure;
  }
  return pressure;
}

void BrownoutSupervisor::tick() {
  const BrownoutSignals signals = sampler_();
  last_pressure_ = score(signals);

  // Boundary i separates level i from level i+1; pressure above the boundary
  // pushes it toward degraded, pressure at or below pulls it back. Feeding
  // every boundary every tick (rather than only the active one) lets deep
  // overload escalate one level per `enter_after` ticks without waiting for
  // lower boundaries to trip first in sequence.
  for (int i = 0; i < 3; ++i) {
    if (last_pressure_ > i) {
      boundaries_[static_cast<std::size_t>(i)]->observe_bad();
    } else {
      boundaries_[static_cast<std::size_t>(i)]->observe_good();
    }
  }

  int level = 0;
  for (int i = 0; i < 3; ++i) {
    if (boundaries_[static_cast<std::size_t>(i)]->degraded()) level = i + 1;
  }
  // A higher boundary cannot be degraded while a lower one is not: the level
  // is the highest *contiguous* degraded prefix.
  for (int i = 0; i < level; ++i) {
    if (!boundaries_[static_cast<std::size_t>(i)]->degraded()) {
      level = i;
      break;
    }
  }

  const auto next = static_cast<BrownoutLevel>(level);
  if (next != level_) {
    level_ = next;
    level_gauge().set(static_cast<double>(level_));
    transition_counter().inc();
    if (on_change_) on_change_(level_);
  }
}

}  // namespace mfhttp::overload
