// Admission control for the multi-session serving path (ISSUE 3, tentpole).
//
// The AdmissionController sits at the front of MitmProxy::fetch and decides,
// per request, one of three verdicts:
//
//   kAdmit  — process normally (subject to the upstream concurrency cap,
//             which parks overflow in a bounded priority dispatch queue);
//   kReject — bounced by a rate limiter or a full queue (HTTP 429): the
//             client may retry later;
//   kShed   — deliberately dropped by priority-aware load shedding under
//             brownout (HTTP 503): the system is protecting higher-priority
//             work and retrying now will not help.
//
// Rate limiting combines a global token bucket with per-session buckets
// (lazily created, same parameters, seed-derived jitterless refill) so a
// single hot session cannot starve its neighbours. Shedding is ordered by
// the request's InterceptDecision-style priority: speculative work dies
// first, then transient, then viewport-critical; structural requests are
// never shed — a page that loads nothing is worse than a slow page.
//
// All decisions are functions of (simulated time, seeded RNG state, request
// stream), so the same seed and arrival trace produce the same admit trace.
//
// Threading contract (DESIGN.md §12): an AdmissionController is
// *externally synchronized* — deliberately unlocked, because it belongs to
// exactly one discrete-event world and every call arrives from that world's
// single event loop. The parallel scale engine (sim/session_world.h) keeps
// this sound by sharing nothing: each worker thread owns whole worlds, so
// no controller is ever visible to two threads. Do NOT share one instance
// across concurrently-running simulations; give each world its own.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "overload/token_bucket.h"
#include "util/rng.h"
#include "util/types.h"

namespace mfhttp::overload {

// Request priority classes, aligned with BlockListController's intercept
// priorities (web/blocklist_controller.h) and extended downward with the
// speculative class for prefetch/readahead work.
inline constexpr int kPrioritySpeculative = 0;  // prefetch; first to shed
inline constexpr int kPriorityTransient = 1;    // below-fold media
inline constexpr int kPriorityViewport = 2;     // visible content
inline constexpr int kPriorityStructure = 3;    // HTML/CSS; never shed

// Brownout severity ladder driven by the BrownoutSupervisor (brownout.h).
// Each level subsumes the previous one's restrictions.
enum class BrownoutLevel {
  kNormal = 0,        // full service
  kNoSpeculation = 1, // shed speculative requests, stop prefetch
  kLowResOnly = 2,    // additionally shed transient work, rewrite to low-res
  kShed = 3,          // additionally shed viewport work; structure only
};

const char* to_string(BrownoutLevel level);

struct AdmissionParams {
  // Global token bucket; <= 0 disables (bounded-only arm).
  double global_rate_per_s = 0;
  double global_burst = 0;
  // Per-session buckets, lazily created per session id; <= 0 disables.
  double session_rate_per_s = 0;
  double session_burst = 0;

  // Concurrent requests the proxy may have in service — from upstream
  // dispatch until the client-side stream finishes; overflow parks in the
  // dispatch queue. <= 0 means unlimited.
  int max_inflight_upstream = 0;
  // Bound on the dispatch queue of admitted-but-waiting requests; overflow
  // is rejected. <= 0 means unbounded.
  int max_dispatch_queue = 0;

  // Bounds on the proxy's deferred (scroll-gated) queue; overflow rejected.
  // <= 0 means unbounded.
  int max_deferred_per_session = 0;
  int max_deferred_global = 0;

  // When the global bucket drops below guard * burst, requests below the
  // guarded priority are rejected even though tokens remain — reserving the
  // tail of the bucket for critical work. Jitter widens each threshold by a
  // seeded ±band so the cutoff is not a hard cliff across sessions.
  double speculative_guard = 0.5;  // speculative needs > 50% bucket left
  double transient_guard = 0.25;   // transient needs > 25% bucket left
  double guard_jitter = 0.05;

  // Prefetch headroom: speculative warm-ups are allowed only while inflight
  // upstream work sits below this fraction of max_inflight_upstream, so
  // prefetch never competes with on-demand traffic for the last slots.
  double prefetch_headroom_fraction = 0.75;

  std::uint64_t seed = 1;
};

// Slice one box's admission budget across `shards` front-door workers
// (http/frontdoor.h): rates, bursts, the concurrency cap, and the global
// queue bounds divide evenly (integer bounds round up, never to zero, so a
// tiny budget still admits work on every shard); per-session parameters are
// untouched because a session lives entirely on one shard; the seed is
// remixed per shard so guard-band jitter decorrelates across workers.
// shards == 1 returns `params` byte-identical — the single-shard front door
// must reproduce the unsharded box exactly.
AdmissionParams shard_slice(const AdmissionParams& params, std::size_t shard,
                            std::size_t shards);

// Failover re-slice (ISSUE 7): the box budget spread over the `healthy`
// survivors of an `shards`-way front door, so a wedged shard's admission
// slice is re-distributed instead of stranded. Identical to shard_slice
// except rates and bounds divide by `healthy`; the seed remix stays keyed
// to the shard's ORIGINAL index, so a re-slice never teleports a worker's
// guard-jitter stream mid-run. healthy == shards degenerates to
// shard_slice (and shards == 1 to the byte-identical passthrough).
AdmissionParams failover_slice(const AdmissionParams& params, std::size_t shard,
                               std::size_t shards, std::size_t healthy);

enum class Verdict { kAdmit, kReject, kShed };

struct Decision {
  Verdict verdict = Verdict::kAdmit;
  // Which mechanism produced a non-admit verdict (for logs/metrics):
  // "global_rate", "session_rate", "priority_guard", "brownout",
  // "deferred_full", "dispatch_full".
  const char* reason = "";

  bool admitted() const { return verdict == Verdict::kAdmit; }
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionParams params = {});

  // Front-door decision for a request from `session` at priority `priority`.
  Decision on_request(const std::string& session, int priority, TimeMs now_ms);

  // Deferred-queue accounting (MitmProxy defer path). try_defer returns
  // false when either the per-session or the global bound is full; the
  // proxy then rejects instead of parking. on_undefer is called when a
  // deferred request is released, failed, or aborted.
  bool try_defer(const std::string& session);
  void on_undefer(const std::string& session);

  // Upstream concurrency slots. try_acquire_upstream returns false when all
  // slots are busy (caller queues in its dispatch queue). has_dispatch_room
  // checks the dispatch-queue bound for a queue currently `depth` deep.
  bool try_acquire_upstream();
  void release_upstream();
  bool has_dispatch_room(int depth) const;

  // Non-consuming headroom probe for speculative warm-ups (prefetch). True
  // only when the system has slack to burn on work nobody asked for yet:
  // brownout is kNormal (any brownout level implies kNoSpeculation), inflight
  // upstream work is below prefetch_headroom_fraction of the concurrency cap,
  // and the global bucket sits above the speculative guard. Never takes a
  // token — a prefetch that later turns into a cache hit must not have
  // charged the rate limiter for traffic that never reached the front door.
  bool allow_prefetch(TimeMs now_ms);

  // Brownout coupling: the supervisor pushes its level here; on_request
  // sheds every priority the level condemns.
  void set_brownout_level(BrownoutLevel level) { brownout_ = level; }
  BrownoutLevel brownout_level() const { return brownout_; }

  // Swap in a new global budget mid-run (front-door failover re-slice,
  // DESIGN.md §14): replaces the global bucket parameters, inflight cap and
  // dispatch bound with `sliced`'s, leaving per-session buckets, deferred
  // queues and in-flight accounting untouched. The global bucket restarts
  // full at the new burst — a re-sliced shard begins its new budget with
  // clean headroom rather than inheriting debt priced under the old rate.
  // Same threading contract as everything else here: callers serialize.
  void apply_budget(const AdmissionParams& sliced);

  int inflight_upstream() const { return inflight_upstream_; }
  int deferred_total() const { return deferred_total_; }
  const AdmissionParams& params() const { return params_; }

 private:
  TokenBucket& session_bucket(const std::string& session);

  AdmissionParams params_;
  Rng rng_;
  TokenBucket global_bucket_;
  std::map<std::string, TokenBucket> session_buckets_;
  std::map<std::string, int> deferred_by_session_;
  int deferred_total_ = 0;
  int inflight_upstream_ = 0;
  BrownoutLevel brownout_ = BrownoutLevel::kNormal;
};

}  // namespace mfhttp::overload
