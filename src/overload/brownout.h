// Brownout supervisor: a periodic sampler that turns raw pressure signals
// into a graded degradation level (ISSUE 3, tentpole part 3).
//
// Each tick the supervisor reads a snapshot of the serving path — dispatch +
// deferred queue depth, oldest deferred-request age, recent link goodput —
// and scores the system's pressure 0..3 by counting breached thresholds.
// Three fault::DegradationState instances guard the boundaries between
// adjacent BrownoutLevels, so every transition inherits the fault layer's
// asymmetric hysteresis: the supervisor needs `enter_after` consecutive bad
// ticks to escalate past a boundary and `exit_after` consecutive good ticks
// to relax back, preventing oscillation around a threshold.
//
// The supervisor only *decides*; enforcement lives with the listeners it
// notifies — the AdmissionController sheds condemned priorities, the flow
// controller stops speculating, the block-list controller switches to
// low-res rewrites, the tile scheduler tightens to the viewport.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fault/degradation.h"
#include "overload/admission.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace mfhttp::overload {

// One tick's view of serving-path pressure, produced by the sampler the
// embedder installs (the multi-session driver aggregates proxy + link state).
struct BrownoutSignals {
  int queue_depth = 0;             // dispatch + deferred requests parked
  TimeMs max_deferred_age_ms = 0;  // oldest parked request's wait so far
  BytesPerSec goodput = 0;         // client-side delivered bytes/s, recent
  int inflight = 0;                // upstream fetches currently running
};

struct BrownoutParams {
  TimeMs tick_ms = 250;

  // A signal past its threshold contributes one pressure point; <= 0
  // disables that signal. `goodput_floor` only scores while work is queued
  // or in flight — an idle link is not a browning-out link.
  int queue_depth_high = 32;
  TimeMs deferred_age_high_ms = 2000;
  BytesPerSec goodput_floor = 0;

  // Hysteresis applied at each level boundary (see fault/degradation.h).
  fault::DegradationParams hysteresis{/*enter_after=*/2, /*exit_after=*/4};
};

class BrownoutSupervisor {
 public:
  using Sampler = std::function<BrownoutSignals()>;
  using ChangeFn = std::function<void(BrownoutLevel)>;

  BrownoutSupervisor(Simulator& sim, BrownoutParams params, Sampler sampler);
  ~BrownoutSupervisor();

  // Begin ticking. `on_change` fires on every level transition (and is also
  // invoked immediately with the current level so listeners start aligned).
  void start(ChangeFn on_change);

  // Cancel the pending tick. The driver calls this at the experiment horizon
  // so the simulator's queue can drain to empty.
  void stop();

  // Run one sampling step immediately (ticking does this on schedule).
  void tick();

  BrownoutLevel level() const { return level_; }

  // Pressure score of the most recent tick (0..3), for logs and tests.
  int last_pressure() const { return last_pressure_; }

 private:
  int score(const BrownoutSignals& s) const;
  void arm();

  Simulator& sim_;
  BrownoutParams params_;
  Sampler sampler_;
  ChangeFn on_change_;
  // boundaries_[i] degraded  <=>  level > i  (i in 0..2).
  std::vector<std::unique_ptr<fault::DegradationState>> boundaries_;
  BrownoutLevel level_ = BrownoutLevel::kNormal;
  int last_pressure_ = 0;
  Simulator::EventId tick_event_ = Simulator::kInvalidEvent;
  bool running_ = false;
};

}  // namespace mfhttp::overload
