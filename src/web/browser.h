// Simulated mobile browser loading a WebPage through an HttpFetcher.
//
// Load model (matching how WebView issues requests): resources are fetched
// as their dependency-graph prerequisites complete (web/dependency.h) — the
// HTML document first, stylesheets next, scripts serialized in document
// order behind the CSS, and images as soon as the document is parsed.
// MF-HTTP never reorders the structural chain (§5.1.1); whether a given
// image actually transfers is up to the middleware proxy in the path.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "http/sim_http.h"
#include "sim/simulator.h"
#include "web/dependency.h"
#include "web/page.h"

namespace mfhttp {

struct ResourceLoadState {
  std::string url;
  Bytes size = 0;          // expected wire size
  Bytes received = 0;      // bytes delivered so far
  TimeMs request_ms = -1;  // when the fetch was issued (-1: not yet)
  TimeMs complete_ms = -1; // when the last byte arrived (-1: not finished)
  int status = 0;
  bool blocked = false;    // middleware refused it

  bool requested() const { return request_ms >= 0; }
  bool complete() const { return complete_ms >= 0 && !blocked; }
};

class Browser {
 public:
  using ImageCompleteFn = std::function<void(std::size_t image_index)>;

  Browser(Simulator& sim, HttpFetcher* fetcher, const WebPage& page);

  // Issue the HTML fetch; the rest of the page follows automatically.
  void load();

  const WebPage& page() const { return page_; }
  const std::vector<ResourceLoadState>& structure_states() const {
    return structure_;
  }
  const std::vector<ResourceLoadState>& image_states() const { return images_; }

  // All structural resources finished.
  bool structure_complete() const;

  // Earliest simulated time by which all structural resources and every
  // image overlapping `viewport` had completed; -1 if any is still missing.
  TimeMs viewport_load_time(const Rect& viewport) const;

  // Fraction (by bytes) of `viewport`-overlapping images delivered so far;
  // 1.0 when the viewport contains no images.
  double viewport_fill_fraction(const Rect& viewport) const;

  Bytes bytes_received() const;
  std::size_t images_completed() const;
  std::size_t images_blocked() const;
  std::size_t images_unrequested_or_pending() const;

  void set_on_image_complete(ImageCompleteFn fn) { on_image_complete_ = std::move(fn); }

  const DependencyGraph& dependency_graph() const { return graph_; }

 private:
  void fetch_resource(ResourceLoadState* state, bool is_image, std::size_t index);
  void on_node_complete(DependencyGraph::NodeId node);
  void fetch_ready_nodes();

  Simulator& sim_;
  HttpFetcher* fetcher_;
  WebPage page_;
  std::vector<ResourceLoadState> structure_;
  std::vector<ResourceLoadState> images_;
  ImageCompleteFn on_image_complete_;
  bool started_ = false;

  DependencyGraph graph_;
  std::vector<DependencyGraph::NodeId> structure_nodes_;
  std::vector<DependencyGraph::NodeId> image_nodes_;
  std::vector<bool> node_done_;
  std::vector<bool> node_requested_;
};

}  // namespace mfhttp
