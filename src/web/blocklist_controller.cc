#include "web/blocklist_controller.h"

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

BlockListController::BlockListController(const WebPage& page, Rect initial_viewport,
                                         MitmProxy* proxy)
    : BlockListController(page, initial_viewport, proxy, Resilience{}) {}

BlockListController::BlockListController(const WebPage& page, Rect initial_viewport,
                                         MitmProxy* proxy, Resilience resilience)
    : page_(page),
      proxy_(proxy),
      resilience_(resilience),
      degradation_("web.blocklist", resilience.degradation) {
  MFHTTP_CHECK(proxy_ != nullptr);
  for (std::size_t i = 0; i < page_.images.size(); ++i) {
    const MediaObject& img = page_.images[i];
    url_to_image_[img.top_version().url] = i;
    if (!initial_viewport.overlaps(img.rect))
      block_list_.insert(img.top_version().url);  // step (1)
  }
  MFHTTP_INFO << "block list: " << block_list_.size() << "/" << page_.images.size()
              << " images start blocked";
  static obs::Counter& blocked_initial =
      obs::metrics().counter("web.blocklist.blocked_initial_total");
  blocked_initial.inc(block_list_.size());
}

InterceptDecision BlockListController::on_request(const HttpRequest& request) {
  auto url = request.url();
  std::string url_str = url ? url->to_string() : request.target;
  // Degraded: stop gating entirely — everything flows.
  bool is_image = url_to_image_.contains(url_str);
  if (!degradation_.degraded() && block_list_.contains(url_str)) {
    // Deep brownout: a proxy that is shedding load must not grow its
    // deferred queue — condemned images fail fast instead of parking.
    if (brownout_level_ >= 3) return InterceptDecision::block();
    return InterceptDecision::defer();  // step (2)
  }
  // Unblocked images are viewport-critical; anything else is structure.
  return InterceptDecision::allow(is_image ? kPriorityViewport
                                           : kPriorityStructure);
}

void BlockListController::on_fetch_complete(const FetchResult& result) {
  // Only the images this controller gates inform its health; blocked results
  // are policy, not faults.
  if (!url_to_image_.contains(result.url) || result.blocked) return;
  const bool failed =
      result.status == 0 || result.status == 429 || result.status >= 500;
  bool entered = false;
  if (failed) {
    entered = degradation_.observe_bad();
  } else {
    // Slip: how long the image took from the moment the policy let it go
    // (or from request, if it was never parked) to the last byte.
    TimeMs start = result.request_ms;
    if (auto it = release_at_.find(result.url); it != release_at_.end())
      start = std::max(start, it->second);
    const TimeMs slip = result.complete_ms - start;
    if (slip > resilience_.slip_threshold_ms)
      entered = degradation_.observe_bad();
    else
      degradation_.observe_good();
  }
  if (entered) release_all();
}

void BlockListController::set_degraded(bool degraded) {
  if (degradation_.force(degraded) && degraded) release_all();
}

void BlockListController::set_brownout_level(int level) {
  if (level == brownout_level_) return;
  MFHTTP_INFO << "block list brownout level " << brownout_level_ << " -> " << level;
  static obs::Counter& changes =
      obs::metrics().counter("web.blocklist.brownout_changes_total");
  changes.inc();
  brownout_level_ = level;
}

void BlockListController::release_all() {
  MFHTTP_INFO << "block list degraded: releasing " << block_list_.size()
              << " parked urls";
  static obs::Counter& degraded_releases =
      obs::metrics().counter("web.blocklist.degraded_releases_total");
  std::unordered_set<std::string> urls;
  urls.swap(block_list_);
  for (const std::string& url : urls) {
    degraded_releases.inc();
    release_at_[url] = proxy_->now();
    proxy_->release(url, kPriorityTransient);
  }
}

void BlockListController::release_image(std::size_t index, int priority) {
  const MediaObject& image = page_.images[index];
  const std::string& url = image.top_version().url;
  if (block_list_.erase(url) > 0) {
    ++releases_;
    release_at_[url] = proxy_->now();
    static obs::Counter& releases =
        obs::metrics().counter("web.blocklist.releases_total");
    releases.inc();
    // Brownout level >= 2: the link only gets the cheapest representation —
    // the parked request completes with the lowest-resolution version's
    // bytes instead of the one the page asked for.
    const MediaVersion& lowest = image.versions.front();
    std::size_t released;
    if (brownout_level_ >= 2 && image.versions.size() > 1 && lowest.url != url) {
      static obs::Counter& lowres =
          obs::metrics().counter("web.blocklist.brownout_lowres_total");
      released = proxy_->release_rewritten(url, lowest.url, priority);
      lowres.inc(released);
    } else {
      released = proxy_->release(url, priority);
    }
    // Wasted block: the browser already wanted this object — it sat parked
    // at the proxy until the tracker proved it relevant. Each such release
    // is delay the block list inflicted on a byte that was needed anyway.
    if (released > 0) {
      static obs::Counter& blocked_then_needed =
          obs::metrics().counter("web.blocklist.blocked_then_needed_total");
      blocked_then_needed.inc(released);
    }
  }
}

void BlockListController::on_policy(const ScrollAnalysis& analysis,
                                    const DownloadPolicy& policy) {
  MFHTTP_CHECK(analysis.coverages.size() == page_.images.size());
  for (std::size_t i = 0; i < page_.images.size(); ++i) {
    const ObjectCoverage& cov = analysis.coverages[i];
    // Step (3): current/final-viewport images are the most crucial to QoE —
    // release unconditionally.
    if (cov.in_initial_viewport || cov.in_final_viewport) {
      release_image(i, kPriorityViewport);
      continue;
    }
    // Transient images: released only with a positive optimizer value, and
    // at a lower link priority than viewport-critical images. Any brownout
    // level suppresses them entirely — corridor speculation is the first
    // spend an overloaded middleware stops.
    if (brownout_level_ >= 1) continue;
    if (cov.involved) {
      const DownloadDecision* d = policy.find(i);
      if (d != nullptr && d->download() && d->value > 0)
        release_image(i, kPriorityTransient);
    }
  }

  // Step (3b), speculative: corridor images the optimizer left parked are
  // warmed into the middleware cache over the fast origin hop. The client
  // link sees no byte until a later gesture actually releases them — but
  // that release then streams straight from the proxy.
  if (prefetch_enabled_ && brownout_level_ == 0) {
    static obs::Counter& prefetched =
        obs::metrics().counter("web.blocklist.prefetches_total");
    for (std::size_t i = 0; i < page_.images.size(); ++i) {
      if (!analysis.coverages[i].involved) continue;
      const std::string& url = page_.images[i].top_version().url;
      if (!block_list_.contains(url)) continue;
      if (proxy_->prefetch(url)) {
        ++prefetches_requested_;
        prefetched.inc();
      }
    }
  }
}

}  // namespace mfhttp
