#include "web/blocklist_controller.h"

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

BlockListController::BlockListController(const WebPage& page, Rect initial_viewport,
                                         MitmProxy* proxy)
    : BlockListController(page, initial_viewport, proxy, Resilience{}) {}

BlockListController::BlockListController(const WebPage& page, Rect initial_viewport,
                                         MitmProxy* proxy, Resilience resilience)
    : page_(page),
      proxy_(proxy),
      resilience_(resilience),
      degradation_("web.blocklist", resilience.degradation) {
  MFHTTP_CHECK(proxy_ != nullptr);
  const std::size_t n = page_.images.size();
  records_.resize(n);
  canonical_.resize(n);
  blocked_.assign(n, 0);
  release_at_ms_.assign(n, kNeverReleased);
  for (std::size_t i = 0; i < n; ++i) {
    const MediaObject& img = page_.images[i];
    ImageRecord& rec = records_[i];
    rec.top_url = &img.top_version().url;
    rec.lowest_url = &img.versions.front().url;
    rec.multi_version = img.versions.size() > 1;
    url_to_image_[*rec.top_url] = i;
  }
  // Canonical index per unique URL (last writer, matching the old map), so
  // shared-URL images share one blocked bit like the old url set did.
  for (std::size_t i = 0; i < n; ++i)
    canonical_[i] = url_to_image_[*records_[i].top_url];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = canonical_[i];
    if (!initial_viewport.overlaps(page_.images[i].rect) && blocked_[c] == 0) {
      blocked_[c] = 1;  // step (1)
      ++blocked_count_;
    }
  }
  MFHTTP_INFO << "block list: " << blocked_count_ << "/" << page_.images.size()
              << " images start blocked";
  static obs::Counter& blocked_initial =
      obs::metrics().counter("web.blocklist.blocked_initial_total");
  blocked_initial.inc(blocked_count_);
}

InterceptDecision BlockListController::on_request(const HttpRequest& request) {
  auto url = request.url();
  std::string url_str = url ? url->to_string() : request.target;
  // Degraded: stop gating entirely — everything flows. One hash lookup
  // answers both "is this an image?" and "is it parked?".
  auto it = url_to_image_.find(url_str);
  const bool is_image = it != url_to_image_.end();
  const bool parked = is_image && blocked_[canonical_[it->second]] != 0;
  if (!degradation_.degraded() && parked) {
    // Deep brownout: a proxy that is shedding load must not grow its
    // deferred queue — condemned images fail fast instead of parking.
    if (brownout_level_ >= 3) return InterceptDecision::block();
    return InterceptDecision::defer();  // step (2)
  }
  // Unblocked images are viewport-critical; anything else is structure.
  return InterceptDecision::allow(is_image ? kPriorityViewport
                                           : kPriorityStructure);
}

void BlockListController::on_fetch_complete(const FetchResult& result) {
  // Only the images this controller gates inform its health; blocked results
  // are policy, not faults.
  auto image_it = url_to_image_.find(result.url);
  if (image_it == url_to_image_.end() || result.blocked) return;
  const bool failed =
      result.status == 0 || result.status == 429 || result.status >= 500;
  bool entered = false;
  if (failed) {
    entered = degradation_.observe_bad();
  } else {
    // Slip: how long the image took from the moment the policy let it go
    // (or from request, if it was never parked) to the last byte.
    TimeMs start = result.request_ms;
    const TimeMs released = release_at_ms_[canonical_[image_it->second]];
    if (released != kNeverReleased) start = std::max(start, released);
    const TimeMs slip = result.complete_ms - start;
    if (slip > resilience_.slip_threshold_ms)
      entered = degradation_.observe_bad();
    else
      degradation_.observe_good();
  }
  if (entered) release_all();
}

void BlockListController::set_degraded(bool degraded) {
  if (degradation_.force(degraded) && degraded) release_all();
}

void BlockListController::set_brownout_level(int level) {
  if (level == brownout_level_) return;
  MFHTTP_INFO << "block list brownout level " << brownout_level_ << " -> " << level;
  static obs::Counter& changes =
      obs::metrics().counter("web.blocklist.brownout_changes_total");
  changes.inc();
  brownout_level_ = level;
}

void BlockListController::release_all() {
  MFHTTP_INFO << "block list degraded: releasing " << blocked_count_
              << " parked urls";
  static obs::Counter& degraded_releases =
      obs::metrics().counter("web.blocklist.degraded_releases_total");
  for (std::size_t i = 0; i < blocked_.size(); ++i) {
    if (blocked_[i] == 0) continue;
    blocked_[i] = 0;
    degraded_releases.inc();
    release_at_ms_[i] = proxy_->now();
    proxy_->release(*records_[i].top_url, kPriorityTransient);
  }
  blocked_count_ = 0;
}

void BlockListController::release_image(std::size_t index, int priority) {
  const std::size_t c = canonical_[index];
  if (blocked_[c] != 0) {
    const ImageRecord& rec = records_[index];
    const std::string& url = *rec.top_url;
    blocked_[c] = 0;
    --blocked_count_;
    ++releases_;
    release_at_ms_[c] = proxy_->now();
    static obs::Counter& releases =
        obs::metrics().counter("web.blocklist.releases_total");
    releases.inc();
    // Brownout level >= 2: the link only gets the cheapest representation —
    // the parked request completes with the lowest-resolution version's
    // bytes instead of the one the page asked for.
    std::size_t released;
    if (brownout_level_ >= 2 && rec.multi_version && *rec.lowest_url != url) {
      static obs::Counter& lowres =
          obs::metrics().counter("web.blocklist.brownout_lowres_total");
      released = proxy_->release_rewritten(url, *rec.lowest_url, priority);
      lowres.inc(released);
    } else {
      released = proxy_->release(url, priority);
    }
    // Wasted block: the browser already wanted this object — it sat parked
    // at the proxy until the tracker proved it relevant. Each such release
    // is delay the block list inflicted on a byte that was needed anyway.
    if (released > 0) {
      static obs::Counter& blocked_then_needed =
          obs::metrics().counter("web.blocklist.blocked_then_needed_total");
      blocked_then_needed.inc(released);
    }
  }
}

void BlockListController::on_policy(const ScrollAnalysis& analysis,
                                    const DownloadPolicy& policy) {
  MFHTTP_CHECK(analysis.coverages.size() == page_.images.size());
  for (std::size_t i = 0; i < page_.images.size(); ++i) {
    const ObjectCoverage& cov = analysis.coverages[i];
    // Step (3): current/final-viewport images are the most crucial to QoE —
    // release unconditionally.
    if (cov.in_initial_viewport || cov.in_final_viewport) {
      release_image(i, kPriorityViewport);
      continue;
    }
    // Transient images: released only with a positive optimizer value, and
    // at a lower link priority than viewport-critical images. Any brownout
    // level suppresses them entirely — corridor speculation is the first
    // spend an overloaded middleware stops.
    if (brownout_level_ >= 1) continue;
    if (cov.involved) {
      const DownloadDecision* d = policy.find(i);
      if (d != nullptr && d->download() && d->value > 0)
        release_image(i, kPriorityTransient);
    }
  }

  // Step (3b), speculative: corridor images the optimizer left parked are
  // warmed into the middleware cache over the fast origin hop. The client
  // link sees no byte until a later gesture actually releases them — but
  // that release then streams straight from the proxy.
  if (prefetch_enabled_ && brownout_level_ == 0) {
    static obs::Counter& prefetched =
        obs::metrics().counter("web.blocklist.prefetches_total");
    for (std::size_t i = 0; i < page_.images.size(); ++i) {
      if (!analysis.coverages[i].involved) continue;
      if (blocked_[canonical_[i]] == 0) continue;
      if (proxy_->prefetch(*records_[i].top_url)) {
        ++prefetches_requested_;
        prefetched.inc();
      }
    }
  }
}

}  // namespace mfhttp
