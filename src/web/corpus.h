// Synthetic Alexa-top-25 page corpus — the stand-in for the paper's §6.1
// workload (see DESIGN.md §2).
//
// The corpus mirrors the layout statistics the paper reports in Fig. 6:
// 11 sites render full-size viewports (search engines and login pages whose
// whole page fits the screen) and 14 render limited-size viewports, with
// viewport/page ratios down to ≈4.1% (the Sohu-like site). Image geometry
// and byte sizes are generated deterministically from a seed.
#pragma once

#include <string>
#include <vector>

#include "scroll/device_profile.h"
#include "util/rng.h"
#include "web/page.h"

namespace mfhttp {

struct SiteSpec {
  std::string name;
  // viewport_h / page_h; 1.0 means the page exactly fits the screen.
  double viewport_ratio = 1.0;
  int image_count = 0;
  Bytes avg_image_bytes = 60 * 1000;
  Bytes html_bytes = 40 * 1000;
  Bytes css_js_bytes = 120 * 1000;
};

// The 25 site specs (11 full-viewport + 14 limited-viewport).
const std::vector<SiteSpec>& alexa25_specs();

// Instantiate one page: lay out `spec.image_count` images down a page of
// height viewport_h / ratio, with sizes jittered by `rng`.
WebPage generate_page(const SiteSpec& spec, const DeviceProfile& device, Rng& rng);

// Generate the whole corpus with per-site forked RNGs.
std::vector<WebPage> generate_corpus(const DeviceProfile& device, Rng& rng);

}  // namespace mfhttp
