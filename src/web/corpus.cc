#include "web/corpus.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace mfhttp {

const std::vector<SiteSpec>& alexa25_specs() {
  // Names are illustrative stand-ins for Alexa's 2017 top-25 mix the paper
  // used. Ratios: 11 sites at 1.0 (search + login pages), 14 limited-size,
  // minimum 0.041 matching the paper's Sohu observation.
  static const std::vector<SiteSpec> specs = {
      // --- full-size viewports: search engines ---
      {"google", 1.0, 3, 20'000, 15'000, 350'000},
      {"google-in", 1.0, 3, 20'000, 15'000, 350'000},
      {"google-jp", 1.0, 3, 20'000, 15'000, 350'000},
      {"google-de", 1.0, 3, 20'000, 15'000, 350'000},
      {"google-uk", 1.0, 3, 20'000, 15'000, 350'000},
      {"live", 1.0, 4, 45'000, 30'000, 280'000},
      {"baidu", 1.0, 4, 25'000, 18'000, 200'000},
      // --- full-size viewports: login pages ---
      {"facebook-login", 1.0, 2, 35'000, 28'000, 310'000},
      {"twitter-login", 1.0, 3, 30'000, 25'000, 260'000},
      {"linkedin-login", 1.0, 2, 32'000, 24'000, 290'000},
      {"instagram-login", 1.0, 2, 28'000, 30'000, 330'000},
      // --- limited-size viewports: general content sites ---
      {"youtube", 0.110, 38, 70'000, 90'000, 540'000},
      {"yahoo", 0.095, 42, 65'000, 110'000, 620'000},
      {"wikipedia", 0.180, 18, 35'000, 60'000, 120'000},
      {"reddit", 0.085, 46, 55'000, 85'000, 480'000},
      {"qq", 0.060, 55, 80'000, 120'000, 700'000},
      {"taobao", 0.055, 60, 85'000, 100'000, 650'000},
      {"amazon", 0.120, 34, 75'000, 95'000, 520'000},
      {"sohu", 0.041, 70, 90'000, 130'000, 760'000},
      {"sina", 0.048, 64, 85'000, 125'000, 720'000},
      {"jd", 0.065, 52, 80'000, 105'000, 610'000},
      {"ebay", 0.140, 30, 70'000, 88'000, 450'000},
      {"netflix", 0.200, 22, 95'000, 72'000, 560'000},
      {"vk", 0.160, 26, 60'000, 78'000, 380'000},
      {"yandex", 0.350, 12, 45'000, 55'000, 300'000},
  };
  return specs;
}

WebPage generate_page(const SiteSpec& spec, const DeviceProfile& device, Rng& rng) {
  MFHTTP_CHECK(spec.viewport_ratio > 0 && spec.viewport_ratio <= 1.0);
  MFHTTP_CHECK(spec.image_count >= 0);

  WebPage page;
  page.site = spec.name;
  page.origin = "http://" + spec.name + ".example";
  page.width = device.screen_w_px;
  page.height = device.screen_h_px / spec.viewport_ratio;

  page.structure.push_back(
      {ResourceKind::kHtml, page.origin + "/index.html", spec.html_bytes});
  // Split css/js into a stylesheet and two scripts, as real pages do.
  page.structure.push_back(
      {ResourceKind::kStylesheet, page.origin + "/site.css", spec.css_js_bytes / 3});
  page.structure.push_back(
      {ResourceKind::kScript, page.origin + "/app.js", spec.css_js_bytes / 3});
  page.structure.push_back(
      {ResourceKind::kScript, page.origin + "/vendor.js",
       spec.css_js_bytes - 2 * (spec.css_js_bytes / 3)});

  if (spec.image_count == 0) return page;

  // Stack images down the page with text gaps between them. Each image is
  // 30-100% of the page width and 150-600 px tall; the vertical budget is
  // divided so images spread over the whole page.
  const double usable_h = page.height;
  const double slot_h = usable_h / spec.image_count;
  for (int k = 0; k < spec.image_count; ++k) {
    double w = rng.uniform(0.30, 1.0) * page.width;
    double h = rng.uniform(150.0, 600.0);
    h = std::min(h, std::max(80.0, slot_h * 0.9));
    double x = rng.uniform(0.0, page.width - w);
    double slot_top = slot_h * k;
    double y = slot_top + rng.uniform(0.0, std::max(1.0, slot_h - h));

    double size_factor = std::exp(rng.normal(0.0, 0.45));
    auto bytes = static_cast<Bytes>(
        std::max(4000.0, static_cast<double>(spec.avg_image_bytes) * size_factor));

    std::string url = page.origin + strformat("/img/%02d.jpg", k);
    page.images.push_back(make_single_version_object(
        strformat("%s-img-%02d", spec.name.c_str(), k), Rect{x, y, w, h}, bytes,
        std::move(url)));
  }
  return page;
}

std::vector<WebPage> generate_corpus(const DeviceProfile& device, Rng& rng) {
  std::vector<WebPage> corpus;
  for (const SiteSpec& spec : alexa25_specs()) {
    Rng site_rng = rng.fork();
    corpus.push_back(generate_page(spec, device, site_rng));
  }
  return corpus;
}

}  // namespace mfhttp
