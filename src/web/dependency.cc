#include "web/dependency.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace mfhttp {

DependencyGraph::NodeId DependencyGraph::add_node(std::string label) {
  labels_.push_back(std::move(label));
  deps_.emplace_back();
  return labels_.size() - 1;
}

void DependencyGraph::add_edge(NodeId before, NodeId after) {
  MFHTTP_CHECK(before < node_count() && after < node_count());
  MFHTTP_CHECK_MSG(before != after, "self-dependency");
  deps_[after].push_back(before);
}

const std::string& DependencyGraph::label(NodeId node) const {
  MFHTTP_CHECK(node < node_count());
  return labels_[node];
}

const std::vector<DependencyGraph::NodeId>& DependencyGraph::dependencies(
    NodeId node) const {
  MFHTTP_CHECK(node < node_count());
  return deps_[node];
}

bool DependencyGraph::is_ready(NodeId node, const std::vector<bool>& done) const {
  MFHTTP_CHECK(node < node_count());
  MFHTTP_CHECK(done.size() == node_count());
  return std::all_of(deps_[node].begin(), deps_[node].end(),
                     [&done](NodeId dep) { return done[dep]; });
}

std::vector<DependencyGraph::NodeId> DependencyGraph::ready_nodes(
    const std::vector<bool>& done) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < node_count(); ++n)
    if (!done[n] && is_ready(n, done)) out.push_back(n);
  return out;
}

std::optional<std::vector<DependencyGraph::NodeId>>
DependencyGraph::topological_order() const {
  std::vector<std::size_t> pending(node_count());
  std::vector<std::vector<NodeId>> dependents(node_count());
  for (NodeId n = 0; n < node_count(); ++n) {
    pending[n] = deps_[n].size();
    for (NodeId dep : deps_[n]) dependents[dep].push_back(n);
  }
  std::deque<NodeId> queue;
  for (NodeId n = 0; n < node_count(); ++n)
    if (pending[n] == 0) queue.push_back(n);
  std::vector<NodeId> order;
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop_front();
    order.push_back(n);
    for (NodeId dep : dependents[n])
      if (--pending[dep] == 0) queue.push_back(dep);
  }
  if (order.size() != node_count()) return std::nullopt;  // cycle
  return order;
}

DependencyGraph page_dependency_graph(
    const WebPage& page, std::vector<DependencyGraph::NodeId>* structure_nodes,
    std::vector<DependencyGraph::NodeId>* image_nodes) {
  MFHTTP_CHECK(structure_nodes != nullptr && image_nodes != nullptr);
  MFHTTP_CHECK(!page.structure.empty() &&
               page.structure[0].kind == ResourceKind::kHtml);
  DependencyGraph graph;
  structure_nodes->clear();
  image_nodes->clear();

  for (const PageResource& r : page.structure)
    structure_nodes->push_back(graph.add_node(r.url));
  for (const MediaObject& img : page.images)
    image_nodes->push_back(graph.add_node(img.top_version().url));

  const DependencyGraph::NodeId html = (*structure_nodes)[0];
  std::vector<DependencyGraph::NodeId> stylesheets;
  DependencyGraph::NodeId prev_script = html;
  bool have_script = false;

  for (std::size_t i = 1; i < page.structure.size(); ++i) {
    DependencyGraph::NodeId node = (*structure_nodes)[i];
    graph.add_edge(html, node);  // everything needs the document
    switch (page.structure[i].kind) {
      case ResourceKind::kStylesheet:
        stylesheets.push_back(node);
        break;
      case ResourceKind::kScript:
        // Scripts execute in document order and wait for earlier CSS.
        for (DependencyGraph::NodeId css : stylesheets) graph.add_edge(css, node);
        if (have_script) graph.add_edge(prev_script, node);
        prev_script = node;
        have_script = true;
        break;
      case ResourceKind::kHtml:
        break;  // only the first node is the document
    }
  }
  for (DependencyGraph::NodeId img : *image_nodes) graph.add_edge(html, img);
  return graph;
}

}  // namespace mfhttp
