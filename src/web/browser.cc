#include "web/browser.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

Browser::Browser(Simulator& sim, HttpFetcher* fetcher, const WebPage& page)
    : sim_(sim), fetcher_(fetcher), page_(page) {
  MFHTTP_CHECK(fetcher_ != nullptr);
  MFHTTP_CHECK_MSG(!page_.structure.empty(), "page needs at least an HTML resource");
  for (const PageResource& r : page_.structure)
    structure_.push_back({r.url, r.size, 0, -1, -1, 0, false});
  for (const MediaObject& img : page_.images)
    images_.push_back({img.top_version().url, img.top_version().size, 0, -1, -1, 0,
                       false});
  graph_ = page_dependency_graph(page_, &structure_nodes_, &image_nodes_);
  node_done_.assign(graph_.node_count(), false);
  node_requested_.assign(graph_.node_count(), false);
}

void Browser::fetch_resource(ResourceLoadState* state, bool is_image,
                             std::size_t index) {
  state->request_ms = sim_.now();
  const DependencyGraph::NodeId node =
      is_image ? image_nodes_[index] : structure_nodes_[index];
  FetchCallbacks cbs;
  cbs.on_progress = [state](Bytes chunk, Bytes, Bytes) { state->received += chunk; };
  cbs.on_complete = [this, state, is_image, index, node](const FetchResult& result) {
    state->complete_ms = sim_.now();
    state->status = result.status;
    state->blocked = result.blocked;
    if (is_image && !result.blocked && on_image_complete_) on_image_complete_(index);
    on_node_complete(node);
  };
  fetcher_->fetch(HttpRequest::get(state->url), std::move(cbs));
}

void Browser::load() {
  MFHTTP_CHECK_MSG(!started_, "Browser::load may only be called once");
  started_ = true;
  fetch_ready_nodes();  // just the HTML document
}

void Browser::on_node_complete(DependencyGraph::NodeId node) {
  node_done_[node] = true;
  fetch_ready_nodes();
}

void Browser::fetch_ready_nodes() {
  // Issue every resource whose prerequisites are satisfied. Document order
  // is preserved within each readiness wave (ready_nodes returns ascending
  // node ids, which follow construction order).
  for (DependencyGraph::NodeId node : graph_.ready_nodes(node_done_)) {
    if (node_requested_[node]) continue;
    node_requested_[node] = true;
    if (node < structure_nodes_.size()) {
      fetch_resource(&structure_[node], false, node);
    } else {
      std::size_t index = node - structure_nodes_.size();
      fetch_resource(&images_[index], true, index);
    }
  }
}

bool Browser::structure_complete() const {
  return std::all_of(structure_.begin(), structure_.end(),
                     [](const ResourceLoadState& s) { return s.complete(); });
}

TimeMs Browser::viewport_load_time(const Rect& viewport) const {
  TimeMs latest = 0;
  for (const ResourceLoadState& s : structure_) {
    if (!s.complete()) return -1;
    latest = std::max(latest, s.complete_ms);
  }
  for (std::size_t i : page_.images_in(viewport)) {
    const ResourceLoadState& s = images_[i];
    if (!s.complete()) return -1;
    latest = std::max(latest, s.complete_ms);
  }
  return latest;
}

double Browser::viewport_fill_fraction(const Rect& viewport) const {
  Bytes want = 0, have = 0;
  for (std::size_t i : page_.images_in(viewport)) {
    const ResourceLoadState& s = images_[i];
    want += s.size;
    have += std::min(s.received, s.size);
  }
  if (want == 0) return 1.0;
  return static_cast<double>(have) / static_cast<double>(want);
}

Bytes Browser::bytes_received() const {
  Bytes total = 0;
  for (const ResourceLoadState& s : structure_) total += s.received;
  for (const ResourceLoadState& s : images_) total += s.received;
  return total;
}

std::size_t Browser::images_completed() const {
  return static_cast<std::size_t>(
      std::count_if(images_.begin(), images_.end(),
                    [](const ResourceLoadState& s) { return s.complete(); }));
}

std::size_t Browser::images_blocked() const {
  return static_cast<std::size_t>(
      std::count_if(images_.begin(), images_.end(),
                    [](const ResourceLoadState& s) { return s.blocked; }));
}

std::size_t Browser::images_unrequested_or_pending() const {
  return static_cast<std::size_t>(std::count_if(
      images_.begin(), images_.end(), [](const ResourceLoadState& s) {
        return !s.complete() && !s.blocked;
      }));
}

}  // namespace mfhttp
