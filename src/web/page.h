// Web page model for the mobile-browsing case study (§5.1).
//
// A page is a column of content sized for a mobile layout: structural
// resources (HTML, CSS, scripts — whose download order MF-HTTP never
// touches, §5.1.1) plus positioned images, the media objects MF-HTTP
// schedules.
#pragma once

#include <string>
#include <vector>

#include "core/media_object.h"
#include "geom/rect.h"
#include "util/types.h"

namespace mfhttp {

enum class ResourceKind { kHtml, kStylesheet, kScript };

struct PageResource {
  ResourceKind kind = ResourceKind::kHtml;
  std::string url;
  Bytes size = 0;
};

struct WebPage {
  std::string site;        // e.g. "sohu"
  std::string origin;      // e.g. "http://sohu.example"
  double width = 0;        // content coordinates == device px (mobile layout)
  double height = 0;
  std::vector<PageResource> structure;   // html first, then css/js in order
  std::vector<MediaObject> images;       // document order (top to bottom)

  Rect bounds() const { return {0, 0, width, height}; }

  // Fig. 6 metric: viewport height / page height.
  double viewport_ratio(double viewport_h) const {
    return height > 0 ? viewport_h / height : 0;
  }

  Bytes total_image_bytes() const;
  Bytes total_structure_bytes() const;

  // Indices of images overlapping `viewport`.
  std::vector<std::size_t> images_in(const Rect& viewport) const;
};

}  // namespace mfhttp
