// Block-list flow controller for web browsing — the §5.1.2 workflow.
//
//  (1) When the page is requested, every image outside the initial viewport
//      goes on the block list.
//  (2) Requests whose URL is on the block list are parked at the proxy
//      (deferred), never touching the bottleneck link.
//  (3) On every scroll update from the screen scrolling tracker: images in
//      the current or final viewport leave the block list unconditionally;
//      images that appear only transiently are released iff their optimizer
//      value p·Q − q·C is positive; everything else stays blocked.
//  (4) Each new gesture repeats (3) with fresh analysis.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/flow_controller.h"
#include "core/scroll_tracker.h"
#include "http/proxy.h"
#include "web/page.h"

namespace mfhttp {

class BlockListController : public Interceptor {
 public:
  BlockListController(const WebPage& page, Rect initial_viewport, MitmProxy* proxy);

  // Interceptor: structural resources pass through; blocked images defer.
  InterceptDecision on_request(const HttpRequest& request) override;

  // Wire this to Middleware::set_policy_callback.
  void on_policy(const ScrollAnalysis& analysis, const DownloadPolicy& policy);

  // Transfer priorities on the client link (meaningful on kFifo links):
  // structural resources above everything, then viewport-critical images,
  // then transient-corridor images.
  static constexpr int kPriorityStructure = 3;
  static constexpr int kPriorityViewport = 2;
  static constexpr int kPriorityTransient = 1;

  bool is_blocked(const std::string& url) const { return block_list_.contains(url); }
  std::size_t block_list_size() const { return block_list_.size(); }
  std::size_t releases() const { return releases_; }

 private:
  void release_image(std::size_t index, int priority);

  const WebPage& page_;
  MitmProxy* proxy_;
  std::unordered_set<std::string> block_list_;
  std::unordered_map<std::string, std::size_t> url_to_image_;
  std::size_t releases_ = 0;
};

}  // namespace mfhttp
