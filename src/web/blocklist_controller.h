// Block-list flow controller for web browsing — the §5.1.2 workflow.
//
//  (1) When the page is requested, every image outside the initial viewport
//      goes on the block list.
//  (2) Requests whose URL is on the block list are parked at the proxy
//      (deferred), never touching the bottleneck link.
//  (3) On every scroll update from the screen scrolling tracker: images in
//      the current or final viewport leave the block list unconditionally;
//      images that appear only transiently are released iff their optimizer
//      value p·Q − q·C is positive; everything else stays blocked.
//  (4) Each new gesture repeats (3) with fresh analysis.
//
// Graceful degradation (DESIGN.md §9): the controller watches its own
// outcomes — release-to-delivery slip and failed image fetches — and when
// they stay bad (or the origin's circuit breaker opens) it stops gating:
// every parked image is released, the block list empties, and new requests
// pass straight through until outcomes recover. A stale policy must never
// strand the client.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flow_controller.h"
#include "core/scroll_tracker.h"
#include "fault/degradation.h"
#include "http/proxy.h"
#include "web/page.h"

namespace mfhttp {

class BlockListController : public Interceptor {
 public:
  struct Resilience {
    TimeMs slip_threshold_ms = 4000;  // release-to-delivery slip that counts bad
    fault::DegradationParams degradation;
  };

  BlockListController(const WebPage& page, Rect initial_viewport, MitmProxy* proxy);
  BlockListController(const WebPage& page, Rect initial_viewport, MitmProxy* proxy,
                      Resilience resilience);

  // Interceptor: structural resources pass through; blocked images defer.
  InterceptDecision on_request(const HttpRequest& request) override;

  // Interceptor: feed delivery outcomes into the degradation tracker.
  void on_fetch_complete(const FetchResult& result) override;

  // Wire this to Middleware::set_policy_callback.
  void on_policy(const ScrollAnalysis& analysis, const DownloadPolicy& policy);

  // External degradation override (circuit-breaker wiring). Entering
  // degraded mode releases every parked request.
  void set_degraded(bool degraded);
  bool degraded() const { return degradation_.degraded(); }

  // Brownout hook (overload/brownout.h levels). Level >= 1 suppresses
  // transient releases (viewport-critical only); level >= 2 additionally
  // rewrites every release to the object's lowest-resolution version;
  // level >= 3 blocks new block-listed requests outright instead of
  // parking them — a shedding proxy must not accumulate deferred state.
  void set_brownout_level(int level);
  int brownout_level() const { return brownout_level_; }

  // Transfer priorities on the client link (meaningful on kFifo links):
  // structural resources above everything, then viewport-critical images,
  // then transient-corridor images.
  static constexpr int kPriorityStructure = 3;
  static constexpr int kPriorityViewport = 2;
  static constexpr int kPriorityTransient = 1;

  // Speculative cache warm-up: when enabled, every on_policy pass asks the
  // proxy to prefetch corridor images the optimizer left parked — they cost
  // only the fast origin hop now, and a later gesture's release streams from
  // the middleware cache with no upstream round trip. Suppressed by any
  // brownout level (speculation is the first spend to stop) and subject to
  // the proxy's own admission headroom check.
  void set_prefetch_enabled(bool enabled) { prefetch_enabled_ = enabled; }
  bool prefetch_enabled() const { return prefetch_enabled_; }
  std::size_t prefetches_requested() const { return prefetches_requested_; }

  bool is_blocked(const std::string& url) const {
    auto it = url_to_image_.find(url);
    return it != url_to_image_.end() && blocked_[canonical_[it->second]] != 0;
  }
  std::size_t block_list_size() const { return blocked_count_; }
  std::size_t releases() const { return releases_; }

 private:
  void release_image(std::size_t index, int priority);
  void release_all();

  // Per-image hot records on arena-style indices, built once at
  // construction. The per-gesture policy loop (on_policy -> release_image)
  // walks these parallel vectors; the string hash map is only touched on
  // the request path, where the URL is all we have.
  struct ImageRecord {
    const std::string* top_url = nullptr;     // into page_.images[i]
    const std::string* lowest_url = nullptr;  // versions.front().url
    bool multi_version = false;
  };
  static constexpr TimeMs kNeverReleased = -1;

  const WebPage& page_;
  MitmProxy* proxy_;
  Resilience resilience_;
  fault::DegradationState degradation_;
  std::vector<ImageRecord> records_;
  // Two images can share a URL; the old url-set semantics are kept by
  // carrying the blocked bit on one canonical index per unique URL.
  std::vector<std::size_t> canonical_;
  std::vector<std::uint8_t> blocked_;  // 1 = parked, by canonical index
  std::size_t blocked_count_ = 0;
  std::vector<TimeMs> release_at_ms_;  // kNeverReleased until first release
  std::unordered_map<std::string, std::size_t> url_to_image_;
  std::size_t releases_ = 0;
  int brownout_level_ = 0;
  bool prefetch_enabled_ = false;
  std::size_t prefetches_requested_ = 0;
};

}  // namespace mfhttp
