// End-to-end browsing session runner (§6.1): one page load plus one random
// scrolling touch, measured with and without MF-HTTP in the path. This is
// the harness behind the Fig. 7/8 benchmarks and the integration tests.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/flow_controller.h"
#include "fault/fault_plan.h"
#include "gesture/synthetic.h"
#include "http/cache.h"
#include "http/resilient_fetcher.h"
#include "net/link.h"
#include "overload/admission.h"
#include "scroll/device_profile.h"
#include "web/page.h"

namespace mfhttp {

struct BrowsingSessionConfig {
  DeviceProfile device = DeviceProfile::nexus6();
  bool enable_mfhttp = true;

  // Network: the paper's campus-WLAN setup — a fast middleware-origin hop
  // and a (comparatively) constrained device hop that all responses share.
  BytesPerSec client_bandwidth = 2.0e6;   // 2 MB/s WLAN share
  TimeMs client_latency_ms = 8;
  // How concurrent responses share the device hop: kFairShare models N
  // parallel connections; kFifo realizes Eq. 13's "schedule the download in
  // the same order that the objects are requested".
  Link::Sharing client_sharing = Link::Sharing::kFairShare;
  BytesPerSec server_bandwidth = 12.5e6;  // ~100 Mbps campus backbone
  TimeMs server_latency_ms = 4;
  // Variable client-hop bandwidth (scenario network profiles); when set it
  // replaces the constant client_bandwidth trace on the link AND as the
  // flow controller's B(t).
  std::optional<BandwidthTrace> client_bandwidth_trace;

  // One scrolling touch per session, fired once the page has had a moment
  // to start rendering.
  TimeMs scroll_at_ms = 1200;
  // Device-class fling calibration (scenario::DeviceClassSpec): multiplies
  // FlingParams::friction for both the ground-truth tracker and the
  // middleware's predictor. 1.0 = stock Android physics, byte-identical.
  double fling_friction_scale = 1.0;
  double swipe_speed_px_s = 5000;   // finger speed (fling intensity)
  bool swipe_up = false;            // finger direction; false = scroll down
  FlowWeights weights{1.0, 0.0};    // paper: q = 0 for web experiments

  TimeMs session_ms = 60'000;
  // Sampling period of the Fig. 8 viewport-fill timeline; 0 disables.
  TimeMs fill_sample_ms = 50;

  std::uint64_t seed = 1;

  // Fault injection & resilience (DESIGN.md §9). nullptr falls back to the
  // ambient fault::global_plan() installed by --fault-plan; no plan (or an
  // empty one) leaves the whole stack — links, origin, proxy — byte-for-byte
  // identical to the pristine configuration, resilience layer included.
  const fault::FaultPlan* fault_plan = nullptr;
  // With a plan active: retry/breaker layer between proxy and origin, plus
  // the proxy's deferred-queue watchdog. Disable to measure what the faults
  // do to an unprotected stack (the negative arm of the resilience bench).
  bool enable_resilience = true;
  ResilientFetcherParams resilience = default_resilience();
  TimeMs defer_timeout_ms = 15'000;  // watchdog: force-release parked requests

  // Middleware-server cache + corridor warm-up (ISSUE 4). Off by default:
  // a single-session page load re-fetches nothing, so the pristine arms
  // stay byte-identical; the cache arms exist for the cache benches and the
  // repeat-visit / shared-proxy configurations.
  bool enable_cache = false;
  CacheParams cache;
  // With a cache: warm corridor images the optimizer left parked (the
  // BlockListController's prefetch hook). Ignored without enable_cache.
  bool enable_prefetch = false;

  // Overload protection at the proxy (scenario "overload" section). Absent:
  // no admission controller — byte-identical to the historical stack.
  std::optional<overload::AdmissionParams> admission;

  static ResilientFetcherParams default_resilience() {
    ResilientFetcherParams p;
    p.attempt_timeout_ms = 8000;  // per-attempt deadline inside the session
    return p;
  }
};

struct BrowsingSessionResult {
  // Viewport load time (Fig. 7 metric): all structural resources plus every
  // image overlapping the *default* (initial) viewport are complete.
  TimeMs initial_viewport_load_ms = -1;
  // Same for the post-scroll resting viewport, measured from session start.
  TimeMs final_viewport_load_ms = -1;

  Bytes bytes_downloaded = 0;       // over the client link
  Bytes total_image_bytes = 0;      // what a download-everything client wants
  std::size_t images_total = 0;
  std::size_t images_completed = 0;
  std::size_t images_avoided = 0;   // never transferred (parked or refused)

  // Proxy-side accounting for the scenario matrix columns: every request
  // the proxy saw, the subset bounced by admission (429/503) or shed by
  // brownout, and the middleware-cache hit/miss split (0/0 without a cache).
  std::size_t requests_total = 0;
  std::size_t requests_rejected = 0;
  std::size_t requests_shed = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;

  // Requests still parked at the proxy when the session ended. In a pristine
  // run this is ordinary parked speculation (the mf-http savings). With a
  // fault plan active it is always 0 when the resilience layer is on (the
  // watchdog releases them); the unprotected stack under faults strands
  // whatever the stale policy never released.
  std::size_t stranded_deferred = 0;

  // (time_ms, fraction of current-viewport image bytes present) — Fig. 8.
  std::vector<std::pair<TimeMs, double>> fill_timeline;

  Rect initial_viewport;
  Rect final_viewport;

  // Machine-readable export (util/json.h) for analysis pipelines.
  std::string to_json() const;
};

BrowsingSessionResult run_browsing_session(const WebPage& page,
                                           const BrowsingSessionConfig& config);

}  // namespace mfhttp
