#include "web/page.h"

namespace mfhttp {

Bytes WebPage::total_image_bytes() const {
  Bytes total = 0;
  for (const MediaObject& img : images) total += img.top_version().size;
  return total;
}

Bytes WebPage::total_structure_bytes() const {
  Bytes total = 0;
  for (const PageResource& r : structure) total += r.size;
  return total;
}

std::vector<std::size_t> WebPage::images_in(const Rect& viewport) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < images.size(); ++i)
    if (viewport.overlaps(images[i].rect)) out.push_back(i);
  return out;
}

}  // namespace mfhttp
