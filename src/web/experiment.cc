#include "web/experiment.h"

#include <memory>
#include <optional>

#include "core/middleware.h"
#include "gesture/recognizer.h"
#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "web/blocklist_controller.h"
#include "util/json.h"
#include "web/browser.h"

namespace mfhttp {

namespace {

ObjectStore build_store(const WebPage& page) {
  ObjectStore store;
  for (const PageResource& r : page.structure) {
    auto url = parse_url(r.url);
    MFHTTP_CHECK(url.has_value());
    store.put(url->path, r.size, r.kind == ResourceKind::kHtml ? "text/html"
                                                               : "text/css");
  }
  for (const MediaObject& img : page.images) {
    auto url = parse_url(img.top_version().url);
    MFHTTP_CHECK(url.has_value());
    store.put(url->path, img.top_version().size, "image/jpeg");
  }
  return store;
}

}  // namespace

std::string BrowsingSessionResult::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("initial_viewport_load_ms").value(static_cast<long long>(initial_viewport_load_ms));
  w.key("final_viewport_load_ms").value(static_cast<long long>(final_viewport_load_ms));
  w.key("bytes_downloaded").value(static_cast<long long>(bytes_downloaded));
  w.key("total_image_bytes").value(static_cast<long long>(total_image_bytes));
  w.key("images_total").value(images_total);
  w.key("images_completed").value(images_completed);
  w.key("images_avoided").value(images_avoided);
  w.key("stranded_deferred").value(stranded_deferred);
  w.key("final_viewport_y").value(final_viewport.y);
  w.key("fill_timeline").begin_array();
  for (const auto& [t, fill] : fill_timeline) {
    w.begin_object();
    w.key("t_ms").value(static_cast<long long>(t));
    w.key("fill").value(fill);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

BrowsingSessionResult run_browsing_session(const WebPage& page,
                                           const BrowsingSessionConfig& config) {
  Simulator sim;
  Rng rng(config.seed);

  const BandwidthTrace client_trace =
      config.client_bandwidth_trace.has_value()
          ? *config.client_bandwidth_trace
          : BandwidthTrace::constant(config.client_bandwidth);

  Link::Params client_params;
  client_params.bandwidth = client_trace;
  client_params.latency_ms = config.client_latency_ms;
  client_params.sharing = config.client_sharing;

  Link::Params server_params;
  server_params.bandwidth = BandwidthTrace::constant(config.server_bandwidth);
  server_params.latency_ms = config.server_latency_ms;
  server_params.sharing = Link::Sharing::kFairShare;
  Link server_link(sim, server_params);

  ObjectStore store = build_store(page);
  SimHttpOrigin origin(sim, &store, &server_link);

  // The whole decorator stack — client-hop faults, origin faults,
  // resilience, proxy — assembles through the one canonical builder.
  // Explicit config plan wins; the builder falls back to the ambient
  // --fault-plan and treats an empty plan as none.
  FetchPipelineBuilder builder(sim, &origin);
  builder.client_link(client_params).with_faults(config.fault_plan);
  MitmProxy::Params proxy_params;
  if (builder.has_faults() && config.enable_resilience) {
    builder.with_resilience(config.resilience);
    proxy_params.defer_timeout_ms = config.defer_timeout_ms;
  }
  if (config.enable_cache) builder.with_cache(config.cache);
  if (config.admission.has_value()) builder.with_admission(*config.admission);
  builder.proxy_params(proxy_params);
  std::unique_ptr<FetchPipeline> pipeline = builder.build();
  MitmProxy& proxy = pipeline->proxy();
  Link& client_link = pipeline->client_link();
  ResilientFetcher* resilient = pipeline->resilient();

  const Rect vp0{0, 0, config.device.screen_w_px, config.device.screen_h_px};

  ScrollTracker::Params tracker_params;
  tracker_params.scroll = ScrollConfig(config.device);
  tracker_params.scroll.fling.friction *= config.fling_friction_scale;
  tracker_params.content_bounds = page.bounds();

  // Ground-truth viewport trajectory — identical scrolling physics whether
  // or not the middleware is enabled, so both arms measure the same thing.
  ScrollTracker gt_tracker(tracker_params);
  ViewportState gt_viewport(vp0, page.bounds());
  GestureRecognizer gt_recognizer(config.device);

  // MF-HTTP stack (only in the treatment arm).
  std::optional<Middleware> middleware;
  std::optional<BlockListController> controller;
  std::optional<TouchEventMonitor> monitor;
  if (config.enable_mfhttp) {
    Middleware::Params mp;
    mp.tracker = tracker_params;
    mp.flow.weights = config.weights;
    // §5.1.2: bandwidth is rarely the web bottleneck — constraint released.
    mp.flow.ignore_bandwidth_constraint = true;
    mp.initial_viewport = vp0;
    mp.gesture_uplink_ms = config.client_latency_ms;
    middleware.emplace(mp, page.images, client_trace, &sim);
    controller.emplace(page, vp0, &proxy);
    if (config.enable_cache && config.enable_prefetch)
      controller->set_prefetch_enabled(true);
    proxy.set_interceptor(&*controller);
    middleware->set_policy_callback(
        [&](const ScrollAnalysis& a, const DownloadPolicy& p) {
          controller->on_policy(a, p);
        });
    monitor.emplace(config.device,
                    [&](const Gesture& g) { middleware->on_gesture(g); });
    // Breaker-open → stop gating: a policy that cannot reach the origin must
    // not keep requests parked.
    if (resilient)
      resilient->set_degraded_callback([&controller](const std::string&, bool open) {
        if (controller) controller->set_degraded(open);
      });
  }

  Browser browser(sim, &proxy, page);
  sim.schedule_at(0, [&] { browser.load(); });

  // The session's one random scrolling touch.
  SwipeSpec spec;
  spec.start_time_ms = config.scroll_at_ms;
  spec.speed_px_s = config.swipe_speed_px_s;
  double x = rng.uniform(config.device.screen_w_px * 0.3,
                         config.device.screen_w_px * 0.7);
  spec.start = {x, config.swipe_up ? config.device.screen_h_px * 0.25
                                   : config.device.screen_h_px * 0.72};
  spec.direction = {rng.uniform(-0.05, 0.05), config.swipe_up ? 1.0 : -1.0};
  spec.contact_ms = 140;
  const TouchTrace trace = synthesize_swipe(spec);
  for (const TouchEvent& ev : trace) {
    sim.schedule_at(ev.time_ms, [&, ev] {
      if (monitor) monitor->on_touch_event(ev);
      if (auto g = gt_recognizer.on_touch_event(ev)) {
        gt_viewport.interrupt(g->down_time_ms);
        gt_viewport.apply_contact_pan(*g);
        if (g->scrolls())
          gt_viewport.begin_animation(
              gt_tracker.predict(*g, gt_viewport.at(g->up_time_ms)));
      }
    });
  }

  BrowsingSessionResult result;
  if (config.fill_sample_ms > 0) {
    for (TimeMs t = 0; t <= config.session_ms; t += config.fill_sample_ms) {
      sim.schedule_at(t, [&, t] {
        result.fill_timeline.emplace_back(
            t, browser.viewport_fill_fraction(gt_viewport.at(t)));
      });
    }
  }

  sim.run_until(config.session_ms);

  result.initial_viewport = vp0;
  result.final_viewport = gt_viewport.at(config.session_ms);
  result.initial_viewport_load_ms = browser.viewport_load_time(vp0);
  result.final_viewport_load_ms = browser.viewport_load_time(result.final_viewport);
  result.bytes_downloaded = client_link.bytes_delivered_total();
  result.total_image_bytes = page.total_image_bytes() + page.total_structure_bytes();
  result.images_total = page.images.size();
  result.images_completed = browser.images_completed();
  result.images_avoided = result.images_total - result.images_completed;
  result.stranded_deferred = proxy.deferred_urls().size();
  const MitmProxy::Stats& ps = proxy.stats();
  result.requests_total = ps.allowed + ps.blocked + ps.deferred + ps.rejected +
                          ps.shed + ps.header_violations + ps.cache_hits;
  result.requests_rejected = ps.rejected;
  result.requests_shed = ps.shed;
  if (HttpCache* cache = pipeline->cache()) {
    HttpCache::Stats cs = cache->stats();
    result.cache_hits = cs.hits;
    result.cache_misses = cs.misses;
  }
  return result;
}

}  // namespace mfhttp
