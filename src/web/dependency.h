// Resource dependency graph — the structure Wprof [26] profiles and Polaris
// [8] schedules against. §5.1.1: MF-HTTP deliberately leaves the download
// sequence of styling rules and scripts unchanged "to ensure that MF-HTTP
// does not violate the dependencies of the web page"; only images (which
// rarely depend on each other) are rescheduled. The browser model therefore
// needs real dependency semantics to claim that fidelity.
//
// Default page graph:
//   html  -> every stylesheet and the first script, and every image
//   css_k -> every script (stylesheets block script execution)
//   js_k  -> js_{k+1} (scripts execute in document order)
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "web/page.h"

namespace mfhttp {

class DependencyGraph {
 public:
  using NodeId = std::size_t;

  NodeId add_node(std::string label);
  // `after` may not start before `before` has completed.
  void add_edge(NodeId before, NodeId after);

  std::size_t node_count() const { return labels_.size(); }
  const std::string& label(NodeId node) const;
  const std::vector<NodeId>& dependencies(NodeId node) const;

  // Ready = every dependency's `done` flag set.
  bool is_ready(NodeId node, const std::vector<bool>& done) const;

  // All nodes whose dependencies are satisfied but are not yet done.
  std::vector<NodeId> ready_nodes(const std::vector<bool>& done) const;

  // Kahn's algorithm; nullopt when the graph has a cycle.
  std::optional<std::vector<NodeId>> topological_order() const;
  bool has_cycle() const { return !topological_order().has_value(); }

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<NodeId>> deps_;  // deps_[n] = prerequisites of n
};

// The default browser dependency graph for a page. Node ids are returned in
// two parallel vectors: one per structural resource (same order as
// page.structure) and one per image (same order as page.images).
DependencyGraph page_dependency_graph(const WebPage& page,
                                      std::vector<DependencyGraph::NodeId>* structure_nodes,
                                      std::vector<DependencyGraph::NodeId>* image_nodes);

}  // namespace mfhttp
