#include "prefetch/planner.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace mfhttp::prefetch {

PrefetchPlanner::PrefetchPlanner(PrefetchBudget budget) : budget_(budget) {}

PrefetchPlan PrefetchPlanner::plan(const std::vector<PrefetchCandidate>& candidates,
                                   TimeMs now_ms) const {
  PrefetchPlan out;

  // Value density decides who gets the budget.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = candidates[a].value /
                      static_cast<double>(std::max<Bytes>(candidates[a].bytes, 1));
    const double db = candidates[b].value /
                      static_cast<double>(std::max<Bytes>(candidates[b].bytes, 1));
    if (da != db) return da > db;
    return candidates[a].entry_time_ms < candidates[b].entry_time_ms;  // stable tie
  });

  for (std::size_t i : order) {
    const PrefetchCandidate& c = candidates[i];
    if (c.value < budget_.min_value) {
      ++out.dropped;
      continue;
    }
    if (budget_.max_bytes_per_plan > 0 &&
        out.total_bytes + c.bytes > budget_.max_bytes_per_plan) {
      ++out.dropped;
      continue;
    }
    PrefetchItem item;
    item.url = c.url;
    item.bytes = c.bytes;
    item.value = c.value;
    item.object_index = c.object_index;
    const TimeMs entry =
        now_ms + static_cast<TimeMs>(std::llround(std::max(0.0, c.entry_time_ms)));
    item.launch_at_ms = std::max(now_ms, entry - budget_.lead_time_ms);
    out.items.push_back(std::move(item));
    out.total_bytes += c.bytes;
  }

  std::sort(out.items.begin(), out.items.end(),
            [](const PrefetchItem& a, const PrefetchItem& b) {
              return a.launch_at_ms < b.launch_at_ms;
            });

  static obs::Counter& planned =
      obs::metrics().counter("prefetch.planner.items_planned_total");
  static obs::Counter& dropped =
      obs::metrics().counter("prefetch.planner.items_dropped_total");
  static obs::Counter& planned_bytes =
      obs::metrics().counter("prefetch.planner.bytes_planned_total");
  planned.inc(out.items.size());
  dropped.inc(out.dropped);
  planned_bytes.inc(static_cast<std::uint64_t>(out.total_bytes));
  return out;
}

}  // namespace mfhttp::prefetch
