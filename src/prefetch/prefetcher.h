// Executes PrefetchPlans against a MitmProxy on the simulator clock.
//
// submit() replaces the active plan: items scheduled under the old plan but
// absent from the new one are cancelled — both pending launches and warm-ups
// already in flight at the proxy — because a new fling means the old
// predicted viewport path is simply wrong (the satellite "prefetch
// cancellation" requirement). Launches that survive fire at their planned
// time and go through MitmProxy::prefetch, which applies its own gates
// (already fresh, admission headroom, brownout via allow_prefetch).
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "http/proxy.h"
#include "prefetch/planner.h"
#include "sim/simulator.h"

namespace mfhttp::prefetch {

class Prefetcher {
 public:
  struct Stats {
    std::size_t scheduled = 0;  // items accepted into a plan
    std::size_t launched = 0;   // proxy->prefetch() returned true
    std::size_t denied = 0;     // proxy->prefetch() returned false at launch
    std::size_t cancelled = 0;  // invalidated by a newer plan (or shutdown)
  };

  Prefetcher(Simulator& sim, MitmProxy* proxy);
  ~Prefetcher();

  // Replace the active plan. Items with URLs carried over keep their
  // original schedule; everything else from the old plan is cancelled.
  void submit(const PrefetchPlan& plan);

  // Cancel everything — pending launches and in-flight warm-ups.
  void cancel_all();

  std::size_t pending() const { return scheduled_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  void launch(const std::string& url);

  Simulator& sim_;
  MitmProxy* proxy_;
  // URL -> launch event for items not yet fired.
  std::unordered_map<std::string, Simulator::EventId> scheduled_;
  // URLs launched under the active plan (for in-flight invalidation).
  std::unordered_set<std::string> launched_;
  Stats stats_;
};

}  // namespace mfhttp::prefetch
