// Multi-session cache/prefetch experiment (ISSUE 4 tentpole, bench driver).
//
// N sessions browse a shared Zipf-popularity catalog through per-session
// MitmProxy instances that share one validating HttpCache, one admission
// controller, and one origin hop — the middleware-server deployment of
// §4.2, where "the screen scrolling tracker can access the related data on
// the cache of the middleware server". Arrivals are open-loop Poisson per
// session; every request is a viewport-class object with a load deadline.
//
// A prediction stream models the scroll tracker: each request is announced
// prediction_lead_ms before it fires, correctly with probability
// prediction_accuracy (a wrong announcement names a decoy object — the
// source of prefetch-wasted bytes). The kCachePrefetch arm feeds those
// announcements through the PrefetchPlanner into MitmProxy::prefetch.
//
// Three arms over the identical seeded trace:
//   kNoCache       — every request pays the full origin round trip,
//   kCache         — shared validating cache, no speculation,
//   kCachePrefetch — cache plus prediction-driven warm-up.
#pragma once

#include <cstdint>
#include <string>

#include "net/bandwidth_trace.h"
#include "prefetch/cache_config.h"
#include "util/types.h"

namespace mfhttp::prefetch {

enum class CacheArm { kNoCache, kCache, kCachePrefetch };

const char* to_string(CacheArm arm);

struct CacheExperimentConfig {
  int sessions = 16;
  double rate_per_session_per_s = 1.2;  // open-loop viewport requests
  TimeMs horizon_ms = 15'000;           // arrivals stop here; drain continues
  std::uint64_t seed = 1;

  // Shared catalog: catalog_size objects, Zipf(zipf_s) popularity, sizes
  // uniform in [min_object_bytes, max_object_bytes].
  int catalog_size = 48;
  double zipf_s = 0.9;
  Bytes min_object_bytes = 12'000;
  Bytes max_object_bytes = 60'000;

  TimeMs viewport_deadline_ms = 1'200;  // on-deadline goodput accounting

  // Prediction stream (kCachePrefetch arm only).
  TimeMs prediction_lead_ms = 600;
  double prediction_accuracy = 0.8;

  // Per-session client links share this trace shape; the origin hop is the
  // contended resource the cache relieves.
  std::string trace_name = "steady";
  BandwidthTrace client_bandwidth = BandwidthTrace::constant(1'500'000);
  TimeMs client_latency_ms = 10;
  BytesPerSec server_bytes_per_s = 700'000;
  TimeMs server_latency_ms = 5;
  TimeMs origin_delay_ms = 40;

  // Upstream concurrency cap shared by all sessions; prefetch headroom
  // gating (allow_prefetch) works against this.
  int max_inflight_upstream = 24;

  CacheConfig cache;  // cache + prefetch tuning (kNoCache ignores it)
  CacheArm arm = CacheArm::kCachePrefetch;

  CacheExperimentConfig();  // fills `cache` with driver-scaled defaults
};

struct CacheExperimentResult {
  std::string arm;
  std::string trace;
  int sessions = 0;

  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t on_time = 0;  // completed within viewport_deadline_ms

  double p50_load_ms = 0;  // viewport load time over completed requests
  double p99_load_ms = 0;
  Bytes on_time_bytes = 0;
  double goodput_bytes_per_s = 0;  // on_time_bytes / makespan
  TimeMs makespan_ms = 0;

  Bytes server_link_bytes = 0;  // origin-hop bytes (incl. prefetch traffic)
  Bytes client_link_bytes = 0;  // sum over per-session links
  Bytes total_link_bytes = 0;

  // Cache + prefetch accounting (zero in the kNoCache arm).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t stale_served = 0;
  std::size_t revalidations = 0;
  std::size_t evictions = 0;
  std::size_t prefetch_issued = 0;
  std::size_t prefetch_denied = 0;
  std::size_t prefetch_useful = 0;
  Bytes prefetch_wasted_bytes = 0;  // evicted-unused plus still-unused warm-ups

  std::string to_json() const;
};

CacheExperimentResult run_cache_experiment(const CacheExperimentConfig& config);

}  // namespace mfhttp::prefetch
