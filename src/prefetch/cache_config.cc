#include "prefetch/cache_config.h"

#include "util/json.h"
#include "util/json_config.h"
#include "util/logging.h"

namespace mfhttp::prefetch {

std::optional<CacheConfig> CacheConfig::from_json(std::string_view json,
                                                  std::string* error) {
  std::optional<JsonValue> doc = jsoncfg::parse_object(json, error);
  if (!doc.has_value()) return std::nullopt;
  return from_value(*doc, error);
}

std::optional<CacheConfig> CacheConfig::from_value(const JsonValue& doc,
                                                   std::string* error) {
  CacheConfig config;
  jsoncfg::Fields top(doc, "", error);

  if (const JsonValue* c = top.object("cache")) {
    jsoncfg::Fields f(*c, "cache", error);
    CacheParams& p = config.cache;
    f.bytes("capacity_bytes", 0, &p.capacity_bytes);
    f.time_ms("default_ttl_ms", 0, &p.default_ttl_ms);
    f.time_ms("stale_while_revalidate_ms", 0, &p.stale_while_revalidate_ms);
    f.number("max_object_fraction", 0, &p.max_object_fraction);
    f.boolean("cost_aware_admission", &p.cost_aware_admission);
    if (f.ok() &&
        (p.max_object_fraction <= 0 || p.max_object_fraction > 1))
      f.fail("'max_object_fraction' must be in (0, 1]");
    if (!f.finish()) return std::nullopt;
  }

  if (const JsonValue* pf = top.object("prefetch")) {
    jsoncfg::Fields f(*pf, "prefetch", error);
    PrefetchBudget& p = config.prefetch;
    f.boolean("enabled", &config.prefetch_enabled);
    f.number("min_value", -1e18, &p.min_value);
    f.bytes("max_bytes_per_plan", 0, &p.max_bytes_per_plan);
    f.time_ms("lead_time_ms", 0, &p.lead_time_ms);
    if (!f.finish()) return std::nullopt;
  }

  if (!top.finish()) return std::nullopt;
  return config;
}

std::optional<CacheConfig> CacheConfig::load(const std::string& path,
                                             std::string* error) {
  std::optional<JsonValue> doc =
      jsoncfg::load_object(path, "cache config", error);
  if (!doc.has_value()) return std::nullopt;
  std::string why;
  auto config = from_value(*doc, &why);
  if (!config.has_value()) {
    if (error != nullptr) *error = why;
    MFHTTP_WARN << "cache config '" << path << "': " << why;
  }
  return config;
}

std::string CacheConfig::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("cache").begin_object();
  w.key("capacity_bytes").value(static_cast<long long>(cache.capacity_bytes));
  w.key("default_ttl_ms").value(static_cast<long long>(cache.default_ttl_ms));
  w.key("stale_while_revalidate_ms")
      .value(static_cast<long long>(cache.stale_while_revalidate_ms));
  w.key("max_object_fraction").value(cache.max_object_fraction);
  w.key("cost_aware_admission").value(cache.cost_aware_admission);
  w.end_object();
  w.key("prefetch").begin_object();
  w.key("enabled").value(prefetch_enabled);
  w.key("min_value").value(prefetch.min_value);
  w.key("max_bytes_per_plan")
      .value(static_cast<long long>(prefetch.max_bytes_per_plan));
  w.key("lead_time_ms").value(static_cast<long long>(prefetch.lead_time_ms));
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace mfhttp::prefetch
