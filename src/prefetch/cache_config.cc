#include "prefetch/cache_config.h"

#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"

namespace mfhttp::prefetch {

namespace {

bool read_number(const JsonValue& obj, const char* key, double min, double* out,
                 std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_number() || v->number_value < min) {
    if (error != nullptr) {
      *error = std::string("'") + key + "' must be a number >= " +
               std::to_string(min);
    }
    return false;
  }
  *out = v->number_value;
  return true;
}

bool read_bytes(const JsonValue& obj, const char* key, double min, Bytes* out,
                std::string* error) {
  double d = static_cast<double>(*out);
  if (!read_number(obj, key, min, &d, error)) return false;
  *out = static_cast<Bytes>(d);
  return true;
}

bool read_time(const JsonValue& obj, const char* key, double min, TimeMs* out,
               std::string* error) {
  double d = static_cast<double>(*out);
  if (!read_number(obj, key, min, &d, error)) return false;
  *out = static_cast<TimeMs>(d);
  return true;
}

bool read_bool(const JsonValue& obj, const char* key, bool* out,
               std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;
  if (!v->is_bool()) {
    if (error != nullptr) *error = std::string("'") + key + "' must be a boolean";
    return false;
  }
  *out = v->bool_value;
  return true;
}

}  // namespace

std::optional<CacheConfig> CacheConfig::from_json(std::string_view json,
                                                  std::string* error) {
  JsonParseError parse_error;
  auto doc = parse_json(json, &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) *error = parse_error.to_string();
    return std::nullopt;
  }
  if (!doc->is_object()) {
    if (error != nullptr) *error = "top-level value must be an object";
    return std::nullopt;
  }

  CacheConfig config;
  if (const JsonValue* c = doc->find("cache"); c != nullptr) {
    if (!c->is_object()) {
      if (error != nullptr) *error = "'cache' must be an object";
      return std::nullopt;
    }
    CacheParams& p = config.cache;
    if (!read_bytes(*c, "capacity_bytes", 0, &p.capacity_bytes, error) ||
        !read_time(*c, "default_ttl_ms", 0, &p.default_ttl_ms, error) ||
        !read_time(*c, "stale_while_revalidate_ms", 0,
                   &p.stale_while_revalidate_ms, error) ||
        !read_number(*c, "max_object_fraction", 0, &p.max_object_fraction,
                     error) ||
        !read_bool(*c, "cost_aware_admission", &p.cost_aware_admission, error)) {
      if (error != nullptr) *error = "'cache': " + *error;
      return std::nullopt;
    }
    if (p.max_object_fraction <= 0 || p.max_object_fraction > 1) {
      if (error != nullptr) {
        *error = "'cache': 'max_object_fraction' must be in (0, 1]";
      }
      return std::nullopt;
    }
  }

  if (const JsonValue* f = doc->find("prefetch"); f != nullptr) {
    if (!f->is_object()) {
      if (error != nullptr) *error = "'prefetch' must be an object";
      return std::nullopt;
    }
    PrefetchBudget& p = config.prefetch;
    double min_value = p.min_value;
    if (!read_bool(*f, "enabled", &config.prefetch_enabled, error) ||
        !read_number(*f, "min_value", -1e18, &min_value, error) ||
        !read_bytes(*f, "max_bytes_per_plan", 0, &p.max_bytes_per_plan, error) ||
        !read_time(*f, "lead_time_ms", 0, &p.lead_time_ms, error)) {
      if (error != nullptr) *error = "'prefetch': " + *error;
      return std::nullopt;
    }
    p.min_value = min_value;
  }

  return config;
}

std::optional<CacheConfig> CacheConfig::load(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open file";
    MFHTTP_WARN << "cache config '" << path << "': cannot open file";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string why;
  auto config = from_json(buffer.str(), &why);
  if (!config.has_value()) {
    if (error != nullptr) *error = why;
    MFHTTP_WARN << "cache config '" << path << "': " << why;
  }
  return config;
}

std::string CacheConfig::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("cache").begin_object();
  w.key("capacity_bytes").value(static_cast<long long>(cache.capacity_bytes));
  w.key("default_ttl_ms").value(static_cast<long long>(cache.default_ttl_ms));
  w.key("stale_while_revalidate_ms")
      .value(static_cast<long long>(cache.stale_while_revalidate_ms));
  w.key("max_object_fraction").value(cache.max_object_fraction);
  w.key("cost_aware_admission").value(cache.cost_aware_admission);
  w.end_object();
  w.key("prefetch").begin_object();
  w.key("enabled").value(prefetch_enabled);
  w.key("min_value").value(prefetch.min_value);
  w.key("max_bytes_per_plan")
      .value(static_cast<long long>(prefetch.max_bytes_per_plan));
  w.key("lead_time_ms").value(static_cast<long long>(prefetch.lead_time_ms));
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace mfhttp::prefetch
