#include "prefetch/cache_experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "http/cache.h"
#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "net/link.h"
#include "overload/admission.h"
#include "prefetch/planner.h"
#include "sim/arrivals.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mfhttp::prefetch {

namespace {

struct Outcome {
  bool done = false;
  FetchResult result;
};

}  // namespace

const char* to_string(CacheArm arm) {
  switch (arm) {
    case CacheArm::kNoCache: return "no-cache";
    case CacheArm::kCache: return "cache";
    case CacheArm::kCachePrefetch: return "cache+prefetch";
  }
  return "?";
}

CacheExperimentConfig::CacheExperimentConfig() {
  // Driver-scaled defaults: capacity holds roughly half the catalog (so
  // eviction and admission actually run), TTL covers a fraction of the
  // horizon (so revalidation actually runs), and the prefetch budget allows
  // a handful of warm-ups per prediction.
  cache.cache.capacity_bytes = 1'200'000;
  cache.cache.default_ttl_ms = 6'000;
  cache.cache.stale_while_revalidate_ms = 2'000;
  cache.cache.max_object_fraction = 0.25;
  cache.cache.cost_aware_admission = true;
  cache.prefetch.min_value = 0.0;
  cache.prefetch.max_bytes_per_plan = 250'000;
  cache.prefetch.lead_time_ms = 300;
}

std::string CacheExperimentResult::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("arm").value(arm);
  w.key("trace").value(trace);
  w.key("sessions").value(sessions);
  w.key("requests").value(requests);
  w.key("completed").value(completed);
  w.key("failed").value(failed);
  w.key("on_time").value(on_time);
  w.key("p50_load_ms").value(p50_load_ms);
  w.key("p99_load_ms").value(p99_load_ms);
  w.key("on_time_bytes").value(static_cast<long long>(on_time_bytes));
  w.key("goodput_bytes_per_s").value(goodput_bytes_per_s);
  w.key("makespan_ms").value(static_cast<long long>(makespan_ms));
  w.key("server_link_bytes").value(static_cast<long long>(server_link_bytes));
  w.key("client_link_bytes").value(static_cast<long long>(client_link_bytes));
  w.key("total_link_bytes").value(static_cast<long long>(total_link_bytes));
  w.key("cache_hits").value(cache_hits);
  w.key("cache_misses").value(cache_misses);
  w.key("stale_served").value(stale_served);
  w.key("revalidations").value(revalidations);
  w.key("evictions").value(evictions);
  w.key("prefetch_issued").value(prefetch_issued);
  w.key("prefetch_denied").value(prefetch_denied);
  w.key("prefetch_useful").value(prefetch_useful);
  w.key("prefetch_wasted_bytes").value(static_cast<long long>(prefetch_wasted_bytes));
  w.end_object();
  return w.str();
}

CacheExperimentResult run_cache_experiment(const CacheExperimentConfig& config) {
  Simulator sim;

  // Shared catalog with Zipf popularity.
  Rng master(config.seed);
  Rng size_rng = master.fork();
  ObjectStore store;
  std::vector<std::string> paths;
  std::vector<Bytes> sizes;
  std::vector<double> popularity;
  for (int i = 0; i < config.catalog_size; ++i) {
    const std::string path = "/obj/" + std::to_string(i) + ".bin";
    const Bytes size = static_cast<Bytes>(
        size_rng.uniform(static_cast<double>(config.min_object_bytes),
                         static_cast<double>(config.max_object_bytes)));
    store.put(path, size);
    paths.push_back(path);
    sizes.push_back(size);
    popularity.push_back(1.0 / std::pow(static_cast<double>(i + 1), config.zipf_s));
  }

  // Shared origin hop; per-session client links.
  Link server_link(sim, {BandwidthTrace::constant(config.server_bytes_per_s),
                         config.server_latency_ms, 5, Link::Sharing::kFifo});
  SimHttpOrigin origin(sim, &store, &server_link, {config.origin_delay_ms});

  const bool with_cache = config.arm != CacheArm::kNoCache;
  const bool with_prefetch = config.arm == CacheArm::kCachePrefetch;
  std::unique_ptr<HttpCache> cache;
  if (with_cache) cache = std::make_unique<HttpCache>(config.cache.cache);

  overload::AdmissionParams admission_params;
  admission_params.max_inflight_upstream = config.max_inflight_upstream;
  admission_params.seed = config.seed;
  overload::AdmissionController admission(admission_params);

  // One pipeline per session, all sharing the origin, the validating cache,
  // and the admission front door — the middleware-server deployment.
  std::vector<std::unique_ptr<FetchPipeline>> pipelines;
  for (int s = 0; s < config.sessions; ++s) {
    FetchPipelineBuilder builder(sim, &origin);
    builder.client_link(Link::Params{config.client_bandwidth,
                                     config.client_latency_ms, 5,
                                     Link::Sharing::kFairShare});
    if (with_cache) builder.with_cache(cache.get());
    builder.with_admission(&admission);
    pipelines.push_back(builder.build());
  }

  PrefetchPlanner planner(config.cache.prefetch);

  // Pre-draw every session's arrival schedule and object sequence so the
  // trace is a pure function of the seed, identical across arms.
  std::vector<Outcome> outcomes;
  for (int s = 0; s < config.sessions; ++s) {
    Rng arrivals_rng = master.fork();
    Rng object_rng = master.fork();
    Rng predict_rng = master.fork();
    const std::string session = "s" + std::to_string(s);
    MitmProxy* proxy = &pipelines[static_cast<std::size_t>(s)]->proxy();
    for (TimeMs at :
         poisson_arrivals({config.rate_per_session_per_s, 0, config.horizon_ms},
                          arrivals_rng)) {
      const std::size_t obj = object_rng.weighted_index(popularity);
      const std::string url = "http://origin.test" + paths[obj];

      // Prediction stream: announced lead_ms early, sometimes naming a decoy.
      // Drawn for every arm so the object sequence stays identical; only the
      // prefetch arm acts on it.
      const bool correct = predict_rng.chance(config.prediction_accuracy);
      const std::size_t predicted =
          correct ? obj
                  : static_cast<std::size_t>(predict_rng.uniform_int(
                        0, static_cast<std::int64_t>(paths.size()) - 1));
      if (with_prefetch && at > config.prediction_lead_ms) {
        const TimeMs announce_at = at - config.prediction_lead_ms;
        PrefetchCandidate candidate;
        candidate.object_index = predicted;
        candidate.url = "http://origin.test" + paths[predicted];
        candidate.bytes = sizes[predicted];
        candidate.entry_time_ms = static_cast<double>(config.prediction_lead_ms);
        candidate.value = 1.0;
        sim.schedule_at(announce_at, [&sim, &planner, proxy, candidate] {
          PrefetchPlan plan = planner.plan({candidate}, sim.now());
          for (const PrefetchItem& item : plan.items) {
            sim.schedule_at(item.launch_at_ms,
                            [proxy, url = item.url] { proxy->prefetch(url); });
          }
        });
      }

      const std::size_t index = outcomes.size();
      outcomes.push_back({false, {}});
      sim.schedule_at(at, [proxy, &outcomes, index, session, url] {
        HttpRequest request = HttpRequest::get(url);
        request.set_session(session);
        request.set_priority_hint(overload::kPriorityViewport);
        FetchCallbacks cb;
        cb.on_complete = [&outcomes, index](const FetchResult& r) {
          outcomes[index].done = true;
          outcomes[index].result = r;
        };
        proxy->fetch(request, std::move(cb));
      });
    }
  }

  sim.run();

  CacheExperimentResult out;
  out.arm = to_string(config.arm);
  out.trace = config.trace_name;
  out.sessions = config.sessions;
  out.requests = outcomes.size();

  Samples load_ms;
  for (const Outcome& o : outcomes) {
    if (!o.done || o.result.status != 200) {
      ++out.failed;
      continue;
    }
    ++out.completed;
    out.makespan_ms = std::max(out.makespan_ms, o.result.complete_ms);
    load_ms.add(static_cast<double>(o.result.latency_ms()));
    if (o.result.latency_ms() <= config.viewport_deadline_ms) {
      ++out.on_time;
      out.on_time_bytes += o.result.body_size;
    }
  }
  if (out.makespan_ms == 0) out.makespan_ms = config.horizon_ms;
  out.goodput_bytes_per_s = static_cast<double>(out.on_time_bytes) * 1000.0 /
                            static_cast<double>(out.makespan_ms);
  if (load_ms.count() > 0) {
    out.p50_load_ms = load_ms.percentile(50);
    out.p99_load_ms = load_ms.percentile(99);
  }

  out.server_link_bytes = server_link.bytes_delivered_total();
  for (const auto& pipeline : pipelines)
    out.client_link_bytes += pipeline->client_link().bytes_delivered_total();
  out.total_link_bytes = out.server_link_bytes + out.client_link_bytes;

  if (cache != nullptr) {
    const HttpCache::Stats cs = cache->stats();
    out.cache_hits = cs.hits;
    out.cache_misses = cs.misses;
    out.stale_served = cs.stale_served;
    out.revalidations = cs.revalidations;
    out.evictions = cs.evictions;
    out.prefetch_useful = cs.prefetch_useful;
    out.prefetch_wasted_bytes =
        cs.prefetch_wasted_bytes + cache->prefetched_unused_bytes();
  }
  for (const auto& pipeline : pipelines) {
    out.prefetch_issued += pipeline->proxy().stats().prefetches;
    out.prefetch_denied += pipeline->proxy().stats().prefetch_denied;
  }
  return out;
}

}  // namespace mfhttp::prefetch
