// JSON-loadable configuration for the cache + prefetch subsystem, in the
// same shape as overload::OverloadConfig (overload/config.h) and loaded via
// the shared --cache-config flag (cli/standard_options.h):
//
//   {
//     "cache": {
//       "capacity_bytes": 2000000, "default_ttl_ms": 6000,
//       "stale_while_revalidate_ms": 2000, "max_object_fraction": 0.25,
//       "cost_aware_admission": true
//     },
//     "prefetch": {
//       "enabled": true, "min_value": 0.0,
//       "max_bytes_per_plan": 500000, "lead_time_ms": 300
//     }
//   }
//
// Both sections and every field are optional; absent fields keep their
// defaults. Malformed JSON reports "line L, column C: why"; schema
// violations name the offending field.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "http/cache.h"
#include "prefetch/planner.h"

namespace mfhttp {
struct JsonValue;
}

namespace mfhttp::prefetch {

struct CacheConfig {
  CacheParams cache;
  PrefetchBudget prefetch;
  bool prefetch_enabled = true;

  static std::optional<CacheConfig> from_json(std::string_view json,
                                              std::string* error = nullptr);
  // Same schema over an already-parsed node, for configs that embed a cache
  // section (scenario::ScenarioSpec).
  static std::optional<CacheConfig> from_value(const JsonValue& doc,
                                               std::string* error = nullptr);
  static std::optional<CacheConfig> load(const std::string& path,
                                         std::string* error = nullptr);
  std::string to_json() const;
};

}  // namespace mfhttp::prefetch
