// Prediction-driven prefetch planning (ISSUE 4 tentpole).
//
// The scroll tracker tells the flow controller *when* each object will enter
// the viewport; the knapsack tells it *which* version carries positive
// p·Q − q·C value. The PrefetchPlanner turns those candidates into a
// budgeted speculative-fetch schedule: highest value-per-byte first, capped
// by a byte budget per plan, each launch timed lead_time_ms before the
// predicted entry so the middleware cache is warm exactly when the request
// arrives. Whether a planned item may actually launch is decided later, at
// launch time, by the admission controller's headroom probe
// (overload::AdmissionController::allow_prefetch) — planning is free,
// fetching is not.
#pragma once

#include <string>
#include <vector>

#include "core/flow_controller.h"
#include "util/types.h"

namespace mfhttp::prefetch {

struct PrefetchBudget {
  // Candidates below this p·Q − q·C value are never worth speculative
  // bytes. 0 admits anything the optimizer itself selected.
  double min_value = 0.0;
  // Byte cap per plan; <= 0 means unlimited.
  Bytes max_bytes_per_plan = 0;
  // Launch this long before the predicted viewport-entry time.
  TimeMs lead_time_ms = 300;
};

struct PrefetchItem {
  std::string url;
  Bytes bytes = 0;
  TimeMs launch_at_ms = 0;  // absolute simulated time to issue the warm-up
  double value = 0;
  std::size_t object_index = 0;
};

struct PrefetchPlan {
  std::vector<PrefetchItem> items;  // ordered by launch time
  Bytes total_bytes = 0;
  std::size_t dropped = 0;  // candidates rejected by value or byte budget
};

class PrefetchPlanner {
 public:
  explicit PrefetchPlanner(PrefetchBudget budget = {});

  const PrefetchBudget& budget() const { return budget_; }

  // Budget the candidates of one scroll analysis. `now_ms` is the current
  // simulated time; entry times are relative to it (the analysis was just
  // produced). Admission is by value density (value per byte), so a cheap
  // thumbnail with modest value beats one giant tile of slightly higher
  // value — the same cost-awareness the cache's admission filter applies.
  PrefetchPlan plan(const std::vector<PrefetchCandidate>& candidates,
                    TimeMs now_ms) const;

 private:
  PrefetchBudget budget_;
};

}  // namespace mfhttp::prefetch
