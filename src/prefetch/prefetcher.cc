#include "prefetch/prefetcher.h"

#include <vector>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp::prefetch {

namespace {

obs::Counter& launched_counter() {
  static obs::Counter& c = obs::metrics().counter("prefetch.launched_total");
  return c;
}

obs::Counter& denied_counter() {
  static obs::Counter& c = obs::metrics().counter("prefetch.denied_total");
  return c;
}

obs::Counter& cancelled_counter() {
  static obs::Counter& c = obs::metrics().counter("prefetch.cancelled_total");
  return c;
}

}  // namespace

Prefetcher::Prefetcher(Simulator& sim, MitmProxy* proxy) : sim_(sim), proxy_(proxy) {
  MFHTTP_CHECK(proxy_ != nullptr);
}

Prefetcher::~Prefetcher() {
  for (auto& [url, event] : scheduled_) sim_.cancel(event);
  scheduled_.clear();
}

void Prefetcher::submit(const PrefetchPlan& plan) {
  std::unordered_set<std::string> keep;
  for (const PrefetchItem& item : plan.items) keep.insert(item.url);

  // The new prediction invalidates whatever the old one scheduled. Pending
  // launches die quietly; in-flight warm-ups are torn down at the proxy so
  // their upstream bytes stop moving.
  std::vector<std::string> stale;
  for (const auto& [url, event] : scheduled_)
    if (!keep.contains(url)) stale.push_back(url);
  for (const std::string& url : stale) {
    sim_.cancel(scheduled_[url]);
    scheduled_.erase(url);
    ++stats_.cancelled;
    cancelled_counter().inc();
    MFHTTP_TRACE << "prefetch cancel (rescheduled away) " << url;
  }
  for (auto it = launched_.begin(); it != launched_.end();) {
    if (!keep.contains(*it) && proxy_->cancel_prefetch(*it)) {
      ++stats_.cancelled;
      cancelled_counter().inc();
      MFHTTP_TRACE << "prefetch cancel (in flight) " << *it;
    }
    it = keep.contains(*it) ? std::next(it) : launched_.erase(it);
  }

  for (const PrefetchItem& item : plan.items) {
    if (scheduled_.contains(item.url) || launched_.contains(item.url)) continue;
    ++stats_.scheduled;
    const std::string url = item.url;
    const TimeMs at = std::max(item.launch_at_ms, sim_.now());
    scheduled_[url] = sim_.schedule_at(at, [this, url] { launch(url); });
  }
}

void Prefetcher::cancel_all() { submit(PrefetchPlan{}); }

void Prefetcher::launch(const std::string& url) {
  scheduled_.erase(url);
  if (proxy_->prefetch(url)) {
    ++stats_.launched;
    launched_counter().inc();
    launched_.insert(url);
  } else {
    ++stats_.denied;
    denied_counter().inc();
  }
}

}  // namespace mfhttp::prefetch
