// Unified 2-D scrolling animation: classifies a release velocity as drag or
// fling (per §3.3.1) and exposes the full predetermined viewport trajectory.
//
// The scalar kinematics (FlingModel / DragModel) act along the gesture
// direction; the 2-D displacement is d(t) * (v_x / v, v_y / v) as in §3.3.2.
// Displacements may be negative on either axis (the viewport can scroll in
// any direction).
#pragma once

#include <memory>

#include "geom/swept_region.h"
#include "geom/vec2.h"
#include "scroll/device_profile.h"
#include "scroll/drag.h"
#include "scroll/fling.h"
#include "util/types.h"

namespace mfhttp {

enum class ScrollKind { kNone, kDrag, kFling };

struct ScrollConfig {
  DeviceProfile device;
  FlingParams fling;
  DragParams drag;

  ScrollConfig() { fling.ppi = device.ppi; }
  explicit ScrollConfig(const DeviceProfile& d) : device(d) {
    fling.ppi = d.ppi;
  }
};

// Immutable description of one post-release scroll animation.
class ScrollAnimation {
 public:
  // No-op animation (kind()==kNone, zero duration/displacement).
  ScrollAnimation() = default;

  // velocity: release velocity in px/s on each axis (either sign).
  // A zero velocity yields kind()==kNone with zero duration/displacement.
  ScrollAnimation(Vec2 velocity, const ScrollConfig& config);

  ScrollKind kind() const { return kind_; }
  Vec2 release_velocity() const { return velocity_; }
  double initial_speed() const { return speed_; }

  // Total animation duration in ms — T(v) for a fling.
  double duration_ms() const { return duration_ms_; }

  // Total scalar distance along the gesture direction.
  double total_distance() const { return total_distance_; }

  // Total signed 2-D displacement (D_x(v), D_y(v)).
  Vec2 total_displacement() const { return direction_ * total_distance_; }

  // Signed 2-D displacement after t ms — (d_x(t), d_y(t)).
  Vec2 displacement_at(double t_ms) const { return direction_ * distance_at(t_ms); }

  // Scalar distance along the gesture direction after t ms.
  double distance_at(double t_ms) const;

  // Scalar speed (px/s) after t ms.
  double speed_at(double t_ms) const;

  // Inverse of distance_at: the earliest time (ms) at which the scalar
  // distance reaches `dist_px`. Clamps to [0, duration_ms()]; distances
  // beyond the total return the full duration.
  double time_for_distance(double dist_px) const;

  // The region a viewport starting at `viewport` covers during this scroll.
  SweptRegion swept_region(const Rect& viewport) const {
    return SweptRegion{viewport, total_displacement()};
  }

 private:
  Vec2 velocity_;
  double speed_ = 0;
  Vec2 direction_;  // unit vector
  ScrollKind kind_ = ScrollKind::kNone;
  double duration_ms_ = 0;
  double total_distance_ = 0;
  // At most one of these is engaged, matching kind_.
  std::shared_ptr<const FlingModel> fling_;
  std::shared_ptr<const DragModel> drag_;
};

}  // namespace mfhttp
