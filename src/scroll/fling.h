// Android fling deceleration model — Eqs. (1)-(5) of the paper, which the
// authors extracted from AOSP's OverScroller flywheel physics.
//
// Given the initial fling speed v (px/s) the entire animation is
// deterministic:
//
//   l(v) = ln(0.35 v / (Fric * P_COEF))                           (1)
//   T(v) = 1000 * exp(l / (DECEL - 1))            [milliseconds]  (2)
//   D(v) = Fric * P_COEF * exp(DECEL/(DECEL-1) * l)  [pixels]     (3)
//        = Fric * P_COEF * (T(v)/1000)^DECEL                      (4)
//   d(t) = D(v) - Fric * P_COEF * ((T(v)-t)/1000)^DECEL           (5)
//
// with DECEL = ln(0.78)/ln(0.9) and P_COEF = 9.80665 * 39.37 * ppi * 0.84.
#pragma once

#include "util/types.h"

namespace mfhttp {

// DECELERATION_RATE from AOSP.
double fling_deceleration_rate();

struct FlingParams {
  double friction = 0.015;  // ViewConfiguration.getScrollFriction() default
  double ppi = 493;         // pixel density of the device

  // P_COEF = G * inches-per-meter * ppi * tuning, from the paper.
  double physical_coefficient() const {
    return 9.80665 * 39.37 * ppi * 0.84;
  }
};

class FlingModel {
 public:
  // speed must be > 0 (px/s). Whether a gesture *is* a fling is decided by
  // the gesture recognizer against DeviceProfile::min_fling_velocity_px_s().
  FlingModel(double initial_speed_px_s, const FlingParams& params);

  double initial_speed() const { return v0_; }

  // l(v) — Eq. (1).
  double log_term() const { return l_; }

  // Total animation duration T(v) in ms — Eq. (2).
  double duration_ms() const { return duration_ms_; }

  // Total scroll distance D(v) in px — Eq. (3)/(4).
  double total_distance_px() const { return distance_px_; }

  // Distance scrolled after t ms — Eq. (5). Clamped to [0, T(v)].
  double distance_at(double t_ms) const;

  // Instantaneous speed (px/s) after t ms (analytic derivative of Eq. 5).
  double speed_at(double t_ms) const;

  // Remaining scroll distance if the fling were interrupted at t ms.
  double remaining_distance_at(double t_ms) const {
    return total_distance_px() - distance_at(t_ms);
  }

 private:
  double v0_;
  double coeff_;        // Fric * P_COEF
  double l_;            // Eq. (1)
  double duration_ms_;  // Eq. (2)
  double distance_px_;  // Eq. (3)
};

}  // namespace mfhttp
