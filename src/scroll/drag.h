// Post-release deceleration of a *drag* gesture.
//
// The paper (§3.3.1): "For dragging, the screen scrolling speed will
// experience a uniform deceleration, which can be easily interpreted given
// the deceleration parameter and initial speed. As the deceleration of a
// dragging event is usually short and has very limited impact on viewport
// movement…". We model exactly that: constant deceleration `a` from release
// speed v, so T = v/a, D = v^2 / (2a), d(t) = v t - a t^2 / 2.
#pragma once

#include "util/types.h"

namespace mfhttp {

struct DragParams {
  // Uniform deceleration in px/s^2. Default tuned so a borderline drag
  // (just under the fling threshold) settles within ~100 ms.
  double deceleration_px_s2 = 4000.0;
};

class DragModel {
 public:
  DragModel(double release_speed_px_s, const DragParams& params);

  double initial_speed() const { return v0_; }
  double duration_ms() const { return duration_ms_; }
  double total_distance_px() const { return distance_px_; }

  // Distance travelled after t ms (clamped to the animation).
  double distance_at(double t_ms) const;

  // Instantaneous speed (px/s) after t ms.
  double speed_at(double t_ms) const;

 private:
  double v0_;
  double a_;  // px/s^2
  double duration_ms_;
  double distance_px_;
};

}  // namespace mfhttp
