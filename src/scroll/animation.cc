#include "scroll/animation.h"

#include <algorithm>

namespace mfhttp {

ScrollAnimation::ScrollAnimation(Vec2 velocity, const ScrollConfig& config)
    : velocity_(velocity), speed_(velocity.norm()), direction_(velocity.normalized()) {
  if (speed_ <= 0) return;  // kNone
  double capped =
      std::min(speed_, config.device.max_fling_velocity_px_s());
  if (capped >= config.device.min_fling_velocity_px_s()) {
    kind_ = ScrollKind::kFling;
    fling_ = std::make_shared<FlingModel>(capped, config.fling);
    duration_ms_ = fling_->duration_ms();
    total_distance_ = fling_->total_distance_px();
  } else {
    kind_ = ScrollKind::kDrag;
    drag_ = std::make_shared<DragModel>(capped, config.drag);
    duration_ms_ = drag_->duration_ms();
    total_distance_ = drag_->total_distance_px();
  }
}

double ScrollAnimation::distance_at(double t_ms) const {
  switch (kind_) {
    case ScrollKind::kNone: return 0;
    case ScrollKind::kDrag: return drag_->distance_at(t_ms);
    case ScrollKind::kFling: return fling_->distance_at(t_ms);
  }
  return 0;
}

double ScrollAnimation::time_for_distance(double dist_px) const {
  if (dist_px <= 0 || total_distance_ <= 0) return 0;
  if (dist_px >= total_distance_) return duration_ms_;
  // distance_at is continuous and nondecreasing; bisect to sub-ms precision.
  double lo = 0, hi = duration_ms_;
  for (int iter = 0; iter < 64 && hi - lo > 0.25; ++iter) {
    double mid = (lo + hi) / 2;
    if (distance_at(mid) < dist_px)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

double ScrollAnimation::speed_at(double t_ms) const {
  switch (kind_) {
    case ScrollKind::kNone: return 0;
    case ScrollKind::kDrag: return drag_->speed_at(t_ms);
    case ScrollKind::kFling: return fling_->speed_at(t_ms);
  }
  return 0;
}

}  // namespace mfhttp
