// Physical display parameters of the simulated mobile device.
//
// The fling equations depend on pixel density (ppi), and Android scales its
// gesture thresholds by density (px per dp = ppi / 160). The paper's test
// device is a Nexus 6 (1440x2560 @ 493 ppi, Android 7.0), provided here as
// the default profile.
#pragma once

namespace mfhttp {

struct DeviceProfile {
  double screen_w_px = 1440;
  double screen_h_px = 2560;
  double ppi = 493;

  // Android density scale factor (px per dp).
  double density() const { return ppi / 160.0; }

  // Android's ViewConfiguration MINIMUM_FLING_VELOCITY is 50 dp/s; the paper
  // quotes the 50 px/s baseline "scaled under different configurations based
  // on the actual screen resolution".
  double min_fling_velocity_px_s() const { return 50.0 * density(); }

  // Maximum fling velocity Android will report (8000 dp/s).
  double max_fling_velocity_px_s() const { return 8000.0 * density(); }

  // Touch slop: finger movement below this is a tap, not a scroll (8 dp).
  double touch_slop_px() const { return 8.0 * density(); }

  static DeviceProfile nexus6() { return DeviceProfile{1440, 2560, 493}; }
  static DeviceProfile nexus5() { return DeviceProfile{1080, 1920, 445}; }
  static DeviceProfile tablet10() { return DeviceProfile{1600, 2560, 300}; }
  static DeviceProfile lowend() { return DeviceProfile{720, 1280, 294}; }
};

}  // namespace mfhttp
