#include "scroll/drag.h"

#include <algorithm>

#include "util/check.h"

namespace mfhttp {

DragModel::DragModel(double release_speed_px_s, const DragParams& params)
    : v0_(release_speed_px_s), a_(params.deceleration_px_s2) {
  MFHTTP_CHECK_MSG(v0_ >= 0, "drag speed must be non-negative");
  MFHTTP_CHECK_MSG(a_ > 0, "deceleration must be positive");
  duration_ms_ = v0_ / a_ * 1000.0;
  distance_px_ = v0_ * v0_ / (2.0 * a_);
}

double DragModel::distance_at(double t_ms) const {
  double t_s = std::clamp(t_ms, 0.0, duration_ms_) / 1000.0;
  return v0_ * t_s - 0.5 * a_ * t_s * t_s;
}

double DragModel::speed_at(double t_ms) const {
  if (t_ms >= duration_ms_) return 0.0;
  double t_s = std::max(t_ms, 0.0) / 1000.0;
  return v0_ - a_ * t_s;
}

}  // namespace mfhttp
