#include "scroll/fling.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mfhttp {

double fling_deceleration_rate() {
  static const double rate = std::log(0.78) / std::log(0.9);
  return rate;
}

FlingModel::FlingModel(double initial_speed_px_s, const FlingParams& params)
    : v0_(initial_speed_px_s), coeff_(params.friction * params.physical_coefficient()) {
  MFHTTP_CHECK_MSG(v0_ > 0, "fling requires positive initial speed");
  MFHTTP_CHECK_MSG(coeff_ > 0, "friction and ppi must be positive");
  const double decel = fling_deceleration_rate();
  l_ = std::log(0.35 * v0_ / coeff_);                          // Eq. (1)
  duration_ms_ = 1000.0 * std::exp(l_ / (decel - 1.0));        // Eq. (2)
  distance_px_ = coeff_ * std::exp(decel / (decel - 1.0) * l_);  // Eq. (3)
}

double FlingModel::distance_at(double t_ms) const {
  const double decel = fling_deceleration_rate();
  double t = std::clamp(t_ms, 0.0, duration_ms_);
  // Eq. (5): d(t) = D(v) - coeff * ((T - t) / 1000)^DECEL.
  return distance_px_ - coeff_ * std::pow((duration_ms_ - t) / 1000.0, decel);
}

double FlingModel::speed_at(double t_ms) const {
  const double decel = fling_deceleration_rate();
  if (t_ms >= duration_ms_) return 0.0;
  double t = std::max(t_ms, 0.0);
  // d/dt of Eq. (5), converted to px/s (t in ms => factor 1000 cancels one
  // power of 1000 from the ((T-t)/1000)^DECEL term).
  return coeff_ * decel * std::pow((duration_ms_ - t) / 1000.0, decel - 1.0);
}

}  // namespace mfhttp
