#include "geom/rect.h"

#include <algorithm>

namespace mfhttp {

bool Rect::overlaps(const Rect& o) const {
  return x < o.right() && o.x < right() && y < o.bottom() && o.y < bottom();
}

Rect Rect::intersection(const Rect& o) const {
  double l = std::max(x, o.x);
  double t = std::max(y, o.y);
  double r = std::min(right(), o.right());
  double b = std::min(bottom(), o.bottom());
  if (r <= l || b <= t) return {};
  return {l, t, r - l, b - t};
}

double Rect::overlap_area(const Rect& o) const {
  // Eq. (6): [min(y_i+h_i, y_p+h_p) - max(y_i, y_p)] *
  //          [min(x_i+w_i, x_p+w_p) - max(x_i, x_p)], clamped at 0.
  double dy = std::min(bottom(), o.bottom()) - std::max(y, o.y);
  double dx = std::min(right(), o.right()) - std::max(x, o.x);
  if (dx <= 0 || dy <= 0) return 0;
  return dx * dy;
}

Rect Rect::union_with(const Rect& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  double l = std::min(x, o.x);
  double t = std::min(y, o.y);
  double r = std::max(right(), o.right());
  double b = std::max(bottom(), o.bottom());
  return {l, t, r - l, b - t};
}

}  // namespace mfhttp
