// Axis-aligned rectangle in screen coordinates (left-top origin, y down),
// the shape of both viewports and media objects in the paper (§3.3.3).
#pragma once

#include "geom/vec2.h"

namespace mfhttp {

struct Rect {
  double x = 0;  // left
  double y = 0;  // top
  double w = 0;
  double h = 0;

  constexpr Rect() = default;
  constexpr Rect(double x_, double y_, double w_, double h_)
      : x(x_), y(y_), w(w_), h(h_) {}

  static constexpr Rect from_corners(Vec2 top_left, Vec2 bottom_right) {
    return {top_left.x, top_left.y, bottom_right.x - top_left.x,
            bottom_right.y - top_left.y};
  }

  constexpr bool operator==(const Rect&) const = default;

  constexpr double left() const { return x; }
  constexpr double top() const { return y; }
  constexpr double right() const { return x + w; }
  constexpr double bottom() const { return y + h; }
  constexpr Vec2 top_left() const { return {x, y}; }
  constexpr Vec2 center() const { return {x + w / 2, y + h / 2}; }
  constexpr double area() const { return w * h; }
  constexpr bool empty() const { return w <= 0 || h <= 0; }

  constexpr Rect translated(Vec2 d) const { return {x + d.x, y + d.y, w, h}; }

  // Expand by m on every side (negative m shrinks).
  constexpr Rect inflated(double m) const { return {x - m, y - m, w + 2 * m, h + 2 * m}; }

  constexpr bool contains(Vec2 p) const {
    return p.x >= x && p.x <= right() && p.y >= y && p.y <= bottom();
  }

  constexpr bool contains(const Rect& o) const {
    return o.x >= x && o.right() <= right() && o.y >= y && o.bottom() <= bottom();
  }

  // True iff the rectangles share positive area (touching edges do not count;
  // matches the strict inequalities in the paper's in-viewport conditions).
  bool overlaps(const Rect& o) const;

  // Intersection rectangle; empty (w==h==0 at origin) if no positive overlap.
  Rect intersection(const Rect& o) const;

  // Overlap area — Eq. (6) of the paper when applied to object vs viewport.
  double overlap_area(const Rect& o) const;

  // Smallest rectangle containing both.
  Rect union_with(const Rect& o) const;
};

}  // namespace mfhttp
