// 2-D vector over doubles (screen coordinates: x grows right, y grows down,
// matching Android's view coordinate system).
#pragma once

#include <cmath>

namespace mfhttp {

struct Vec2 {
  double x = 0;
  double y = 0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  double norm() const { return std::hypot(x, y); }
  constexpr double norm_sq() const { return x * x + y * y; }
  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }

  // Unit vector; (0,0) maps to (0,0).
  Vec2 normalized() const {
    double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

}  // namespace mfhttp
