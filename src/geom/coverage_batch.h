// Batched swept-viewport coverage over structure-of-arrays inputs.
//
// The scalar predicates in geom/swept_region.h answer "does object i appear
// in the sweeping viewport, and when does it first appear?" one rectangle at
// a time. The planner hot path asks those questions for every media object
// on a page on every replan, so this header provides the same answers over
// contiguous x0/y0/x1/y1 arrays in one branch-light pass per sweep.
//
// Bit-exactness contract: for every object the batch kernels compute the
// SAME floating-point expressions in the SAME order as the scalar
// implementation (a = (o - p) - extent; b = x1 - p where x1 stores the sum
// o + o_extent produced at build time; t0 = a/d; t1 = b/d; min/max/clamp).
// The uniform `d == 0` branches are hoisted out of the per-object loop via
// specialization, which changes control flow but not arithmetic. The scalar
// functions remain the test oracle; tests/test_geom.cc asserts bit-identical
// results across random sweeps.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/swept_region.h"

namespace mfhttp::geom {

// One page (or tile grid) worth of rectangles, in SoA form. x1/y1 must hold
// exactly x + w / y + h as computed in double precision at build time, so
// the kernels reproduce the scalar `o + o_extent - p` bit-for-bit.
//
// `degenerate` marks degenerate rectangles (w <= 0 || h <= 0, evaluated on
// the ORIGINAL extents before the x1/y1 sums — the flag, not x1 <= x0, is
// authoritative, because a denormal-width rect at a large offset can round
// to x1 == x0). It is carried as a double guard value so the kernels stay
// homogeneous double-lane loops: -inf for a live rectangle, +inf for a
// degenerate one. Folding it with one `lo = max(lo, guard)` forces the
// combined interval empty (lo >= hi) exactly like the scalar empty flag,
// with no integer lanes for the vectorizer to trip over. nullptr means
// "no rectangle is degenerate".
struct RectSoA {
  const double* x0 = nullptr;
  const double* y0 = nullptr;
  const double* x1 = nullptr;
  const double* y1 = nullptr;
  const double* degenerate = nullptr;  // optional: -inf live, +inf degenerate
  std::size_t count = 0;
};

// Batched intersects_swept_region: out_involved[i] = 1 iff object i shares
// positive area with the swept region. Returns the number of involved
// objects. Bit-identical to calling the scalar predicate per object.
std::size_t intersects_swept_region_batch(const SweptRegion& sweep,
                                          const RectSoA& objects,
                                          std::uint8_t* out_involved);

// Batched first_overlap_fraction: out_fraction[i] is the earliest sweep
// fraction t in [0, 1] at which object i overlaps the viewport, or a
// negative value if it never appears. Bit-identical to the scalar function.
void first_overlap_fraction_batch(const SweptRegion& sweep,
                                  const RectSoA& objects,
                                  double* out_fraction);

}  // namespace mfhttp::geom
