#include "geom/coverage_batch.h"

#include <algorithm>
#include <limits>

namespace mfhttp::geom {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The public entry points are multiversioned (see MFHTTP_BATCH_CLONES
// below), but GCC only compiles the ISA-specific clone bodies — helpers that
// stay out-of-line are emitted once, for the baseline ISA, and every clone
// calls the same scalar copy. Forcing the kernel helpers inline is therefore
// load-bearing: it is what puts the loop inside each clone so the avx2 copy
// is actually vectorized for avx2.
#if defined(__GNUC__)
#define MFHTTP_BATCH_INLINE inline __attribute__((always_inline))
#else
#define MFHTTP_BATCH_INLINE inline
#endif

// Per-object slab test with the uniform branches hoisted to template
// parameters: displacement-axis degeneracy (DX_ZERO/DY_ZERO) and whether a
// degenerate-rect guard array is present (HAS_GUARD). Every lane inside the
// loop is a double — comparisons feed FP selects, never integer
// accumulators, and "this object is dead" is expressed by forcing the
// combined interval empty (lo = +inf >= hi) rather than by a flag, so the
// body is a straight line of sub/div/min/max/blend the auto-vectorizer
// handles whole.
//
// Expression shapes mirror geom/swept_region.cc exactly:
//   a  = (o - p) - extent           [left-to-right as written there]
//   b  = o + o_extent - p  ==  x1 - p   [x1 stores the sum from build time]
//   t0 = a / d; t1 = b / d; lo = min(t0, t1); hi = max(t0, t1)
// then lo = max(lo_x, lo_y), hi = min(hi_x, hi_y), empty iff lo >= hi.
// A d == 0 axis contributes (-inf, +inf) when the viewport band overlaps
// the object on that axis (non-constraining, as in the scalar code) and
// (+inf, +inf) when it does not (forces empty, the scalar's axis-empty
// flag). The degenerate guard folds in the same way: max(lo, -inf) is a
// no-op for live rects, max(lo, +inf) forces empty for degenerate ones.
template <bool DX_ZERO, bool DY_ZERO, bool HAS_GUARD, typename Emit>
MFHTTP_BATCH_INLINE void sweep_pass(const SweptRegion& sweep, const RectSoA& o,
                                    Emit emit) {
  const double px = sweep.viewport.x, ex = sweep.viewport.w;
  const double py = sweep.viewport.y, ey = sweep.viewport.h;
  const double dx = sweep.displacement.x, dy = sweep.displacement.y;
  for (std::size_t i = 0; i < o.count; ++i) {
    const double ax = (o.x0[i] - px) - ex;
    const double bx = o.x1[i] - px;
    const double ay = (o.y0[i] - py) - ey;
    const double by = o.y1[i] - py;

    // A d == 0 axis contributes lo = -inf (non-constraining) when the band
    // overlaps the object and lo = +inf (forces empty) when it does not; its
    // hi is +inf either way, so it is dropped from the hi combine entirely
    // rather than folded as min(+inf, ...). Two deliberate shapes for GCC 12:
    // the overlap test is two single-compare FP selects, not
    // `(ax < 0) & (0 < bx) ? ... : ...` (the fused form routes through an
    // integer AND the vectorizer treats as control flow), and no min/max is
    // ever taken against a constant infinity (that select pattern defeats
    // loop vectorization wholesale).
    double lo_x, hi_x, lo_y, hi_y;
    if constexpr (DX_ZERO) {
      const double t = ax < 0 ? -kInf : kInf;
      lo_x = 0 < bx ? t : kInf;
    } else {
      const double t0 = ax / dx;
      const double t1 = bx / dx;
      lo_x = std::min(t0, t1);
      hi_x = std::max(t0, t1);
    }
    if constexpr (DY_ZERO) {
      const double t = ay < 0 ? -kInf : kInf;
      lo_y = 0 < by ? t : kInf;
    } else {
      const double t0 = ay / dy;
      const double t1 = by / dy;
      lo_y = std::min(t0, t1);
      hi_y = std::max(t0, t1);
    }
    double lo = std::max(lo_x, lo_y);
    if constexpr (HAS_GUARD) lo = std::max(lo, o.degenerate[i]);
    double hi;
    if constexpr (DX_ZERO && DY_ZERO)
      hi = kInf;
    else if constexpr (DX_ZERO)
      hi = hi_y;
    else if constexpr (DY_ZERO)
      hi = hi_x;
    else
      hi = std::min(hi_x, hi_y);
    emit(i, lo, hi);
  }
}

template <bool HAS_GUARD, typename Emit>
MFHTTP_BATCH_INLINE void dispatch_axes(const SweptRegion& sweep,
                                       const RectSoA& objects, Emit emit) {
  const bool dx0 = sweep.displacement.x == 0;
  const bool dy0 = sweep.displacement.y == 0;
  if (dx0 && dy0)
    sweep_pass<true, true, HAS_GUARD>(sweep, objects, emit);
  else if (dx0)
    sweep_pass<true, false, HAS_GUARD>(sweep, objects, emit);
  else if (dy0)
    sweep_pass<false, true, HAS_GUARD>(sweep, objects, emit);
  else
    sweep_pass<false, false, HAS_GUARD>(sweep, objects, emit);
}

template <typename Emit>
MFHTTP_BATCH_INLINE void dispatch(const SweptRegion& sweep,
                                  const RectSoA& objects, Emit emit) {
  if (objects.degenerate != nullptr)
    dispatch_axes<true>(sweep, objects, emit);
  else
    dispatch_axes<false>(sweep, objects, emit);
}

}  // namespace

// Runtime ISA dispatch: one portable binary, with the loop compiled per
// target and picked at load time. Every operation in the kernel is an IEEE
// elementwise op (sub, div, min/max, compare, blend) — there is no mul+add
// pair for FMA contraction to fuse — so all clones produce identical bits.
// Disabled under sanitizers: target_clones emits GNU IFUNCs whose resolver
// runs during relocation, before the TSan/ASan runtime is initialized, and
// TSan binaries segfault on startup.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define MFHTTP_BATCH_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define MFHTTP_BATCH_CLONES
#endif

MFHTTP_BATCH_CLONES
std::size_t intersects_swept_region_batch(const SweptRegion& sweep,
                                          const RectSoA& objects,
                                          std::uint8_t* out_involved) {
  if (sweep.viewport.empty()) {
    std::fill(out_involved, out_involved + objects.count, std::uint8_t{0});
    return 0;
  }
  std::size_t involved = 0;
  dispatch(sweep, objects, [&](std::size_t i, double lo, double hi) {
    const unsigned in = static_cast<unsigned>(lo < hi) &
                        static_cast<unsigned>(lo < 1.0) &
                        static_cast<unsigned>(hi > 0.0);
    out_involved[i] = static_cast<std::uint8_t>(in);
    involved += in;
  });
  return involved;
}

MFHTTP_BATCH_CLONES
void first_overlap_fraction_batch(const SweptRegion& sweep,
                                  const RectSoA& objects,
                                  double* out_fraction) {
  if (sweep.viewport.empty()) {
    std::fill(out_fraction, out_fraction + objects.count, -1.0);
    return;
  }
  dispatch(sweep, objects, [&](std::size_t i, double lo, double hi) {
    const bool na = (lo >= hi) | (lo >= 1.0) | (hi <= 0.0);
    const double frac = std::min(std::max(lo, 0.0), 1.0);
    out_fraction[i] = na ? -1.0 : frac;
  });
}

}  // namespace mfhttp::geom
