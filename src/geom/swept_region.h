// The region covered by a viewport sweeping along a straight displacement —
// §3.3.3 of the paper.
//
// When the viewport (a w_p × h_p rectangle at (x_p, y_p)) scrolls by a total
// displacement (D_x, D_y), the union of all its intermediate positions is a
// hexagon (the Minkowski sum of the viewport rectangle and the displacement
// segment). The paper spells out the 6 boundary segments and a 3-condition
// membership test for the D_x > 0, D_y > 0 quadrant and notes the other
// quadrants are symmetric. We implement:
//
//   * `intersects_swept_region` — a quadrant-agnostic segment-vs-slab test:
//     object i overlaps the viewport translated by t·(D_x, D_y) for some
//     t ∈ [0,1] iff the segment from (0,0) to (D_x, D_y) passes through the
//     open box of displacements at which the two rectangles overlap.
//   * `paper_conditions_q1` — the literal 3-condition test from the paper
//     (valid for D_x > 0, D_y > 0), kept as a cross-check oracle for tests.
#pragma once

#include "geom/rect.h"
#include "geom/vec2.h"

namespace mfhttp {

struct SweptRegion {
  Rect viewport;      // position at scroll start
  Vec2 displacement;  // total viewport displacement (D_x, D_y); any sign

  // Viewport position after fraction t in [0, 1] of the displacement.
  Rect at(double t) const { return viewport.translated(displacement * t); }

  Rect final_viewport() const { return at(1.0); }

  // Bounding box of the whole sweep.
  Rect bounding_box() const { return viewport.union_with(final_viewport()); }

  // Area of the hexagonal covered region.
  double area() const;
};

// True iff `object` shares positive area with the swept region, i.e. the
// object appears in the viewport at some instant of the scroll.
bool intersects_swept_region(const SweptRegion& sweep, const Rect& object);

// If the object intersects the sweep, the earliest sweep fraction t ∈ [0,1]
// at which it overlaps the viewport; returns t, or a negative value if the
// object never appears. Exact (interval intersection), not sampled.
double first_overlap_fraction(const SweptRegion& sweep, const Rect& object);

// The paper's literal conditions (1)-(3) from §3.3.3; requires
// displacement.x > 0 and displacement.y > 0.
bool paper_conditions_q1(const SweptRegion& sweep, const Rect& object);

}  // namespace mfhttp
