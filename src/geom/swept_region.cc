#include "geom/swept_region.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mfhttp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Open interval of sweep fractions t at which `object` overlaps the viewport
// on one axis. The viewport edge at fraction t is p + t*d .. p + t*d + extent;
// overlap on the axis requires o < p + t*d + extent and p + t*d < o + o_extent,
// i.e. a < t*d < b with a = o - p - extent, b = o + o_extent - p.
struct OpenInterval {
  double lo = -kInf;
  double hi = kInf;
  bool empty = false;
};

OpenInterval axis_interval(double p, double extent, double o, double o_extent,
                           double d) {
  double a = o - p - extent;
  double b = o + o_extent - p;
  OpenInterval iv;
  if (d == 0) {
    iv.empty = !(a < 0 && 0 < b);
    return iv;
  }
  double t0 = a / d;
  double t1 = b / d;
  iv.lo = std::min(t0, t1);
  iv.hi = std::max(t0, t1);
  return iv;
}

OpenInterval overlap_interval(const SweptRegion& sweep, const Rect& object) {
  const Rect& vp = sweep.viewport;
  OpenInterval ix =
      axis_interval(vp.x, vp.w, object.x, object.w, sweep.displacement.x);
  OpenInterval iy =
      axis_interval(vp.y, vp.h, object.y, object.h, sweep.displacement.y);
  OpenInterval iv;
  iv.empty = ix.empty || iy.empty;
  iv.lo = std::max(ix.lo, iy.lo);
  iv.hi = std::min(ix.hi, iy.hi);
  if (iv.lo >= iv.hi) iv.empty = true;
  return iv;
}

}  // namespace

double SweptRegion::area() const {
  return viewport.w * viewport.h + viewport.w * std::abs(displacement.y) +
         viewport.h * std::abs(displacement.x);
}

bool intersects_swept_region(const SweptRegion& sweep, const Rect& object) {
  if (object.empty() || sweep.viewport.empty()) return false;
  OpenInterval iv = overlap_interval(sweep, object);
  // Need the open (lo, hi) interval to meet the closed sweep range [0, 1].
  return !iv.empty && iv.lo < 1.0 && iv.hi > 0.0;
}

double first_overlap_fraction(const SweptRegion& sweep, const Rect& object) {
  if (object.empty() || sweep.viewport.empty()) return -1.0;
  OpenInterval iv = overlap_interval(sweep, object);
  if (iv.empty || iv.lo >= 1.0 || iv.hi <= 0.0) return -1.0;
  return std::clamp(iv.lo, 0.0, 1.0);
}

bool paper_conditions_q1(const SweptRegion& sweep, const Rect& object) {
  const double dx = sweep.displacement.x;
  const double dy = sweep.displacement.y;
  MFHTTP_CHECK_MSG(dx > 0 && dy > 0,
                   "paper_conditions_q1 is only defined for the D_x>0, D_y>0 quadrant");
  const Rect& vp = sweep.viewport;
  const double xi = object.x, yi = object.y, wi = object.w, hi = object.h;
  // Condition (1): x_p - w_i < x_i < x_p + w_p + D_x.
  if (!(vp.x - wi < xi && xi < vp.x + vp.w + dx)) return false;
  // Condition (2): y_p - h_i < y_i < y_p + h_p + D_y.
  if (!(vp.y - hi < yi && yi < vp.y + vp.h + dy)) return false;
  // Condition (3): between the two diagonal boundary lines.
  const double slope = dy / dx;
  const double lower = slope * (xi - vp.x - vp.w) + vp.y - hi;
  const double upper = slope * (xi + wi - vp.x) + vp.y + vp.h;
  return lower < yi && yi < upper;
}

}  // namespace mfhttp
