#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace mfhttp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  MFHTTP_CHECK(p >= 0 && p <= 100);
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MFHTTP_CHECK(hi > lo);
  MFHTTP_CHECK(bins > 0);
}

void Histogram::add(double x) {
  double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

}  // namespace mfhttp
