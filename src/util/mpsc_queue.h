// Bounded lock-free multi-producer single-consumer queue — the dispatch
// spine of the sharded front door (http/frontdoor.h, DESIGN.md §13).
//
// This is the classic bounded array queue with per-slot sequence numbers
// (Vyukov): capacity is rounded up to a power of two, every slot carries an
// atomic sequence stamp, and producers claim slots with one CAS on the tail
// while the single consumer advances the head with plain loads/stores. No
// operation ever blocks, allocates, or takes a lock:
//
//   * try_push is safe from any number of threads concurrently; it fails
//     (returns false) when the ring is full — callers decide whether to
//     retry, shed, or count the event as dropped. Nothing is silently lost.
//   * push_until is the deadline-bounded blocking form: it spin-yields
//     while the ring is full and gives up when the caller's clock passes
//     the deadline, reporting how long it waited either way — so queue
//     saturation is an observable, bounded event instead of a silent
//     producer livelock (the ISSUE 7 self-healing front door's enqueue
//     path).
//   * try_pop must only ever be called from ONE consumer thread at a time
//     (the shard worker). This is the contract that lets the pop side skip
//     the CAS loop a full MPMC queue would need.
//
// FIFO holds per producer: two events pushed by the same thread are popped
// in push order. Cross-producer order is whatever the CAS race decided —
// the front door keeps per-session streams on one producer precisely so
// per-session order is preserved.
//
// The queue value type must be movable; slots destroy their payload when
// popped. approx_size() is a racy snapshot for gauges and backpressure
// heuristics only — never for emptiness decisions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "util/check.h"

namespace mfhttp {

template <typename T>
class MpscQueue {
 public:
  // `capacity` is a minimum; the ring is sized to the next power of two
  // (>= 2) so index masking stays one AND.
  explicit MpscQueue(std::size_t capacity) {
    MFHTTP_CHECK(capacity > 0);
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Multi-producer enqueue. False when the ring is full at the instant of
  // the attempt (the slot the tail points at has not been consumed yet).
  bool try_push(T value) { return push_slot(value); }

  // Deadline-bounded blocking enqueue (multi-producer safe). Retries the
  // push, yielding between attempts, until it succeeds or `now_ns()` passes
  // `deadline_ns`; deadline_ns == 0 means "no deadline" (block until space
  // frees — the legacy spin, but with its wait time accounted for). Returns
  // true on success. When `blocked_ns` is non-null it accumulates the wall
  // time spent waiting regardless of outcome, so callers can surface queue
  // saturation as a metric instead of a mystery stall. `now_ns` is any
  // callable returning a monotonic nanosecond clock — injected so tests can
  // drive synthetic time.
  template <typename NowFn>
  bool push_until(T value, std::uint64_t deadline_ns, NowFn&& now_ns,
                  std::uint64_t* blocked_ns = nullptr) {
    if (push_slot(value)) return true;
    const std::uint64_t start = now_ns();
    for (;;) {
      std::this_thread::yield();
      if (push_slot(value)) {
        if (blocked_ns != nullptr) *blocked_ns += now_ns() - start;
        return true;
      }
      const std::uint64_t now = now_ns();
      if (deadline_ns != 0 && now >= deadline_ns) {
        if (blocked_ns != nullptr) *blocked_ns += now - start;
        return false;
      }
    }
  }

  // Single-consumer dequeue. False when empty at the instant of the attempt.
  // MUST NOT be called concurrently from two threads.
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) !=
        static_cast<std::intptr_t>(pos + 1))
      return false;  // producer has not published this slot yet
    T* value = std::launder(reinterpret_cast<T*>(slot.storage()));
    out = std::move(*value);
    value->~T();
    // Re-arm the slot for the producer one lap ahead.
    slot.sequence.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  // Racy occupancy estimate (tail may move mid-read). Gauges only.
  std::size_t approx_size() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  ~MpscQueue() {
    T scratch;
    while (try_pop(scratch)) {
    }
  }

 private:
  // Shared push core: moves from `value` ONLY when a slot is claimed, so a
  // failed attempt leaves the caller's object intact for the next retry
  // (what lets push_until loop without copying per attempt).
  bool push_slot(T& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // Slot is free for this ticket; race other producers for it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          ::new (slot.storage()) T(std::move(value));
          slot.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: `pos` was reloaded, retry with the new ticket.
      } else if (diff < 0) {
        return false;  // slot still holds an unconsumed value: full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost the race, rescan
      }
    }
  }

  struct alignas(64) Slot {
    std::atomic<std::size_t> sequence;
    alignas(T) unsigned char raw[sizeof(T)];
    void* storage() { return raw; }
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  // Producers share tail_; the consumer alone writes head_, but producers
  // read it (relaxed) in approx_size(), so it must be atomic to keep the
  // snapshot a benign race rather than UB. Separate cache lines so producer
  // CAS traffic never invalidates the consumer's line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace mfhttp
