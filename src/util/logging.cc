#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mfhttp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// One process-wide sink mutex: lines from concurrent callers (simulator
// thread vs. a metrics snapshot) emit whole, never interleaved.
std::mutex& sink_mutex() {
  static std::mutex* mu = new std::mutex();  // never destroyed: loggable
  return *mu;                                // code may run during exit
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_write(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace mfhttp
