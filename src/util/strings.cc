#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mfhttp {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  return true;
}

std::uint64_t ifold_hash(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(ascii_lower(c));
    h *= 1099511628211ULL;
  }
  return h;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ascii_lower(c);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace mfhttp
