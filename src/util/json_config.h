// Shared plumbing for JSON configuration loaders — fault plans, overload
// configs, cache configs, scenario specs — so every config file in the tree
// parses through one path and fails with one diagnostic style:
//
//   malformed JSON   ->  "line L, column C: why"            (JsonParseError)
//   wrong type/range ->  "'section': 'key' must be ..."     (field named)
//   unknown member   ->  "'section': unknown key 'x'"       (strict schemas)
//
// A loader wraps each JSON object in a `Fields` reader, pulls its members
// through the typed accessors (absent members keep their defaults), and ends
// with `finish()`, which rejects any member no accessor consumed. Readers
// short-circuit once an error is recorded, so loaders can chain calls with
// `&&` exactly like the hand-rolled predecessors did.
//
//   Fields f(*doc.find("admission"), "admission", &error);
//   f.number("global_rate_per_s", 0, &p.global_rate_per_s);
//   f.integer("max_dispatch_queue", 0, &p.max_dispatch_queue);
//   if (!f.finish()) return std::nullopt;   // error == "'admission': ..."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/types.h"

namespace mfhttp::jsoncfg {

// Parses one JSON configuration document. Malformed input reports
// "line L, column C: why"; a well-formed non-object top level reports
// "top-level value must be an object".
std::optional<JsonValue> parse_object(std::string_view json, std::string* error);

// Reads `path` and parses it with parse_object. On failure *error (may be
// nullptr) holds the cause and a warning naming `what` plus the path is
// logged: `<what> '<path>': <why>`.
std::optional<JsonValue> load_object(const std::string& path, const char* what,
                                     std::string* error);

// Typed member reader over one JSON object. Each accessor consumes one key;
// `finish()` rejects the keys nothing consumed. All accessors return false
// after the first error (recorded into the constructor's error slot with the
// section prefix) so a loader's `&&` chains short-circuit naturally.
class Fields {
 public:
  // `where` names this object in diagnostics ("admission", "link[2]");
  // empty for a top-level document. `error` may be nullptr (errors still
  // gate the return values, they just aren't reported).
  Fields(const JsonValue& object, std::string where, std::string* error);

  // Scalar accessors: absent members keep *out and return true; present
  // members must match the type and bound or the call fails.
  bool number(const char* key, double min, double* out);
  bool rate(const char* key, double* out);      // number in [0, 1]
  bool fraction(const char* key, double* out);  // number in (0, 1)
  bool integer(const char* key, int min, int* out);
  bool size(const char* key, std::size_t* out);  // number >= 0
  bool time_ms(const char* key, TimeMs min, TimeMs* out);
  bool bytes(const char* key, Bytes min, Bytes* out);
  bool boolean(const char* key, bool* out);
  bool string(const char* key, std::string* out);
  bool seed(const char* key, std::uint64_t* out);  // non-negative number

  // Nested members. Consumes the key; returns nullptr when absent (not an
  // error) or on type mismatch (error recorded).
  const JsonValue* object(const char* key);
  const JsonValue* array(const char* key);
  // Raw member access for fields with bespoke validation (e.g. a string-
  // keyed enum). Consumes the key; nullptr when absent.
  const JsonValue* member(const char* key);

  // Records a custom validation failure scoped to this section and returns
  // false, for cross-field rules the typed accessors cannot express.
  bool fail(std::string_view why);

  bool ok() const { return ok_; }

  // Rejects members no accessor consumed ("unknown key 'x'"); returns ok().
  // Call exactly once, after the last accessor.
  bool finish();

 private:
  const JsonValue* find(const char* key);

  const JsonValue& object_;
  std::string where_;
  std::string* error_;
  std::vector<bool> consumed_;  // parallel to object_.object_value
  bool ok_ = true;
};

}  // namespace mfhttp::jsoncfg
