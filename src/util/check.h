// Lightweight runtime contract checks.
//
// MFHTTP_CHECK is always on (cheap invariants guarding library correctness);
// MFHTTP_DCHECK compiles out in NDEBUG builds (expensive sanity checks in
// hot paths such as the simulator event loop).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mfhttp::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace mfhttp::detail

#define MFHTTP_CHECK(expr)                                               \
  do {                                                                   \
    if (!(expr)) ::mfhttp::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MFHTTP_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) ::mfhttp::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define MFHTTP_DCHECK(expr) ((void)0)
#else
#define MFHTTP_DCHECK(expr) MFHTTP_CHECK(expr)
#endif
