// Declarative argv flag extraction — the one CLI parser (ISSUE 4 satellite).
//
// Three generations of hand-rolled scans preceded this: each tool's private
// "--metrics-json" loop, obs::extract_metrics_json_flag, and the fault
// layer's StandardFlagsGuard. CliOptions replaces all of them: a binary
// registers the flags it understands, parse() extracts exactly those from
// argv (removing them), and everything unrecognized stays in place — which
// is what lets the shared flags compose with benchmark::Initialize and
// ad-hoc positional parsing alike.
//
// Error formatting is shared too. A malformed command line ("--flag" with
// no value) reports through parse(); a flag whose *value* later fails to
// load (missing file, bad JSON) reports through format_error()/fail(), so
// every binary prints the identical
//
//   error: --flag <value>: <why>
//
// shape and exits 2. A flag the caller named but whose payload cannot be
// used must never degrade to a silent default run — a bench that "passed"
// without its fault plan or cache config is a lie.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mfhttp {

class CliOptions {
 public:
  // `program` seeds the usage line (typically argv[0]'s basename).
  explicit CliOptions(std::string program);

  // Registers "--flag <value>" / "--flag=<value>". `out` keeps its prior
  // content (the default) when the flag is absent. `flag` includes the
  // leading dashes.
  CliOptions& add_string(std::string flag, std::string value_name,
                         std::string help, std::string* out);

  // Registers a valueless boolean flag; presence sets *out = true.
  CliOptions& add_flag(std::string flag, std::string help, bool* out);

  // Extracts every registered flag from argv, compacting argv in place.
  // Unregistered arguments are left untouched, in order. Returns false
  // (with the shared error format in *error) when a value flag is last on
  // the line with nothing following it.
  bool parse(int& argc, char** argv, std::string* error = nullptr);

  // parse(), but a bad command line prints the error plus usage() to
  // stderr and exits 2.
  void parse_or_exit(int& argc, char** argv);

  std::string usage() const;

  // The shared post-parse error shape: "error: --flag <value>: <why>".
  static std::string format_error(std::string_view flag, std::string_view value,
                                  std::string_view why);
  // Prints format_error to stderr and exits 2.
  [[noreturn]] static void fail(std::string_view flag, std::string_view value,
                                std::string_view why);

 private:
  struct Option {
    std::string flag;
    std::string value_name;  // empty for boolean flags
    std::string help;
    std::string* str_out = nullptr;
    bool* bool_out = nullptr;
  };

  std::string program_;
  std::vector<Option> options_;
};

}  // namespace mfhttp
