#include "util/json_config.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace mfhttp::jsoncfg {

std::optional<JsonValue> parse_object(std::string_view json,
                                      std::string* error) {
  JsonParseError parse_error;
  std::optional<JsonValue> doc = parse_json(json, &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) *error = parse_error.to_string();
    return std::nullopt;
  }
  if (!doc->is_object()) {
    if (error != nullptr) *error = "top-level value must be an object";
    return std::nullopt;
  }
  return doc;
}

std::optional<JsonValue> load_object(const std::string& path, const char* what,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open file";
    MFHTTP_WARN << what << " '" << path << "': cannot open file";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string why;
  std::optional<JsonValue> doc = parse_object(buffer.str(), &why);
  if (!doc.has_value()) {
    if (error != nullptr) *error = why;
    MFHTTP_WARN << what << " '" << path << "': " << why;
  }
  return doc;
}

Fields::Fields(const JsonValue& object, std::string where, std::string* error)
    : object_(object),
      where_(std::move(where)),
      error_(error),
      consumed_(object.object_value.size(), false) {
  if (!object.is_object()) fail("must be an object");
}

const JsonValue* Fields::find(const char* key) {
  if (!ok_) return nullptr;
  for (std::size_t i = 0; i < object_.object_value.size(); ++i) {
    if (object_.object_value[i].first == key) {
      consumed_[i] = true;
      return &object_.object_value[i].second;
    }
  }
  return nullptr;
}

bool Fields::number(const char* key, double min, double* out) {
  const JsonValue* v = find(key);
  if (v == nullptr) return ok_;
  if (!v->is_number() || v->number_value < min) {
    return fail(std::string("'") + key + "' must be a number >= " +
                std::to_string(min));
  }
  *out = v->number_value;
  return true;
}

bool Fields::rate(const char* key, double* out) {
  const JsonValue* v = find(key);
  if (v == nullptr) return ok_;
  if (!v->is_number() || v->number_value < 0 || v->number_value > 1)
    return fail(std::string("'") + key + "' must be a number in [0, 1]");
  *out = v->number_value;
  return true;
}

bool Fields::fraction(const char* key, double* out) {
  const JsonValue* v = find(key);
  if (v == nullptr) return ok_;
  if (!v->is_number() || v->number_value <= 0 || v->number_value >= 1)
    return fail(std::string("'") + key + "' must be a number in (0, 1)");
  *out = v->number_value;
  return true;
}

bool Fields::integer(const char* key, int min, int* out) {
  double d = *out;
  if (!number(key, min, &d)) return false;
  *out = static_cast<int>(d);
  return true;
}

bool Fields::size(const char* key, std::size_t* out) {
  double d = static_cast<double>(*out);
  if (!number(key, 0, &d)) return false;
  *out = static_cast<std::size_t>(d);
  return true;
}

bool Fields::time_ms(const char* key, TimeMs min, TimeMs* out) {
  double d = static_cast<double>(*out);
  if (!number(key, static_cast<double>(min), &d)) return false;
  *out = static_cast<TimeMs>(d);
  return true;
}

bool Fields::bytes(const char* key, Bytes min, Bytes* out) {
  double d = static_cast<double>(*out);
  if (!number(key, static_cast<double>(min), &d)) return false;
  *out = static_cast<Bytes>(d);
  return true;
}

bool Fields::boolean(const char* key, bool* out) {
  const JsonValue* v = find(key);
  if (v == nullptr) return ok_;
  if (!v->is_bool()) return fail(std::string("'") + key + "' must be a boolean");
  *out = v->bool_value;
  return true;
}

bool Fields::string(const char* key, std::string* out) {
  const JsonValue* v = find(key);
  if (v == nullptr) return ok_;
  if (!v->is_string()) return fail(std::string("'") + key + "' must be a string");
  *out = v->string_value;
  return true;
}

bool Fields::seed(const char* key, std::uint64_t* out) {
  double d = static_cast<double>(*out);
  const JsonValue* v = find(key);
  if (v == nullptr) return ok_;
  if (!v->is_number() || v->number_value < 0)
    return fail(std::string("'") + key + "' must be a non-negative number");
  d = v->number_value;
  *out = static_cast<std::uint64_t>(d);
  return true;
}

const JsonValue* Fields::object(const char* key) {
  const JsonValue* v = find(key);
  if (v == nullptr) return nullptr;
  if (!v->is_object()) {
    fail(std::string("'") + key + "' must be an object");
    return nullptr;
  }
  return v;
}

const JsonValue* Fields::array(const char* key) {
  const JsonValue* v = find(key);
  if (v == nullptr) return nullptr;
  if (!v->is_array()) {
    fail(std::string("'") + key + "' must be an array");
    return nullptr;
  }
  return v;
}

const JsonValue* Fields::member(const char* key) { return find(key); }

bool Fields::fail(std::string_view why) {
  if (ok_ && error_ != nullptr) {
    *error_ = where_.empty() ? std::string(why)
                             : "'" + where_ + "': " + std::string(why);
  }
  ok_ = false;
  return false;
}

bool Fields::finish() {
  if (!ok_) return false;
  for (std::size_t i = 0; i < object_.object_value.size(); ++i) {
    if (!consumed_[i]) {
      return fail("unknown key '" + object_.object_value[i].first + "'");
    }
  }
  return true;
}

}  // namespace mfhttp::jsoncfg
