// Tiny argv flag extraction shared by every bench/example binary.
//
// Each tool historically hand-rolled its "--metrics-json <path>" scan; the
// fault-injection work adds a second shared flag (--fault-plan), so the scan
// lives here once. Extraction *removes* the flag from argv, which is what
// lets these flags compose with benchmark::Initialize and ad-hoc positional
// parsing alike.
#pragma once

#include <string>
#include <string_view>

namespace mfhttp {

// Removes "--<flag> <value>" / "--<flag>=<value>" from argv and returns the
// value ("" if the flag is absent or has no value). `flag` includes the
// leading dashes, e.g. "--metrics-json".
std::string extract_string_flag(int& argc, char** argv, std::string_view flag);

}  // namespace mfhttp
