#include "util/json.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace mfhttp {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key":
  }
  if (!stack_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += strformat("\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MFHTTP_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  MFHTTP_CHECK_MSG(!pending_key_, "object closed with a dangling key");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MFHTTP_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MFHTTP_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                   "key outside an object");
  MFHTTP_CHECK_MSG(!pending_key_, "two keys in a row");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  write_escaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma_if_needed();
  if (std::isfinite(d)) {
    out_ += strformat("%.12g", d);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(long long i) {
  comma_if_needed();
  out_ += strformat("%lld", i);
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long u) {
  comma_if_needed();
  out_ += strformat("%llu", u);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  MFHTTP_CHECK_MSG(stack_.empty(), "unclosed containers in JSON document");
  return out_;
}

}  // namespace mfhttp
