#include "util/json.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"
#include "util/strings.h"

namespace mfhttp {

void JsonWriter::comma_if_needed() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key":
  }
  if (!stack_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += strformat("\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MFHTTP_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  MFHTTP_CHECK_MSG(!pending_key_, "object closed with a dangling key");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MFHTTP_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MFHTTP_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                   "key outside an object");
  MFHTTP_CHECK_MSG(!pending_key_, "two keys in a row");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  write_escaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_if_needed();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma_if_needed();
  if (std::isfinite(d)) {
    out_ += strformat("%.12g", d);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(long long i) {
  comma_if_needed();
  out_ += strformat("%lld", i);
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long u) {
  comma_if_needed();
  out_ += strformat("%llu", u);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma_if_needed();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  MFHTTP_CHECK_MSG(stack_.empty(), "unclosed containers in JSON document");
  return out_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_value)
    if (k == key) return &v;
  return nullptr;
}

namespace {

// Recursive-descent parser over a string_view; positions advance in place.
// Every path returns false on malformed input — no exceptions, no aborts.
// The first (innermost) failure records its position and cause, which the
// error-reporting parse_json overload converts to line/column.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("empty document");
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return true;
  }

  JsonParseError error() const {
    JsonParseError e;
    e.offset = fail_pos_;
    e.message = fail_msg_ != nullptr ? fail_msg_ : "malformed document";
    for (std::size_t i = 0; i < fail_pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++e.line;
        e.column = 1;
      } else {
        ++e.column;
      }
    }
    return e;
  }

 private:
  static constexpr int kMaxDepth = 64;

  // Record the first failure only: primitives fail before the containers
  // unwinding above them, so the earliest call is the most precise.
  bool fail(const char* msg) {
    if (fail_msg_ == nullptr) {
      fail_msg_ = msg;
      fail_pos_ = pos_;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool eat_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 64 levels");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return eat_literal("true") || fail("invalid literal (expected 'true')");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return eat_literal("false") || fail("invalid literal (expected 'false')");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return eat_literal("null") || fail("invalid literal (expected 'null')");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->object_value.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat('}') || fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->array_value.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      return eat(']') || fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    if (!eat('"')) return fail("expected string");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape in string");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(&code)) return fail("invalid \\u escape (need 4 hex digits)");
          append_utf8(code, out);
          break;
        }
        default:
          --pos_;
          return fail("invalid escape sequence in string");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9')
        code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code |= static_cast<unsigned>(c - 'A' + 10);
      else
        return false;
    }
    *out = code;
    return true;
  }

  static void append_utf8(unsigned code, std::string* out) {
    // Basic-plane only (surrogate pairs are out of scope for config files).
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool parse_number(JsonValue* out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    std::size_t digits = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == digits) return fail("expected a value");  // no integer part
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::size_t frac = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == frac) return fail("expected digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      std::size_t exp = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == exp) return fail("expected digits in exponent");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                                    nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t fail_pos_ = 0;
  const char* fail_msg_ = nullptr;
};

}  // namespace

std::string JsonParseError::to_string() const {
  return strformat("line %zu, column %zu: %s", line, column, message.c_str());
}

std::optional<JsonValue> parse_json(std::string_view text) {
  return parse_json(text, nullptr);
}

std::optional<JsonValue> parse_json(std::string_view text, JsonParseError* error) {
  JsonValue root;
  JsonParser parser(text);
  if (!parser.parse_document(&root)) {
    if (error != nullptr) *error = parser.error();
    return std::nullopt;
  }
  return root;
}

}  // namespace mfhttp
