// Small string helpers used by the HTTP parser and trace I/O.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mfhttp {

// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

// Remove leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// Case-insensitive ASCII comparison (HTTP header names).
bool iequals(std::string_view a, std::string_view b);

// Lowercase ASCII copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// printf-style formatting into std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mfhttp
