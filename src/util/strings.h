// Small string helpers used by the HTTP parser and trace I/O.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mfhttp {

// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

// Remove leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

// The one ASCII case-fold in the codebase: every case-insensitive
// comparison (header names in the parser, proxy, and cache; URL schemes)
// folds through this so they can never disagree on locale or non-ASCII
// bytes the way mixed std::tolower call sites can.
constexpr char ascii_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

// Case-insensitive ASCII comparison (HTTP header names).
bool iequals(std::string_view a, std::string_view b);

// FNV-1a over the case-folded bytes: iequals(a, b) implies
// ifold_hash(a) == ifold_hash(b). The header-name interner's probe key.
std::uint64_t ifold_hash(std::string_view s);

// Lowercase ASCII copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// printf-style formatting into std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mfhttp
