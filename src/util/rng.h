// Deterministic random number generator for reproducible experiments.
//
// Every stochastic component (gesture synthesis, page corpus, bandwidth
// traces, viewer head-motion) takes an Rng by reference so that a single
// seed reproduces an entire experiment end to end.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace mfhttp {

// Fibonacci-hash finalizer (splitmix64). One deterministic 64-bit mix used
// everywhere a stable, well-distributed hash of a small integer is needed:
// per-session world seeds (sim/session_world.h) and session->shard routing
// in the front door (http/frontdoor.h) both derive from this, so a session
// keeps its seed and its shard across runs, binaries, and platforms.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    MFHTTP_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MFHTTP_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Normal with the given mean/stddev.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Normal truncated to [lo, hi] by resampling (clamps after 64 tries).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  // Exponential with the given mean (> 0).
  double exponential(double mean) {
    MFHTTP_DCHECK(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Bernoulli with probability p of true.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Derive an independent child generator (e.g. one per simulated user).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mfhttp
