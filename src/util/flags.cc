#include "util/flags.h"

namespace mfhttp {

std::string extract_string_flag(int& argc, char** argv, std::string_view flag) {
  const std::string eq_form = std::string(flag) + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == flag && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind(eq_form, 0) == 0) {
      value = std::string(arg.substr(eq_form.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return value;
}

}  // namespace mfhttp
