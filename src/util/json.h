// Minimal JSON support: a streaming writer (objects, arrays, scalars,
// escaping) for exporting experiment results, and a small DOM reader
// (JsonValue / parse_json) for configuration documents such as fault plans.
//
// Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("site").value("sohu");
//   w.key("samples").begin_array();
//   w.value(1.5).value(2).value(true);
//   w.end_array();
//   w.end_object();
//   std::string out = w.str();
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfhttp {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(long long i);
  JsonWriter& value(int i) { return value(static_cast<long long>(i)); }
  JsonWriter& value(unsigned long long u);
  JsonWriter& value(std::size_t u) {
    return value(static_cast<unsigned long long>(u));
  }
  JsonWriter& value(bool b);
  JsonWriter& null();

  // Splices an already-serialized JSON value verbatim in value position
  // (after key() or as an array element). The caller guarantees `json` is a
  // complete valid value — used to embed one config's to_json() inside
  // another's document (scenario::ScenarioSpec sections).
  JsonWriter& raw(std::string_view json);

  // Finished document (all containers must be closed).
  const std::string& str() const;

 private:
  void comma_if_needed();
  void write_escaped(std::string_view s);

  enum class Frame { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool pending_key_ = false;
};

// Parsed JSON document node. Numbers are kept as double (adequate for
// configuration files); object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_value;
  std::vector<std::pair<std::string, JsonValue>> object_value;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Typed accessors with defaults (configuration-file ergonomics).
  double number_or(double fallback) const {
    return is_number() ? number_value : fallback;
  }
  bool bool_or(bool fallback) const { return is_bool() ? bool_value : fallback; }
  const std::string& string_or(const std::string& fallback) const {
    return is_string() ? string_value : fallback;
  }
};

// Where and why a parse failed. `line`/`column` are 1-based and point at the
// first byte the parser could not make sense of; `offset` is the same
// position as a byte index into the input.
struct JsonParseError {
  std::size_t offset = 0;
  std::size_t line = 1;
  std::size_t column = 1;
  std::string message;

  // "line 3, column 17: unterminated string" — the form config-file loaders
  // prepend their path to.
  std::string to_string() const;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage is
// an error). Returns nullopt on malformed input; never throws or aborts, so
// it is safe on untrusted bytes. Nesting is capped at 64 levels. The
// two-argument overload fills *error with the position and cause of the
// first failure (untouched on success).
std::optional<JsonValue> parse_json(std::string_view text);
std::optional<JsonValue> parse_json(std::string_view text, JsonParseError* error);

}  // namespace mfhttp
