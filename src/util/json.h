// Minimal streaming JSON writer (objects, arrays, scalars, escaping) for
// exporting experiment results to analysis tooling. Writer only — the
// library never consumes JSON.
//
// Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("site").value("sohu");
//   w.key("samples").begin_array();
//   w.value(1.5).value(2).value(true);
//   w.end_array();
//   w.end_object();
//   std::string out = w.str();
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mfhttp {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key inside an object; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(long long i);
  JsonWriter& value(int i) { return value(static_cast<long long>(i)); }
  JsonWriter& value(unsigned long long u);
  JsonWriter& value(std::size_t u) {
    return value(static_cast<unsigned long long>(u));
  }
  JsonWriter& value(bool b);
  JsonWriter& null();

  // Finished document (all containers must be closed).
  const std::string& str() const;

 private:
  void comma_if_needed();
  void write_escaped(std::string_view s);

  enum class Frame { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool pending_key_ = false;
};

}  // namespace mfhttp
