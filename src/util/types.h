// Core scalar vocabulary types shared across the library.
//
// MF-HTTP models time in simulated milliseconds (the unit Android's fling
// equations use) and data volumes in bytes. Strong typedefs are deliberately
// avoided for these two: the arithmetic crosses module boundaries constantly
// (kinematics, bandwidth integrals, knapsack capacities) and the unit is part
// of every identifier name instead.
#pragma once

#include <cstdint>

namespace mfhttp {

// Simulated time in milliseconds since the start of a run/session.
using TimeMs = std::int64_t;

// Data volume in bytes.
using Bytes = std::int64_t;

// Bandwidth in bytes per second.
using BytesPerSec = double;

// Display pixel count or coordinate (sub-pixel precision kept in double
// where geometry demands it; discrete pixel counts live here).
using Pixels = double;

constexpr TimeMs kMsPerSec = 1000;

// Convert KB/s (the unit the paper's Fig. 10 sweeps use) to bytes/s.
constexpr BytesPerSec kb_per_sec(double kb) { return kb * 1000.0; }

}  // namespace mfhttp
