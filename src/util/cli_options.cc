#include "util/cli_options.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace mfhttp {

CliOptions::CliOptions(std::string program) : program_(std::move(program)) {}

CliOptions& CliOptions::add_string(std::string flag, std::string value_name,
                                   std::string help, std::string* out) {
  MFHTTP_CHECK(out != nullptr);
  options_.push_back(
      {std::move(flag), std::move(value_name), std::move(help), out, nullptr});
  return *this;
}

CliOptions& CliOptions::add_flag(std::string flag, std::string help, bool* out) {
  MFHTTP_CHECK(out != nullptr);
  options_.push_back({std::move(flag), {}, std::move(help), nullptr, out});
  return *this;
}

bool CliOptions::parse(int& argc, char** argv, std::string* error) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const Option* match = nullptr;
    std::string_view inline_value;
    bool has_inline = false;
    for (const Option& o : options_) {
      if (arg == o.flag) {
        match = &o;
        break;
      }
      // "--flag=value" form (value flags only).
      if (o.str_out != nullptr && arg.size() > o.flag.size() + 1 &&
          arg.substr(0, o.flag.size()) == o.flag && arg[o.flag.size()] == '=') {
        match = &o;
        inline_value = arg.substr(o.flag.size() + 1);
        has_inline = true;
        break;
      }
    }
    if (match == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (match->bool_out != nullptr) {
      *match->bool_out = true;
      continue;
    }
    if (has_inline) {
      *match->str_out = std::string(inline_value);
      continue;
    }
    if (i + 1 >= argc) {
      if (error != nullptr)
        *error = format_error(match->flag, "", "missing required value");
      return false;
    }
    *match->str_out = argv[++i];
  }
  argc = out;
  argv[argc] = nullptr;
  return true;
}

void CliOptions::parse_or_exit(int& argc, char** argv) {
  std::string error;
  if (parse(argc, argv, &error)) return;
  std::fprintf(stderr, "%s\n%s", error.c_str(), usage().c_str());
  std::exit(2);
}

std::string CliOptions::usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  for (const Option& o : options_) {
    out << " [" << o.flag;
    if (!o.value_name.empty()) out << " <" << o.value_name << ">";
    out << "]";
  }
  out << "\n";
  for (const Option& o : options_) {
    out << "  " << o.flag;
    if (!o.value_name.empty()) out << " <" << o.value_name << ">";
    out << "\n      " << o.help << "\n";
  }
  return out.str();
}

std::string CliOptions::format_error(std::string_view flag,
                                     std::string_view value,
                                     std::string_view why) {
  std::string out = "error: ";
  out += flag;
  if (!value.empty()) {
    out += ' ';
    out += value;
  }
  out += ": ";
  out += why;
  return out;
}

void CliOptions::fail(std::string_view flag, std::string_view value,
                      std::string_view why) {
  std::fprintf(stderr, "%s\n", format_error(flag, value, why).c_str());
  std::exit(2);
}

}  // namespace mfhttp
