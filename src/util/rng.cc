#include "util/rng.h"

#include <algorithm>
#include <numeric>

namespace mfhttp {

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  MFHTTP_DCHECK(lo <= hi);
  for (int i = 0; i < 64; ++i) {
    double v = normal(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  return std::clamp(mean, lo, hi);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  MFHTTP_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  MFHTTP_CHECK(total > 0);
  double r = uniform(0.0, total);
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace mfhttp
