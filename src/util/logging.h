// Minimal leveled logger.
//
// The library is silent by default (Level::kWarn); experiment harnesses and
// examples raise the level to trace middleware decisions. Thread-safe: the
// level is atomic and log_write serializes emission through one mutex-guarded
// sink, so callers off the simulator thread (e.g. the metrics snapshot path)
// never interleave partial lines.
#pragma once

#include <sstream>
#include <string>

namespace mfhttp {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

}  // namespace mfhttp

#define MFHTTP_LOG(level)                                   \
  if (static_cast<int>(::mfhttp::LogLevel::level) <         \
      static_cast<int>(::mfhttp::log_level())) {            \
  } else                                                    \
    ::mfhttp::detail::LogLine(::mfhttp::LogLevel::level)

#define MFHTTP_TRACE MFHTTP_LOG(kTrace)
#define MFHTTP_DEBUG MFHTTP_LOG(kDebug)
#define MFHTTP_INFO MFHTTP_LOG(kInfo)
#define MFHTTP_WARN MFHTTP_LOG(kWarn)
#define MFHTTP_ERROR MFHTTP_LOG(kError)
