// Streaming statistics accumulators used by benchmarks and experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace mfhttp {

// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0, sum_ = 0;
};

// Stores all samples; supports exact percentiles.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double percentile(double p) const;  // p in [0,100], linear interpolation
  double median() const { return percentile(50); }
  double min() const { return percentile(0); }
  double max() const { return percentile(100); }
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

// Histogram with fixed-width bins over [lo, hi); out-of-range samples clamp
// into the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mfhttp
