// CSV persistence for touch traces and bandwidth traces, so experiments can
// be recorded once and replayed (the paper records volunteer touches and
// replays them through MF-HTTP, §6.2.1).
//
// Touch trace CSV:      time_ms,action,x,y[,pointer]   (action: DOWN/MOVE/UP;
//                       pointer defaults to 0 when the column is absent)
// Bandwidth trace CSV:  slot_ms header line, then one bytes_per_sec per line
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "gesture/touch_event.h"
#include "net/bandwidth_trace.h"

namespace mfhttp {

void write_touch_trace(std::ostream& out, const TouchTrace& trace);
// Returns nullopt on malformed input (bad action, non-numeric fields,
// out-of-order timestamps).
std::optional<TouchTrace> read_touch_trace(std::istream& in);

void write_bandwidth_trace(std::ostream& out, const BandwidthTrace& trace);
std::optional<BandwidthTrace> read_bandwidth_trace(std::istream& in);

// File-path convenience wrappers; return false / nullopt on I/O failure.
bool save_touch_trace(const std::string& path, const TouchTrace& trace);
std::optional<TouchTrace> load_touch_trace(const std::string& path);
bool save_bandwidth_trace(const std::string& path, const BandwidthTrace& trace);
std::optional<BandwidthTrace> load_bandwidth_trace(const std::string& path);

}  // namespace mfhttp
