#include "trace/trace_io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace mfhttp {

namespace {

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is not universally available; use strtod.
  std::string tmp(s);
  char* end = nullptr;
  double v = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(std::string_view s) {
  s = trim(s);
  long long v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

namespace {
// Round-trip-exact double formatting without permanently touching the
// caller's stream state.
class PrecisionGuard {
 public:
  explicit PrecisionGuard(std::ostream& out)
      : out_(out), saved_(out.precision(17)) {}
  ~PrecisionGuard() { out_.precision(saved_); }

 private:
  std::ostream& out_;
  std::streamsize saved_;
};
}  // namespace

void write_touch_trace(std::ostream& out, const TouchTrace& trace) {
  PrecisionGuard guard(out);
  out << "time_ms,action,x,y,pointer\n";
  for (const TouchEvent& ev : trace) {
    out << ev.time_ms << ',' << to_string(ev.action) << ',' << ev.pos.x << ','
        << ev.pos.y << ',' << ev.pointer << '\n';
  }
}

std::optional<TouchTrace> read_touch_trace(std::istream& in) {
  TouchTrace trace;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    std::string_view sv = trim(line);
    if (sv.empty()) continue;
    if (first) {
      first = false;
      if (starts_with(sv, "time_ms")) continue;  // header
    }
    auto fields = split(sv, ',');
    if (fields.size() != 4 && fields.size() != 5) return std::nullopt;
    auto t = parse_int(fields[0]);
    auto x = parse_double(fields[2]);
    auto y = parse_double(fields[3]);
    if (!t || !x || !y) return std::nullopt;
    TouchEvent ev;
    ev.time_ms = *t;
    ev.pos = {*x, *y};
    if (fields.size() == 5) {
      auto pointer = parse_int(fields[4]);
      if (!pointer || *pointer < 0) return std::nullopt;
      ev.pointer = static_cast<int>(*pointer);
    }
    std::string_view action = trim(fields[1]);
    if (action == "DOWN") ev.action = TouchAction::kDown;
    else if (action == "MOVE") ev.action = TouchAction::kMove;
    else if (action == "UP") ev.action = TouchAction::kUp;
    else return std::nullopt;
    if (!trace.empty() && ev.time_ms < trace.back().time_ms) return std::nullopt;
    trace.push_back(ev);
  }
  return trace;
}

void write_bandwidth_trace(std::ostream& out, const BandwidthTrace& trace) {
  PrecisionGuard guard(out);
  out << "slot_ms=" << trace.slot_ms() << '\n';
  for (BytesPerSec r : trace.slots()) out << r << '\n';
}

std::optional<BandwidthTrace> read_bandwidth_trace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  std::string_view header = trim(line);
  if (!starts_with(header, "slot_ms=")) return std::nullopt;
  auto slot_ms = parse_int(header.substr(8));
  if (!slot_ms || *slot_ms <= 0) return std::nullopt;
  std::vector<BytesPerSec> rates;
  while (std::getline(in, line)) {
    std::string_view sv = trim(line);
    if (sv.empty()) continue;
    auto r = parse_double(sv);
    if (!r || *r < 0) return std::nullopt;
    rates.push_back(*r);
  }
  if (rates.empty()) return std::nullopt;
  return BandwidthTrace::from_slots(std::move(rates), *slot_ms);
}

bool save_touch_trace(const std::string& path, const TouchTrace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  write_touch_trace(out, trace);
  return static_cast<bool>(out);
}

std::optional<TouchTrace> load_touch_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_touch_trace(in);
}

bool save_bandwidth_trace(const std::string& path, const BandwidthTrace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  write_bandwidth_trace(out, trace);
  return static_cast<bool>(out);
}

std::optional<BandwidthTrace> load_bandwidth_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_bandwidth_trace(in);
}

}  // namespace mfhttp
