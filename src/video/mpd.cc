#include "video/mpd.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace mfhttp {

std::string MpdDocument::expand_template(const std::string& media_template,
                                         int segment_number) {
  std::string out = media_template;
  std::size_t pos = out.find("$Number$");
  if (pos != std::string::npos)
    out.replace(pos, 8, strformat("%03d", segment_number));
  return out;
}

std::string write_mpd(const VideoAsset& video, const std::string& base_url) {
  const VideoAsset::Params& p = video.params();
  const TileGrid& grid = video.grid();
  std::string xml;
  xml += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  xml += strformat(
      "<MPD xmlns=\"urn:mpeg:dash:schema:mpd:2011\" type=\"static\""
      " mediaPresentationDuration=\"PT%dS\" minBufferTime=\"PT1S\">\n",
      p.duration_s);
  xml += strformat("  <BaseURL>%s/</BaseURL>\n", base_url.c_str());
  xml += strformat("  <Period duration=\"PT%dS\">\n", p.duration_s);

  for (int tile = 0; tile < grid.tile_count(); ++tile) {
    Rect box = grid.tile_rect(tile);
    int row = tile / grid.cols();
    int col = tile % grid.cols();
    xml += strformat("    <AdaptationSet id=\"%d\" mimeType=\"video/mp4\">\n", tile);
    xml += strformat(
        "      <SupplementalProperty schemeIdUri=\"urn:mpeg:dash:srd:2014\""
        " value=\"0,%d,%d,%d,%d,%d,%d\"/>\n",
        static_cast<int>(box.x), static_cast<int>(box.y), static_cast<int>(box.w),
        static_cast<int>(box.h), static_cast<int>(grid.frame_w()),
        static_cast<int>(grid.frame_h()));
    for (int q = 0; q < video.quality_count(); ++q) {
      const Representation& rep = video.representation(q);
      // Per-tile share of the whole-frame rate, in bits/s as DASH requires.
      auto bandwidth = static_cast<long long>(
          rep.whole_frame_rate * p.bitrate_multiplier / grid.tile_count() * 8);
      xml += strformat(
          "      <Representation id=\"tile_%d_%d_%s\" bandwidth=\"%lld\">\n", row,
          col, rep.name.c_str(), bandwidth);
      xml += strformat(
          "        <SegmentTemplate media=\"%s/tile_%d_%d/%s/seg_$Number$.m4s\""
          " duration=\"1000\" timescale=\"1000\" startNumber=\"0\"/>\n",
          p.name.c_str(), row, col, rep.name.c_str());
      xml += "      </Representation>\n";
    }
    xml += "    </AdaptationSet>\n";
  }
  xml += "  </Period>\n</MPD>\n";
  return xml;
}

namespace {

// Minimal forward scanner for the dialect written above.
struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  // Advance to the next occurrence of `tag` (e.g. "<Representation"); returns
  // the attribute region (between the tag name and the closing '>') or
  // nullopt when no further occurrence exists before `end`.
  std::optional<std::string_view> next_tag(std::string_view tag,
                                           std::size_t end = std::string::npos) {
    std::size_t at = text.find(tag, pos);
    if (at == std::string_view::npos || at >= end) return std::nullopt;
    std::size_t close = text.find('>', at);
    if (close == std::string_view::npos) return std::nullopt;
    pos = close + 1;
    return text.substr(at + tag.size(), close - at - tag.size());
  }

  std::size_t find_from_here(std::string_view needle) const {
    return text.find(needle, pos);
  }
};

// Extract attr="value" from a tag's attribute region.
std::optional<std::string> attr_value(std::string_view attrs, std::string_view name) {
  std::string needle = std::string(name) + "=\"";
  std::size_t at = attrs.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t start = at + needle.size();
  std::size_t end = attrs.find('"', start);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(attrs.substr(start, end - start));
}

std::optional<int> parse_duration_s(std::string_view iso) {
  // Accepts the "PT<n>S" subset we emit.
  if (!starts_with(iso, "PT") || !ends_with(iso, "S")) return std::nullopt;
  std::string_view digits = iso.substr(2, iso.size() - 3);
  if (digits.empty()) return std::nullopt;
  int out = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    out = out * 10 + (c - '0');
  }
  return out;
}

}  // namespace

std::optional<MpdDocument> parse_mpd(const std::string& xml) {
  Scanner scan{xml};
  auto mpd_attrs = scan.next_tag("<MPD");
  if (!mpd_attrs) return std::nullopt;
  auto duration_attr = attr_value(*mpd_attrs, "mediaPresentationDuration");
  if (!duration_attr) return std::nullopt;
  auto duration = parse_duration_s(*duration_attr);
  if (!duration) return std::nullopt;

  if (!scan.next_tag("<Period")) return std::nullopt;

  MpdDocument doc;
  doc.duration_s = *duration;

  while (true) {
    // Bound each adaptation set's representations by the start of the next
    // one, so representation scanning cannot leak across sets.
    auto set_attrs = scan.next_tag("<AdaptationSet");
    if (!set_attrs) break;
    std::size_t set_end = scan.find_from_here("</AdaptationSet>");
    if (set_end == std::string::npos) return std::nullopt;

    MpdAdaptationSet set;
    auto srd_attrs = scan.next_tag("<SupplementalProperty", set_end);
    if (!srd_attrs) return std::nullopt;
    auto scheme = attr_value(*srd_attrs, "schemeIdUri");
    auto value = attr_value(*srd_attrs, "value");
    if (!scheme || *scheme != "urn:mpeg:dash:srd:2014" || !value)
      return std::nullopt;
    auto parts = split(*value, ',');
    if (parts.size() != 7) return std::nullopt;
    try {
      set.srd_x = std::stoi(parts[1]);
      set.srd_y = std::stoi(parts[2]);
      set.srd_w = std::stoi(parts[3]);
      set.srd_h = std::stoi(parts[4]);
      set.srd_frame_w = std::stoi(parts[5]);
      set.srd_frame_h = std::stoi(parts[6]);
    } catch (...) {
      return std::nullopt;
    }

    while (auto rep_attrs = scan.next_tag("<Representation", set_end)) {
      MpdRepresentation rep;
      auto id = attr_value(*rep_attrs, "id");
      auto bandwidth = attr_value(*rep_attrs, "bandwidth");
      if (!id || !bandwidth) return std::nullopt;
      rep.id = *id;
      try {
        rep.bandwidth = std::stoll(*bandwidth);
      } catch (...) {
        return std::nullopt;
      }
      // Quality name: the suffix after the last '_' of the id.
      std::size_t us = rep.id.rfind('_');
      rep.quality = us == std::string::npos ? rep.id : rep.id.substr(us + 1);

      auto tmpl_attrs = scan.next_tag("<SegmentTemplate", set_end);
      if (!tmpl_attrs) return std::nullopt;
      auto media = attr_value(*tmpl_attrs, "media");
      if (!media) return std::nullopt;
      rep.media_template = *media;
      auto seg_dur = attr_value(*tmpl_attrs, "duration");
      if (seg_dur) {
        try {
          doc.segment_duration_ms = std::stoi(*seg_dur);
        } catch (...) {
          return std::nullopt;
        }
      }
      set.representations.push_back(std::move(rep));
    }
    if (set.representations.empty()) return std::nullopt;
    doc.adaptation_sets.push_back(std::move(set));
  }
  if (doc.adaptation_sets.empty()) return std::nullopt;
  return doc;
}

}  // namespace mfhttp
