// Equirectangular projection and spherical viewport geometry (§5.2.1).
//
// A 360° frame is a sphere unwrapped onto a 2πr x πr plane. The user's view
// direction is (yaw, pitch): yaw ∈ (-π, π] is longitude (wraps), pitch ∈
// [-π/2, π/2] is latitude. The visible region for a given field of view is
// computed by casting sample rays across the FOV and projecting each onto
// the frame — this handles the longitude wrap and the polar stretching that
// make the footprint non-rectangular.
#pragma once

#include <vector>

#include "geom/vec2.h"

namespace mfhttp {

struct ViewOrientation {
  double yaw = 0;    // radians, wraps into (-pi, pi]
  double pitch = 0;  // radians, clamped to [-pi/2, pi/2]
};

// Normalize yaw into (-pi, pi] and clamp pitch.
ViewOrientation normalize_orientation(ViewOrientation o);

// Linear interpolation along the shortest yaw arc.
ViewOrientation interpolate_orientation(const ViewOrientation& a,
                                        const ViewOrientation& b, double t);

struct FieldOfView {
  double horizontal_rad = 100.0 * 3.14159265358979323846 / 180.0;
  double vertical_rad = 70.0 * 3.14159265358979323846 / 180.0;
};

// Map a view direction to equirectangular frame coordinates (u, v) in
// [0, frame_w) x [0, frame_h).
Vec2 project_equirect(const ViewOrientation& dir, double frame_w, double frame_h);

// Sample directions covering the viewport: a samples_x x samples_y grid over
// the FOV, rotated to the view orientation. Returned as frame coordinates.
std::vector<Vec2> viewport_footprint(const ViewOrientation& center,
                                     const FieldOfView& fov, double frame_w,
                                     double frame_h, int samples_x = 15,
                                     int samples_y = 9);

}  // namespace mfhttp
