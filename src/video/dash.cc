#include "video/dash.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace mfhttp {

std::vector<Representation> default_ladder() {
  // Whole-frame KB/s: 360s=100, 480s=200, 720s=300, 1080s=500. At the low
  // end of the paper's sweep (250 KB/s) greedy whole-frame DASH affords
  // 480s while MF-HTTP can often hold 1080s in the viewport.
  return {
      {"360s", 360, 100e3},
      {"480s", 480, 200e3},
      {"720s", 720, 300e3},
      {"1080s", 1080, 500e3},
  };
}

VideoAsset::VideoAsset(Params params)
    : params_(std::move(params)),
      grid_(params_.tile_cols, params_.tile_rows, params_.frame_w, params_.frame_h) {
  if (params_.ladder.empty()) params_.ladder = default_ladder();
  MFHTTP_CHECK(params_.duration_s > 0);
  for (std::size_t q = 1; q < params_.ladder.size(); ++q)
    MFHTTP_CHECK_MSG(params_.ladder[q].resolution > params_.ladder[q - 1].resolution,
                     "ladder must ascend by resolution");

  // Pre-draw every (segment, quality, tile) size so all schedulers see the
  // same content. The draw order (segment, then quality, then tile) is the
  // same order the old nested-vector layout used, so the flat arena holds
  // byte-identical sizes for a given seed.
  Rng rng(params_.seed);
  const int tiles = grid_.tile_count();
  const std::size_t qualities = params_.ladder.size();
  sizes_.resize(static_cast<std::size_t>(params_.duration_s) * qualities *
                static_cast<std::size_t>(tiles));
  frame_sizes_.resize(static_cast<std::size_t>(params_.duration_s) * qualities);
  std::vector<double> tile_factors(static_cast<std::size_t>(tiles));
  for (int s = 0; s < params_.duration_s; ++s) {
    // One shared per-segment complexity factor: an action-heavy second is
    // expensive at every quality, preserving ladder monotonicity.
    double segment_factor = std::exp(rng.normal(0.0, params_.vbr_sigma));
    // Per-tile complexity is drawn once per segment and shared across
    // qualities so a tile's size stays monotone in quality.
    for (double& f : tile_factors)
      f = std::exp(rng.normal(0.0, params_.vbr_sigma / 2));
    for (std::size_t q = 0; q < qualities; ++q) {
      Bytes* row = &sizes_[(static_cast<std::size_t>(s) * qualities + q) *
                           static_cast<std::size_t>(tiles)];
      double tile_rate = params_.ladder[q].whole_frame_rate *
                         params_.bitrate_multiplier / tiles;
      Bytes frame_total = 0;
      for (int t = 0; t < tiles; ++t) {
        row[t] = static_cast<Bytes>(
            tile_rate * segment_factor * tile_factors[static_cast<std::size_t>(t)]);
        frame_total += row[t];
      }
      frame_sizes_[static_cast<std::size_t>(s) * qualities + q] = frame_total;
    }
  }
}

const Representation& VideoAsset::representation(int q) const {
  MFHTTP_CHECK(q >= 0 && static_cast<std::size_t>(q) < params_.ladder.size());
  return params_.ladder[static_cast<std::size_t>(q)];
}

Bytes VideoAsset::segment_size(int tile, int segment, int quality) const {
  MFHTTP_CHECK(tile >= 0 && tile < grid_.tile_count());
  return segment_sizes(segment, quality)[tile];
}

const Bytes* VideoAsset::segment_sizes(int segment, int quality) const {
  MFHTTP_CHECK(segment >= 0 && segment < segment_count());
  MFHTTP_CHECK(quality >= 0 && quality < quality_count());
  const std::size_t qualities = params_.ladder.size();
  return &sizes_[(static_cast<std::size_t>(segment) * qualities +
                  static_cast<std::size_t>(quality)) *
                 static_cast<std::size_t>(grid_.tile_count())];
}

Bytes VideoAsset::whole_frame_segment_size(int segment, int quality) const {
  MFHTTP_CHECK(segment >= 0 && segment < segment_count());
  MFHTTP_CHECK(quality >= 0 && quality < quality_count());
  return frame_sizes_[static_cast<std::size_t>(segment) * params_.ladder.size() +
                      static_cast<std::size_t>(quality)];
}

std::string VideoAsset::segment_url(const std::string& origin, int tile, int segment,
                                    int quality) const {
  int r = tile / grid_.cols();
  int c = tile % grid_.cols();
  return origin + strformat("/%s/tile_%d_%d/%s/seg_%03d.m4s", params_.name.c_str(),
                            r, c, representation(quality).name.c_str(), segment);
}

}  // namespace mfhttp
