// DASH Media Presentation Description (MPD) with the Spatial Relationship
// Description (SRD) extension — the manifest format of the paper's GPAC
// packaging pipeline (§6.2.1: tiles are "segmented ... as well as the MPD
// files, which are ready to be DASHed").
//
// The writer emits one AdaptationSet per tile carrying an
// urn:mpeg:dash:srd:2014 SupplementalProperty ("source,x,y,w,h,W,H"), one
// Representation per ladder rung, and a SegmentTemplate with $Number$
// substitution. The parser reads that dialect back (it is a purposeful
// subset of MPEG-DASH, not a general XML parser).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "video/dash.h"

namespace mfhttp {

struct MpdRepresentation {
  std::string id;          // e.g. "tile_1_2_720s"
  std::string quality;     // ladder name, e.g. "720s"
  long long bandwidth = 0; // bits per second, as DASH specifies
  std::string media_template;  // e.g. ".../seg_$Number$.m4s"
};

struct MpdAdaptationSet {
  int srd_x = 0, srd_y = 0, srd_w = 0, srd_h = 0;  // tile box in frame px
  int srd_frame_w = 0, srd_frame_h = 0;            // whole frame dims
  std::vector<MpdRepresentation> representations;
};

struct MpdDocument {
  int duration_s = 0;
  int segment_duration_ms = 1000;
  std::vector<MpdAdaptationSet> adaptation_sets;  // one per tile, row-major

  // Expand a representation's media template for a segment number.
  static std::string expand_template(const std::string& media_template,
                                     int segment_number);
};

// Serialize the asset's tiling/ladder as an MPD manifest. URLs are relative
// to `base_url` (emitted as <BaseURL>).
std::string write_mpd(const VideoAsset& video, const std::string& base_url);

// Parse the dialect written by write_mpd. Returns nullopt on any structural
// error (missing MPD/Period, bad SRD, missing SegmentTemplate, ...).
std::optional<MpdDocument> parse_mpd(const std::string& xml);

}  // namespace mfhttp
