// Event-driven tile-DASH player with a real buffer, run on the simulator.
//
// The per-second arithmetic in session.h mirrors the paper's offline
// simulation; this player closes the remaining gap to a real client:
//
//   * segments are fetched sequentially over a rate-limited link, with the
//     throughput *estimated* from completed transfers (no oracle bandwidth),
//   * playback starts after a startup buffer and stalls when the next
//     segment is late (stall count/duration are first-class outputs),
//   * fetch-ahead is capped by a buffer target,
//   * because tiles are chosen at fetch time but watched at playback time,
//     the player measures the viewport *hit fraction* — how much of what the
//     user actually looks at was fetched at viewport quality.
#pragma once

#include <vector>

#include "net/link.h"
#include "sim/simulator.h"
#include "video/scheduler.h"
#include "video/viewport_trace.h"

namespace mfhttp {

struct BufferedPlayerParams {
  FieldOfView fov;
  double startup_buffer_s = 1.0;  // segments buffered before playback starts
  double max_buffer_s = 3.0;      // stop fetching ahead beyond this
  double throughput_safety = 0.9; // schedule against est_rate * safety
  TimeMs link_latency_ms = 10;
};

struct PlayedSegment {
  int segment = 0;
  int scheduled_quality = -1;   // plan's viewport quality at fetch time
  TimeMs fetch_start_ms = 0;
  TimeMs fetch_done_ms = 0;
  TimeMs playback_ms = 0;       // when this second actually played
  Bytes bytes = 0;
  int visible_at_playback = 0;  // tiles visible when it played
  int hit_at_playback = 0;      // of those, fetched at viewport quality
  double hit_fraction() const {
    return visible_at_playback > 0
               ? static_cast<double>(hit_at_playback) / visible_at_playback
               : 1.0;
  }
};

struct BufferedSessionResult {
  std::string scheduler;
  std::vector<PlayedSegment> segments;
  TimeMs startup_delay_ms = 0;  // first-frame latency
  int stall_count = 0;
  TimeMs stall_ms = 0;          // total rebuffering time after startup
  Bytes total_bytes = 0;

  double mean_scheduled_resolution(const VideoAsset& video) const;
  double mean_hit_fraction() const;
};

// Stream the whole asset through `scheduler` over a link shaped by
// `bandwidth`, driven by the viewer's orientation trace.
BufferedSessionResult run_buffered_session(const VideoAsset& video,
                                           const ViewportTrace& viewport,
                                           const BandwidthTrace& bandwidth,
                                           const TileScheduler& scheduler,
                                           const BufferedPlayerParams& params);

}  // namespace mfhttp
