// 360°-video streaming session runner (§6.2): walks the DASH timeline one
// 1-second segment at a time, asks a scheduler for a tile plan against the
// bandwidth available that second (plus a small carried-over allowance, the
// player's buffer), and records what the viewer saw.
//
// Also provides an HTTP-level replay that pushes a session's chosen
// segments through the simulated origin/proxy/link stack, which the
// integration tests and the Fig. 9 bench use for byte-accurate accounting.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/bandwidth_trace.h"
#include "video/scheduler.h"
#include "video/viewport_trace.h"

namespace mfhttp {

struct SegmentRecord {
  int segment = 0;
  int visible_tiles = 0;
  int viewport_quality = -1;  // ladder index; -1 = NA
  Bytes bytes = 0;            // plan wire size
  Bytes budget = 0;           // allowance the scheduler saw
  bool degraded = false;      // planned in survival mode
};

struct StreamingSessionResult {
  std::string scheduler;
  std::vector<SegmentRecord> segments;
  std::vector<TilePlan> plans;  // parallel to segments
  Bytes total_bytes = 0;

  // Seconds played at each ladder index, with -1 collecting NA seconds.
  std::map<int, int> seconds_at_quality() const;

  // Fraction of session time at `quality` (-1 for NA).
  double fraction_at(int quality) const;

  // Mean resolution over non-NA seconds (0 if all NA).
  double mean_resolution(const VideoAsset& video) const;

  // Machine-readable export (util/json.h) for analysis pipelines.
  std::string to_json() const;
};

struct StreamingSessionParams {
  FieldOfView fov;
  // Unused allowance carried between segments, capped at this many seconds
  // of the mean bandwidth (a small player buffer). 0 disables carrying.
  double carry_cap_s = 1.0;
  // Graceful degradation: after this many consecutive NA (stalled) segments
  // the session plans in survival mode (SchedulerContext::degraded) until
  // `recover_after` consecutive non-NA segments. 0 disables.
  int degrade_after_na = 0;
  int recover_after = 2;
};

StreamingSessionResult run_streaming_session(const VideoAsset& video,
                                             const ViewportTrace& viewport,
                                             const BandwidthTrace& bandwidth,
                                             const TileScheduler& scheduler,
                                             const StreamingSessionParams& params);

// Replay a planned session through the simulated HTTP stack: registers every
// chosen tile segment with an origin store and fetches them in order over a
// link shaped by `bandwidth`. Returns per-segment completion times (ms).
std::vector<TimeMs> replay_session_over_http(const VideoAsset& video,
                                             const StreamingSessionResult& session,
                                             const BandwidthTrace& bandwidth);

}  // namespace mfhttp
