#include "video/tiling.h"

#include <algorithm>

#include "util/check.h"

namespace mfhttp {

TileGrid::TileGrid(int cols, int rows, double frame_w, double frame_h)
    : cols_(cols), rows_(rows), frame_w_(frame_w), frame_h_(frame_h) {
  MFHTTP_CHECK(cols_ > 0 && rows_ > 0);
  MFHTTP_CHECK(frame_w_ > 0 && frame_h_ > 0);
}

int TileGrid::tile_at(Vec2 p) const {
  int cx = static_cast<int>(p.x / frame_w_ * cols_);
  int cy = static_cast<int>(p.y / frame_h_ * rows_);
  cx = std::clamp(cx, 0, cols_ - 1);
  cy = std::clamp(cy, 0, rows_ - 1);
  return cy * cols_ + cx;
}

Rect TileGrid::tile_rect(int tile) const {
  MFHTTP_CHECK(tile >= 0 && tile < tile_count());
  double tw = frame_w_ / cols_;
  double th = frame_h_ / rows_;
  int cx = tile % cols_;
  int cy = tile / cols_;
  return {cx * tw, cy * th, tw, th};
}

std::vector<bool> TileGrid::visible_tiles(const ViewOrientation& view,
                                          const FieldOfView& fov) const {
  std::vector<bool> mask(static_cast<std::size_t>(tile_count()), false);
  for (Vec2 p : viewport_footprint(view, fov, frame_w_, frame_h_))
    mask[static_cast<std::size_t>(tile_at(p))] = true;
  return mask;
}

int TileGrid::count_visible(const std::vector<bool>& mask) {
  return static_cast<int>(std::count(mask.begin(), mask.end(), true));
}

}  // namespace mfhttp
