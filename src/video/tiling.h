// Tile grid over the equirectangular frame (§5.2.1: 4x4 tiles, per the
// paper's GPAC packaging) and viewport→tile classification (§5.2.2: tiles
// that appear in the viewport vs. tiles with no overlap).
#pragma once

#include <cstddef>
#include <vector>

#include "geom/rect.h"
#include "video/projection.h"

namespace mfhttp {

class TileGrid {
 public:
  TileGrid(int cols, int rows, double frame_w, double frame_h);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int tile_count() const { return cols_ * rows_; }
  double frame_w() const { return frame_w_; }
  double frame_h() const { return frame_h_; }

  // Tile index for a frame coordinate (clamped into range).
  int tile_at(Vec2 frame_point) const;

  Rect tile_rect(int tile) const;

  // Tiles the viewport touches, as a tile_count()-sized mask. Computed by
  // projecting an FOV ray grid (handles longitude wrap and pole stretch).
  std::vector<bool> visible_tiles(const ViewOrientation& view,
                                  const FieldOfView& fov) const;

  static int count_visible(const std::vector<bool>& mask);

 private:
  int cols_, rows_;
  double frame_w_, frame_h_;
};

}  // namespace mfhttp
