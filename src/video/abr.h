// Adaptive-bitrate baselines from the paper's related work (§2), adapted to
// the tiled setting so they slot into the same player/session harnesses:
//
//   * RateBasedTileScheduler — classic throughput-driven DASH (Tian et al.
//     style front-end): pick the highest whole-frame rung whose nominal rate
//     fits under safety * estimated throughput. Viewport-oblivious.
//   * BufferBasedTileScheduler — BBA (Huang et al., SIGCOMM'14): the rung is
//     a function of buffer occupancy alone — floor below the reservoir, top
//     above the cushion, linear in between. Viewport-oblivious.
//   * MfHttpBufferedScheduler — the extension the paper leaves as future
//     work (§5.2.2): MF-HTTP's viewport split, with the *viewport* rung
//     chosen by the BBA map and the budget cap still enforced. Combines
//     scroll awareness with buffer-based stability.
#pragma once

#include "video/scheduler.h"

namespace mfhttp {

class RateBasedTileScheduler : public TileScheduler {
 public:
  using TileScheduler::plan_segment;
  explicit RateBasedTileScheduler(double safety = 0.9) : safety_(safety) {}
  std::string name() const override { return "rate-based"; }
  TilePlan plan_segment(const VideoAsset& video, int segment,
                        const std::vector<bool>& visible,
                        const SchedulerContext& context) const override;

 private:
  double safety_;
};

struct BbaParams {
  double reservoir_s = 1.0;  // below this buffer: floor quality
  // Above this buffer: top quality. The player decides while holding at
  // most (max_buffer - 1) whole segments, so the cushion sits at 2 s to be
  // reachable under the default 3 s fetch-ahead cap.
  double cushion_s = 2.0;
};

class BufferBasedTileScheduler : public TileScheduler {
 public:
  using TileScheduler::plan_segment;
  explicit BufferBasedTileScheduler(BbaParams params = {}) : params_(params) {}
  std::string name() const override { return "buffer-based"; }
  TilePlan plan_segment(const VideoAsset& video, int segment,
                        const std::vector<bool>& visible,
                        const SchedulerContext& context) const override;

  // The BBA quality map (exposed for tests): buffer seconds -> ladder index.
  int quality_for_buffer(double buffer_s, int quality_count) const;

 private:
  BbaParams params_;
};

class MfHttpBufferedScheduler : public TileScheduler {
 public:
  using TileScheduler::plan_segment;
  explicit MfHttpBufferedScheduler(BbaParams params = {}) : params_(params) {}
  std::string name() const override { return "mf-http+bba"; }
  TilePlan plan_segment(const VideoAsset& video, int segment,
                        const std::vector<bool>& visible,
                        const SchedulerContext& context) const override;

 private:
  BbaParams params_;
};

}  // namespace mfhttp
