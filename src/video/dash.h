// Tile-based DASH content model (§6.2.1): each test video is packaged into
// a tile grid, encoded at the paper's four spherical resolutions (1080s,
// 720s, 480s, 360s), and cut into 1-second segments. Segment sizes are
// drawn per (tile, segment, quality) with VBR jitter so no two seconds cost
// exactly the same — the source of the "NA" slices in Fig. 10.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"
#include "video/tiling.h"

namespace mfhttp {

struct Representation {
  std::string name;              // "1080s", "720s", ...
  double resolution = 0;         // r_j for the QoE model (frame height)
  BytesPerSec whole_frame_rate;  // bytes/s to stream the full frame
};

// The default ladder: whole-frame rates chosen so the Fig. 10 bandwidth
// sweep (250..1000 KB/s) spans "only 360s affordable" to "everything fits".
std::vector<Representation> default_ladder();

class VideoAsset {
 public:
  struct Params {
    std::string name = "video1";
    int duration_s = 60;
    int tile_cols = 4;
    int tile_rows = 4;
    double frame_w = 3840;  // equirect 2:1
    double frame_h = 1920;
    std::vector<Representation> ladder;  // ascending by resolution
    double bitrate_multiplier = 1.0;     // per-video content complexity
    double vbr_sigma = 0.18;             // lognormal per-segment size jitter
    std::uint64_t seed = 7;
  };

  explicit VideoAsset(Params params);

  const Params& params() const { return params_; }
  const TileGrid& grid() const { return grid_; }
  int segment_count() const { return params_.duration_s; }
  int quality_count() const { return static_cast<int>(params_.ladder.size()); }
  const Representation& representation(int q) const;

  // Wire size of one tile's 1-second segment at quality q.
  Bytes segment_size(int tile, int segment, int quality) const;

  // Sum over all tiles for one segment at a uniform quality.
  Bytes whole_frame_segment_size(int segment, int quality) const;

  // Tile arena: all sizes for one (segment, quality) as one contiguous run
  // of grid().tile_count() entries — the per-second scheduler reads these
  // instead of issuing tile_count bounds-checked segment_size() calls.
  const Bytes* segment_sizes(int segment, int quality) const;

  // DASH-style URL for a tile segment (used when streaming through the
  // simulated HTTP stack): /<name>/tile_<r>_<c>/<quality-name>/seg_<k>.m4s
  std::string segment_url(const std::string& origin, int tile, int segment,
                          int quality) const;

 private:
  Params params_;
  TileGrid grid_;
  // Tile-record arena: one flat (segment, quality, tile)-major array instead
  // of nested vectors — index (segment * quality_count + quality) *
  // tile_count + tile. Keeps a whole segment-quality row on one or two cache
  // lines for the scheduler's summing loops.
  std::vector<Bytes> sizes_;
  // Precomputed per-(segment, quality) whole-frame sums.
  std::vector<Bytes> frame_sizes_;
};

}  // namespace mfhttp
