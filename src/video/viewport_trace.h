// View-orientation timeline driven by touch gestures (§5.2.2).
//
// The 360° player maps finger drags to view rotation: dragging the content
// right rotates the view left (yaw decreases), dragging down tilts the view
// up (pitch increases); sensitivity defaults to one horizontal FOV per
// screen width. Drags dominate; the occasional fling is folded in through
// the same scroll physics the web case uses, with its post-release
// displacement applied over the animation duration.
//
// The result is a keyframed orientation timeline, sampled per DASH segment
// by the schedulers.
#pragma once

#include <vector>

#include "gesture/gesture.h"
#include "gesture/touch_event.h"
#include "scroll/animation.h"
#include "scroll/device_profile.h"
#include "video/projection.h"

namespace mfhttp {

class ViewportTrace {
 public:
  struct Params {
    DeviceProfile device;
    FieldOfView fov;
    // Radians of yaw per finger px; defaults to fov_h / screen_w.
    double rad_per_px = 0;
    ViewOrientation start{0, 0};
  };

  explicit ViewportTrace(Params params);

  // Fold one recognized gesture into the timeline. Gestures must arrive in
  // time order. Clicks are ignored; drags rotate during contact; flings add
  // their post-release scroll displacement over the animation duration.
  void add_gesture(const Gesture& gesture);

  // Build directly from a raw touch trace (runs the recognizer internally).
  static ViewportTrace from_touch_trace(Params params, const TouchTrace& trace);

  // Orientation at an absolute time (interpolated between keyframes).
  ViewOrientation at(TimeMs time_ms) const;

  std::size_t keyframe_count() const { return keys_.size(); }

 private:
  struct Key {
    TimeMs time_ms;
    ViewOrientation view;
  };

  void push_key(TimeMs time_ms, ViewOrientation view);

  Params params_;
  ScrollConfig scroll_config_;
  std::vector<Key> keys_;
};

}  // namespace mfhttp
