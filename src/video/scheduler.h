// Per-segment tile/rate selection policies (§5.2.2, §6.2).
//
//   * MfHttpTileScheduler — the paper's principle: given the available
//     bandwidth, minimize the quality of tiles with no viewport overlap and
//     maximize the quality of tiles that appear in the viewport.
//   * GreedyDashScheduler — the Fig. 10 comparator: stream the whole frame
//     at the highest resolution the budget affords.
//   * FixedRateScheduler — the Fig. 9 baseline: whole frame at a fixed
//     resolution, viewport-oblivious.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/types.h"
#include "video/dash.h"

namespace mfhttp {

struct TilePlan {
  // Per tile: chosen quality index into the ladder, or -1 to skip the tile.
  std::vector<int> tile_quality;
  // Quality shown in the viewport this segment; -1 = NA (insufficient
  // bandwidth for any resolution).
  int viewport_quality = -1;
  Bytes bytes = 0;  // total wire size of the plan
  int visible_count = 0;

  bool stalled() const { return viewport_quality < 0; }
};

// Everything a scheduler may key its decision on. The offline per-second
// session fills only `budget`; the buffered player also supplies its buffer
// occupancy and throughput estimate, which the literature-style ABR
// baselines (video/abr.h) consume.
struct SchedulerContext {
  Bytes budget = 0;       // byte allowance for this segment
  double buffer_s = 0;    // seconds of content buffered ahead of playback
  double est_rate = 0;    // throughput estimate, bytes/s (0 = unknown)
  // Graceful degradation (DESIGN.md §9): the session flips this after
  // repeated stalls. Degraded schedulers shed everything optional — lowest
  // tier for visible tiles, nothing prefetched for invisible ones.
  bool degraded = false;
  // Brownout level (overload/brownout.h). Level >= 2 ("low-res only") makes
  // MfHttpTileScheduler behave exactly as degraded: viewport tiles at the
  // lowest tier, out-of-view tiles skipped.
  int brownout = 0;

  static SchedulerContext from_budget(Bytes budget) {
    SchedulerContext ctx;
    ctx.budget = budget;
    return ctx;
  }
};

class TileScheduler {
 public:
  virtual ~TileScheduler() = default;
  virtual std::string name() const = 0;
  // `visible` has one entry per tile.
  virtual TilePlan plan_segment(const VideoAsset& video, int segment,
                                const std::vector<bool>& visible,
                                const SchedulerContext& context) const = 0;

  // Convenience for budget-only callers (tests, offline session).
  TilePlan plan_segment(const VideoAsset& video, int segment,
                        const std::vector<bool>& visible, Bytes budget) const {
    return plan_segment(video, segment, visible,
                        SchedulerContext::from_budget(budget));
  }
};

class MfHttpTileScheduler : public TileScheduler {
 public:
  using TileScheduler::plan_segment;
  std::string name() const override { return "mf-http"; }
  TilePlan plan_segment(const VideoAsset& video, int segment,
                        const std::vector<bool>& visible,
                        const SchedulerContext& context) const override;

  // Speculative warm-up list for a *future* segment: lowest-tier segment
  // URLs for tiles the head-motion predictor expects in the viewport, ready
  // to hand to MitmProxy::prefetch. Empty when the context forbids
  // speculation — degraded playback or any brownout level — so the warm-up
  // path can never compete with on-demand tiles under pressure.
  std::vector<std::string> plan_prefetch(const VideoAsset& video, int segment,
                                         const std::vector<bool>& predicted_visible,
                                         const SchedulerContext& context,
                                         const std::string& origin) const;
};

class GreedyDashScheduler : public TileScheduler {
 public:
  using TileScheduler::plan_segment;
  std::string name() const override { return "greedy-dash"; }
  TilePlan plan_segment(const VideoAsset& video, int segment,
                        const std::vector<bool>& visible,
                        const SchedulerContext& context) const override;
};

class FixedRateScheduler : public TileScheduler {
 public:
  using TileScheduler::plan_segment;
  explicit FixedRateScheduler(int quality) : quality_(quality) {}
  std::string name() const override;
  TilePlan plan_segment(const VideoAsset& video, int segment,
                        const std::vector<bool>& visible,
                        const SchedulerContext& context) const override;

 private:
  int quality_;
};

}  // namespace mfhttp
