#include "video/projection.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mfhttp {

namespace {
constexpr double kPi = 3.14159265358979323846;

struct Vec3 {
  double x, y, z;
};

Vec3 normalize(Vec3 v) {
  double n = std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
  return {v.x / n, v.y / n, v.z / n};
}
}  // namespace

ViewOrientation normalize_orientation(ViewOrientation o) {
  // Wrap yaw into (-pi, pi].
  o.yaw = std::fmod(o.yaw, 2 * kPi);
  if (o.yaw <= -kPi) o.yaw += 2 * kPi;
  if (o.yaw > kPi) o.yaw -= 2 * kPi;
  o.pitch = std::clamp(o.pitch, -kPi / 2, kPi / 2);
  return o;
}

ViewOrientation interpolate_orientation(const ViewOrientation& a,
                                        const ViewOrientation& b, double t) {
  ViewOrientation na = normalize_orientation(a);
  ViewOrientation nb = normalize_orientation(b);
  double dyaw = nb.yaw - na.yaw;
  if (dyaw > kPi) dyaw -= 2 * kPi;    // take the short way around
  if (dyaw < -kPi) dyaw += 2 * kPi;
  ViewOrientation out;
  out.yaw = na.yaw + dyaw * t;
  out.pitch = na.pitch + (nb.pitch - na.pitch) * t;
  return normalize_orientation(out);
}

Vec2 project_equirect(const ViewOrientation& dir, double frame_w, double frame_h) {
  MFHTTP_DCHECK(frame_w > 0 && frame_h > 0);
  ViewOrientation n = normalize_orientation(dir);
  double u = (n.yaw + kPi) / (2 * kPi) * frame_w;
  double v = (kPi / 2 - n.pitch) / kPi * frame_h;
  // Numeric edge: yaw == pi maps to frame_w; fold back into range.
  if (u >= frame_w) u -= frame_w;
  v = std::clamp(v, 0.0, std::nexttoward(frame_h, 0.0));
  return {u, v};
}

std::vector<Vec2> viewport_footprint(const ViewOrientation& center,
                                     const FieldOfView& fov, double frame_w,
                                     double frame_h, int samples_x, int samples_y) {
  MFHTTP_CHECK(samples_x >= 2 && samples_y >= 2);
  ViewOrientation c = normalize_orientation(center);
  const double cy = std::cos(c.yaw), sy = std::sin(c.yaw);
  const double cp = std::cos(c.pitch), sp = std::sin(c.pitch);
  // Camera basis (no roll): forward towards the view direction, right along
  // the horizon, up towards increasing pitch.
  const Vec3 fwd{cp * cy, cp * sy, sp};
  const Vec3 right{-sy, cy, 0};
  const Vec3 up{-sp * cy, -sp * sy, cp};

  std::vector<Vec2> points;
  points.reserve(static_cast<std::size_t>(samples_x) * samples_y);
  for (int iy = 0; iy < samples_y; ++iy) {
    double b = (static_cast<double>(iy) / (samples_y - 1) - 0.5) * fov.vertical_rad;
    double tb = std::tan(b);
    for (int ix = 0; ix < samples_x; ++ix) {
      double a =
          (static_cast<double>(ix) / (samples_x - 1) - 0.5) * fov.horizontal_rad;
      double ta = std::tan(a);
      Vec3 d = normalize({fwd.x + ta * right.x + tb * up.x,
                          fwd.y + ta * right.y + tb * up.y,
                          fwd.z + ta * right.z + tb * up.z});
      ViewOrientation sample;
      sample.yaw = std::atan2(d.y, d.x);
      sample.pitch = std::asin(std::clamp(d.z, -1.0, 1.0));
      points.push_back(project_equirect(sample, frame_w, frame_h));
    }
  }
  return points;
}

}  // namespace mfhttp
