#include "video/player.h"

#include <algorithm>
#include <memory>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

double BufferedSessionResult::mean_scheduled_resolution(const VideoAsset& video) const {
  double sum = 0;
  int n = 0;
  for (const PlayedSegment& s : segments) {
    if (s.scheduled_quality < 0) continue;
    sum += video.representation(s.scheduled_quality).resolution;
    ++n;
  }
  return n > 0 ? sum / n : 0;
}

double BufferedSessionResult::mean_hit_fraction() const {
  if (segments.empty()) return 0;
  double sum = 0;
  for (const PlayedSegment& s : segments) sum += s.hit_fraction();
  return sum / static_cast<double>(segments.size());
}

namespace {

// The whole session as one simulator program.
struct PlayerRun {
  PlayerRun(const VideoAsset& video, const ViewportTrace& viewport,
            const BandwidthTrace& bandwidth, const TileScheduler& scheduler,
            const BufferedPlayerParams& params)
      : video_(video), viewport_(viewport), scheduler_(scheduler), params_(params) {
    Link::Params lp;
    lp.bandwidth = bandwidth;
    lp.latency_ms = params.link_latency_ms;
    lp.sharing = Link::Sharing::kFifo;
    link_ = std::make_unique<Link>(sim_, lp);
    const int n = video.segment_count();
    result_.scheduler = scheduler.name();
    result_.segments.resize(static_cast<std::size_t>(n));
    plans_.resize(static_cast<std::size_t>(n));
    downloaded_.assign(static_cast<std::size_t>(n), false);
    for (int i = 0; i < n; ++i)
      result_.segments[static_cast<std::size_t>(i)].segment = i;
  }

  BufferedSessionResult run() {
    maybe_fetch();
    sim_.run();
    return std::move(result_);
  }

 private:
  int buffered_ahead() const { return fetched_count_ - next_play_; }

  void maybe_fetch() {
    if (fetching_ || next_fetch_ >= video_.segment_count()) return;
    if (buffered_ahead() >= static_cast<int>(params_.max_buffer_s)) return;

    const int seg = next_fetch_;
    PlayedSegment& rec = result_.segments[static_cast<std::size_t>(seg)];
    rec.fetch_start_ms = sim_.now();

    // Orientation "now" — the tracker follows the current viewport location.
    std::vector<bool> visible =
        video_.grid().visible_tiles(viewport_.at(sim_.now()), params_.fov);

    // Budget from the throughput estimate; before any sample exists, probe
    // at the cost of a floor-quality whole frame.
    SchedulerContext ctx;
    ctx.budget = est_rate_ > 0
                     ? static_cast<Bytes>(est_rate_ * params_.throughput_safety)
                     : video_.whole_frame_segment_size(seg, 0);
    ctx.buffer_s = static_cast<double>(buffered_ahead());
    ctx.est_rate = est_rate_;
    TilePlan plan = scheduler_.plan_segment(video_, seg, visible, ctx);
    plans_[static_cast<std::size_t>(seg)] = plan;
    rec.scheduled_quality = plan.viewport_quality;
    rec.bytes = plan.bytes;

    if (plan.stalled() || plan.bytes == 0) {
      // Nothing fits (or nothing to fetch): this second will play empty.
      on_segment_fetched(seg);
      return;
    }

    fetching_ = true;
    ++next_fetch_;
    link_->submit(plan.bytes, [this, seg](Bytes, bool complete) {
      if (!complete) return;
      fetching_ = false;
      on_segment_fetched(seg);
    });
  }

  void on_segment_fetched(int seg) {
    PlayedSegment& rec = result_.segments[static_cast<std::size_t>(seg)];
    rec.fetch_done_ms = sim_.now();
    if (seg == next_fetch_) ++next_fetch_;  // the skipped (stalled-plan) path
    downloaded_[static_cast<std::size_t>(seg)] = true;
    ++fetched_count_;
    result_.total_bytes += rec.bytes;

    static obs::Counter& bytes_fetched =
        obs::metrics().counter("video.player.bytes_fetched_total");
    bytes_fetched.inc(static_cast<std::uint64_t>(rec.bytes));

    // Throughput sample (EWMA); zero-byte plans carry no signal.
    TimeMs elapsed = rec.fetch_done_ms - rec.fetch_start_ms;
    if (rec.bytes > 0 && elapsed > 0) {
      double sample =
          static_cast<double>(rec.bytes) / (static_cast<double>(elapsed) / 1000.0);
      est_rate_ = est_rate_ > 0 ? 0.5 * est_rate_ + 0.5 * sample : sample;
    }

    if (!playback_started_ &&
        fetched_count_ >= static_cast<int>(params_.startup_buffer_s)) {
      playback_started_ = true;
      result_.startup_delay_ms = sim_.now();
      static obs::Histogram& startup_ms = obs::metrics().histogram(
          "video.player.startup_delay_ms", obs::exponential_bounds(10, 4.0, 8));
      startup_ms.observe(static_cast<double>(result_.startup_delay_ms));
      play_tick();
    } else if (stalled_waiting_for_ == seg) {
      // Rebuffering ends the moment the late segment lands.
      result_.stall_ms += sim_.now() - stall_start_ms_;
      static obs::Counter& rebuffer_ms =
          obs::metrics().counter("video.player.rebuffer_ms_total");
      rebuffer_ms.inc(static_cast<std::uint64_t>(sim_.now() - stall_start_ms_));
      stalled_waiting_for_ = -1;
      play_tick();
    }
    maybe_fetch();
  }

  void play_tick() {
    if (next_play_ >= video_.segment_count()) return;  // session over
    const int seg = next_play_;
    if (!downloaded_[static_cast<std::size_t>(seg)]) {
      // Stall: resume from on_segment_fetched.
      ++result_.stall_count;
      static obs::Counter& rebuffers =
          obs::metrics().counter("video.player.rebuffers_total");
      rebuffers.inc();
      stall_start_ms_ = sim_.now();
      stalled_waiting_for_ = seg;
      return;
    }
    PlayedSegment& rec = result_.segments[static_cast<std::size_t>(seg)];
    rec.playback_ms = sim_.now();
    static obs::Counter& played =
        obs::metrics().counter("video.player.segments_played_total");
    played.inc();

    // What the user actually looks at mid-second vs what was fetched.
    std::vector<bool> visible_now =
        video_.grid().visible_tiles(viewport_.at(sim_.now() + 500), params_.fov);
    const TilePlan& plan = plans_[static_cast<std::size_t>(seg)];
    for (int t = 0; t < video_.grid().tile_count(); ++t) {
      if (!visible_now[static_cast<std::size_t>(t)]) continue;
      ++rec.visible_at_playback;
      if (!plan.tile_quality.empty() &&
          plan.tile_quality[static_cast<std::size_t>(t)] == plan.viewport_quality &&
          plan.viewport_quality >= 0)
        ++rec.hit_at_playback;
    }

    ++next_play_;
    maybe_fetch();  // playback advanced; buffer may have room again
    if (next_play_ < video_.segment_count())
      sim_.schedule_after(1000, [this] { play_tick(); });
  }

  Simulator sim_;
  const VideoAsset& video_;
  const ViewportTrace& viewport_;
  const TileScheduler& scheduler_;
  BufferedPlayerParams params_;
  std::unique_ptr<Link> link_;

  BufferedSessionResult result_;
  std::vector<TilePlan> plans_;
  std::vector<bool> downloaded_;
  int next_fetch_ = 0;
  int fetched_count_ = 0;
  int next_play_ = 0;
  bool fetching_ = false;
  bool playback_started_ = false;
  int stalled_waiting_for_ = -1;
  TimeMs stall_start_ms_ = 0;
  double est_rate_ = 0;  // bytes/s EWMA
};

}  // namespace

BufferedSessionResult run_buffered_session(const VideoAsset& video,
                                           const ViewportTrace& viewport,
                                           const BandwidthTrace& bandwidth,
                                           const TileScheduler& scheduler,
                                           const BufferedPlayerParams& params) {
  MFHTTP_CHECK(params.startup_buffer_s >= 1.0);
  MFHTTP_CHECK(params.max_buffer_s >= params.startup_buffer_s);
  static obs::Counter& sessions =
      obs::metrics().counter("video.player.sessions_total");
  sessions.inc();
  PlayerRun run(video, viewport, bandwidth, scheduler, params);
  return run.run();
}

}  // namespace mfhttp
