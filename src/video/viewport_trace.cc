#include "video/viewport_trace.h"

#include <algorithm>
#include <cmath>

#include "gesture/recognizer.h"
#include "util/check.h"

namespace mfhttp {

ViewportTrace::ViewportTrace(Params params)
    : params_(std::move(params)), scroll_config_(params_.device) {
  if (params_.rad_per_px <= 0)
    params_.rad_per_px = params_.fov.horizontal_rad / params_.device.screen_w_px;
  keys_.push_back({0, normalize_orientation(params_.start)});
}

void ViewportTrace::push_key(TimeMs time_ms, ViewOrientation view) {
  MFHTTP_CHECK_MSG(keys_.empty() || time_ms >= keys_.back().time_ms,
                   "gestures must be added in time order");
  keys_.push_back({time_ms, normalize_orientation(view)});
}

void ViewportTrace::add_gesture(const Gesture& gesture) {
  if (!gesture.scrolls()) return;
  ViewOrientation before = at(gesture.down_time_ms);

  auto rotate = [&](ViewOrientation v, Vec2 finger_px) {
    // Dragging content right => look left; dragging content down => look up.
    v.yaw -= finger_px.x * params_.rad_per_px;
    v.pitch += finger_px.y * params_.rad_per_px;
    return v;
  };

  // Contact phase: content tracks the finger.
  ViewOrientation at_release = rotate(before, gesture.finger_displacement());
  push_key(gesture.down_time_ms, before);
  push_key(gesture.up_time_ms, at_release);

  if (gesture.kind == GestureKind::kFling) {
    // Post-release inertia: content keeps moving along the fling direction.
    ScrollAnimation anim(gesture.release_velocity, scroll_config_);
    ViewOrientation settled = rotate(at_release, anim.total_displacement());
    push_key(gesture.up_time_ms + static_cast<TimeMs>(anim.duration_ms()), settled);
  }
}

ViewportTrace ViewportTrace::from_touch_trace(Params params,
                                              const TouchTrace& trace) {
  ViewportTrace vt(params);
  GestureRecognizer recognizer(vt.params_.device);
  for (const TouchEvent& ev : trace) {
    if (auto g = recognizer.on_touch_event(ev)) vt.add_gesture(*g);
  }
  return vt;
}

ViewOrientation ViewportTrace::at(TimeMs time_ms) const {
  MFHTTP_CHECK(!keys_.empty());
  if (time_ms <= keys_.front().time_ms) return keys_.front().view;
  if (time_ms >= keys_.back().time_ms) return keys_.back().view;
  auto it = std::upper_bound(
      keys_.begin(), keys_.end(), time_ms,
      [](TimeMs t, const Key& k) { return t < k.time_ms; });
  const Key& hi = *it;
  const Key& lo = *(it - 1);
  if (hi.time_ms == lo.time_ms) return hi.view;
  double t = static_cast<double>(time_ms - lo.time_ms) /
             static_cast<double>(hi.time_ms - lo.time_ms);
  return interpolate_orientation(lo.view, hi.view, t);
}

}  // namespace mfhttp
