#include "video/abr.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mfhttp {

namespace {

TilePlan whole_frame_plan(const VideoAsset& video, int segment,
                          const std::vector<bool>& visible, int quality) {
  const int tiles = video.grid().tile_count();
  TilePlan plan;
  plan.visible_count = TileGrid::count_visible(visible);
  plan.tile_quality.assign(static_cast<std::size_t>(tiles), quality);
  plan.viewport_quality = quality;
  plan.bytes = video.whole_frame_segment_size(segment, quality);
  return plan;
}

}  // namespace

TilePlan RateBasedTileScheduler::plan_segment(const VideoAsset& video, int segment,
                                              const std::vector<bool>& visible,
                                              const SchedulerContext& context) const {
  MFHTTP_CHECK(static_cast<int>(visible.size()) == video.grid().tile_count());
  // Decide on nominal ladder rates against the throughput estimate; fall
  // back to the budget when the estimator has no sample yet.
  double usable = context.est_rate > 0
                      ? context.est_rate * safety_
                      : static_cast<double>(context.budget);
  const double multiplier = video.params().bitrate_multiplier;
  for (int q = video.quality_count() - 1; q >= 0; --q) {
    if (video.representation(q).whole_frame_rate * multiplier <= usable)
      return whole_frame_plan(video, segment, visible, q);
  }
  // Nothing nominally fits: NA.
  TilePlan plan;
  plan.tile_quality.assign(static_cast<std::size_t>(video.grid().tile_count()), -1);
  plan.visible_count = TileGrid::count_visible(visible);
  return plan;
}

int BufferBasedTileScheduler::quality_for_buffer(double buffer_s,
                                                 int quality_count) const {
  MFHTTP_CHECK(quality_count > 0);
  if (buffer_s <= params_.reservoir_s) return 0;
  if (buffer_s >= params_.cushion_s) return quality_count - 1;
  double frac = (buffer_s - params_.reservoir_s) /
                (params_.cushion_s - params_.reservoir_s);
  return std::min(quality_count - 1,
                  static_cast<int>(frac * quality_count));
}

TilePlan BufferBasedTileScheduler::plan_segment(const VideoAsset& video, int segment,
                                                const std::vector<bool>& visible,
                                                const SchedulerContext& context) const {
  MFHTTP_CHECK(static_cast<int>(visible.size()) == video.grid().tile_count());
  int q = quality_for_buffer(context.buffer_s, video.quality_count());
  return whole_frame_plan(video, segment, visible, q);
}

TilePlan MfHttpBufferedScheduler::plan_segment(const VideoAsset& video, int segment,
                                               const std::vector<bool>& visible,
                                               const SchedulerContext& context) const {
  const int tiles = video.grid().tile_count();
  MFHTTP_CHECK(static_cast<int>(visible.size()) == tiles);
  BufferBasedTileScheduler bba(params_);
  int target = bba.quality_for_buffer(context.buffer_s, video.quality_count());

  // MF-HTTP split: viewport tiles at the BBA target (degrading to fit the
  // budget), everything else at the floor.
  for (int q = target; q >= 0; --q) {
    TilePlan plan;
    plan.visible_count = TileGrid::count_visible(visible);
    plan.tile_quality.resize(static_cast<std::size_t>(tiles));
    Bytes cost = 0;
    for (int t = 0; t < tiles; ++t) {
      int tq = visible[static_cast<std::size_t>(t)] ? q : 0;
      plan.tile_quality[static_cast<std::size_t>(t)] = tq;
      cost += video.segment_size(t, segment, tq);
    }
    if (cost <= context.budget || q == 0) {
      plan.viewport_quality = q;
      plan.bytes = cost;
      // At q == 0 the plan may exceed the budget; shed invisible tiles.
      if (cost > context.budget && q == 0) {
        Bytes trimmed = 0;
        for (int t = 0; t < tiles; ++t) {
          if (visible[static_cast<std::size_t>(t)]) {
            trimmed += video.segment_size(t, segment, 0);
          } else {
            plan.tile_quality[static_cast<std::size_t>(t)] = -1;
          }
        }
        if (trimmed > context.budget) {
          // Not even the viewport fits: NA.
          plan.tile_quality.assign(static_cast<std::size_t>(tiles), -1);
          plan.viewport_quality = -1;
          plan.bytes = 0;
          return plan;
        }
        plan.bytes = trimmed;
      }
      return plan;
    }
  }
  TilePlan na;
  na.tile_quality.assign(static_cast<std::size_t>(tiles), -1);
  na.visible_count = TileGrid::count_visible(visible);
  return na;
}

}  // namespace mfhttp
