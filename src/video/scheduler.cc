#include "video/scheduler.h"

#include <numeric>

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp {

namespace {

// Shared accounting for every scheduler's plan: totals, stalls, and tile
// fetches by chosen quality (the Fig. 10 quality-constitution signal).
TilePlan record_plan(TilePlan plan) {
  static obs::Counter& plans_total =
      obs::metrics().counter("video.scheduler.plans_total");
  plans_total.inc();
  if (plan.stalled()) {
    static obs::Counter& stalled =
        obs::metrics().counter("video.scheduler.plans_stalled_total");
    stalled.inc();
  }
  static obs::Counter& fetched =
      obs::metrics().counter("video.scheduler.tiles_fetched_total");
  static obs::Counter& skipped =
      obs::metrics().counter("video.scheduler.tiles_skipped_total");
  static obs::Histogram& by_quality = obs::metrics().histogram(
      "video.scheduler.tile_quality", obs::linear_bounds(0, 1, 8));
  for (int q : plan.tile_quality) {
    if (q < 0) {
      skipped.inc();
    } else {
      fetched.inc();
      by_quality.observe(q);
    }
  }
  return plan;
}

}  // namespace

std::vector<std::string> MfHttpTileScheduler::plan_prefetch(
    const VideoAsset& video, int segment,
    const std::vector<bool>& predicted_visible, const SchedulerContext& context,
    const std::string& origin) const {
  std::vector<std::string> urls;
  if (context.degraded || context.brownout >= 1) return urls;
  if (segment < 0 || segment >= video.segment_count()) return urls;
  MFHTTP_CHECK(static_cast<int>(predicted_visible.size()) ==
               video.grid().tile_count());
  for (int t = 0; t < video.grid().tile_count(); ++t) {
    if (!predicted_visible[static_cast<std::size_t>(t)]) continue;
    urls.push_back(video.segment_url(origin, t, segment, 0));
  }
  static obs::Counter& planned =
      obs::metrics().counter("video.scheduler.prefetch_tiles_total");
  planned.inc(urls.size());
  return urls;
}

TilePlan MfHttpTileScheduler::plan_segment(const VideoAsset& video, int segment,
                                           const std::vector<bool>& visible,
                                           const SchedulerContext& context) const {
  const Bytes budget = context.budget;
  const int tiles = video.grid().tile_count();
  const int qualities = video.quality_count();
  MFHTTP_CHECK(static_cast<int>(visible.size()) == tiles);
  TilePlan plan;
  plan.tile_quality.assign(static_cast<std::size_t>(tiles), -1);
  plan.visible_count = TileGrid::count_visible(visible);

  // Every candidate plan is "visible tiles at q, invisible at 0 or skipped",
  // so one sweep over the tile arena yields every cost the old per-quality
  // trial vectors recomputed: per-quality visible sums plus the lowest-tier
  // invisible sum. Integer sums — decisions are identical by construction.
  std::vector<Bytes> visible_sum(static_cast<std::size_t>(qualities), 0);
  Bytes invisible_low = 0;
  for (int q = 0; q < qualities; ++q) {
    const Bytes* row = video.segment_sizes(segment, q);
    Bytes sum = 0;
    for (int t = 0; t < tiles; ++t)
      if (visible[static_cast<std::size_t>(t)]) sum += row[t];
    visible_sum[static_cast<std::size_t>(q)] = sum;
  }
  {
    const Bytes* row = video.segment_sizes(segment, 0);
    for (int t = 0; t < tiles; ++t)
      if (!visible[static_cast<std::size_t>(t)]) invisible_low += row[t];
  }

  auto fill = [&](int visible_q, int invisible_q) {
    for (int t = 0; t < tiles; ++t)
      plan.tile_quality[static_cast<std::size_t>(t)] =
          visible[static_cast<std::size_t>(t)] ? visible_q : invisible_q;
  };

  // Degraded: survival mode. Only the viewport, only the lowest tier — keep
  // playback alive through the outage rather than chase quality. Brownout
  // level >= 2 (low-res only) demands exactly the same posture.
  if (context.degraded || context.brownout >= 2) {
    static obs::Counter& degraded_plans =
        obs::metrics().counter("video.scheduler.degraded_plans_total");
    degraded_plans.inc();
    if (visible_sum[0] <= budget) {
      fill(0, -1);
      plan.viewport_quality = 0;
      plan.bytes = visible_sum[0];
    }
    return record_plan(std::move(plan));  // NA if even survival does not fit
  }

  // Invisible tiles always at the lowest quality (they may become visible
  // mid-segment after a drag); visible tiles at the best quality that fits.
  for (int q = qualities - 1; q >= 0; --q) {
    Bytes cost = visible_sum[static_cast<std::size_t>(q)] + invisible_low;
    if (cost <= budget) {
      fill(q, 0);
      plan.viewport_quality = q;
      plan.bytes = cost;
      return record_plan(std::move(plan));
    }
  }
  // Even the lowest uniform quality does not fit: shed the invisible tiles
  // and retry with the viewport alone.
  if (visible_sum[0] <= budget) {
    fill(0, -1);
    plan.viewport_quality = 0;
    plan.bytes = visible_sum[0];
    return record_plan(std::move(plan));
  }
  // NA — bandwidth insufficient for any resolution.
  return record_plan(std::move(plan));
}

TilePlan GreedyDashScheduler::plan_segment(const VideoAsset& video, int segment,
                                           const std::vector<bool>& visible,
                                           const SchedulerContext& context) const {
  const Bytes budget = context.budget;
  const int tiles = video.grid().tile_count();
  MFHTTP_CHECK(static_cast<int>(visible.size()) == tiles);
  TilePlan plan;
  plan.tile_quality.assign(static_cast<std::size_t>(tiles), -1);
  plan.visible_count = TileGrid::count_visible(visible);

  for (int q = video.quality_count() - 1; q >= 0; --q) {
    Bytes cost = video.whole_frame_segment_size(segment, q);
    if (cost <= budget) {
      plan.tile_quality.assign(static_cast<std::size_t>(tiles), q);
      plan.viewport_quality = q;
      plan.bytes = cost;
      return record_plan(std::move(plan));
    }
  }
  return record_plan(std::move(plan));  // NA
}

std::string FixedRateScheduler::name() const {
  return "fixed-q" + std::to_string(quality_);
}

TilePlan FixedRateScheduler::plan_segment(const VideoAsset& video, int segment,
                                          const std::vector<bool>& visible,
                                          const SchedulerContext& /*context*/) const {
  const int tiles = video.grid().tile_count();
  MFHTTP_CHECK(static_cast<int>(visible.size()) == tiles);
  MFHTTP_CHECK(quality_ >= 0 && quality_ < video.quality_count());
  TilePlan plan;
  plan.visible_count = TileGrid::count_visible(visible);
  plan.tile_quality.assign(static_cast<std::size_t>(tiles), quality_);
  plan.viewport_quality = quality_;
  plan.bytes = video.whole_frame_segment_size(segment, quality_);
  return record_plan(std::move(plan));
}

}  // namespace mfhttp
