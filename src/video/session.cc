#include "video/session.h"

#include <algorithm>
#include <memory>

#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "util/json.h"
#include "http/sim_http.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace mfhttp {

std::map<int, int> StreamingSessionResult::seconds_at_quality() const {
  std::map<int, int> out;
  for (const SegmentRecord& r : segments) ++out[r.viewport_quality];
  return out;
}

double StreamingSessionResult::fraction_at(int quality) const {
  if (segments.empty()) return 0;
  auto n = std::count_if(segments.begin(), segments.end(),
                         [quality](const SegmentRecord& r) {
                           return r.viewport_quality == quality;
                         });
  return static_cast<double>(n) / static_cast<double>(segments.size());
}

double StreamingSessionResult::mean_resolution(const VideoAsset& video) const {
  double sum = 0;
  int n = 0;
  for (const SegmentRecord& r : segments) {
    if (r.viewport_quality < 0) continue;
    sum += video.representation(r.viewport_quality).resolution;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

std::string StreamingSessionResult::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("scheduler").value(scheduler);
  w.key("total_bytes").value(static_cast<long long>(total_bytes));
  w.key("segments").begin_array();
  for (const SegmentRecord& s : segments) {
    w.begin_object();
    w.key("segment").value(s.segment);
    w.key("visible_tiles").value(s.visible_tiles);
    w.key("viewport_quality").value(s.viewport_quality);
    w.key("bytes").value(static_cast<long long>(s.bytes));
    w.key("degraded").value(s.degraded);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

StreamingSessionResult run_streaming_session(const VideoAsset& video,
                                             const ViewportTrace& viewport,
                                             const BandwidthTrace& bandwidth,
                                             const TileScheduler& scheduler,
                                             const StreamingSessionParams& params) {
  StreamingSessionResult result;
  result.scheduler = scheduler.name();

  const TimeMs session_ms = static_cast<TimeMs>(video.segment_count()) * 1000;
  const double mean_rate = bandwidth.bytes_between(0, session_ms) /
                           (static_cast<double>(session_ms) / 1000.0);
  const Bytes carry_cap = static_cast<Bytes>(params.carry_cap_s * mean_rate);

  // Stall-driven degradation, hysteretic: degrade_after_na consecutive NA
  // segments flip survival mode on; recover_after non-NA segments flip it
  // back (fault::DegradationState semantics, inlined to keep this loop free
  // of metrics side effects per scheduler comparison run).
  bool degraded = false;
  int na_streak = 0;
  int ok_streak = 0;

  Bytes carry = 0;
  for (int seg = 0; seg < video.segment_count(); ++seg) {
    const TimeMs t0 = static_cast<TimeMs>(seg) * 1000;
    const Bytes fresh = static_cast<Bytes>(bandwidth.bytes_between(t0, t0 + 1000));
    const Bytes budget = fresh + carry;

    // Orientation sampled mid-segment — the tracker "keeps a close track of
    // the viewport's current location" (§5.2.2).
    ViewOrientation view = viewport.at(t0 + 500);
    std::vector<bool> visible = video.grid().visible_tiles(view, params.fov);

    SchedulerContext ctx = SchedulerContext::from_budget(budget);
    ctx.degraded = degraded;
    TilePlan plan = scheduler.plan_segment(video, seg, visible, ctx);
    MFHTTP_DCHECK(plan.bytes <= budget || plan.viewport_quality < 0 ||
                  dynamic_cast<const FixedRateScheduler*>(&scheduler) != nullptr);

    if (params.degrade_after_na > 0) {
      if (plan.stalled()) {
        ok_streak = 0;
        if (!degraded && ++na_streak >= params.degrade_after_na) {
          degraded = true;
          na_streak = 0;
        }
      } else {
        na_streak = 0;
        if (degraded && ++ok_streak >= params.recover_after) {
          degraded = false;
          ok_streak = 0;
        }
      }
    }

    carry = std::min<Bytes>(std::max<Bytes>(budget - plan.bytes, 0), carry_cap);

    SegmentRecord record;
    record.segment = seg;
    record.visible_tiles = plan.visible_count;
    record.viewport_quality = plan.viewport_quality;
    record.bytes = plan.bytes;
    record.budget = budget;
    record.degraded = ctx.degraded;
    result.segments.push_back(record);
    result.total_bytes += plan.bytes;
    result.plans.push_back(std::move(plan));
  }
  return result;
}

std::vector<TimeMs> replay_session_over_http(const VideoAsset& video,
                                             const StreamingSessionResult& session,
                                             const BandwidthTrace& bandwidth) {
  Simulator sim;
  Link::Params link_params;  // bottleneck device hop
  link_params.bandwidth = bandwidth;
  link_params.latency_ms = 5;
  link_params.sharing = Link::Sharing::kFifo;  // segments fetched in order

  Link::Params cdn_params;
  cdn_params.bandwidth = BandwidthTrace::constant(50e6);  // fast CDN hop
  cdn_params.latency_ms = 2;
  Link cdn_link(sim, cdn_params);

  MFHTTP_CHECK(session.plans.size() == session.segments.size());
  const std::string origin_url = "http://cdn.example";
  ObjectStore store;
  // Register exactly the tile segments the plans download.
  for (std::size_t si = 0; si < session.plans.size(); ++si) {
    const TilePlan& plan = session.plans[si];
    const int segment = session.segments[si].segment;
    for (int t = 0; t < video.grid().tile_count(); ++t) {
      int q = plan.tile_quality[static_cast<std::size_t>(t)];
      if (q < 0) continue;
      auto url = parse_url(video.segment_url(origin_url, t, segment, q));
      MFHTTP_CHECK(url.has_value());
      store.put(url->path, video.segment_size(t, segment, q), "video/mp4");
    }
  }
  SimHttpOrigin origin(sim, &store, &cdn_link);
  std::unique_ptr<FetchPipeline> pipeline =
      FetchPipelineBuilder(sim, &origin).client_link(link_params).build();
  MitmProxy& proxy = pipeline->proxy();

  // Fetch every chosen tile; a segment completes when its last tile lands.
  // Requests are issued in segment order and the FIFO link preserves it.
  std::vector<TimeMs> completion(session.segments.size(), -1);
  std::vector<std::size_t> remaining(session.segments.size(), 0);

  for (std::size_t si = 0; si < session.plans.size(); ++si) {
    const TilePlan& plan = session.plans[si];
    const int segment = session.segments[si].segment;
    for (int t = 0; t < video.grid().tile_count(); ++t) {
      int q = plan.tile_quality[static_cast<std::size_t>(t)];
      if (q < 0) continue;
      ++remaining[si];
      FetchCallbacks cbs;
      cbs.on_complete = [&completion, &remaining, si, &sim](const FetchResult&) {
        if (--remaining[si] == 0) completion[si] = sim.now();
      };
      proxy.fetch(HttpRequest::get(video.segment_url(origin_url, t, segment, q)),
                  std::move(cbs));
    }
  }
  sim.run();
  return completion;
}

}  // namespace mfhttp
