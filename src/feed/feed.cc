#include "feed/feed.h"

#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace mfhttp {

std::size_t Feed::clip_count() const {
  std::size_t n = 0;
  for (const FeedPost& p : posts)
    if (p.kind == PostKind::kClip) ++n;
  return n;
}

Bytes Feed::total_full_bytes() const {
  Bytes total = 0;
  for (const MediaObject& m : media) total += m.top_version().size;
  return total;
}

Feed generate_feed(const FeedSpec& spec, const DeviceProfile& device, Rng& rng) {
  MFHTTP_CHECK(spec.post_count > 0);
  MFHTTP_CHECK(spec.clip_fraction >= 0 && spec.clip_fraction <= 1);

  Feed feed;
  feed.origin = "http://feed.example";
  feed.width = device.screen_w_px;
  feed.height = spec.post_count * spec.post_height;

  for (int i = 0; i < spec.post_count; ++i) {
    FeedPost post;
    post.kind = rng.chance(spec.clip_fraction) ? PostKind::kClip : PostKind::kPhoto;
    // Media box fills most of the width; caption/engagement chrome fills the
    // rest of the post slot.
    double media_h = spec.post_height * rng.uniform(0.55, 0.75);
    double w = feed.width * rng.uniform(0.85, 1.0);
    double x = rng.uniform(0.0, feed.width - w);
    double y = i * spec.post_height + rng.uniform(0.0, spec.post_height - media_h);
    post.rect = {x, y, w, media_h};
    post.media_index = feed.media.size();

    double jitter = std::exp(rng.normal(0.0, spec.size_jitter_sigma));
    MediaObject media;
    media.rect = post.rect;
    if (post.kind == PostKind::kPhoto) {
      media.id = strformat("photo-%03d", i);
      media.versions = {{720, static_cast<Bytes>(spec.photo_bytes * jitter),
                         feed.origin + strformat("/photo/%03d.jpg", i)}};
    } else {
      media.id = strformat("clip-%03d", i);
      // Version 0: poster thumbnail; version 1: the full clip.
      media.versions = {{240, static_cast<Bytes>(spec.thumb_bytes * jitter),
                         feed.origin + strformat("/clip/%03d_thumb.jpg", i)},
                        {720, static_cast<Bytes>(spec.clip_bytes * jitter),
                         feed.origin + strformat("/clip/%03d.mp4", i)}};
    }
    feed.media.push_back(std::move(media));
    feed.posts.push_back(post);
  }
  return feed;
}

}  // namespace mfhttp
