// Flow controller for the social feed: extends the §5.1.2 block-list
// workflow with version *selection*. Photos behave like web images
// (release/keep-blocked); clips additionally honour the optimizer's version
// choice — a clip the user only glimpses is released as its thumbnail via
// the proxy's substitution path, while a clip that settles in the viewport
// gets the full file.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/flow_controller.h"
#include "feed/feed.h"
#include "http/proxy.h"

namespace mfhttp {

class FeedController : public Interceptor {
 public:
  struct Stats {
    std::size_t full_releases = 0;   // clips/photos released at top version
    std::size_t thumb_releases = 0;  // clips substituted with their thumbnail
  };

  // `initial_media` bounds the media considered present at construction —
  // a dynamic feed starts with a prefix and reveals the rest through
  // on_media_appended. Defaults to the whole feed (static).
  FeedController(const Feed& feed, Rect initial_viewport, MitmProxy* proxy,
                 std::size_t initial_media = static_cast<std::size_t>(-1));

  // Interceptor: the app always requests the top version; anything not yet
  // cleared by policy is parked.
  InterceptDecision on_request(const HttpRequest& request) override;

  // Wire to Middleware::set_policy_callback. The analysis may cover only a
  // prefix of the feed's media (a policy computed before an append lands);
  // media beyond the covered prefix are left as-is.
  void on_policy(const ScrollAnalysis& analysis, const DownloadPolicy& policy);

  // Dynamic feeds: media [first_index, feed.media.size()) just appeared
  // below the fold; park their top versions until policy clears them.
  void on_media_appended(std::size_t first_index);

  bool is_blocked(const std::string& top_url) const {
    return block_list_.contains(top_url);
  }
  std::size_t block_list_size() const { return block_list_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  void release_full(std::size_t media_index);
  void release_as_version(std::size_t media_index, int version);

  const Feed& feed_;
  MitmProxy* proxy_;
  std::unordered_set<std::string> block_list_;  // keyed by top-version URL
  Stats stats_;
};

}  // namespace mfhttp
