#include "feed/feed_experiment.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "core/middleware.h"
#include "feed/feed_controller.h"
#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace mfhttp {

namespace {

struct MediaLoadState {
  TimeMs complete_ms = -1;
  Bytes delivered = 0;
};

struct SettleEvent {
  TimeMs time_ms;
  Rect viewport;
};

}  // namespace

FeedSessionResult run_feed_session(const Feed& feed, const FeedSessionConfig& config) {
  Simulator sim;
  Rng rng(config.seed);

  const BandwidthTrace client_trace =
      config.client_bandwidth_trace.has_value()
          ? *config.client_bandwidth_trace
          : BandwidthTrace::constant(config.client_bandwidth);

  Link::Params cp;
  cp.bandwidth = client_trace;
  cp.latency_ms = config.client_latency_ms;
  cp.sharing = Link::Sharing::kFairShare;
  Link::Params sp;
  sp.bandwidth = BandwidthTrace::constant(config.server_bandwidth);
  sp.latency_ms = config.server_latency_ms;
  sp.sharing = Link::Sharing::kFairShare;
  Link server_link(sim, sp);

  ObjectStore store;
  for (const MediaObject& m : feed.media)
    for (const MediaVersion& v : m.versions)
      store.put(parse_url(v.url)->path, v.size);
  SimHttpOrigin origin(sim, &store, &server_link);
  FetchPipelineBuilder builder(sim, &origin);
  builder.client_link(cp);
  // Only engage fault wiring with an explicit plan: the historical feed
  // runner never consulted the ambient plan, and keeping that means the
  // pristine arms stay byte-identical under an installed --fault-plan.
  if (config.fault_plan != nullptr) builder.with_faults(config.fault_plan);
  if (config.enable_cache) builder.with_cache(config.cache);
  if (config.admission.has_value()) builder.with_admission(*config.admission);
  std::unique_ptr<FetchPipeline> pipeline = builder.build();
  MitmProxy& proxy = pipeline->proxy();
  Link& client_link = pipeline->client_link();

  const Rect vp0{0, 0, config.device.screen_w_px, config.device.screen_h_px};

  ScrollTracker::Params tracker_params;
  tracker_params.scroll = ScrollConfig(config.device);
  tracker_params.scroll.fling.friction *= config.fling_friction_scale;
  tracker_params.coverage_step_ms = 4.0;
  tracker_params.content_bounds = feed.bounds();

  // Dynamic feed: only the first `initial_posts` media exist at open; the
  // rest are revealed in batches just before each fling.
  std::size_t revealed =
      (config.initial_posts > 0 &&
       static_cast<std::size_t>(config.initial_posts) < feed.media.size())
          ? static_cast<std::size_t>(config.initial_posts)
          : feed.media.size();
  const bool dynamic = revealed < feed.media.size();

  // Ground-truth trajectory (same in both arms).
  ScrollTracker gt_tracker(tracker_params);
  ViewportState gt_viewport(vp0, feed.bounds());
  GestureRecognizer gt_recognizer(config.device);
  std::vector<SettleEvent> settles;
  settles.push_back({0, vp0});  // the feed's opening state

  std::optional<Middleware> middleware;
  std::optional<FeedController> controller;
  std::optional<TouchEventMonitor> monitor;
  if (config.enable_mfhttp) {
    Middleware::Params mp;
    mp.tracker = tracker_params;
    mp.flow.weights = config.weights;
    mp.flow.ignore_bandwidth_constraint = true;  // feeds, like pages (§5.1.2)
    mp.initial_viewport = vp0;
    mp.gesture_uplink_ms = config.client_latency_ms;
    middleware.emplace(
        mp,
        std::vector<MediaObject>(feed.media.begin(),
                                 feed.media.begin() + revealed),
        client_trace, &sim);
    controller.emplace(feed, vp0, &proxy, revealed);
    proxy.set_interceptor(&*controller);
    middleware->set_policy_callback(
        [&](const ScrollAnalysis& a, const DownloadPolicy& p) {
          controller->on_policy(a, p);
        });
    monitor.emplace(config.device,
                    [&](const Gesture& g) { middleware->on_gesture(g); });
  }

  // The feed app requests every *present* post's media (top version) when it
  // opens; a dynamic feed requests the rest as batches are revealed.
  std::vector<MediaLoadState> states(feed.media.size());
  auto request_media = [&](std::size_t i) {
    FetchCallbacks cbs;
    cbs.on_complete = [&states, i, &sim](const FetchResult& r) {
      if (r.blocked) return;
      states[i].complete_ms = sim.now();
      states[i].delivered = r.body_size;
    };
    proxy.fetch(HttpRequest::get(feed.media[i].top_version().url), std::move(cbs));
  };
  sim.schedule_at(0, [&, initial = revealed] {
    for (std::size_t i = 0; i < initial; ++i) request_media(i);
  });

  // The flings.
  for (int k = 0; k < config.fling_count; ++k) {
    SwipeSpec spec;
    spec.start_time_ms = config.first_fling_ms + k * config.fling_interval_ms;
    // Reveal the next batch a beat before the finger lands, so the fling's
    // policy sees a feed that just grew — the knapsack's appended-suffix
    // case (prefix reuse: existing indices are untouched).
    if (dynamic && config.append_posts_per_fling > 0) {
      sim.schedule_at(std::max<TimeMs>(1, spec.start_time_ms - 16), [&] {
        std::size_t add =
            std::min<std::size_t>(config.append_posts_per_fling,
                                  feed.media.size() - revealed);
        if (add == 0) return;
        std::size_t first = revealed;
        revealed += add;
        if (middleware)
          middleware->append_objects(std::vector<MediaObject>(
              feed.media.begin() + first, feed.media.begin() + revealed));
        if (controller) controller->on_media_appended(first);
        for (std::size_t i = first; i < revealed; ++i) request_media(i);
      });
    }
    spec.start = {rng.uniform(config.device.screen_w_px * 0.3,
                              config.device.screen_w_px * 0.7),
                  config.device.screen_h_px * 0.75};
    spec.direction = {rng.uniform(-0.04, 0.04), -1};
    spec.speed_px_s = config.fling_speed_px_s;
    for (const TouchEvent& ev : synthesize_swipe(spec)) {
      sim.schedule_at(ev.time_ms, [&, ev] {
        if (monitor) monitor->on_touch_event(ev);
        if (auto g = gt_recognizer.on_touch_event(ev)) {
          gt_viewport.interrupt(g->down_time_ms);
          gt_viewport.apply_contact_pan(*g);
          if (g->scrolls()) {
            ScrollPrediction pred =
                gt_tracker.predict(*g, gt_viewport.at(g->up_time_ms));
            gt_viewport.begin_animation(pred);
            settles.push_back(
                {pred.start_time_ms + static_cast<TimeMs>(pred.duration_ms),
                 pred.final_viewport()});
          }
        }
      });
    }
  }

  sim.run_until(config.session_ms);

  // Score instant playback: for each clip, find the first *scroll-driven*
  // settle event whose viewport shows it; it plays instantly iff the FULL
  // clip had completely arrived by that moment. Clips already on screen when
  // the feed opens are the cold-start set — no scroll prediction can help
  // them, so they are excluded from the metric.
  FeedSessionResult result;
  result.clips_total = feed.clip_count();
  result.full_corpus_bytes = feed.total_full_bytes();
  result.bytes_downloaded = client_link.bytes_delivered_total();

  // Media never revealed (a dynamic session that ended early) cannot settle
  // for the user, so only the revealed prefix is scored.
  for (std::size_t i = 0; i < revealed; ++i) {
    const MediaObject& media = feed.media[i];
    bool is_clip = media.versions.size() > 1;
    if (!is_clip) continue;
    if (settles.front().viewport.overlaps(media.rect)) continue;  // cold start
    std::optional<TimeMs> settle_time;
    for (std::size_t k = 1; k < settles.size(); ++k) {
      if (settles[k].viewport.overlaps(media.rect)) {
        settle_time = settles[k].time_ms;
        break;
      }
    }
    if (!settle_time) continue;
    ++result.clips_settled;
    const MediaLoadState& st = states[i];
    bool full_arrived = st.complete_ms >= 0 && st.complete_ms <= *settle_time &&
                        st.delivered >= media.top_version().size;
    if (full_arrived) ++result.clips_instant;
  }
  result.instant_play_rate =
      result.clips_settled > 0
          ? static_cast<double>(result.clips_instant) / result.clips_settled
          : 0.0;

  std::size_t transferred = 0;
  for (const MediaLoadState& st : states)
    if (st.complete_ms >= 0) ++transferred;
  result.media_avoided = feed.media.size() - transferred;
  if (controller) result.thumbs_substituted = controller->stats().thumb_releases;
  const MitmProxy::Stats& ps = proxy.stats();
  result.requests_total = ps.allowed + ps.blocked + ps.deferred + ps.rejected +
                          ps.shed + ps.header_violations + ps.cache_hits;
  result.requests_rejected = ps.rejected;
  result.requests_shed = ps.shed;
  if (HttpCache* cache = pipeline->cache()) {
    HttpCache::Stats cs = cache->stats();
    result.cache_hits = cs.hits;
    result.cache_misses = cs.misses;
  }
  return result;
}

}  // namespace mfhttp
