#include "feed/feed_controller.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

FeedController::FeedController(const Feed& feed, Rect initial_viewport,
                               MitmProxy* proxy, std::size_t initial_media)
    : feed_(feed), proxy_(proxy) {
  MFHTTP_CHECK(proxy_ != nullptr);
  std::size_t present = std::min(initial_media, feed_.media.size());
  for (std::size_t i = 0; i < present; ++i) {
    if (!initial_viewport.overlaps(feed_.media[i].rect))
      block_list_.insert(feed_.media[i].top_version().url);
  }
}

InterceptDecision FeedController::on_request(const HttpRequest& request) {
  auto url = request.url();
  std::string url_str = url ? url->to_string() : request.target;
  if (block_list_.contains(url_str)) return InterceptDecision::defer();
  return InterceptDecision::allow();
}

void FeedController::release_full(std::size_t media_index) {
  const std::string& url = feed_.media[media_index].top_version().url;
  if (block_list_.erase(url) > 0) {
    ++stats_.full_releases;
    proxy_->release(url);
  }
}

void FeedController::release_as_version(std::size_t media_index, int version) {
  const MediaObject& media = feed_.media[media_index];
  MFHTTP_CHECK(version >= 0 &&
               static_cast<std::size_t>(version) < media.versions.size());
  if (static_cast<std::size_t>(version) + 1 == media.versions.size()) {
    release_full(media_index);
    return;
  }
  const std::string& top_url = media.top_version().url;
  const std::string& sub_url = media.versions[static_cast<std::size_t>(version)].url;
  if (block_list_.erase(top_url) > 0) {
    ++stats_.thumb_releases;
    proxy_->release_rewritten(top_url, sub_url);
  }
}

void FeedController::on_media_appended(std::size_t first_index) {
  for (std::size_t i = first_index; i < feed_.media.size(); ++i)
    block_list_.insert(feed_.media[i].top_version().url);
}

void FeedController::on_policy(const ScrollAnalysis& analysis,
                               const DownloadPolicy& policy) {
  MFHTTP_CHECK(analysis.coverages.size() <= feed_.media.size());
  for (std::size_t i = 0; i < analysis.coverages.size(); ++i) {
    const ObjectCoverage& cov = analysis.coverages[i];
    // Settling in (or starting in) the viewport: full version, instantly
    // playable.
    if (cov.in_initial_viewport || cov.in_final_viewport) {
      release_full(i);
      continue;
    }
    if (!cov.involved) continue;  // stays parked
    // Transient: take the optimizer's version choice (thumbnail for a
    // glimpse, full if the coverage justifies it); skipped objects stay
    // parked.
    const DownloadDecision* d = policy.find(i);
    if (d != nullptr && d->download()) release_as_version(i, d->version);
  }
}

}  // namespace mfhttp
