// Mobile social-networking feed — the paper's third motivating application
// (Fig. 3; the authors' companion work, "Mobile instant video clip sharing
// with screen scrolling", IEEE TMM 2018).
//
// A feed is an endless vertical timeline of posts; a post carries either a
// photo or an autoplaying video clip. Clips are the interesting media: each
// has TWO versions — a cheap poster thumbnail and the full clip — so the
// flow controller's version selection (not just block/allow) matters:
//
//   * a clip that will *settle* in the viewport should be preloaded in full
//     so it autoplays instantly,
//   * a clip the user merely flings past deserves only its thumbnail,
//   * a clip that never appears should not be fetched at all.
#pragma once

#include <string>
#include <vector>

#include "core/media_object.h"
#include "scroll/device_profile.h"
#include "util/rng.h"

namespace mfhttp {

enum class PostKind { kPhoto, kClip };

struct FeedPost {
  PostKind kind = PostKind::kPhoto;
  Rect rect;          // media box in feed coordinates
  std::size_t media_index = 0;  // index into Feed::media
};

struct Feed {
  std::string origin;  // e.g. "http://feed.example"
  double width = 0;
  double height = 0;
  std::vector<FeedPost> posts;        // top to bottom
  std::vector<MediaObject> media;     // parallel: photos 1 version, clips 2

  Rect bounds() const { return {0, 0, width, height}; }
  std::size_t clip_count() const;
  Bytes total_full_bytes() const;  // everything at its top version
};

struct FeedSpec {
  int post_count = 60;
  double clip_fraction = 0.4;        // share of posts that are video clips
  double post_height = 900;          // media box height incl. caption gap
  Bytes photo_bytes = 150'000;
  Bytes thumb_bytes = 25'000;        // clip poster frame
  Bytes clip_bytes = 700'000;        // full short clip (~6 s at ~1 Mbps)
  double size_jitter_sigma = 0.3;    // lognormal jitter on all sizes
};

// Deterministically generate a feed for the given device width.
Feed generate_feed(const FeedSpec& spec, const DeviceProfile& device, Rng& rng);

}  // namespace mfhttp
