// End-to-end feed-scrolling session: a user flings down the timeline several
// times; the metric that matters is *instant playback* — when the feed
// settles, is the clip in front of the user already fully downloaded?
#pragma once

#include <cstdint>

#include "core/flow_controller.h"
#include "feed/feed.h"
#include "net/bandwidth_trace.h"

namespace mfhttp {

struct FeedSessionConfig {
  DeviceProfile device = DeviceProfile::nexus6();
  bool enable_mfhttp = true;

  BytesPerSec client_bandwidth = 2.5e6;
  TimeMs client_latency_ms = 8;
  BytesPerSec server_bandwidth = 12.5e6;
  TimeMs server_latency_ms = 4;

  int fling_count = 4;
  TimeMs first_fling_ms = 1000;
  TimeMs fling_interval_ms = 4000;
  double fling_speed_px_s = 9000;

  // Cost pressure: with q > 0 the optimizer hands glimpsed clips their
  // thumbnails instead of megabyte clips.
  FlowWeights weights{1.0, 0.3};

  TimeMs session_ms = 30'000;
  std::uint64_t seed = 1;
};

struct FeedSessionResult {
  std::size_t clips_total = 0;
  std::size_t clips_settled = 0;   // clips that ever rested in the viewport
  std::size_t clips_instant = 0;   // of those, fully loaded when they settled
  double instant_play_rate = 0;    // clips_instant / clips_settled

  Bytes bytes_downloaded = 0;      // over the client link
  Bytes full_corpus_bytes = 0;     // what download-everything would move
  std::size_t thumbs_substituted = 0;  // clips served as posters
  std::size_t media_avoided = 0;   // media never transferred at all
};

FeedSessionResult run_feed_session(const Feed& feed, const FeedSessionConfig& config);

}  // namespace mfhttp
