// End-to-end feed-scrolling session: a user flings down the timeline several
// times; the metric that matters is *instant playback* — when the feed
// settles, is the clip in front of the user already fully downloaded?
#pragma once

#include <cstdint>
#include <optional>

#include "core/flow_controller.h"
#include "fault/fault_plan.h"
#include "feed/feed.h"
#include "http/cache.h"
#include "net/bandwidth_trace.h"
#include "overload/admission.h"

namespace mfhttp {

struct FeedSessionConfig {
  DeviceProfile device = DeviceProfile::nexus6();
  bool enable_mfhttp = true;

  BytesPerSec client_bandwidth = 2.5e6;
  TimeMs client_latency_ms = 8;
  BytesPerSec server_bandwidth = 12.5e6;
  TimeMs server_latency_ms = 4;
  // Variable client-hop bandwidth (scenario network profiles); replaces the
  // constant client_bandwidth trace when set.
  std::optional<BandwidthTrace> client_bandwidth_trace;

  int fling_count = 4;
  TimeMs first_fling_ms = 1000;
  TimeMs fling_interval_ms = 4000;
  double fling_speed_px_s = 9000;
  // Device-class fling calibration (scenario::DeviceClassSpec); 1.0 = stock
  // physics, byte-identical to the historical runner.
  double fling_friction_scale = 1.0;

  // Dynamic feed (infinite scroll): the app opens with only the first
  // `initial_posts` posts and reveals `append_posts_per_fling` more just
  // before each fling — appended media join the middleware's knapsack via
  // Middleware::append_objects, exercising the incremental optimizer's
  // prefix reuse. initial_posts == 0 keeps the whole feed present at open
  // (the historical static behavior).
  int initial_posts = 0;
  int append_posts_per_fling = 0;

  // Optional pipeline layers (scenario sections). All off by default —
  // byte-identical to the historical stack.
  const fault::FaultPlan* fault_plan = nullptr;
  bool enable_cache = false;
  CacheParams cache;
  std::optional<overload::AdmissionParams> admission;

  // Cost pressure: with q > 0 the optimizer hands glimpsed clips their
  // thumbnails instead of megabyte clips.
  FlowWeights weights{1.0, 0.3};

  TimeMs session_ms = 30'000;
  std::uint64_t seed = 1;
};

struct FeedSessionResult {
  std::size_t clips_total = 0;
  std::size_t clips_settled = 0;   // clips that ever rested in the viewport
  std::size_t clips_instant = 0;   // of those, fully loaded when they settled
  double instant_play_rate = 0;    // clips_instant / clips_settled

  Bytes bytes_downloaded = 0;      // over the client link
  Bytes full_corpus_bytes = 0;     // what download-everything would move
  std::size_t thumbs_substituted = 0;  // clips served as posters
  std::size_t media_avoided = 0;   // media never transferred at all

  // Proxy-side accounting for the scenario matrix (0 when the matching
  // layer is off).
  std::size_t requests_total = 0;
  std::size_t requests_rejected = 0;
  std::size_t requests_shed = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

FeedSessionResult run_feed_session(const Feed& feed, const FeedSessionConfig& config);

}  // namespace mfhttp
