#include "gesture/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mfhttp {

TouchTrace synthesize_swipe(const SwipeSpec& spec) {
  MFHTTP_CHECK(spec.speed_px_s > 0);
  MFHTTP_CHECK(spec.contact_ms > 0);
  MFHTTP_CHECK(spec.sample_interval_ms > 0);
  const Vec2 dir = spec.direction.normalized();
  MFHTTP_CHECK_MSG(dir.norm() > 0, "swipe direction must be non-zero");

  const TimeMs decel_ms =
      spec.decelerate_before_release ? std::min<TimeMs>(120, spec.contact_ms / 2) : 0;
  const TimeMs steady_ms = spec.contact_ms - decel_ms;

  TouchTrace trace;
  trace.push_back({spec.start_time_ms, spec.start, TouchAction::kDown});

  auto pos_at = [&](TimeMs dt) -> Vec2 {
    // Steady phase at speed_px_s, then (optionally) linear deceleration to a
    // residual crawl so the release velocity drops below the fling threshold.
    double travelled;
    if (dt <= steady_ms) {
      travelled = spec.speed_px_s * static_cast<double>(dt) / 1000.0;
    } else {
      double steady = spec.speed_px_s * static_cast<double>(steady_ms) / 1000.0;
      double td = static_cast<double>(dt - steady_ms) / 1000.0;
      double total_d = static_cast<double>(decel_ms) / 1000.0;
      // Speed ramps linearly from speed_px_s to ~2% of it.
      double v0 = spec.speed_px_s, v1 = 0.02 * spec.speed_px_s;
      double frac = td / total_d;
      double v_now = v0 + (v1 - v0) * frac;
      travelled = steady + (v0 + v_now) / 2.0 * td;
    }
    return spec.start + dir * travelled;
  };

  for (TimeMs dt = spec.sample_interval_ms; dt < spec.contact_ms;
       dt += spec.sample_interval_ms) {
    trace.push_back({spec.start_time_ms + dt, pos_at(dt), TouchAction::kMove});
  }
  trace.push_back(
      {spec.start_time_ms + spec.contact_ms, pos_at(spec.contact_ms), TouchAction::kUp});
  return trace;
}

TouchTrace synthesize_tap(Vec2 pos, TimeMs time_ms) {
  return {
      {time_ms, pos, TouchAction::kDown},
      {time_ms + 60, pos, TouchAction::kUp},
  };
}

TouchTrace synthesize_pinch(Vec2 center, double start_span, double end_span,
                            TimeMs start_time_ms, TimeMs duration_ms) {
  MFHTTP_CHECK(start_span > 0 && end_span > 0);
  MFHTTP_CHECK(duration_ms > 0);
  const Vec2 axis{1, 0};  // horizontal pinch
  auto finger = [&](double span, int which) {
    double sign = which == 0 ? -0.5 : 0.5;
    return center + axis * (span * sign);
  };
  TouchTrace trace;
  trace.push_back({start_time_ms, finger(start_span, 0), TouchAction::kDown, 0});
  trace.push_back({start_time_ms, finger(start_span, 1), TouchAction::kDown, 1});
  const TimeMs step = 16;
  for (TimeMs dt = step; dt < duration_ms; dt += step) {
    double frac = static_cast<double>(dt) / static_cast<double>(duration_ms);
    double span = start_span + (end_span - start_span) * frac;
    trace.push_back(
        {start_time_ms + dt, finger(span, 0), TouchAction::kMove, 0});
    trace.push_back(
        {start_time_ms + dt, finger(span, 1), TouchAction::kMove, 1});
  }
  trace.push_back({start_time_ms + duration_ms, finger(end_span, 0),
                   TouchAction::kUp, 0});
  trace.push_back({start_time_ms + duration_ms, finger(end_span, 1),
                   TouchAction::kUp, 1});
  return trace;
}

TouchTrace BrowsingGestureSource::next_swipe(TimeMs not_before_ms) {
  TimeMs think =
      rng_.uniform_int(params_.min_think_ms, params_.max_think_ms);
  SwipeSpec spec;
  spec.start_time_ms = not_before_ms + think;
  // Finger starts in the lower/upper half depending on scroll direction so it
  // has room to travel.
  bool up = rng_.chance(params_.p_scroll_up);
  double x = rng_.uniform(device_.screen_w_px * 0.25, device_.screen_w_px * 0.75);
  double y = up ? device_.screen_h_px * 0.25 : device_.screen_h_px * 0.7;
  spec.start = {x, y};
  // Finger up => content down => viewport scrolls up the page, and vice
  // versa. Direction here is *finger* travel.
  double jitter = rng_.uniform(-params_.max_horizontal_jitter,
                               params_.max_horizontal_jitter);
  spec.direction = up ? Vec2{jitter, 1} : Vec2{jitter, -1};
  spec.speed_px_s = rng_.truncated_normal(params_.mean_speed_px_s, params_.speed_stddev,
                                          params_.min_speed_px_s, params_.max_speed_px_s);
  spec.contact_ms = rng_.uniform_int(90, 220);
  return synthesize_swipe(spec);
}

VideoDragSource::VideoDragSource(const DeviceProfile& device, const Params& params,
                                 Rng rng)
    : device_(device), params_(params), rng_(rng) {
  double theta = rng_.uniform(0, 2 * 3.14159265358979323846);
  heading_ = {std::cos(theta), std::sin(theta)};
}

TouchTrace VideoDragSource::next_gesture(TimeMs not_before_ms) {
  // Random-walk the heading with persistence: interest directions are
  // coherent within a session (§5.2.2).
  double cur = std::atan2(heading_.y, heading_.x);
  double next = cur + rng_.normal(0, 0.6) * (1.0 - params_.heading_persistence);
  heading_ = {std::cos(next), std::sin(next)};

  TimeMs gap = rng_.uniform_int(params_.min_gap_ms, params_.max_gap_ms);
  SwipeSpec spec;
  spec.start_time_ms = not_before_ms + gap;
  spec.start = {device_.screen_w_px / 2 - heading_.x * 150,
                device_.screen_h_px / 2 - heading_.y * 150};
  spec.direction = heading_;

  double travel = std::max(40.0, rng_.normal(params_.mean_drag_px, params_.drag_px_stddev));
  bool fling = rng_.chance(params_.p_fling);
  if (fling) {
    spec.speed_px_s = rng_.uniform(device_.min_fling_velocity_px_s() * 1.5,
                                   device_.min_fling_velocity_px_s() * 6.0);
    spec.decelerate_before_release = false;
    spec.contact_ms = std::max<TimeMs>(
        40, static_cast<TimeMs>(travel / spec.speed_px_s * 1000.0));
  } else {
    // Slow-release drag: steady finger motion with a decelerating tail so the
    // recognizer classifies it below the fling threshold.
    spec.speed_px_s = rng_.uniform(300, 1200);
    spec.decelerate_before_release = true;
    spec.contact_ms = std::max<TimeMs>(
        160, static_cast<TimeMs>(travel / spec.speed_px_s * 1000.0));
  }
  return synthesize_swipe(spec);
}

}  // namespace mfhttp
