// Two-finger pinch recognition — the gesture behind the "viewport scale"
// device configuration of §3.2. Feed it the same DOWN/MOVE/UP stream the
// scroll recognizer sees (with pointer ids); while two pointers are in
// contact it tracks their span and emits a PinchGesture when either lifts.
//
// Single-pointer sequences pass through untouched: is_pinch_active() tells
// the caller whether to suppress the scroll recognizer for the contact.
#pragma once

#include <optional>

#include "geom/vec2.h"
#include "gesture/touch_event.h"

namespace mfhttp {

struct PinchGesture {
  TimeMs start_time_ms = 0;
  TimeMs end_time_ms = 0;
  Vec2 focus;               // midpoint of the two fingers at release
  double start_span_px = 0; // finger distance when the second finger landed
  double end_span_px = 0;   // finger distance at release

  // > 1 zooms in (fingers spread), < 1 zooms out.
  double scale_factor() const {
    return start_span_px > 0 ? end_span_px / start_span_px : 1.0;
  }
};

class PinchRecognizer {
 public:
  // Minimum span change before a two-finger contact counts as a pinch
  // rather than a two-finger tap (px).
  explicit PinchRecognizer(double span_slop_px = 24.0)
      : span_slop_px_(span_slop_px) {}

  // Returns a completed pinch when one of the two fingers lifts.
  std::optional<PinchGesture> on_touch_event(const TouchEvent& ev);

  // True while two pointers are down (scroll recognition should pause).
  bool is_pinch_active() const { return down_[0] && down_[1]; }

 private:
  double span() const { return (pos_[0] - pos_[1]).norm(); }

  double span_slop_px_;
  bool down_[2] = {false, false};
  Vec2 pos_[2];
  TimeMs pinch_start_ms_ = 0;
  double start_span_ = 0;
  bool spans_moved_ = false;
};

}  // namespace mfhttp
