// Synthetic touch-trace generation — the stand-in for the paper's physical
// phone and recruited volunteers (see DESIGN.md §2).
//
// Generators emit full DOWN/MOVE/UP event streams at a realistic sampling
// rate, so everything downstream (velocity tracker, recognizer, scroll
// tracker, flow controller) exercises the same code path a real device feed
// would. Two session models are provided:
//
//   * BrowsingGestureSource — web browsing (§6.1): dominated by vertical
//     flings of varying intensity with think-time between gestures.
//   * VideoDragSource — 360° video (§5.2.2, §6.2): "users produce much more
//     drag events than fling events"; a persistent-interest random walk of
//     viewing direction realized as slow-release drags.
#pragma once

#include "gesture/touch_event.h"
#include "scroll/device_profile.h"
#include "util/rng.h"

namespace mfhttp {

struct SwipeSpec {
  Vec2 start;                  // finger-down position (screen px)
  Vec2 direction{0, -1};       // finger travel direction (normalized internally)
  double speed_px_s = 3000;    // finger speed during the steady phase
  TimeMs start_time_ms = 0;    // DOWN timestamp
  TimeMs contact_ms = 150;     // DOWN..UP duration
  TimeMs sample_interval_ms = 8;  // ~120 Hz touch sampling
  // If true the finger decelerates to (near) rest over the final ~120 ms, so
  // the recognizer sees a drag; if false the release velocity equals
  // speed_px_s and the gesture is a fling (when above threshold).
  bool decelerate_before_release = false;
};

// Build the touch event stream for one swipe.
TouchTrace synthesize_swipe(const SwipeSpec& spec);

// Build a tap (click) at the given position/time.
TouchTrace synthesize_tap(Vec2 pos, TimeMs time_ms);

// Build a two-finger pinch about `center`: fingers start `start_span` apart
// and end `end_span` apart (px), interleaved MOVE events for both pointers.
TouchTrace synthesize_pinch(Vec2 center, double start_span, double end_span,
                            TimeMs start_time_ms, TimeMs duration_ms = 300);

// Web-browsing session gestures: random vertical flings (mostly downward).
class BrowsingGestureSource {
 public:
  struct Params {
    double mean_speed_px_s = 4000;
    double speed_stddev = 2000;
    double min_speed_px_s = 800;
    double max_speed_px_s = 12000;
    double p_scroll_up = 0.15;        // fraction of backtracking swipes
    double max_horizontal_jitter = 0.08;  // |v_x / v_y| bound
    TimeMs min_think_ms = 400;
    TimeMs max_think_ms = 3000;
  };

  BrowsingGestureSource(const DeviceProfile& device, const Params& params, Rng rng)
      : device_(device), params_(params), rng_(rng) {}

  // Swipe whose DOWN fires at or after `not_before_ms` (after think time).
  TouchTrace next_swipe(TimeMs not_before_ms);

 private:
  DeviceProfile device_;
  Params params_;
  Rng rng_;
};

// 360°-video session gestures: drag-dominated viewing-direction random walk.
class VideoDragSource {
 public:
  struct Params {
    double mean_drag_px = 350;        // finger travel per drag
    double drag_px_stddev = 150;
    double heading_persistence = 0.85;  // new heading = persistence * old + noise
    double p_fling = 0.05;            // rare flings, per the paper
    TimeMs min_gap_ms = 200;
    TimeMs max_gap_ms = 2500;
  };

  VideoDragSource(const DeviceProfile& device, const Params& params, Rng rng);

  // Next gesture (almost always a drag) starting at or after `not_before_ms`.
  TouchTrace next_gesture(TimeMs not_before_ms);

  // Current random-walk heading (unit vector), for tests/inspection.
  Vec2 heading() const { return heading_; }

 private:
  DeviceProfile device_;
  Params params_;
  Rng rng_;
  Vec2 heading_{1, 0};
};

}  // namespace mfhttp
