#include "gesture/pinch.h"

#include <cmath>

namespace mfhttp {

std::optional<PinchGesture> PinchRecognizer::on_touch_event(const TouchEvent& ev) {
  if (ev.pointer < 0 || ev.pointer > 1) return std::nullopt;  // 3+ fingers: ignore
  const int p = ev.pointer;

  switch (ev.action) {
    case TouchAction::kDown:
      down_[p] = true;
      pos_[p] = ev.pos;
      if (is_pinch_active()) {
        pinch_start_ms_ = ev.time_ms;
        start_span_ = span();
        spans_moved_ = false;
      }
      return std::nullopt;

    case TouchAction::kMove:
      if (!down_[p]) return std::nullopt;
      pos_[p] = ev.pos;
      if (is_pinch_active() && std::abs(span() - start_span_) > span_slop_px_)
        spans_moved_ = true;
      return std::nullopt;

    case TouchAction::kUp: {
      if (!down_[p]) return std::nullopt;
      bool was_pinch = is_pinch_active();
      pos_[p] = ev.pos;
      double final_span = span();
      down_[p] = false;
      if (!was_pinch || !spans_moved_ || start_span_ <= 0) return std::nullopt;
      PinchGesture out;
      out.start_time_ms = pinch_start_ms_;
      out.end_time_ms = ev.time_ms;
      out.focus = (pos_[0] + pos_[1]) / 2.0;
      out.start_span_px = start_span_;
      out.end_span_px = final_span;
      spans_moved_ = false;
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace mfhttp
