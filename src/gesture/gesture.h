// Recognized input gestures. The paper distinguishes click, drag, and fling
// (§3.2); only the latter two trigger scrolling animation.
#pragma once

#include "geom/vec2.h"
#include "gesture/touch_event.h"
#include "util/types.h"

namespace mfhttp {

enum class GestureKind { kClick, kDrag, kFling };

struct Gesture {
  GestureKind kind = GestureKind::kClick;
  TimeMs down_time_ms = 0;      // finger contact
  TimeMs up_time_ms = 0;        // finger release; scrolling animation starts here
  Vec2 down_pos;
  Vec2 up_pos;
  Vec2 release_velocity;        // px/s per axis at release (zero for clicks)

  // Finger travel while in contact. During contact the content tracks the
  // finger 1:1, so the viewport has already moved by -finger_displacement()
  // (content follows finger; viewport moves opposite) when the animation
  // begins.
  Vec2 finger_displacement() const { return up_pos - down_pos; }

  TimeMs contact_duration_ms() const { return up_time_ms - down_time_ms; }

  bool scrolls() const { return kind != GestureKind::kClick; }
};

inline const char* to_string(GestureKind k) {
  switch (k) {
    case GestureKind::kClick: return "click";
    case GestureKind::kDrag: return "drag";
    case GestureKind::kFling: return "fling";
  }
  return "?";
}

}  // namespace mfhttp
