// Release-velocity estimation from recent touch samples.
//
// Android's VelocityTracker fits a low-degree polynomial by least squares to
// the pointer positions observed within a ~100 ms horizon and reports the
// derivative at the latest sample. We implement the same strategy (degree 2
// by default, matching Android's LSQ2), with a degree-1 fallback when there
// are too few samples. The paper's simpler description — "displacement
// divided by the touch time" (§3.2) — is available as kEndpoints for
// ablation.
#pragma once

#include <deque>

#include "gesture/touch_event.h"
#include "geom/vec2.h"

namespace mfhttp {

enum class VelocityStrategy {
  kLsq2,       // degree-2 least squares (Android default)
  kLsq1,       // degree-1 least squares
  kEndpoints,  // (last - first) / dt over the horizon — the paper's Eq. in §3.2
};

class VelocityTracker {
 public:
  explicit VelocityTracker(VelocityStrategy strategy = VelocityStrategy::kLsq2,
                           TimeMs horizon_ms = 100)
      : strategy_(strategy), horizon_ms_(horizon_ms) {}

  // Feed every DOWN/MOVE/UP event of the active pointer in time order.
  // DOWN clears history (a new gesture begins).
  void add(const TouchEvent& ev);

  void clear() { samples_.clear(); }

  // Velocity estimate (px/s per axis) at the most recent sample.
  // Zero when fewer than 2 samples are available.
  Vec2 velocity() const;

  std::size_t sample_count() const { return samples_.size(); }

 private:
  struct Sample {
    TimeMs time_ms;
    Vec2 pos;
  };

  void drop_stale(TimeMs now_ms);

  VelocityStrategy strategy_;
  TimeMs horizon_ms_;
  std::deque<Sample> samples_;
};

}  // namespace mfhttp
