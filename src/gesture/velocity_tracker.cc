#include "gesture/velocity_tracker.h"

#include <array>
#include <cmath>

#include "util/check.h"

namespace mfhttp {

namespace {

// Solve the 3x3 (or smaller) normal equations A x = b by Gaussian elimination
// with partial pivoting. Returns false if (numerically) singular.
template <int N>
bool solve(std::array<std::array<double, N>, N> a, std::array<double, N> b,
           std::array<double, N>& x) {
  for (int col = 0; col < N; ++col) {
    int pivot = col;
    for (int r = col + 1; r < N; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    for (int r = col + 1; r < N; ++r) {
      double f = a[r][col] / a[col][col];
      for (int c = col; c < N; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (int r = N - 1; r >= 0; --r) {
    double s = b[r];
    for (int c = r + 1; c < N; ++c) s -= a[r][c] * x[c];
    x[r] = s / a[r][r];
  }
  return true;
}

// Fit pos = c0 + c1*t + c2*t^2 (degree 2) or c0 + c1*t (degree 1) by least
// squares over (t_i, p_i) and return the derivative at t = 0. Times are
// expressed relative to the newest sample (t <= 0), so the derivative at the
// newest sample is simply c1.
double lsq_derivative_at_latest(const std::deque<std::pair<double, double>>& pts,
                                int degree) {
  MFHTTP_DCHECK(degree == 1 || degree == 2);
  if (degree == 2) {
    std::array<std::array<double, 3>, 3> a{};
    std::array<double, 3> b{};
    for (auto [t, p] : pts) {
      double pw[5] = {1, t, t * t, t * t * t, t * t * t * t};
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) a[r][c] += pw[r + c];
        b[r] += pw[r] * p;
      }
    }
    std::array<double, 3> x{};
    if (solve<3>(a, b, x)) return x[1];
    // Fall through to degree-1 on singular systems (e.g. collinear times).
  }
  std::array<std::array<double, 2>, 2> a{};
  std::array<double, 2> b{};
  for (auto [t, p] : pts) {
    a[0][0] += 1;
    a[0][1] += t;
    a[1][0] += t;
    a[1][1] += t * t;
    b[0] += p;
    b[1] += t * p;
  }
  std::array<double, 2> x{};
  if (solve<2>(a, b, x)) return x[1];
  return 0;
}

}  // namespace

void VelocityTracker::add(const TouchEvent& ev) {
  if (ev.action == TouchAction::kDown) samples_.clear();
  if (!samples_.empty())
    MFHTTP_DCHECK(ev.time_ms >= samples_.back().time_ms);
  samples_.push_back({ev.time_ms, ev.pos});
  drop_stale(ev.time_ms);
}

void VelocityTracker::drop_stale(TimeMs now_ms) {
  while (!samples_.empty() && now_ms - samples_.front().time_ms > horizon_ms_)
    samples_.pop_front();
}

Vec2 VelocityTracker::velocity() const {
  if (samples_.size() < 2) return {};
  const TimeMs newest = samples_.back().time_ms;

  if (strategy_ == VelocityStrategy::kEndpoints) {
    double dt_s = static_cast<double>(newest - samples_.front().time_ms) / 1000.0;
    if (dt_s <= 0) return {};
    Vec2 dp = samples_.back().pos - samples_.front().pos;
    return dp / dt_s;
  }

  int degree = (strategy_ == VelocityStrategy::kLsq2 && samples_.size() >= 3) ? 2 : 1;
  std::deque<std::pair<double, double>> xs, ys;
  for (const Sample& s : samples_) {
    double t_s = static_cast<double>(s.time_ms - newest) / 1000.0;  // <= 0
    xs.emplace_back(t_s, s.pos.x);
    ys.emplace_back(t_s, s.pos.y);
  }
  return {lsq_derivative_at_latest(xs, degree), lsq_derivative_at_latest(ys, degree)};
}

}  // namespace mfhttp
