#include "gesture/recognizer.h"

#include "util/logging.h"

namespace mfhttp {

std::optional<Gesture> GestureRecognizer::on_touch_event(const TouchEvent& ev) {
  tracker_.add(ev);
  switch (ev.action) {
    case TouchAction::kDown:
      in_contact_ = true;
      moved_beyond_slop_ = false;
      down_event_ = ev;
      last_pos_ = ev.pos;
      last_delta_ = {};
      return std::nullopt;

    case TouchAction::kMove: {
      if (!in_contact_) return std::nullopt;  // stray MOVE; ignore
      last_delta_ = ev.pos - last_pos_;
      last_pos_ = ev.pos;
      if ((ev.pos - down_event_.pos).norm() > device_.touch_slop_px())
        moved_beyond_slop_ = true;
      return std::nullopt;
    }

    case TouchAction::kUp: {
      if (!in_contact_) return std::nullopt;
      in_contact_ = false;
      Gesture g;
      g.down_time_ms = down_event_.time_ms;
      g.up_time_ms = ev.time_ms;
      g.down_pos = down_event_.pos;
      g.up_pos = ev.pos;
      if (!moved_beyond_slop_ &&
          (ev.pos - down_event_.pos).norm() <= device_.touch_slop_px()) {
        g.kind = GestureKind::kClick;
        g.release_velocity = {};
      } else {
        g.release_velocity = tracker_.velocity();
        double speed = g.release_velocity.norm();
        g.kind = speed >= device_.min_fling_velocity_px_s() ? GestureKind::kFling
                                                            : GestureKind::kDrag;
      }
      MFHTTP_TRACE << "gesture " << to_string(g.kind) << " v=("
                   << g.release_velocity.x << "," << g.release_velocity.y << ") px/s";
      return g;
    }
  }
  return std::nullopt;
}

}  // namespace mfhttp
