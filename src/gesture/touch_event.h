// Raw touch events — the wire format between the app and the touch event
// monitor, mirroring Android MotionEvent's ACTION_DOWN / ACTION_MOVE /
// ACTION_UP (§4.1 of the paper).
#pragma once

#include <vector>

#include "geom/vec2.h"
#include "util/types.h"

namespace mfhttp {

enum class TouchAction { kDown, kMove, kUp };

struct TouchEvent {
  TimeMs time_ms = 0;   // event timestamp
  Vec2 pos;             // finger position in screen px
  TouchAction action = TouchAction::kMove;
  int pointer = 0;      // pointer id (0 = primary finger; 1 = pinch partner)

  bool operator==(const TouchEvent&) const = default;
};

using TouchTrace = std::vector<TouchEvent>;

inline const char* to_string(TouchAction a) {
  switch (a) {
    case TouchAction::kDown: return "DOWN";
    case TouchAction::kMove: return "MOVE";
    case TouchAction::kUp: return "UP";
  }
  return "?";
}

}  // namespace mfhttp
