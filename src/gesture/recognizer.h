// Streaming gesture recognition — the classification half of the touch event
// monitor (§3.2, §4.1).
//
// Feed DOWN/MOVE/UP events in time order; on UP the recognizer classifies the
// whole contact as click (finger never left the touch-slop radius), fling
// (release speed >= the density-scaled minimum fling velocity) or drag, and
// returns the completed Gesture.
#pragma once

#include <optional>

#include "gesture/gesture.h"
#include "gesture/velocity_tracker.h"
#include "scroll/device_profile.h"

namespace mfhttp {

class GestureRecognizer {
 public:
  explicit GestureRecognizer(const DeviceProfile& device,
                             VelocityStrategy strategy = VelocityStrategy::kLsq2)
      : device_(device), tracker_(strategy) {}

  // Returns the completed gesture on UP events; std::nullopt otherwise.
  std::optional<Gesture> on_touch_event(const TouchEvent& ev);

  // True while a finger is down.
  bool in_contact() const { return in_contact_; }

  // Incremental finger movement since the previous event of this contact
  // (valid during MOVE processing; used to scroll content live).
  Vec2 last_move_delta() const { return last_delta_; }

 private:
  DeviceProfile device_;
  VelocityTracker tracker_;
  bool in_contact_ = false;
  bool moved_beyond_slop_ = false;
  TouchEvent down_event_{};
  Vec2 last_pos_;
  Vec2 last_delta_;
};

}  // namespace mfhttp
