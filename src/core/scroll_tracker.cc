#include "core/scroll_tracker.h"

#include <algorithm>
#include <cmath>

#include "core/object_arena.h"
#include "geom/coverage_batch.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp {

Rect ScrollPrediction::viewport_at(double t_ms) const {
  if (t_ms <= 0) return viewport0;
  if (t_ms >= duration_ms) return final_viewport();
  Vec2 d = animation.displacement_at(t_ms);
  // Axes clamp independently (a scrollable view stops the blocked axis at
  // its content edge while the other keeps going): never move an axis past
  // its clamped total.
  auto clamp_axis = [](double v, double limit) {
    if (limit >= 0) return std::min(v, limit);
    return std::max(v, limit);
  };
  d.x = clamp_axis(d.x, displacement.x);
  d.y = clamp_axis(d.y, displacement.y);
  return viewport0.translated(d);
}

std::vector<ScrollPrediction::PathSample> ScrollPrediction::sample_path(
    double step_ms) const {
  MFHTTP_CHECK(step_ms > 0);
  std::vector<PathSample> out;
  for (double t = 0; t < duration_ms; t += step_ms)
    out.push_back({t, viewport_at(t), animation.speed_at(t)});
  out.push_back({duration_ms, final_viewport(), 0.0});
  return out;
}

ScrollPrediction ScrollTracker::predict(const Gesture& gesture,
                                        const Rect& viewport) const {
  static obs::Counter& predictions_total =
      obs::metrics().counter("core.tracker.predictions_total");
  predictions_total.inc();
  ScrollPrediction pred;
  pred.gesture = gesture;
  pred.viewport0 = viewport;
  pred.start_time_ms = gesture.up_time_ms;

  // Content follows the finger; the viewport moves opposite the finger
  // velocity through content coordinates.
  Vec2 viewport_velocity = Vec2{} - gesture.release_velocity;
  pred.animation = ScrollAnimation(viewport_velocity, params_.scroll);

  Vec2 full = pred.animation.total_displacement();
  // The velocity tracker's least-squares fit leaves ~1e-13 px/s residue on
  // an axis the finger never moved along; without flushing it to zero a
  // viewport already at that axis's content edge would clamp the whole
  // scroll to nothing.
  if (std::abs(full.x) < 1e-6) full.x = 0;
  if (std::abs(full.y) < 1e-6) full.y = 0;
  // Content bounds clamp each axis INDEPENDENTLY, like Android's scrollable
  // views: a diagonal fling on a vertically-scrollable page loses its x
  // motion at the edge while y continues. The swept region is then the
  // straight line to the per-axis-clamped endpoint — a close approximation
  // of the bent true path whenever one axis dominates.
  double fx = 1.0, fy = 1.0;
  if (params_.content_bounds) {
    const Rect& bounds = *params_.content_bounds;
    auto axis_limit = [](double lo, double hi, double vp_lo, double vp_hi,
                         double d) -> double {
      if (d > 0) {
        double room = hi - vp_hi;
        return room <= 0 ? 0.0 : room / d;
      }
      if (d < 0) {
        double room = vp_lo - lo;
        return room <= 0 ? 0.0 : room / (-d);
      }
      return 1.0;
    };
    fx = std::clamp(axis_limit(bounds.left(), bounds.right(), viewport.left(),
                               viewport.right(), full.x),
                    0.0, 1.0);
    fy = std::clamp(axis_limit(bounds.top(), bounds.bottom(), viewport.top(),
                               viewport.bottom(), full.y),
                    0.0, 1.0);
  }
  pred.displacement = {full.x * fx, full.y * fy};
  // The animation ends when the last still-moving axis stops.
  double end_fraction = 0.0;
  if (full.x != 0) end_fraction = std::max(end_fraction, fx);
  if (full.y != 0) end_fraction = std::max(end_fraction, fy);
  pred.duration_ms =
      end_fraction >= 1.0
          ? pred.animation.duration_ms()
          : pred.animation.time_for_distance(pred.animation.total_distance() *
                                             end_fraction);
  return pred;
}

namespace {

// The per-object coverage math, shared by both analyze() overloads so the
// indexed path is bit-identical to the linear scan by construction.
void analyze_object(const ScrollPrediction& prediction, const SweptRegion& sweep,
                    const Rect& final_vp, double total_dist, double step,
                    const Rect& rect, ObjectCoverage& cov) {
  cov.in_initial_viewport = prediction.viewport0.overlaps(rect);
  cov.in_final_viewport = final_vp.overlaps(rect);
  cov.involved = intersects_swept_region(sweep, rect);
  if (!cov.involved) return;

  if (cov.in_initial_viewport) {
    cov.entry_time_ms = 0;
  } else {
    double frac = first_overlap_fraction(sweep, rect);
    MFHTTP_DCHECK(frac >= 0);
    cov.entry_time_ms = prediction.animation.time_for_distance(frac * total_dist);
  }

  cov.final_coverage = final_vp.overlap_area(rect);

  if (prediction.duration_ms <= 0) {
    // Degenerate scroll (click / fully clamped): only the standing
    // viewport matters.
    cov.coverage_integral = 0;
    return;
  }
  // Midpoint-rule integral of s_i(t) over the animation — the discrete sum
  // Σ_{t=1}^{T} s_i(t) of Eq. (7) with configurable resolution.
  double integral = 0;
  for (double t = step / 2; t < prediction.duration_ms; t += step) {
    double s = prediction.viewport_at(t).overlap_area(rect);
    integral += s * step;
  }
  cov.coverage_integral = integral;
}

// SoA tail of analyze_object: given the batched first-overlap fraction for
// each listed arena object, fill in viewport membership, entry time, and the
// final-viewport coverage, and return the involved subset. Every expression
// mirrors analyze_object / Rect::overlaps / Rect::overlap_area term for term
// (the arena's x1/y1 store the exact x + w / y + h sums those recompute), so
// the results are bit-identical to the AoS path.
void analyze_arena_objects(const ScrollPrediction& prediction,
                           const Rect& final_vp, double total_dist,
                           const ObjectArena& arena,
                           const std::size_t* indices, std::size_t count,
                           const double* frac,
                           std::vector<ObjectCoverage>& coverages,
                           std::vector<std::size_t>& involved) {
  const Rect& vp0 = prediction.viewport0;
  const double vp0_right = vp0.right(), vp0_bottom = vp0.bottom();
  const double fin_right = final_vp.right(), fin_bottom = final_vp.bottom();
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = indices != nullptr ? indices[k] : k;
    ObjectCoverage& cov = coverages[i];
    cov.in_initial_viewport = vp0.x < arena.x1(i) && arena.x0(i) < vp0_right &&
                              vp0.y < arena.y1(i) && arena.y0(i) < vp0_bottom;
    cov.in_final_viewport = final_vp.x < arena.x1(i) &&
                            arena.x0(i) < fin_right &&
                            final_vp.y < arena.y1(i) &&
                            arena.y0(i) < fin_bottom;
    // The batch kernel returns a negative fraction exactly when the scalar
    // intersects_swept_region is false, so the sign IS the involvement bit.
    cov.involved = frac[k] >= 0;
    if (!cov.involved) continue;

    if (cov.in_initial_viewport) {
      cov.entry_time_ms = 0;
    } else {
      cov.entry_time_ms =
          prediction.animation.time_for_distance(frac[k] * total_dist);
    }

    double dy = std::min(fin_bottom, arena.y1(i)) - std::max(final_vp.y, arena.y0(i));
    double dx = std::min(fin_right, arena.x1(i)) - std::max(final_vp.x, arena.x0(i));
    cov.final_coverage = (dx <= 0 || dy <= 0) ? 0 : dx * dy;
    involved.push_back(i);
  }
}

// Midpoint-rule coverage integral over the involved arena objects. The t
// loop stays outermost in ascending order, so each object accumulates its
// per-step areas in exactly the order the scalar analyze_object does.
void accumulate_arena_integral(const ScrollPrediction& prediction, double step,
                               const ObjectArena& arena,
                               const std::vector<std::size_t>& involved,
                               std::vector<ObjectCoverage>& coverages) {
  if (prediction.duration_ms <= 0) return;
  for (double t = step / 2; t < prediction.duration_ms; t += step) {
    const Rect vp = prediction.viewport_at(t);
    const double vr = vp.right(), vb = vp.bottom();
    for (std::size_t i : involved) {
      double dy = std::min(vb, arena.y1(i)) - std::max(vp.y, arena.y0(i));
      double dx = std::min(vr, arena.x1(i)) - std::max(vp.x, arena.x0(i));
      double s = (dx <= 0 || dy <= 0) ? 0 : dx * dy;
      coverages[i].coverage_integral += s * step;
    }
  }
}

}  // namespace

void ObjectIntervalIndex::rebuild(const std::vector<MediaObject>& objects) {
  entries_.clear();
  entries_.reserve(objects.size());
  max_height_ = 0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const Rect& r = objects[i].rect;
    entries_.push_back({r.top(), r.bottom(), i});
    max_height_ = std::max(max_height_, r.h);
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.top != b.top ? a.top < b.top : a.index < b.index;
  });
}

void ObjectIntervalIndex::rebuild(const ObjectArena& arena) {
  entries_.clear();
  entries_.reserve(arena.size());
  max_height_ = 0;
  for (std::size_t i = 0; i < arena.size(); ++i) {
    // top = y0, bottom = the stored y + h sum — the same doubles
    // rebuild(objects) reads off each Rect.
    entries_.push_back({arena.y0(i), arena.y1(i), i});
    max_height_ = std::max(max_height_, arena.height(i));
  }
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.top != b.top ? a.top < b.top : a.index < b.index;
  });
}

void ObjectIntervalIndex::query(double y_lo, double y_hi,
                                std::vector<std::size_t>& out) const {
  out.clear();
  if (entries_.empty() || y_hi < y_lo) return;
  // A candidate has top <= y_hi and bottom >= y_lo; since bottom is at most
  // top + max_height_, every candidate's top sits in [y_lo - max_height_,
  // y_hi] — binary-search the window's left edge, walk to its right edge.
  auto first = std::lower_bound(
      entries_.begin(), entries_.end(), y_lo - max_height_,
      [](const Entry& e, double v) { return e.top < v; });
  for (auto it = first; it != entries_.end() && it->top <= y_hi; ++it)
    if (it->bottom >= y_lo) out.push_back(it->index);
}

ScrollAnalysis ScrollTracker::analyze(const ScrollPrediction& prediction,
                                      const std::vector<MediaObject>& objects) const {
  static obs::Counter& analyses_total =
      obs::metrics().counter("core.tracker.analyses_total");
  analyses_total.inc();
  ScrollAnalysis analysis;
  analysis.prediction = prediction;
  analysis.coverages.resize(objects.size());

  const SweptRegion sweep = prediction.sweep();
  const Rect final_vp = prediction.final_viewport();
  const double total_dist = prediction.displacement.norm();
  const double step = params_.coverage_step_ms;
  MFHTTP_CHECK(step > 0);

  for (std::size_t i = 0; i < objects.size(); ++i) {
    ObjectCoverage& cov = analysis.coverages[i];
    cov.object_index = i;
    analyze_object(prediction, sweep, final_vp, total_dist, step,
                   objects[i].rect, cov);
  }
  return analysis;
}

ScrollAnalysis ScrollTracker::analyze(const ScrollPrediction& prediction,
                                      const std::vector<MediaObject>& objects,
                                      const ObjectIntervalIndex& index) const {
  static obs::Counter& analyses_total =
      obs::metrics().counter("core.tracker.analyses_total");
  static obs::Counter& candidates_total =
      obs::metrics().counter("core.tracker.index_candidates_total");
  static obs::Counter& pruned_total =
      obs::metrics().counter("core.tracker.index_pruned_total");
  analyses_total.inc();
  MFHTTP_CHECK_MSG(index.size() == objects.size(),
                   "interval index is stale: rebuild() after layout changes");
  ScrollAnalysis analysis;
  analysis.prediction = prediction;
  analysis.coverages.resize(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i)
    analysis.coverages[i].object_index = i;

  const SweptRegion sweep = prediction.sweep();
  const Rect final_vp = prediction.final_viewport();
  const double total_dist = prediction.displacement.norm();
  const double step = params_.coverage_step_ms;
  MFHTTP_CHECK(step > 0);

  // Everything a scroll can involve — initial viewport, final viewport, or
  // the swept corridor between them — lies inside the swept y-span.
  const double y_lo = std::min(prediction.viewport0.top(), final_vp.top());
  const double y_hi = std::max(prediction.viewport0.bottom(), final_vp.bottom());
  std::vector<std::size_t> candidates;
  index.query(y_lo, y_hi, candidates);
  for (std::size_t i : candidates)
    analyze_object(prediction, sweep, final_vp, total_dist, step,
                   objects[i].rect, analysis.coverages[i]);
  candidates_total.inc(candidates.size());
  pruned_total.inc(objects.size() - candidates.size());
  return analysis;
}

ScrollAnalysis ScrollTracker::analyze(const ScrollPrediction& prediction,
                                      const ObjectArena& arena) const {
  static obs::Counter& analyses_total =
      obs::metrics().counter("core.tracker.analyses_total");
  analyses_total.inc();
  ScrollAnalysis analysis;
  analysis.prediction = prediction;
  const std::size_t n = arena.size();
  analysis.coverages.resize(n);
  for (std::size_t i = 0; i < n; ++i) analysis.coverages[i].object_index = i;

  const SweptRegion sweep = prediction.sweep();
  const Rect final_vp = prediction.final_viewport();
  const double total_dist = prediction.displacement.norm();
  const double step = params_.coverage_step_ms;
  MFHTTP_CHECK(step > 0);
  if (n == 0) return analysis;

  std::vector<double> frac(n);
  geom::first_overlap_fraction_batch(sweep, arena.rects(), frac.data());

  std::vector<std::size_t> involved;
  involved.reserve(n);
  analyze_arena_objects(prediction, final_vp, total_dist, arena,
                        /*indices=*/nullptr, n, frac.data(),
                        analysis.coverages, involved);
  accumulate_arena_integral(prediction, step, arena, involved,
                            analysis.coverages);
  return analysis;
}

ScrollAnalysis ScrollTracker::analyze(const ScrollPrediction& prediction,
                                      const ObjectArena& arena,
                                      const ObjectIntervalIndex& index) const {
  static obs::Counter& analyses_total =
      obs::metrics().counter("core.tracker.analyses_total");
  static obs::Counter& candidates_total =
      obs::metrics().counter("core.tracker.index_candidates_total");
  static obs::Counter& pruned_total =
      obs::metrics().counter("core.tracker.index_pruned_total");
  analyses_total.inc();
  MFHTTP_CHECK_MSG(index.size() == arena.size(),
                   "interval index is stale: rebuild() after layout changes");
  ScrollAnalysis analysis;
  analysis.prediction = prediction;
  analysis.coverages.resize(arena.size());
  for (std::size_t i = 0; i < arena.size(); ++i)
    analysis.coverages[i].object_index = i;

  const SweptRegion sweep = prediction.sweep();
  const Rect final_vp = prediction.final_viewport();
  const double total_dist = prediction.displacement.norm();
  const double step = params_.coverage_step_ms;
  MFHTTP_CHECK(step > 0);

  const double y_lo = std::min(prediction.viewport0.top(), final_vp.top());
  const double y_hi = std::max(prediction.viewport0.bottom(), final_vp.bottom());
  std::vector<std::size_t> candidates;
  index.query(y_lo, y_hi, candidates);

  // Gather the candidate rows so the batch kernel reads one contiguous run.
  geom::RectSoA soa = arena.rects();
  std::vector<double> gx0(candidates.size()), gy0(candidates.size());
  std::vector<double> gx1(candidates.size()), gy1(candidates.size());
  std::vector<double> gdeg(candidates.size());
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    const std::size_t i = candidates[k];
    gx0[k] = soa.x0[i];
    gy0[k] = soa.y0[i];
    gx1[k] = soa.x1[i];
    gy1[k] = soa.y1[i];
    gdeg[k] = soa.degenerate[i];
  }
  geom::RectSoA gathered;
  gathered.x0 = gx0.data();
  gathered.y0 = gy0.data();
  gathered.x1 = gx1.data();
  gathered.y1 = gy1.data();
  gathered.degenerate = gdeg.data();
  gathered.count = candidates.size();
  std::vector<double> frac(candidates.size());
  geom::first_overlap_fraction_batch(sweep, gathered, frac.data());

  std::vector<std::size_t> involved;
  involved.reserve(candidates.size());
  analyze_arena_objects(prediction, final_vp, total_dist, arena,
                        candidates.data(), candidates.size(), frac.data(),
                        analysis.coverages, involved);
  accumulate_arena_integral(prediction, step, arena, involved,
                            analysis.coverages);
  candidates_total.inc(candidates.size());
  pruned_total.inc(arena.size() - candidates.size());
  return analysis;
}

std::vector<std::size_t> ScrollAnalysis::involved_by_entry_time() const {
  std::vector<std::size_t> idx;
  for (const ObjectCoverage& c : coverages)
    if (c.involved) idx.push_back(c.object_index);
  std::sort(idx.begin(), idx.end(), [this](std::size_t a, std::size_t b) {
    if (coverages[a].entry_time_ms != coverages[b].entry_time_ms)
      return coverages[a].entry_time_ms < coverages[b].entry_time_ms;
    return a < b;
  });
  return idx;
}

}  // namespace mfhttp
