#include "core/object_arena.h"

#include <limits>

namespace mfhttp {

void ObjectArena::rebuild(const std::vector<MediaObject>& objects) {
  count_ = objects.size();
  source_ = &objects;
  x0_.resize(count_);
  y0_.resize(count_);
  x1_.resize(count_);
  y1_.resize(count_);
  w_.resize(count_);
  h_.resize(count_);
  state_.resize(count_);
  deg_.resize(count_);
  top_size_.resize(count_);
  offsets_.resize(count_ + 1);
  ids_.resize(count_);
  sizes_.clear();
  resolutions_.clear();

  std::size_t offset = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const MediaObject& obj = objects[i];
    MFHTTP_CHECK_MSG(obj.versions_sorted(),
                     "versions must ascend by resolution");
    const Rect& r = obj.rect;
    x0_[i] = r.x;
    y0_[i] = r.y;
    // The sums are formed here, once, in double precision — batched geometry
    // reads them back instead of recomputing, which is what makes it
    // bit-identical to the scalar `o + o_extent` path.
    x1_[i] = r.x + r.w;
    y1_[i] = r.y + r.h;
    w_[i] = r.w;
    h_[i] = r.h;
    // The flag, not x1 <= x0, decides degeneracy: a denormal-width rect at a
    // large offset can round the sum back onto the corner.
    state_[i] = r.empty() ? kEmptyRect : 0;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    deg_[i] = r.empty() ? kInf : -kInf;
    top_size_[i] = obj.top_version().size;
    ids_[i] = obj.id;
    offsets_[i] = offset;
    for (const MediaVersion& v : obj.versions) {
      sizes_.push_back(v.size);
      resolutions_.push_back(v.resolution);
    }
    offset += obj.versions.size();
  }
  offsets_[count_] = offset;
}

}  // namespace mfhttp
