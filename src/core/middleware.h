// MF-HTTP middleware assembly (§3.1, Fig. 5): touch event monitor on the
// client, screen scrolling tracker + flow controller on the middleware
// server, glued by a gesture channel (a simulated TCP hop, or a direct call
// when latency is irrelevant).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/flow_controller.h"
#include "core/scroll_tracker.h"
#include "core/viewport_state.h"
#include "gesture/pinch.h"
#include "gesture/recognizer.h"
#include "net/bandwidth_trace.h"
#include "sim/simulator.h"

namespace mfhttp {

// Client-side module (§3.2, §4.1): turns the app's raw touch events into
// gestures and forwards them (with device metadata) to the tracker.
class TouchEventMonitor {
 public:
  using GestureCallback = std::function<void(const Gesture&)>;

  TouchEventMonitor(const DeviceProfile& device, GestureCallback on_gesture,
                    VelocityStrategy strategy = VelocityStrategy::kLsq2)
      : device_(device), recognizer_(device, strategy),
        on_gesture_(std::move(on_gesture)) {}

  const DeviceProfile& device() const { return device_; }

  // The app feeds every touch event here (the overridden onTouchEvent).
  void on_touch_event(const TouchEvent& ev);

  // Convenience: feed a whole trace.
  void feed(const TouchTrace& trace) {
    for (const TouchEvent& ev : trace) on_touch_event(ev);
  }

 private:
  DeviceProfile device_;
  GestureRecognizer recognizer_;
  GestureCallback on_gesture_;
};

// Server-side assembly: viewport state + scroll tracker + flow controller.
// Each scrolling gesture produces a fresh ScrollAnalysis and DownloadPolicy,
// delivered to the policy callback (the case-study controllers subscribe).
class Middleware {
 public:
  struct Params {
    ScrollTracker::Params tracker;
    FlowController::Params flow;
    Rect initial_viewport;
    // Delay for gesture data to reach the middleware server (the TCP socket
    // hop of §4.2). Applied via the simulator when one is provided.
    TimeMs gesture_uplink_ms = 0;
    // Android OverScroller "flywheel": a fling launched while a previous
    // fling is still animating in a compatible direction inherits the
    // remaining speed, so rapid successive flicks build up velocity.
    bool enable_flywheel = true;
  };

  using PolicyCallback =
      std::function<void(const ScrollAnalysis&, const DownloadPolicy&)>;

  // `sim` may be nullptr: gestures are then processed synchronously.
  Middleware(Params params, std::vector<MediaObject> objects,
             BandwidthTrace bandwidth, Simulator* sim);

  void set_policy_callback(PolicyCallback cb) { on_policy_ = std::move(cb); }

  // Entry point for gestures from the touch event monitor.
  void on_gesture(const Gesture& gesture);

  // Replace the content model (e.g. a new page was loaded).
  void set_objects(std::vector<MediaObject> objects, Rect initial_viewport);

  // Grow the content model in place (an infinite-scroll feed revealing more
  // posts). Unlike set_objects this preserves viewport state and the last
  // analysis/policy: appended objects simply join the knapsack from the next
  // gesture on — the incremental optimizer's prefix reuse carries across the
  // append because existing object indices are unchanged.
  void append_objects(std::vector<MediaObject> objects);

  // Viewport scale (§3.2 device configuration): pinch zoom. At scale s > 1
  // the screen shows 1/s of the content in each dimension, and finger travel
  // of Δ screen px pans the content by Δ/s. The viewport resizes about its
  // center at `at_time_ms` (any active animation is settled there first).
  void set_viewport_scale(double scale, TimeMs at_time_ms);
  double viewport_scale() const { return viewport_scale_; }

  // Pinch gesture from the touch event monitor: multiplies the current
  // viewport scale by the pinch's span ratio (clamped to [min, max]).
  void on_pinch(const PinchGesture& pinch, double min_scale = 1.0,
                double max_scale = 8.0);

  Rect viewport_at(TimeMs time_ms) const { return viewport_.at(time_ms); }
  const std::vector<MediaObject>& objects() const { return objects_; }
  const ObjectIntervalIndex& object_index() const { return object_index_; }

  // Wall-clock milliseconds the last gesture spent from entering
  // process_gesture() to the policy being ready (the paper's touch-to-policy
  // path); also observed into "core.middleware.touch_to_policy_ms". 0 until
  // the first scrolling gesture.
  double last_touch_to_policy_ms() const { return last_touch_to_policy_ms_; }
  const ViewportState& viewport_state() const { return viewport_; }
  const ScrollTracker& tracker() const { return tracker_; }
  const FlowController& flow_controller() const { return flow_; }

  // Most recent analysis/policy (empty until the first scrolling gesture).
  const std::optional<ScrollAnalysis>& last_analysis() const { return last_analysis_; }
  const std::optional<DownloadPolicy>& last_policy() const { return last_policy_; }

 private:
  void process_gesture(const Gesture& gesture);

  ScrollTracker tracker_;
  FlowController flow_;
  std::vector<MediaObject> objects_;
  // Rebuilt whenever objects_ changes; lets every touch event analyze only
  // the objects inside the swept y-corridor.
  ObjectIntervalIndex object_index_;
  double last_touch_to_policy_ms_ = 0;
  BandwidthTrace bandwidth_;
  Simulator* sim_;
  TimeMs gesture_uplink_ms_;
  bool enable_flywheel_;
  double viewport_scale_ = 1.0;
  Rect unscaled_viewport_;  // screen-sized viewport shape (scale == 1)
  ViewportState viewport_;
  PolicyCallback on_policy_;
  std::optional<ScrollAnalysis> last_analysis_;
  std::optional<DownloadPolicy> last_policy_;
};

}  // namespace mfhttp
