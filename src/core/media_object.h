// Media objects — the downloadable units MF-HTTP schedules (§3.4): an image
// in a web page, or a tile-segment of a DASH stream. Each object has a
// position in content coordinates and m versions ordered by increasing
// resolution (r_1 < ... < r_m), each with its own file size f_{i,j} and URL.
#pragma once

#include <string>
#include <vector>

#include "geom/rect.h"
#include "util/check.h"
#include "util/types.h"

namespace mfhttp {

struct MediaVersion {
  double resolution = 0;  // r_j — any monotone quality scalar (e.g. height px)
  Bytes size = 0;         // f_{i,j} — wire size
  std::string url;        // where this version is fetched from
};

struct MediaObject {
  std::string id;
  Rect rect;  // bounding box in content (page / projected-frame) coordinates
  std::vector<MediaVersion> versions;  // ascending by resolution; never empty

  std::size_t version_count() const { return versions.size(); }

  const MediaVersion& top_version() const {
    MFHTTP_CHECK(!versions.empty());
    return versions.back();
  }

  // Validate the §3.4 ordering assumption (ascending resolutions).
  bool versions_sorted() const {
    for (std::size_t j = 1; j < versions.size(); ++j)
      if (versions[j].resolution < versions[j - 1].resolution) return false;
    return !versions.empty();
  }
};

// Convenience: single-version object (the web case — one file per image).
inline MediaObject make_single_version_object(std::string id, Rect rect, Bytes size,
                                              std::string url,
                                              double resolution = 1.0) {
  MediaObject obj;
  obj.id = std::move(id);
  obj.rect = rect;
  obj.versions.push_back({resolution, size, std::move(url)});
  return obj;
}

}  // namespace mfhttp
