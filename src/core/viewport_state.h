// Viewport position over time, across gestures and scrolling animations.
//
// The tracker side of the middleware keeps one of these per session: during
// finger contact the content tracks the finger 1:1 (viewport moves opposite
// the finger), and after release the predicted animation takes over. A new
// gesture aborts any unfinished animation at the moment of touch-down
// (§4.2: "Whenever a touch event with a newer timestamp arrives, the
// simulation of current/unfinished scrolling is aborted").
#pragma once

#include <optional>

#include "core/scroll_tracker.h"
#include "geom/rect.h"
#include "gesture/gesture.h"
#include "util/types.h"

namespace mfhttp {

class ViewportState {
 public:
  ViewportState(Rect initial, std::optional<Rect> content_bounds)
      : viewport_(initial), bounds_(std::move(content_bounds)) {}

  // Viewport at an absolute time, accounting for any active animation.
  Rect at(TimeMs time_ms) const;

  // Abort any active animation as of `time_ms` (viewport freezes where the
  // animation had it) and return the frozen position.
  Rect interrupt(TimeMs time_ms);

  // Apply the finger-contact pan of a gesture: the viewport moves by
  // -finger_displacement, clamped to the content bounds.
  void apply_contact_pan(const Gesture& gesture);

  // Install the post-release animation (replaces any previous one).
  void begin_animation(const ScrollPrediction& prediction);

  const std::optional<ScrollPrediction>& active_animation() const {
    return animation_;
  }

  const std::optional<Rect>& content_bounds() const { return bounds_; }

  // Rest position ignoring any animation (mostly for tests).
  Rect base_viewport() const { return viewport_; }

 private:
  Rect clamp_to_bounds(Rect vp) const;

  Rect viewport_;  // position when no animation is active
  std::optional<Rect> bounds_;
  std::optional<ScrollPrediction> animation_;
};

}  // namespace mfhttp
