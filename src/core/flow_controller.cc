#include "core/flow_controller.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

const DownloadDecision* DownloadPolicy::find(std::size_t object_index) const {
  for (const DownloadDecision& d : decisions)
    if (d.object_index == object_index) return &d;
  return nullptr;
}

FlowController::FlowController(Params params) : params_(std::move(params)) {
  MFHTTP_CHECK(params_.cost != nullptr);
  MFHTTP_CHECK(params_.capacity_unit_bytes > 0);
  MFHTTP_CHECK(params_.weights.p >= 0 && params_.weights.q >= 0);
}

DownloadPolicy FlowController::optimize(const ScrollAnalysis& analysis,
                                        const std::vector<MediaObject>& objects,
                                        const BandwidthTrace& bandwidth) const {
  BuildBuffers buffers;  // stateless entry point: fresh buffers, no DP reuse
  return plan(analysis, objects, bandwidth, nullptr, buffers);
}

DownloadPolicy FlowController::replan(const ScrollAnalysis& analysis,
                                      const std::vector<MediaObject>& objects,
                                      const BandwidthTrace& bandwidth) {
  static obs::Counter& replans_total =
      obs::metrics().counter("core.flow.replans_total");
  static obs::Counter& full_reuse_total =
      obs::metrics().counter("core.flow.replan_full_reuse_total");
  replans_total.inc();
  const std::uint64_t reuses_before = scratch_.full_reuses;
  DownloadPolicy policy = plan(analysis, objects, bandwidth, &scratch_, buffers_);
  if (scratch_.full_reuses != reuses_before) full_reuse_total.inc();
  return policy;
}

DownloadPolicy FlowController::optimize(const ScrollAnalysis& analysis,
                                        const ObjectArena& arena,
                                        const BandwidthTrace& bandwidth) const {
  BuildBuffers buffers;
  DownloadPolicy policy = plan_arena(analysis, arena, bandwidth, nullptr, buffers);
  if (arena_parity_check_) check_arena_parity(analysis, arena, bandwidth, policy);
  return policy;
}

DownloadPolicy FlowController::replan(const ScrollAnalysis& analysis,
                                      const ObjectArena& arena,
                                      const BandwidthTrace& bandwidth) {
  static obs::Counter& replans_total =
      obs::metrics().counter("core.flow.replans_total");
  static obs::Counter& full_reuse_total =
      obs::metrics().counter("core.flow.replan_full_reuse_total");
  replans_total.inc();
  const std::uint64_t reuses_before = scratch_.full_reuses;
  DownloadPolicy policy = plan_arena(analysis, arena, bandwidth, &scratch_, buffers_);
  if (scratch_.full_reuses != reuses_before) full_reuse_total.inc();
  if (arena_parity_check_) check_arena_parity(analysis, arena, bandwidth, policy);
  return policy;
}

void FlowController::check_arena_parity(const ScrollAnalysis& analysis,
                                        const ObjectArena& arena,
                                        const BandwidthTrace& bandwidth,
                                        const DownloadPolicy& arena_policy) const {
  MFHTTP_CHECK_MSG(arena.has_source(),
                   "parity mode needs the arena's source objects alive");
  BuildBuffers buffers;
  DownloadPolicy legacy =
      plan(analysis, arena.source(), bandwidth, nullptr, buffers);
  MFHTTP_CHECK_MSG(legacy.decisions.size() == arena_policy.decisions.size(),
                   "arena parity: decision count diverged");
  for (std::size_t k = 0; k < legacy.decisions.size(); ++k) {
    const DownloadDecision& a = arena_policy.decisions[k];
    const DownloadDecision& b = legacy.decisions[k];
    MFHTTP_CHECK_MSG(a.object_index == b.object_index &&
                         a.version == b.version &&
                         a.entry_time_ms == b.entry_time_ms &&
                         a.qoe == b.qoe && a.cost == b.cost &&
                         a.value == b.value,
                     "arena parity: decision diverged from the AoS layout");
  }
  MFHTTP_CHECK_MSG(legacy.objective == arena_policy.objective &&
                       legacy.total_bytes == arena_policy.total_bytes,
                   "arena parity: objective/bytes diverged");
}

DownloadPolicy FlowController::plan(const ScrollAnalysis& analysis,
                                    const std::vector<MediaObject>& objects,
                                    const BandwidthTrace& bandwidth,
                                    KnapsackScratch* scratch,
                                    BuildBuffers& buffers) const {
  MFHTTP_CHECK(analysis.coverages.size() == objects.size());
  static obs::Counter& policies_total =
      obs::metrics().counter("core.flow.policies_total");
  policies_total.inc();
  DownloadPolicy policy;

  std::vector<std::size_t> involved = analysis.involved_by_entry_time();
  if (!speculation_enabled_) {
    static obs::Counter& speculation_dropped = obs::metrics().counter(
        "core.flow.speculation_dropped_total");
    std::vector<std::size_t> kept;
    for (std::size_t idx : involved) {
      const ObjectCoverage& cov = analysis.coverages[idx];
      if (cov.in_initial_viewport || cov.in_final_viewport)
        kept.push_back(idx);
      else
        speculation_dropped.inc();
    }
    involved = std::move(kept);
  }
  if (involved.empty()) return policy;

  if (degraded_) return degraded_policy(analysis, objects, involved);

  const ScrollPrediction& pred = analysis.prediction;
  const double S = pred.viewport0.area();
  const double T = pred.duration_ms;
  const TimeMs start = pred.start_time_ms;

  // c_M — Eq. 10's normalizer; guard against degenerate zero (e.g. zero-size
  // objects): costs then normalize to 0.
  double c_m = max_cost(params_.cost, objects, involved, bandwidth, start, T);

  // Build the knapsack instance in entry order. The buffers (and the inner
  // values/weights vectors of recycled items) keep their capacity across
  // calls, so steady-state replans build the instance without allocating.
  std::vector<KnapsackItem>& items = buffers.items;
  items.resize(involved.size());
  Bytes total_top_weight = 0;
  for (std::size_t idx : involved)
    total_top_weight += objects[idx].top_version().size;

  std::vector<double>& qoe_cache = buffers.qoe;  // per (item, version), row-major
  std::vector<double>& cost_cache = buffers.cost;
  qoe_cache.clear();
  cost_cache.clear();
  std::size_t slot = 0;
  for (std::size_t idx : involved) {
    const MediaObject& obj = objects[idx];
    MFHTTP_CHECK_MSG(obj.versions_sorted(), "versions must ascend by resolution");
    const ObjectCoverage& cov = analysis.coverages[idx];
    const double r_m = obj.top_version().resolution;

    KnapsackItem& item = items[slot++];
    item.values.clear();
    item.weights.clear();
    for (const MediaVersion& ver : obj.versions) {
      double q = qoe_score(params_.qoe, cov, S, T, ver.resolution, r_m);
      double c = c_m > 0 ? params_.cost(ver.size) / c_m : 0.0;
      item.values.push_back(params_.weights.p * q - params_.weights.q * c);
      item.weights.push_back(ver.size);
      qoe_cache.push_back(q);
      cost_cache.push_back(c);
    }
    if (params_.ignore_bandwidth_constraint) {
      // Effectively unconstrained; the 2x slack keeps the DP's conservative
      // weight round-up from clipping the last item at the exact boundary.
      item.capacity = 2 * total_top_weight + 1;
    } else {
      double w = bandwidth.bytes_between(
          start, start + static_cast<TimeMs>(std::ceil(
                             std::max(0.0, cov.entry_time_ms))));
      item.capacity = static_cast<Bytes>(w);
    }
  }

  Params::Solver solver =
      params_.use_greedy ? Params::Solver::kGreedy : params_.solver;
  KnapsackSolution sol;
  {
    static obs::Histogram& solve_ms = obs::metrics().histogram(
        "core.flow.solve_ms", obs::latency_ms_bounds());
    obs::ScopedTimer timer(solve_ms);
    switch (solver) {
      case Params::Solver::kGreedy:
        sol = solve_prefix_knapsack_greedy(items);
        break;
      case Params::Solver::kBranchAndBound:
        sol = solve_prefix_knapsack_bnb(items).solution;
        break;
      case Params::Solver::kDp:
        // The incremental entry point is bit-identical to the base DP; only
        // the replan path carries a scratch, so optimize() stays stateless.
        sol = scratch != nullptr
                  ? solve_prefix_knapsack_incremental(
                        items, params_.capacity_unit_bytes, scratch)
                  : solve_prefix_knapsack(items, params_.capacity_unit_bytes);
        break;
    }
  }

  std::size_t cache_pos = 0;
  for (std::size_t k = 0; k < involved.size(); ++k) {
    const std::size_t idx = involved[k];
    const MediaObject& obj = objects[idx];
    DownloadDecision d;
    d.object_index = idx;
    d.entry_time_ms = analysis.coverages[idx].entry_time_ms;
    d.version = sol.chosen[k];
    if (d.version >= 0) {
      std::size_t flat = cache_pos + static_cast<std::size_t>(d.version);
      d.qoe = qoe_cache[flat];
      d.cost = cost_cache[flat];
      d.value = params_.weights.p * d.qoe - params_.weights.q * d.cost;
      policy.total_bytes += obj.versions[static_cast<std::size_t>(d.version)].size;
    }
    cache_pos += obj.versions.size();
    policy.decisions.push_back(d);
  }
  policy.objective = sol.total_value;
  static obs::Counter& allowed_total =
      obs::metrics().counter("core.flow.objects_allowed_total");
  static obs::Counter& skipped_total =
      obs::metrics().counter("core.flow.objects_skipped_total");
  static obs::Counter& bytes_total =
      obs::metrics().counter("core.flow.policy_bytes_total");
  std::size_t downloads = 0;
  for (const DownloadDecision& d : policy.decisions)
    if (d.download()) ++downloads;
  allowed_total.inc(downloads);
  skipped_total.inc(policy.decisions.size() - downloads);
  bytes_total.inc(static_cast<std::uint64_t>(policy.total_bytes));
  MFHTTP_DEBUG << "flow policy: " << policy.decisions.size() << " involved, "
               << policy.total_bytes << " bytes, objective " << policy.objective;
  return policy;
}

// The SoA twin of plan(): identical control flow and identical arithmetic,
// but every per-version read comes from the arena's flat arrays. Kept next
// to plan() on purpose — a change to one must land in both (the parity mode
// and tests/test_arena.cc enforce that they cannot drift apart silently).
DownloadPolicy FlowController::plan_arena(const ScrollAnalysis& analysis,
                                          const ObjectArena& arena,
                                          const BandwidthTrace& bandwidth,
                                          KnapsackScratch* scratch,
                                          BuildBuffers& buffers) const {
  MFHTTP_CHECK(analysis.coverages.size() == arena.size());
  static obs::Counter& policies_total =
      obs::metrics().counter("core.flow.policies_total");
  policies_total.inc();
  DownloadPolicy policy;

  std::vector<std::size_t> involved = analysis.involved_by_entry_time();
  if (!speculation_enabled_) {
    static obs::Counter& speculation_dropped = obs::metrics().counter(
        "core.flow.speculation_dropped_total");
    std::vector<std::size_t> kept;
    for (std::size_t idx : involved) {
      const ObjectCoverage& cov = analysis.coverages[idx];
      if (cov.in_initial_viewport || cov.in_final_viewport)
        kept.push_back(idx);
      else
        speculation_dropped.inc();
    }
    involved = std::move(kept);
  }
  if (involved.empty()) return policy;

  if (degraded_) return degraded_policy_arena(analysis, arena, involved);

  const ScrollPrediction& pred = analysis.prediction;
  const double S = pred.viewport0.area();
  const double T = pred.duration_ms;
  const TimeMs start = pred.start_time_ms;

  double c_m = max_cost(params_.cost, arena, involved, bandwidth, start, T);

  std::vector<KnapsackItem>& items = buffers.items;
  items.resize(involved.size());
  Bytes total_top_weight = 0;
  for (std::size_t idx : involved) total_top_weight += arena.top_size(idx);

  std::vector<double>& qoe_cache = buffers.qoe;
  std::vector<double>& cost_cache = buffers.cost;
  qoe_cache.clear();
  cost_cache.clear();
  std::size_t slot = 0;
  for (std::size_t idx : involved) {
    const ObjectCoverage& cov = analysis.coverages[idx];
    const double r_m = arena.top_resolution(idx);
    const std::size_t versions = arena.version_count(idx);

    KnapsackItem& item = items[slot++];
    item.values.clear();
    item.weights.clear();
    for (std::size_t j = 0; j < versions; ++j) {
      double q = qoe_score(params_.qoe, cov, S, T,
                           arena.version_resolution(idx, j), r_m);
      double c = c_m > 0 ? params_.cost(arena.version_size(idx, j)) / c_m : 0.0;
      item.values.push_back(params_.weights.p * q - params_.weights.q * c);
      item.weights.push_back(arena.version_size(idx, j));
      qoe_cache.push_back(q);
      cost_cache.push_back(c);
    }
    if (params_.ignore_bandwidth_constraint) {
      item.capacity = 2 * total_top_weight + 1;
    } else {
      double w = bandwidth.bytes_between(
          start, start + static_cast<TimeMs>(std::ceil(
                             std::max(0.0, cov.entry_time_ms))));
      item.capacity = static_cast<Bytes>(w);
    }
  }

  Params::Solver solver =
      params_.use_greedy ? Params::Solver::kGreedy : params_.solver;
  KnapsackSolution sol;
  {
    static obs::Histogram& solve_ms = obs::metrics().histogram(
        "core.flow.solve_ms", obs::latency_ms_bounds());
    obs::ScopedTimer timer(solve_ms);
    switch (solver) {
      case Params::Solver::kGreedy:
        sol = solve_prefix_knapsack_greedy(items);
        break;
      case Params::Solver::kBranchAndBound:
        sol = solve_prefix_knapsack_bnb(items).solution;
        break;
      case Params::Solver::kDp:
        sol = scratch != nullptr
                  ? solve_prefix_knapsack_incremental(
                        items, params_.capacity_unit_bytes, scratch)
                  : solve_prefix_knapsack(items, params_.capacity_unit_bytes);
        break;
    }
  }

  std::size_t cache_pos = 0;
  for (std::size_t k = 0; k < involved.size(); ++k) {
    const std::size_t idx = involved[k];
    DownloadDecision d;
    d.object_index = idx;
    d.entry_time_ms = analysis.coverages[idx].entry_time_ms;
    d.version = sol.chosen[k];
    if (d.version >= 0) {
      std::size_t flat = cache_pos + static_cast<std::size_t>(d.version);
      d.qoe = qoe_cache[flat];
      d.cost = cost_cache[flat];
      d.value = params_.weights.p * d.qoe - params_.weights.q * d.cost;
      policy.total_bytes +=
          arena.version_size(idx, static_cast<std::size_t>(d.version));
    }
    cache_pos += arena.version_count(idx);
    policy.decisions.push_back(d);
  }
  policy.objective = sol.total_value;
  static obs::Counter& allowed_total =
      obs::metrics().counter("core.flow.objects_allowed_total");
  static obs::Counter& skipped_total =
      obs::metrics().counter("core.flow.objects_skipped_total");
  static obs::Counter& bytes_total =
      obs::metrics().counter("core.flow.policy_bytes_total");
  std::size_t downloads = 0;
  for (const DownloadDecision& d : policy.decisions)
    if (d.download()) ++downloads;
  allowed_total.inc(downloads);
  skipped_total.inc(policy.decisions.size() - downloads);
  bytes_total.inc(static_cast<std::uint64_t>(policy.total_bytes));
  MFHTTP_DEBUG << "flow policy (arena): " << policy.decisions.size()
               << " involved, " << policy.total_bytes << " bytes, objective "
               << policy.objective;
  return policy;
}

DownloadPolicy FlowController::degraded_policy_arena(
    const ScrollAnalysis& analysis, const ObjectArena& arena,
    const std::vector<std::size_t>& involved) const {
  static obs::Counter& degraded_total =
      obs::metrics().counter("core.flow.degraded_policies_total");
  degraded_total.inc();
  DownloadPolicy policy;
  for (std::size_t idx : involved) {
    DownloadDecision d;
    d.object_index = idx;
    d.entry_time_ms = analysis.coverages[idx].entry_time_ms;
    d.version = 0;
    policy.total_bytes += arena.version_size(idx, 0);
    policy.decisions.push_back(d);
  }
  return policy;
}

std::vector<PrefetchCandidate> FlowController::prefetch_candidates(
    const ScrollAnalysis& analysis, const std::vector<MediaObject>& objects,
    const DownloadPolicy& policy) const {
  std::vector<PrefetchCandidate> candidates;
  if (degraded_ || !speculation_enabled_) return candidates;
  for (const DownloadDecision& d : policy.decisions) {
    if (!d.download()) continue;
    const ObjectCoverage& cov = analysis.coverages[d.object_index];
    if (cov.in_initial_viewport) continue;  // already on screen: fetch, don't warm
    const MediaObject& obj = objects[d.object_index];
    const MediaVersion& ver = obj.versions[static_cast<std::size_t>(d.version)];
    PrefetchCandidate c;
    c.object_index = d.object_index;
    c.version = d.version;
    c.url = ver.url;
    c.bytes = ver.size;
    c.entry_time_ms = std::max(0.0, d.entry_time_ms);
    c.value = d.value;
    candidates.push_back(std::move(c));
  }
  static obs::Counter& candidates_total =
      obs::metrics().counter("core.flow.prefetch_candidates_total");
  candidates_total.inc(candidates.size());
  return candidates;
}

DownloadPolicy FlowController::degraded_policy(
    const ScrollAnalysis& analysis, const std::vector<MediaObject>& objects,
    const std::vector<std::size_t>& involved) const {
  static obs::Counter& degraded_total =
      obs::metrics().counter("core.flow.degraded_policies_total");
  degraded_total.inc();
  DownloadPolicy policy;
  for (std::size_t idx : involved) {
    const MediaObject& obj = objects[idx];
    DownloadDecision d;
    d.object_index = idx;
    d.entry_time_ms = analysis.coverages[idx].entry_time_ms;
    d.version = 0;  // lowest version: cheap and certain to arrive
    policy.total_bytes += obj.versions.front().size;
    policy.decisions.push_back(d);
  }
  MFHTTP_DEBUG << "flow policy (degraded): " << policy.decisions.size()
               << " involved, " << policy.total_bytes << " bytes";
  return policy;
}

}  // namespace mfhttp
