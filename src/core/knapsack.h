// The flow controller's optimizer (§3.4.2): a 0/1 knapsack variant where
// items arrive in viewport-entry order and the capacity available to the
// first i' items is the bandwidth accumulated by the time object i' enters
// the viewport (Eq. 13). Solved by dynamic programming with the
// stage-clamped recurrence of Eq. 14.
//
// Solvers sharing one instance format:
//   * solve_prefix_knapsack             — the paper's DP (capacity discretized)
//   * solve_prefix_knapsack_incremental — same DP with a persistent scratch
//                                         table reused across re-solves
//   * solve_prefix_knapsack_bruteforce  — exact reference for testing (small n)
//   * solve_prefix_knapsack_greedy      — value-density heuristic (ablation)
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace mfhttp {

// One media object with m candidate versions.
struct KnapsackItem {
  std::vector<double> values;   // v(i,j) = p*Q_{i,j} - q*C_{i,j}
  std::vector<Bytes> weights;   // w(i,j) = f_{i,j}
  // W(t_i): cumulative bandwidth when this object enters the viewport.
  // Items must be ordered so capacities are nondecreasing.
  Bytes capacity = 0;
};

struct KnapsackSolution {
  // chosen[i]: selected version index, or -1 to skip object i.
  std::vector<int> chosen;
  double total_value = 0;
  Bytes total_weight = 0;
};

// Validate and evaluate a selection against an instance; returns false if
// any prefix-capacity constraint is violated (solution fields untouched).
bool evaluate_selection(const std::vector<KnapsackItem>& items,
                        const std::vector<int>& chosen, KnapsackSolution* out);

// DP of Eq. 14. `capacity_unit_bytes` discretizes capacity: weights round up,
// capacities round down (conservative — never produces an infeasible plan).
// Smaller units are more exact but slower: O(n * m * W/unit).
KnapsackSolution solve_prefix_knapsack(const std::vector<KnapsackItem>& items,
                                       Bytes capacity_unit_bytes = 1024);

// Persistent DP state for solve_prefix_knapsack_incremental. One scratch
// belongs to one solver call site (e.g. one FlowController) — it is NOT
// thread-safe; the parallel session engine gives every worker world its own
// controller and therefore its own scratch (DESIGN.md §12).
struct KnapsackScratch {
  // Snapshot of the last instance, for prefix comparison.
  std::vector<KnapsackItem> items;
  Bytes unit = 0;

  // Full DP table: rows has (n + 1) rows of `width` values, where row i is
  // the Eq. 14 table after the first i items; choice has n such rows. Kept
  // whole (instead of the base solver's two rolling rows) so an unchanged
  // item prefix re-solves from its first changed row.
  std::size_t width = 0;
  std::vector<long long> caps;
  std::vector<double> rows;
  std::vector<int> choice;

  KnapsackSolution solution;
  bool valid = false;

  // Telemetry (micro-bench + test hooks).
  std::uint64_t solves = 0;
  std::uint64_t full_reuses = 0;   // instance unchanged: cached answer
  std::uint64_t rows_reused = 0;   // DP rows skipped via prefix reuse
  std::uint64_t rows_computed = 0;
};

// The paper re-runs the optimizer "whenever a user touch event is detected"
// (§3.4.2); successive touches usually re-solve the same objects with, at
// most, a changed capacity tail. This entry point produces bit-identical
// results to solve_prefix_knapsack(items, unit) but:
//   * returns the cached solution outright when the whole instance (items,
//     capacities, unit) is unchanged since the previous call;
//   * otherwise recomputes only from the first changed item onward, reusing
//     the DP rows of the unchanged prefix;
//   * reuses the scratch allocations, so steady-state re-solves are
//     malloc-free.
KnapsackSolution solve_prefix_knapsack_incremental(
    const std::vector<KnapsackItem>& items, Bytes capacity_unit_bytes,
    KnapsackScratch* scratch);

// Exhaustive search over all (m+1)^n assignments. Testing/reference only.
KnapsackSolution solve_prefix_knapsack_bruteforce(
    const std::vector<KnapsackItem>& items);

// Density-ordered greedy heuristic (take best value/weight first while all
// prefix constraints hold). Used by the ablation benchmarks.
KnapsackSolution solve_prefix_knapsack_greedy(const std::vector<KnapsackItem>& items);

// Exact branch-and-bound solver working directly in bytes (no capacity
// discretization). Prunes with the fractional-relaxation upper bound, so it
// excels exactly where the DP struggles: few items but byte-scale
// capacities. `max_nodes` bounds the search; on overrun the best solution
// found so far is returned with `exact` false.
struct BranchAndBoundResult {
  KnapsackSolution solution;
  bool exact = true;          // search completed (result provably optimal)
  std::size_t nodes_visited = 0;
};
BranchAndBoundResult solve_prefix_knapsack_bnb(
    const std::vector<KnapsackItem>& items, std::size_t max_nodes = 2'000'000);

}  // namespace mfhttp
