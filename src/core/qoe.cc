#include "core/qoe.h"

#include <algorithm>
#include <cmath>

#include "core/object_arena.h"
#include "util/check.h"

namespace mfhttp {

CostFunction linear_cost() {
  return [](Bytes f) { return static_cast<double>(f); };
}

CostFunction capped_cost(Bytes cap, double overage_factor) {
  MFHTTP_CHECK(cap >= 0);
  MFHTTP_CHECK(overage_factor >= 1.0);
  return [cap, overage_factor](Bytes f) {
    if (f <= cap) return static_cast<double>(f);
    return static_cast<double>(cap) +
           overage_factor * static_cast<double>(f - cap);
  };
}

double q1_coverage(const ObjectCoverage& coverage, double viewport_area,
                   double duration_ms, double resolution, double top_resolution) {
  MFHTTP_CHECK(viewport_area > 0);
  MFHTTP_CHECK(top_resolution > 0);
  if (duration_ms <= 0) return 0;
  double q1 = coverage.coverage_integral / (duration_ms * viewport_area) *
              (resolution / top_resolution);
  // The integrand is bounded by S, so q1 is in [0, r_j/r_m] ⊆ [0, 1];
  // numerical integration can overshoot by a hair.
  return std::clamp(q1, 0.0, 1.0);
}

double q2_final_viewport(const ObjectCoverage& coverage) {
  return coverage.final_coverage > 0 ? 1.0 : 0.0;
}

double qoe_score(const QoEParams& params, const ObjectCoverage& coverage,
                 double viewport_area, double duration_ms, double resolution,
                 double top_resolution) {
  return params.a * q1_coverage(coverage, viewport_area, duration_ms, resolution,
                                top_resolution) +
         params.b * q2_final_viewport(coverage);
}

double max_cost(const CostFunction& cost, const std::vector<MediaObject>& objects,
                const std::vector<std::size_t>& involved,
                const BandwidthTrace& bandwidth, TimeMs scroll_start_ms,
                double duration_ms) {
  Bytes all_top = 0;
  for (std::size_t i : involved) {
    MFHTTP_CHECK(i < objects.size());
    all_top += objects[i].top_version().size;
  }
  double capacity = bandwidth.bytes_between(
      scroll_start_ms,
      scroll_start_ms + static_cast<TimeMs>(std::ceil(duration_ms)));
  auto cap_bytes = static_cast<Bytes>(capacity);
  return cost(std::min(all_top, cap_bytes));
}

double max_cost(const CostFunction& cost, const ObjectArena& arena,
                const std::vector<std::size_t>& involved,
                const BandwidthTrace& bandwidth, TimeMs scroll_start_ms,
                double duration_ms) {
  Bytes all_top = 0;
  for (std::size_t i : involved) {
    MFHTTP_CHECK(i < arena.size());
    all_top += arena.top_size(i);
  }
  double capacity = bandwidth.bytes_between(
      scroll_start_ms,
      scroll_start_ms + static_cast<TimeMs>(std::ceil(duration_ms)));
  auto cap_bytes = static_cast<Bytes>(capacity);
  return cost(std::min(all_top, cap_bytes));
}

}  // namespace mfhttp
