#include "core/viewport_state.h"

#include <algorithm>

namespace mfhttp {

Rect ViewportState::clamp_to_bounds(Rect vp) const {
  if (!bounds_) return vp;
  const Rect& b = *bounds_;
  if (vp.w <= b.w) vp.x = std::clamp(vp.x, b.left(), b.right() - vp.w);
  if (vp.h <= b.h) vp.y = std::clamp(vp.y, b.top(), b.bottom() - vp.h);
  return vp;
}

Rect ViewportState::at(TimeMs time_ms) const {
  if (!animation_) return viewport_;
  if (time_ms <= animation_->start_time_ms) return animation_->viewport0;
  double t = static_cast<double>(time_ms - animation_->start_time_ms);
  return animation_->viewport_at(t);
}

Rect ViewportState::interrupt(TimeMs time_ms) {
  viewport_ = at(time_ms);
  animation_.reset();
  return viewport_;
}

void ViewportState::apply_contact_pan(const Gesture& gesture) {
  Vec2 pan = Vec2{} - gesture.finger_displacement();
  viewport_ = clamp_to_bounds(viewport_.translated(pan));
}

void ViewportState::begin_animation(const ScrollPrediction& prediction) {
  animation_ = prediction;
  viewport_ = prediction.final_viewport();  // rest position once it finishes
}

}  // namespace mfhttp
