// Structure-of-arrays arena over a page's media objects.
//
// The planner hot path (touch -> analyze -> knapsack) walks every involved
// object's rectangle and version ladder on every replan. In the AoS layout
// (std::vector<MediaObject>, each owning a std::vector<MediaVersion>) that
// walk chases two pointers per object and drags URL strings through the
// cache for arithmetic that only needs 6 doubles and the version sizes.
// ObjectArena rebuilds the numeric hot data into contiguous parallel arrays:
//
//   x0/y0/x1/y1  rectangle corners (x1/y1 store the double-precision sums
//                x + w / y + h computed at build time, so batched geometry
//                reproduces the scalar `o + o_extent` bit-for-bit)
//   w/h          original extents (overlap-area math and Rect reconstruction)
//   state        per-object flags (degenerate rect, sorted versions)
//   top_size     f_{i,m} — the knapsack cost of the top version
//   sizes/resolutions  all versions, flattened, ascending per object,
//                sliced by version_offset/version_count
//
// Indices are STABLE: arena index i is the same object as objects[i] in the
// source vector, so ScrollAnalysis/DownloadPolicy object_index values mean
// the same thing on both layouts. The arena is a rebuild-on-layout-change
// snapshot, like ObjectIntervalIndex: it keeps a pointer to the source
// vector (for parity checks and URL lookups) but copies every number it
// reads on the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/media_object.h"
#include "geom/coverage_batch.h"
#include "geom/rect.h"
#include "util/check.h"
#include "util/types.h"

namespace mfhttp {

class ObjectArena {
 public:
  // State bits.
  static constexpr std::uint8_t kEmptyRect = 1;  // w <= 0 || h <= 0

  ObjectArena() = default;
  explicit ObjectArena(const std::vector<MediaObject>& objects) {
    rebuild(objects);
  }

  // Snapshot `objects` into SoA form. Call again after any layout or
  // version-ladder change; a stale arena is undefined behavior the same way
  // a stale ObjectIntervalIndex is.
  void rebuild(const std::vector<MediaObject>& objects);

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // The vector this arena was rebuilt from. Valid only while that vector is
  // alive and unmodified; used by parity mode and URL lookups.
  const std::vector<MediaObject>& source() const {
    MFHTTP_CHECK(source_ != nullptr);
    return *source_;
  }
  bool has_source() const { return source_ != nullptr; }

  // ---- geometry ----
  double x0(std::size_t i) const { return x0_[i]; }
  double y0(std::size_t i) const { return y0_[i]; }
  double x1(std::size_t i) const { return x1_[i]; }
  double y1(std::size_t i) const { return y1_[i]; }
  double width(std::size_t i) const { return w_[i]; }
  double height(std::size_t i) const { return h_[i]; }
  std::uint8_t state(std::size_t i) const { return state_[i]; }
  Rect rect(std::size_t i) const { return Rect{x0_[i], y0_[i], w_[i], h_[i]}; }

  // SoA view for the geom::coverage_batch kernels.
  geom::RectSoA rects() const {
    geom::RectSoA soa;
    soa.x0 = x0_.data();
    soa.y0 = y0_.data();
    soa.x1 = x1_.data();
    soa.y1 = y1_.data();
    soa.degenerate = deg_.data();  // -inf live, +inf degenerate (kEmptyRect)
    soa.count = count_;
    return soa;
  }

  // ---- version ladders (flattened) ----
  std::size_t version_count(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  std::size_t version_offset(std::size_t i) const { return offsets_[i]; }
  Bytes version_size(std::size_t i, std::size_t j) const {
    return sizes_[offsets_[i] + j];
  }
  double version_resolution(std::size_t i, std::size_t j) const {
    return resolutions_[offsets_[i] + j];
  }
  Bytes top_size(std::size_t i) const { return top_size_[i]; }
  double top_resolution(std::size_t i) const {
    return resolutions_[offsets_[i + 1] - 1];
  }
  const std::string& id(std::size_t i) const { return ids_[i]; }

  // Raw arrays for kernels that want to iterate without the accessor calls.
  const std::vector<Bytes>& flat_sizes() const { return sizes_; }
  const std::vector<double>& flat_resolutions() const { return resolutions_; }

 private:
  std::size_t count_ = 0;
  const std::vector<MediaObject>* source_ = nullptr;
  std::vector<double> x0_, y0_, x1_, y1_, w_, h_;
  std::vector<std::uint8_t> state_;
  std::vector<double> deg_;  // state_ & kEmptyRect as a guard: -inf/+inf
  std::vector<Bytes> top_size_;
  std::vector<std::size_t> offsets_;  // count_ + 1 prefix offsets
  std::vector<Bytes> sizes_;          // all versions, ascending per object
  std::vector<double> resolutions_;
  std::vector<std::string> ids_;
};

}  // namespace mfhttp
