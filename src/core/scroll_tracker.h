// Screen scrolling tracker (§3.3): turns a recognized gesture into the full
// predetermined viewport trajectory, then measures, per media object, when
// it enters the viewport and how much of the viewport it covers over time.
//
// Sign convention: the gesture's release velocity is the *finger* velocity.
// Content follows the finger, so the viewport (the window into the content)
// displaces in the opposite direction: viewport_displacement(t) =
// -d(t) * (v_x/v, v_y/v).
#pragma once

#include <optional>
#include <vector>

#include "core/media_object.h"
#include "geom/swept_region.h"
#include "gesture/gesture.h"
#include "scroll/animation.h"
#include "util/types.h"

namespace mfhttp {

class ObjectArena;

// Full prediction of one scrolling animation, made at finger release.
struct ScrollPrediction {
  Gesture gesture;
  ScrollAnimation animation;  // scalar kinematics along the gesture axis
  Rect viewport0;             // viewport at animation start (content coords)
  Vec2 displacement;          // total signed viewport displacement (clamped)
  double duration_ms = 0;     // effective duration (shortened if clamped)
  TimeMs start_time_ms = 0;   // absolute time of finger release

  SweptRegion sweep() const { return SweptRegion{viewport0, displacement}; }
  Rect final_viewport() const { return viewport0.translated(displacement); }

  // Viewport position t_ms after release (clamp-aware).
  Rect viewport_at(double t_ms) const;

  // Sampled trajectory for export/visualization: viewport rect and scroll
  // speed every `step_ms`, inclusive of t = 0 and t = duration.
  struct PathSample {
    double t_ms = 0;
    Rect viewport;
    double speed_px_s = 0;
  };
  std::vector<PathSample> sample_path(double step_ms) const;
};

// Per-object result of analyzing one scroll (§3.3.3 + §3.3.4).
struct ObjectCoverage {
  std::size_t object_index = 0;
  bool involved = false;         // intersects the swept region at some point
  double entry_time_ms = -1;     // t_i: first overlap, ms after release
  double coverage_integral = 0;  // ∫ s_i(t) dt over the animation (px^2 * ms)
  double final_coverage = 0;     // s_i(T): overlap area in the final viewport
  bool in_initial_viewport = false;
  bool in_final_viewport = false;
};

struct ScrollAnalysis {
  ScrollPrediction prediction;
  std::vector<ObjectCoverage> coverages;  // one per input object, same order

  // Indices of involved objects sorted by entry time (the ordering Eq. 13
  // assumes: t_1 <= t_2 <= ... <= t_n).
  std::vector<std::size_t> involved_by_entry_time() const;
};

// Y-sorted interval index over a page's media objects. A scroll only ever
// touches objects whose vertical span meets the corridor the viewport sweeps,
// so the indexed analyze() overload binary-searches this index for the
// candidate window instead of scanning every object on the page. Built once
// per page (rebuild() on layout change), queried per touch event.
//
// The query window is inclusive while Rect::overlaps is strict, so the
// candidate set is a superset of every object the exact math can involve —
// indexed analysis is bit-identical to the linear scan by construction.
class ObjectIntervalIndex {
 public:
  ObjectIntervalIndex() = default;
  explicit ObjectIntervalIndex(const std::vector<MediaObject>& objects) {
    rebuild(objects);
  }

  void rebuild(const std::vector<MediaObject>& objects);
  // Same index, built from an arena snapshot instead of the AoS vector.
  void rebuild(const ObjectArena& arena);
  std::size_t size() const { return entries_.size(); }

  // Indices (ascending object top, ties by index) of all objects whose
  // [top, bottom] span touches [y_lo, y_hi]. O(log n + candidates).
  void query(double y_lo, double y_hi, std::vector<std::size_t>& out) const;

 private:
  struct Entry {
    double top = 0;
    double bottom = 0;
    std::size_t index = 0;
  };
  std::vector<Entry> entries_;  // ascending by top
  // Bounds how far left of y_lo a candidate's top can sit: bottom >= y_lo
  // implies top >= y_lo - max_height_.
  double max_height_ = 0;
};

class ScrollTracker {
 public:
  struct Params {
    ScrollConfig scroll;
    // Discrete-time step for the coverage integral Σ s_i(t). The paper sums
    // per millisecond; coarser steps trade accuracy for speed.
    double coverage_step_ms = 1.0;
    // Optional content bounds; the viewport is clamped inside (a fling at
    // the page bottom stops early).
    std::optional<Rect> content_bounds;
  };

  explicit ScrollTracker(Params params) : params_(std::move(params)) {}

  const Params& params() const { return params_; }

  // Predict the whole animation at finger release. `viewport` is the
  // viewport at release time, in content coordinates.
  ScrollPrediction predict(const Gesture& gesture, const Rect& viewport) const;

  // Identify involved objects and compute their coverage trajectories.
  ScrollAnalysis analyze(const ScrollPrediction& prediction,
                         const std::vector<MediaObject>& objects) const;

  // Same results, bit for bit, but only objects the index places inside the
  // swept y-corridor run the per-object coverage math — the touch-to-policy
  // hot path on large pages. `index` must be built from the same `objects`.
  ScrollAnalysis analyze(const ScrollPrediction& prediction,
                         const std::vector<MediaObject>& objects,
                         const ObjectIntervalIndex& index) const;

  // SoA fast path: identical results, bit for bit, to the AoS overloads, but
  // the involvement test and first-overlap fraction run through the batched
  // geom::coverage_batch kernels and the coverage integral reads the arena's
  // contiguous corner arrays instead of chasing MediaObject pointers.
  ScrollAnalysis analyze(const ScrollPrediction& prediction,
                         const ObjectArena& arena) const;

  // Batched AND index-pruned: candidates from the y-corridor query, SoA math
  // on the gathered candidate set. `index` must be built from `arena` (or
  // equivalently from its source objects).
  ScrollAnalysis analyze(const ScrollPrediction& prediction,
                         const ObjectArena& arena,
                         const ObjectIntervalIndex& index) const;

 private:
  Params params_;
};

}  // namespace mfhttp
