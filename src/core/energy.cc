#include "core/energy.h"

#include "util/check.h"

namespace mfhttp {

double transfer_energy_joules(const RadioEnergyParams& params, Bytes size) {
  MFHTTP_CHECK(size >= 0);
  return params.promotion_joules +
         params.transfer_joules_per_mb * static_cast<double>(size) / 1e6 +
         params.tail_joules;
}

CostFunction radio_energy_cost(const RadioEnergyParams& params) {
  return [params](Bytes size) {
    if (size <= 0) return 0.0;
    return transfer_energy_joules(params, size);
  };
}

}  // namespace mfhttp
