#include "core/middleware.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "util/logging.h"

namespace mfhttp {

void TouchEventMonitor::on_touch_event(const TouchEvent& ev) {
  if (auto gesture = recognizer_.on_touch_event(ev)) {
    if (on_gesture_) on_gesture_(*gesture);
  }
}

Middleware::Middleware(Params params, std::vector<MediaObject> objects,
                       BandwidthTrace bandwidth, Simulator* sim)
    : tracker_(params.tracker),
      flow_(params.flow),
      objects_(std::move(objects)),
      bandwidth_(std::move(bandwidth)),
      sim_(sim),
      gesture_uplink_ms_(params.gesture_uplink_ms),
      enable_flywheel_(params.enable_flywheel),
      unscaled_viewport_(params.initial_viewport),
      viewport_(params.initial_viewport, params.tracker.content_bounds) {
  object_index_.rebuild(objects_);
}

void Middleware::set_objects(std::vector<MediaObject> objects,
                             Rect initial_viewport) {
  objects_ = std::move(objects);
  object_index_.rebuild(objects_);
  unscaled_viewport_ = initial_viewport;
  viewport_scale_ = 1.0;
  viewport_ = ViewportState(initial_viewport, tracker_.params().content_bounds);
  last_analysis_.reset();
  last_policy_.reset();
}

void Middleware::append_objects(std::vector<MediaObject> objects) {
  objects_.reserve(objects_.size() + objects.size());
  for (MediaObject& o : objects) objects_.push_back(std::move(o));
  object_index_.rebuild(objects_);
}

void Middleware::set_viewport_scale(double scale, TimeMs at_time_ms) {
  MFHTTP_CHECK_MSG(scale > 0, "viewport scale must be positive");
  Rect current = viewport_.interrupt(at_time_ms);
  viewport_scale_ = scale;
  Rect scaled{0, 0, unscaled_viewport_.w / scale, unscaled_viewport_.h / scale};
  scaled.x = current.center().x - scaled.w / 2;
  scaled.y = current.center().y - scaled.h / 2;
  ViewportState next(scaled, tracker_.params().content_bounds);
  // Re-clamp inside the content by panning nowhere.
  Gesture noop;
  next.apply_contact_pan(noop);
  viewport_ = next;
}

void Middleware::on_pinch(const PinchGesture& pinch, double min_scale,
                          double max_scale) {
  MFHTTP_CHECK(min_scale > 0 && max_scale >= min_scale);
  static obs::Counter& pinches_total =
      obs::metrics().counter("core.middleware.pinches_total");
  pinches_total.inc();
  double next = std::clamp(viewport_scale_ * pinch.scale_factor(), min_scale,
                           max_scale);
  set_viewport_scale(next, pinch.end_time_ms);
}

void Middleware::on_gesture(const Gesture& gesture) {
  if (sim_ && gesture_uplink_ms_ > 0) {
    sim_->schedule_after(gesture_uplink_ms_,
                         [this, gesture] { process_gesture(gesture); });
  } else {
    process_gesture(gesture);
  }
}

void Middleware::process_gesture(const Gesture& gesture) {
  static obs::Counter& gestures_total =
      obs::metrics().counter("core.middleware.gestures_total");
  gestures_total.inc();
  const auto wall_start = std::chrono::steady_clock::now();

  // Prediction accuracy: a new touch that lands mid-animation cuts the
  // predicted scroll short; the undelivered distance is the error the
  // flow controller planned against.
  if (viewport_.active_animation().has_value()) {
    const ScrollPrediction& active = *viewport_.active_animation();
    double t = static_cast<double>(gesture.down_time_ms - active.start_time_ms);
    if (t >= 0 && t < active.duration_ms) {
      static obs::Histogram& error_px = obs::metrics().histogram(
          "core.tracker.prediction_error_px",
          obs::exponential_bounds(1.0, 4.0, 10));
      Rect at_interrupt = active.viewport_at(t);
      double realized = Vec2{at_interrupt.x - active.viewport0.x,
                             at_interrupt.y - active.viewport0.y}
                            .norm();
      error_px.observe(active.displacement.norm() - realized);
    }
  }

  // OverScroller flywheel: speed remaining in an interrupted fling carries
  // into the next one when the finger flicks the same way.
  Vec2 carried_velocity{};
  if (enable_flywheel_ && viewport_.active_animation().has_value()) {
    const ScrollPrediction& active = *viewport_.active_animation();
    double t = static_cast<double>(gesture.down_time_ms - active.start_time_ms);
    if (t >= 0 && t < active.duration_ms &&
        active.animation.kind() == ScrollKind::kFling) {
      double remaining_speed = active.animation.speed_at(t);
      // The animation direction is the *viewport* direction; the carried
      // finger-space velocity is its opposite.
      Vec2 viewport_dir = active.displacement.normalized();
      Vec2 finger_dir = Vec2{} - viewport_dir;
      if (finger_dir.dot(gesture.release_velocity.normalized()) > 0.5) {
        carried_velocity = finger_dir * remaining_speed;
        static obs::Counter& flywheel_total =
            obs::metrics().counter("core.middleware.flywheel_inherits_total");
        flywheel_total.inc();
      }
    }
  }

  // A new touch aborts any unfinished scroll simulation (§4.2). Finger-space
  // quantities convert to content space through the viewport scale.
  Gesture content_gesture = gesture;
  if (viewport_scale_ != 1.0) {
    content_gesture.up_pos =
        gesture.down_pos + gesture.finger_displacement() / viewport_scale_;
    content_gesture.release_velocity =
        gesture.release_velocity / viewport_scale_;
  }
  viewport_.interrupt(content_gesture.down_time_ms);
  viewport_.apply_contact_pan(content_gesture);

  if (!content_gesture.scrolls()) return;

  Gesture boosted = content_gesture;
  boosted.release_velocity += carried_velocity;

  Rect vp_at_release = viewport_.at(gesture.up_time_ms);
  ScrollPrediction pred = tracker_.predict(boosted, vp_at_release);
  viewport_.begin_animation(pred);

  static obs::Counter& scrolls_total =
      obs::metrics().counter("core.middleware.scrolls_total");
  scrolls_total.inc();

  // Touch-to-policy hot path: interval-indexed analysis plus the stateful
  // replan() (incremental knapsack + reused build buffers). Both are
  // bit-identical to their stateless counterparts.
  ScrollAnalysis analysis = tracker_.analyze(pred, objects_, object_index_);
  DownloadPolicy policy = flow_.replan(analysis, objects_, bandwidth_);
  static obs::Histogram& touch_to_policy_ms = obs::metrics().histogram(
      "core.middleware.touch_to_policy_ms", obs::latency_ms_bounds());
  last_touch_to_policy_ms_ =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                wall_start)
          .count();
  touch_to_policy_ms.observe(last_touch_to_policy_ms_);
  last_analysis_ = analysis;
  last_policy_ = policy;
  MFHTTP_DEBUG << "middleware: gesture " << to_string(gesture.kind) << " -> "
               << policy.decisions.size() << " involved objects";
  if (on_policy_) on_policy_(analysis, policy);
}

}  // namespace mfhttp
