// QoE and cost models (§3.4.1).
//
//   Q1(i,j) = (1/T) (1/S) (r_j/r_m) Σ_t s_i(t)   — coverage over the scroll,
//                                                  scaled by resolution (Eq. 7)
//   Q2(i)   = 1[s_i(T) > 0]                      — lands in the final viewport
//                                                  (Eq. 8)
//   Q_{i,j} = a·Q1 + b·Q2, a = b = 1/2           — (Eq. 9)
//   C_{i,j} = c(f_{i,j}) / c_M                   — (Eq. 10), c_M the cost of
//             min(Σ_i f_{i,m}, Σ_t B(t)) — all top versions or all capacity.
#pragma once

#include <functional>

#include "core/media_object.h"
#include "core/scroll_tracker.h"
#include "net/bandwidth_trace.h"

namespace mfhttp {

struct QoEParams {
  double a = 0.5;  // weight of the coverage term Q1
  double b = 0.5;  // weight of the final-viewport indicator Q2
};

// Download cost as a function of bytes transferred. The paper keeps this
// generic; linear (cost == bytes) is the default, and a two-tier "data cap"
// shape is provided for cost-sensitivity experiments.
using CostFunction = std::function<double(Bytes)>;

CostFunction linear_cost();
// Linear up to `cap`, then `overage_factor`x per byte beyond it.
CostFunction capped_cost(Bytes cap, double overage_factor);

// Q1 — Eq. (7). `viewport_area` is S; `duration_ms` is T(v); `resolution` is
// r_j and `top_resolution` r_m. Degenerate scrolls (T <= 0) score 0.
double q1_coverage(const ObjectCoverage& coverage, double viewport_area,
                   double duration_ms, double resolution, double top_resolution);

// Q2 — Eq. (8).
double q2_final_viewport(const ObjectCoverage& coverage);

// Q_{i,j} — Eq. (9).
double qoe_score(const QoEParams& params, const ObjectCoverage& coverage,
                 double viewport_area, double duration_ms, double resolution,
                 double top_resolution);

// c_M — the normalizer of Eq. (10): cost of downloading everything at top
// resolution, or of saturating the bandwidth over the scroll, whichever is
// smaller. `involved` lists the indices of objects taking part in the scroll.
double max_cost(const CostFunction& cost, const std::vector<MediaObject>& objects,
                const std::vector<std::size_t>& involved,
                const BandwidthTrace& bandwidth, TimeMs scroll_start_ms,
                double duration_ms);

// Same normalizer over an arena snapshot (top sizes read from the SoA
// arrays); bit-identical to the AoS overload on the same objects.
class ObjectArena;
double max_cost(const CostFunction& cost, const ObjectArena& arena,
                const std::vector<std::size_t>& involved,
                const BandwidthTrace& bandwidth, TimeMs scroll_start_ms,
                double duration_ms);

}  // namespace mfhttp
