// Radio energy cost model — the canonical instantiation of the paper's
// generic cost function c(f) (§3.4.1 keeps it "generic so that it can be
// easily adapted to different practical scenarios"; energy per download is
// the scenario its related work [11][23][24] studies).
//
// A cellular/WiFi radio charges three components per fetch:
//   * promotion: leaving idle for the high-power connected state,
//   * transfer:  energy proportional to bytes moved,
//   * tail:      the radio lingers in the high-power state after the
//                transfer before demoting (dominant for small objects).
//
// The resulting cost is affine with a substantial constant term, which —
// unlike the linear model — makes the optimizer prefer *fewer* downloads,
// not just fewer bytes.
#pragma once

#include "core/qoe.h"
#include "util/types.h"

namespace mfhttp {

struct RadioEnergyParams {
  double promotion_joules = 0;
  double transfer_joules_per_mb = 0;
  double tail_joules = 0;

  // Ballpark figures from the LTE/WiFi measurement literature.
  static RadioEnergyParams lte() { return {1.2, 12.0, 1.0}; }
  static RadioEnergyParams wifi() { return {0.1, 5.0, 0.25}; }
};

// Energy (joules) to fetch one object of `size` bytes on a cold radio.
double transfer_energy_joules(const RadioEnergyParams& params, Bytes size);

// CostFunction adapter for the flow controller. By convention c(0) == 0
// (not downloading costs nothing), then the affine radio model applies.
CostFunction radio_energy_cost(const RadioEnergyParams& params);

}  // namespace mfhttp
