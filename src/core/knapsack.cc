#include "core/knapsack.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mfhttp {

namespace {

void validate_instance(const std::vector<KnapsackItem>& items) {
  Bytes prev_cap = 0;
  for (const KnapsackItem& item : items) {
    MFHTTP_CHECK_MSG(!item.values.empty(), "item must have at least one version");
    MFHTTP_CHECK(item.values.size() == item.weights.size());
    for (Bytes w : item.weights) MFHTTP_CHECK_MSG(w >= 0, "negative weight");
    MFHTTP_CHECK_MSG(item.capacity >= prev_cap,
                     "capacities must be nondecreasing (sort by entry time)");
    prev_cap = item.capacity;
  }
}

}  // namespace

bool evaluate_selection(const std::vector<KnapsackItem>& items,
                        const std::vector<int>& chosen, KnapsackSolution* out) {
  MFHTTP_CHECK(chosen.size() == items.size());
  double value = 0;
  Bytes prefix_weight = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    int j = chosen[i];
    if (j >= 0) {
      MFHTTP_CHECK(static_cast<std::size_t>(j) < items[i].values.size());
      prefix_weight += items[i].weights[static_cast<std::size_t>(j)];
      value += items[i].values[static_cast<std::size_t>(j)];
    }
    if (prefix_weight > items[i].capacity) return false;  // Eq. 13 violated
  }
  if (out) {
    out->chosen = chosen;
    out->total_value = value;
    out->total_weight = prefix_weight;
  }
  return true;
}

KnapsackSolution solve_prefix_knapsack(const std::vector<KnapsackItem>& items,
                                       Bytes capacity_unit_bytes) {
  validate_instance(items);
  MFHTTP_CHECK(capacity_unit_bytes > 0);
  KnapsackSolution solution;
  solution.chosen.assign(items.size(), -1);
  if (items.empty()) return solution;

  const std::size_t n = items.size();
  const Bytes unit = capacity_unit_bytes;
  // Conservative discretization: weights round up, capacities round down.
  auto weight_units = [&](Bytes w) -> long long { return (w + unit - 1) / unit; };
  auto capacity_units = [&](Bytes c) -> long long { return c / unit; };

  // Capacity axis never needs to exceed the total weight of one version per
  // item (the c_M insight of §3.4.1), nor the last capacity.
  long long max_item_units = 0;
  for (const KnapsackItem& item : items) {
    long long w = std::numeric_limits<long long>::max();
    for (Bytes wi : item.weights) w = std::min(w, weight_units(wi));
    // use the largest weight so the axis can hold any choice
    long long wmax = 0;
    for (Bytes wi : item.weights) wmax = std::max(wmax, weight_units(wi));
    max_item_units += wmax;
  }
  const long long U =
      std::min(capacity_units(items.back().capacity), max_item_units);
  MFHTTP_CHECK(U >= 0);
  const std::size_t width = static_cast<std::size_t>(U) + 1;

  // M[i][l] per Eq. 14, rolled over i; choice[i][l] records the version
  // picked (or -1) for backtracking.
  std::vector<double> prev(width, 0.0), cur(width, 0.0);
  std::vector<std::vector<int>> choice(n, std::vector<int>(width, -1));

  std::vector<long long> caps(n);
  for (std::size_t i = 0; i < n; ++i)
    caps[i] = std::min<long long>(capacity_units(items[i].capacity), U);

  for (std::size_t i = 0; i < n; ++i) {
    // Budget available to the first i items (clamp of Eq. 14).
    const long long cap_prev = i == 0 ? caps[0] : caps[i - 1];
    for (long long l = 0; l <= U; ++l) {
      // Skip object i.
      double best = prev[static_cast<std::size_t>(std::min(l, cap_prev))];
      int best_j = -1;
      for (std::size_t j = 0; j < items[i].weights.size(); ++j) {
        long long w = weight_units(items[i].weights[j]);
        if (w > l) continue;
        long long rem = std::min(l - w, cap_prev);
        double v = prev[static_cast<std::size_t>(rem)] + items[i].values[j];
        if (v > best) {
          best = v;
          best_j = static_cast<int>(j);
        }
      }
      cur[static_cast<std::size_t>(l)] = best;
      choice[i][static_cast<std::size_t>(l)] = best_j;
    }
    std::swap(prev, cur);
  }

  // Backtrack from the full final budget.
  long long l = caps[n - 1];
  for (std::size_t ii = n; ii-- > 0;) {
    const long long cap_prev = ii == 0 ? caps[0] : caps[ii - 1];
    int j = choice[ii][static_cast<std::size_t>(l)];
    solution.chosen[ii] = j;
    if (j >= 0) {
      long long w = weight_units(items[ii].weights[static_cast<std::size_t>(j)]);
      l = std::min(l - w, cap_prev);
    } else {
      l = std::min(l, cap_prev);
    }
    MFHTTP_DCHECK(l >= 0);
  }

  KnapsackSolution checked;
  bool feasible = evaluate_selection(items, solution.chosen, &checked);
  MFHTTP_CHECK_MSG(feasible, "DP produced infeasible selection");
  return checked;
}

KnapsackSolution solve_prefix_knapsack_incremental(
    const std::vector<KnapsackItem>& items, Bytes capacity_unit_bytes,
    KnapsackScratch* scratch) {
  MFHTTP_CHECK(scratch != nullptr);
  validate_instance(items);
  MFHTTP_CHECK(capacity_unit_bytes > 0);
  ++scratch->solves;

  const std::size_t n = items.size();
  const Bytes unit = capacity_unit_bytes;
  if (n == 0) {
    scratch->items.clear();
    scratch->unit = unit;
    scratch->width = 0;
    scratch->caps.clear();
    scratch->solution = KnapsackSolution{};
    scratch->valid = true;
    return scratch->solution;
  }

  // Same discretization as solve_prefix_knapsack: weights round up,
  // capacities round down.
  auto weight_units = [&](Bytes w) -> long long { return (w + unit - 1) / unit; };
  auto capacity_units = [&](Bytes c) -> long long { return c / unit; };

  long long max_item_units = 0;
  for (const KnapsackItem& item : items) {
    long long wmax = 0;
    for (Bytes wi : item.weights) wmax = std::max(wmax, weight_units(wi));
    max_item_units += wmax;
  }
  const long long U =
      std::min(capacity_units(items.back().capacity), max_item_units);
  MFHTTP_CHECK(U >= 0);
  const std::size_t width = static_cast<std::size_t>(U) + 1;

  // Longest prefix of items unchanged since the last solve. Row i of the
  // stored table depends only on items[0..i), their capacities, and the
  // capacity axis, so with an identical unit and width the first k rows are
  // still exact. caps[i] is a pure function of items[i].capacity and U, so
  // item equality covers capacity equality.
  std::size_t k = 0;
  if (scratch->valid && scratch->unit == unit && scratch->width == width) {
    const std::size_t limit = std::min(n, scratch->items.size());
    while (k < limit && items[k].capacity == scratch->items[k].capacity &&
           items[k].weights == scratch->items[k].weights &&
           items[k].values == scratch->items[k].values)
      ++k;
    if (k == n && scratch->items.size() == n) {
      // Touch event re-solved an unchanged instance: the §3.4.2 fast path.
      ++scratch->full_reuses;
      scratch->rows_reused += n;
      return scratch->solution;
    }
  }

  scratch->unit = unit;
  scratch->width = width;
  scratch->caps.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    scratch->caps[i] = std::min<long long>(capacity_units(items[i].capacity), U);

  // The table only ever grows, so steady-state re-solves are malloc-free.
  if (scratch->rows.size() < (n + 1) * width)
    scratch->rows.resize((n + 1) * width);
  if (scratch->choice.size() < n * width) scratch->choice.resize(n * width);
  if (k == 0) std::fill_n(scratch->rows.begin(), width, 0.0);

  scratch->rows_reused += k;
  scratch->rows_computed += n - k;

  // Identical recurrence (and tie-breaking) to solve_prefix_knapsack, begun
  // at the first changed item.
  for (std::size_t i = k; i < n; ++i) {
    const double* prev = &scratch->rows[i * width];
    double* cur = &scratch->rows[(i + 1) * width];
    int* choice = &scratch->choice[i * width];
    const long long cap_prev = i == 0 ? scratch->caps[0] : scratch->caps[i - 1];
    for (long long l = 0; l <= U; ++l) {
      double best = prev[static_cast<std::size_t>(std::min(l, cap_prev))];
      int best_j = -1;
      for (std::size_t j = 0; j < items[i].weights.size(); ++j) {
        long long w = weight_units(items[i].weights[j]);
        if (w > l) continue;
        long long rem = std::min(l - w, cap_prev);
        double v = prev[static_cast<std::size_t>(rem)] + items[i].values[j];
        if (v > best) {
          best = v;
          best_j = static_cast<int>(j);
        }
      }
      cur[static_cast<std::size_t>(l)] = best;
      choice[static_cast<std::size_t>(l)] = best_j;
    }
  }

  KnapsackSolution solution;
  solution.chosen.assign(n, -1);
  long long l = scratch->caps[n - 1];
  for (std::size_t ii = n; ii-- > 0;) {
    const long long cap_prev = ii == 0 ? scratch->caps[0] : scratch->caps[ii - 1];
    int j = scratch->choice[ii * width + static_cast<std::size_t>(l)];
    solution.chosen[ii] = j;
    if (j >= 0) {
      long long w = weight_units(items[ii].weights[static_cast<std::size_t>(j)]);
      l = std::min(l - w, cap_prev);
    } else {
      l = std::min(l, cap_prev);
    }
    MFHTTP_DCHECK(l >= 0);
  }

  KnapsackSolution checked;
  bool feasible = evaluate_selection(items, solution.chosen, &checked);
  MFHTTP_CHECK_MSG(feasible, "incremental DP produced infeasible selection");
  scratch->items = items;  // assignment reuses the snapshot's capacity
  scratch->solution = checked;
  scratch->valid = true;
  return scratch->solution;
}

KnapsackSolution solve_prefix_knapsack_bruteforce(
    const std::vector<KnapsackItem>& items) {
  validate_instance(items);
  const std::size_t n = items.size();
  KnapsackSolution best;
  best.chosen.assign(n, -1);
  if (n == 0) return best;

  // Guard against exponential blowup in production use.
  double combos = 1;
  for (const KnapsackItem& item : items) combos *= static_cast<double>(item.values.size() + 1);
  MFHTTP_CHECK_MSG(combos <= 5e7, "bruteforce instance too large");

  std::vector<int> assign(n, -1);
  double best_value = 0;  // empty selection is always feasible with value 0

  // Iterative odometer over {-1, 0, .., m_i-1}^n.
  while (true) {
    KnapsackSolution sol;
    if (evaluate_selection(items, assign, &sol) && sol.total_value > best_value) {
      best_value = sol.total_value;
      best = sol;
    }
    std::size_t pos = 0;
    while (pos < n) {
      if (assign[pos] + 1 < static_cast<int>(items[pos].values.size())) {
        ++assign[pos];
        break;
      }
      assign[pos] = -1;
      ++pos;
    }
    if (pos == n) break;
  }
  if (best.chosen.empty()) best.chosen.assign(n, -1);
  return best;
}

namespace {

// DFS state for the branch-and-bound search.
struct BnbSearch {
  const std::vector<KnapsackItem>& items;
  const std::vector<double>& suffix_best;  // optimistic value of items[i..)
  std::size_t max_nodes;
  std::size_t nodes = 0;
  bool aborted = false;
  double best_value = 0;
  std::vector<int> best_assign;
  std::vector<int> current;

  void dfs(std::size_t i, Bytes weight, double value) {
    if (aborted) return;
    if (++nodes > max_nodes) {
      aborted = true;
      return;
    }
    if (i == items.size()) {
      if (value > best_value) {
        best_value = value;
        best_assign = current;
      }
      return;
    }
    // Optimistic bound: everything remaining at its best positive value.
    if (value + suffix_best[i] <= best_value + 1e-12) return;

    // Explore versions in descending value (good incumbents early), then
    // the skip branch.
    const KnapsackItem& item = items[i];
    std::vector<std::size_t> order(item.values.size());
    for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return item.values[a] > item.values[b];
    });
    for (std::size_t j : order) {
      if (item.values[j] <= 0) break;  // sorted: the rest never helps
      Bytes w2 = weight + item.weights[j];
      if (w2 > item.capacity) continue;  // Eq. 13 prefix constraint
      current[i] = static_cast<int>(j);
      dfs(i + 1, w2, value + item.values[j]);
      current[i] = -1;
    }
    dfs(i + 1, weight, value);
  }
};

}  // namespace

BranchAndBoundResult solve_prefix_knapsack_bnb(
    const std::vector<KnapsackItem>& items, std::size_t max_nodes) {
  validate_instance(items);
  MFHTTP_CHECK(max_nodes > 0);
  const std::size_t n = items.size();

  std::vector<double> suffix_best(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double best = 0;
    for (double v : items[i].values) best = std::max(best, v);
    suffix_best[i] = suffix_best[i + 1] + best;
  }

  BnbSearch search{items, suffix_best, max_nodes, 0, false, 0.0, {}, {}};
  search.best_assign.assign(n, -1);
  search.current.assign(n, -1);
  search.dfs(0, 0, 0.0);

  BranchAndBoundResult out;
  out.nodes_visited = search.nodes;
  out.exact = !search.aborted;
  bool feasible = evaluate_selection(items, search.best_assign, &out.solution);
  MFHTTP_CHECK_MSG(feasible, "B&B produced infeasible selection");
  return out;
}

KnapsackSolution solve_prefix_knapsack_greedy(const std::vector<KnapsackItem>& items) {
  validate_instance(items);
  struct Candidate {
    std::size_t i;
    std::size_t j;
    double density;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = 0; j < items[i].values.size(); ++j) {
      if (items[i].values[j] <= 0) continue;
      double w = static_cast<double>(std::max<Bytes>(items[i].weights[j], 1));
      candidates.push_back({i, j, items[i].values[j] / w});
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    return a.density > b.density;
  });

  std::vector<int> chosen(items.size(), -1);
  for (const Candidate& c : candidates) {
    if (chosen[c.i] != -1) continue;
    chosen[c.i] = static_cast<int>(c.j);
    if (!evaluate_selection(items, chosen, nullptr)) chosen[c.i] = -1;
  }
  KnapsackSolution sol;
  bool ok = evaluate_selection(items, chosen, &sol);
  MFHTTP_CHECK(ok);
  return sol;
}

}  // namespace mfhttp
