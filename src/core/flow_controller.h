// Flow controller (§3.4): evaluates Q_{i,j} and C_{i,j} for every media
// object involved in a scroll and solves the download-policy optimization
// (Eq. 11 s.t. Eq. 12, 13) via the prefix-capacity knapsack.
#pragma once

#include <vector>

#include "core/knapsack.h"
#include "core/media_object.h"
#include "core/object_arena.h"
#include "core/qoe.h"
#include "core/scroll_tracker.h"
#include "net/bandwidth_trace.h"

namespace mfhttp {

struct FlowWeights {
  double p = 1.0;  // QoE weight
  double q = 1.0;  // cost weight (the paper sets q = 0 for web browsing)
};

struct DownloadDecision {
  std::size_t object_index = 0;
  int version = -1;          // chosen version index, or -1 to skip
  double entry_time_ms = -1; // t_i
  double qoe = 0;            // Q_{i,version} (0 when skipped)
  double cost = 0;           // C_{i,version} (0 when skipped)
  double value = 0;          // p*qoe - q*cost

  bool download() const { return version >= 0; }
};

struct DownloadPolicy {
  // One decision per *involved* object, ordered by entry time.
  std::vector<DownloadDecision> decisions;
  double objective = 0;    // Eq. 11 value of the selection
  Bytes total_bytes = 0;   // bytes the policy downloads

  // Decision for a given object index, or nullptr if not involved.
  const DownloadDecision* find(std::size_t object_index) const;
};

// An object the policy wants that is not on screen yet — the raw material
// for the prefetch planner (prefetch/planner.h): warm the middleware cache
// before the predicted viewport-entry time so the eventual request streams
// from the proxy with no upstream hop.
struct PrefetchCandidate {
  std::size_t object_index = 0;
  int version = 0;            // version the policy chose
  std::string url;            // URL of that version
  Bytes bytes = 0;            // its wire size
  double entry_time_ms = 0;   // predicted viewport entry, relative to scroll start
  double value = 0;           // the decision's p*qoe - q*cost
};

class FlowController {
 public:
  struct Params {
    FlowWeights weights;
    QoEParams qoe;
    CostFunction cost = linear_cost();
    // Capacity discretization of the DP (bytes per unit).
    Bytes capacity_unit_bytes = 1024;
    // Optimizer backend: the paper's DP (default), the exact-in-bytes
    // branch-and-bound, or the greedy value-density heuristic (ablations).
    enum class Solver { kDp, kBranchAndBound, kGreedy };
    Solver solver = Solver::kDp;
    // Back-compat alias for Solver::kGreedy.
    bool use_greedy = false;
    // Drop Eq. 13 entirely — §5.1.2: "As bandwidth is rarely the bottleneck
    // for web browsing, we release the bandwidth constraint".
    bool ignore_bandwidth_constraint = false;
  };

  explicit FlowController(Params params);

  const Params& params() const { return params_; }

  // Graceful degradation (DESIGN.md §9): while degraded, optimize() skips
  // the solver and conservatively picks the lowest version of every
  // involved object — cheap, always-delivered, never optimal.
  void set_degraded(bool degraded) { degraded_ = degraded; }
  bool degraded() const { return degraded_; }

  // Brownout hook (overload/brownout.h): with speculation off, optimize()
  // only considers objects the scroll actually lands on (initial or final
  // viewport) — transient corridor-only objects are dropped from the
  // knapsack before it is built, so no speculative byte is ever planned.
  void set_speculation_enabled(bool enabled) { speculation_enabled_ = enabled; }
  bool speculation_enabled() const { return speculation_enabled_; }

  // Compute the optimal download policy for one analyzed scroll.
  DownloadPolicy optimize(const ScrollAnalysis& analysis,
                          const std::vector<MediaObject>& objects,
                          const BandwidthTrace& bandwidth) const;

  // Stateful per-touch fast path (§3.4.2: the optimizer re-runs "whenever a
  // user touch event is detected"). Bit-identical results to optimize(), but
  // the knapsack DP table, the instance snapshot, and the item build buffers
  // persist across calls: an unchanged instance returns the cached solution
  // without touching the DP, an unchanged item prefix re-solves only the
  // changed suffix, and steady-state re-solves are malloc-free. One
  // FlowController (and thus one scratch) belongs to one session world — the
  // parallel runner never shares controllers across workers (DESIGN.md §12).
  DownloadPolicy replan(const ScrollAnalysis& analysis,
                        const std::vector<MediaObject>& objects,
                        const BandwidthTrace& bandwidth);

  // SoA fast path: same policies, bit for bit, as the AoS overloads, with
  // the knapsack instance built from the arena's flat size/resolution
  // arrays instead of per-object version vectors. `analysis` must cover the
  // same objects the arena was rebuilt from (object_index == arena index).
  DownloadPolicy optimize(const ScrollAnalysis& analysis,
                          const ObjectArena& arena,
                          const BandwidthTrace& bandwidth) const;
  DownloadPolicy replan(const ScrollAnalysis& analysis,
                        const ObjectArena& arena,
                        const BandwidthTrace& bandwidth);

  // Parity mode: every arena plan also runs the legacy AoS path on
  // arena.source() and checks the decisions are bit-identical. Used by the
  // parity tests and the microbench fixtures; costs a full extra solve per
  // plan, so it stays off in production wiring.
  void set_arena_parity_check(bool on) { arena_parity_check_ = on; }
  bool arena_parity_check() const { return arena_parity_check_; }

  // Re-solve telemetry for benches and tests (counts full/prefix DP reuse).
  const KnapsackScratch& replan_scratch() const { return scratch_; }

  // Objects a computed policy wants that are not already visible — ordered
  // by entry time, each carrying the decision's value so the prefetch
  // planner can budget in the same QoE-minus-cost currency the knapsack
  // optimized. Empty while degraded or with speculation disabled: prefetch
  // is speculation by definition.
  std::vector<PrefetchCandidate> prefetch_candidates(
      const ScrollAnalysis& analysis, const std::vector<MediaObject>& objects,
      const DownloadPolicy& policy) const;

 private:
  // Reusable buffers for the knapsack instance build (replan path).
  struct BuildBuffers {
    std::vector<KnapsackItem> items;
    std::vector<double> qoe;   // per (item, version), row-major
    std::vector<double> cost;
  };

  DownloadPolicy plan(const ScrollAnalysis& analysis,
                      const std::vector<MediaObject>& objects,
                      const BandwidthTrace& bandwidth, KnapsackScratch* scratch,
                      BuildBuffers& buffers) const;
  DownloadPolicy plan_arena(const ScrollAnalysis& analysis,
                            const ObjectArena& arena,
                            const BandwidthTrace& bandwidth,
                            KnapsackScratch* scratch,
                            BuildBuffers& buffers) const;
  DownloadPolicy degraded_policy(const ScrollAnalysis& analysis,
                                 const std::vector<MediaObject>& objects,
                                 const std::vector<std::size_t>& involved) const;
  DownloadPolicy degraded_policy_arena(
      const ScrollAnalysis& analysis, const ObjectArena& arena,
      const std::vector<std::size_t>& involved) const;
  void check_arena_parity(const ScrollAnalysis& analysis,
                          const ObjectArena& arena,
                          const BandwidthTrace& bandwidth,
                          const DownloadPolicy& arena_policy) const;

  Params params_;
  bool degraded_ = false;
  bool speculation_enabled_ = true;
  bool arena_parity_check_ = false;
  KnapsackScratch scratch_;
  BuildBuffers buffers_;
};

}  // namespace mfhttp
