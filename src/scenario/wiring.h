// from_scenario wiring: the one place a ScenarioSpec is translated into the
// concrete configs the session runners consume. Everything an example or
// bench used to hand-assemble — link parameters, fault plans, cache and
// admission sections, per-device fling calibration, per-repeat swipe ramps —
// flows from the spec through these helpers, so a scenario JSON file is a
// complete, reproducible description of a run.
//
// Seed discipline: the paper-default spec (seed 1) reproduces the fig6/fig7
// harness byte for byte — browsing_config derives exactly the historical
// `1000 + site.size() + repeat * 7919` session seeds, and the WLAN profile
// yields the same constant-bandwidth links the harness hardcoded.
#pragma once

#include "feed/feed_experiment.h"
#include "scenario/scenario_spec.h"
#include "web/experiment.h"
#include "web/page.h"

namespace mfhttp::scenario {

// Browsing session for corpus page `page`, repeat index `repeat` (one
// scenario repeat = one seeded session with its own swipe intensity).
// `plan` is the caller-kept compiled_fault_plan() (nullptr = fault-free);
// the config only borrows the pointer.
BrowsingSessionConfig browsing_config(const ScenarioSpec& spec,
                                      const WebPage& page, int repeat,
                                      const fault::FaultPlan* plan = nullptr);

// Feed session for repeat index `repeat`. A workload with
// append_posts_per_fling > 0 becomes a dynamic feed: the session opens with
// the prefix left after reserving one append batch per fling. `plan` as in
// browsing_config.
FeedSessionConfig feed_config(const ScenarioSpec& spec, int repeat,
                              const fault::FaultPlan* plan = nullptr);

// The feed itself (post count from the workload, sized for the device).
FeedSpec feed_spec(const ScenarioSpec& spec);

}  // namespace mfhttp::scenario
