// Scenario-matrix cell runners (bench/scenario_matrix): one cell = one
// ScenarioSpec = device class × network profile × workload, executed
// serially inside the cell so its aggregate is a pure function of the spec
// — the matrix bench parallelizes ACROSS cells and byte-compares the
// deterministic fields at every --workers count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario_spec.h"

namespace mfhttp::scenario {

struct MatrixCellResult {
  // Identity keys (tools/bench_gate.py matches rows on these).
  std::string scenario;
  std::string device;
  std::string network;
  std::string workload;

  std::size_t sessions = 0;  // sessions (or viewers) the cell aggregated
  // Workload-appropriate QoE in [0, 1]: browsing = mean 1000/(1000+VLT);
  // feed = instant-play rate; video = mean resolution / ladder top.
  double qoe = 0;
  // P99 of the per-session viewport/segment load times (-1 where the
  // workload has no load-time notion, e.g. the feed).
  TimeMs viewport_p99_ms = -1;
  double goodput_bytes_per_s = 0;  // client-link bytes / simulated time
  double shed_rate = 0;            // (rejected + shed) / requests seen
  double cache_hit_ratio = 0;      // hits / (hits + misses); 0 without cache
  // FNV-1a over every per-session deterministic quantity — the bit-for-bit
  // equality witness between runs and worker counts.
  std::uint64_t fingerprint = 0;
  double wall_ms = 0;  // excluded from deterministic comparison

  // Deterministic fields only (no wall_ms), for byte comparison.
  std::string deterministic_json() const;
};

// The cell's spec: `base` with the named device class / network profile /
// workload kind swapped in (workload knobs other than kind are kept from
// base). Aborts on unknown names — the grid is validated up front.
ScenarioSpec cell_spec(const ScenarioSpec& base, const std::string& device,
                       const std::string& network, const std::string& workload);

// Run one cell serially. Pure function of the spec, wall_ms aside.
MatrixCellResult run_matrix_cell(const ScenarioSpec& spec);

}  // namespace mfhttp::scenario
