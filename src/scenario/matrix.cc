#include "scenario/matrix.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "feed/feed_experiment.h"
#include "gesture/recognizer.h"
#include "gesture/synthetic.h"
#include "scenario/wiring.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "video/scheduler.h"
#include "video/session.h"
#include "video/viewport_trace.h"
#include "web/corpus.h"
#include "web/experiment.h"

namespace mfhttp::scenario {

namespace {

// FNV-1a over raw bytes (the sim/session_world.cc witness, doubles hashed
// by bit pattern so the fingerprint catches sub-ulp drift).
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* p, std::size_t n) {
    const unsigned char* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
};

TimeMs p99(std::vector<TimeMs> samples) {
  if (samples.empty()) return -1;
  std::sort(samples.begin(), samples.end());
  std::size_t idx = (samples.size() * 99 + 99) / 100;  // ceil(0.99 n)
  if (idx > samples.size()) idx = samples.size();
  return samples[idx - 1];
}

// Shared accumulator for the proxy-side columns.
struct ProxyTally {
  std::size_t requests = 0, rejected = 0, shed = 0, hits = 0, misses = 0;
  template <typename R>
  void add(const R& r) {
    requests += r.requests_total;
    rejected += r.requests_rejected;
    shed += r.requests_shed;
    hits += r.cache_hits;
    misses += r.cache_misses;
  }
  void finish(MatrixCellResult* out) const {
    out->shed_rate =
        requests > 0 ? static_cast<double>(rejected + shed) / requests : 0;
    out->cache_hit_ratio =
        hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  }
};

void run_browsing_cell(const ScenarioSpec& spec, MatrixCellResult* out) {
  Rng corpus_rng(42);
  std::vector<WebPage> corpus =
      generate_corpus(spec.device.profile, corpus_rng);
  if (spec.workload.corpus_sites > 0 &&
      static_cast<std::size_t>(spec.workload.corpus_sites) < corpus.size())
    corpus.resize(spec.workload.corpus_sites);
  const std::optional<fault::FaultPlan> plan = spec.compiled_fault_plan();

  Fnv fp;
  ProxyTally tally;
  std::vector<TimeMs> load_times;
  double qoe_sum = 0;
  Bytes total_bytes = 0;
  TimeMs total_sim_ms = 0;
  for (const WebPage& page : corpus) {
    for (int repeat = 0; repeat < spec.workload.repeats; ++repeat) {
      BrowsingSessionConfig cfg =
          browsing_config(spec, page, repeat, plan ? &*plan : nullptr);
      BrowsingSessionResult r = run_browsing_session(page, cfg);
      ++out->sessions;
      load_times.push_back(r.initial_viewport_load_ms);
      qoe_sum += r.initial_viewport_load_ms >= 0
                     ? 1000.0 / (1000.0 + r.initial_viewport_load_ms)
                     : 0.0;
      total_bytes += r.bytes_downloaded;
      total_sim_ms += cfg.session_ms;
      tally.add(r);
      fp.u64(static_cast<std::uint64_t>(r.initial_viewport_load_ms));
      fp.u64(static_cast<std::uint64_t>(r.final_viewport_load_ms));
      fp.u64(static_cast<std::uint64_t>(r.bytes_downloaded));
      fp.u64(r.images_completed);
      fp.u64(r.stranded_deferred);
    }
  }
  out->qoe = out->sessions > 0 ? qoe_sum / out->sessions : 0;
  out->viewport_p99_ms = p99(std::move(load_times));
  out->goodput_bytes_per_s =
      total_sim_ms > 0 ? total_bytes * 1000.0 / total_sim_ms : 0;
  tally.finish(out);
  out->fingerprint = fp.h;
}

void run_feed_cell(const ScenarioSpec& spec, MatrixCellResult* out) {
  Rng feed_rng(42 + spec.seed);
  Feed feed = generate_feed(feed_spec(spec), spec.device.profile, feed_rng);
  const std::optional<fault::FaultPlan> plan = spec.compiled_fault_plan();

  Fnv fp;
  ProxyTally tally;
  double qoe_sum = 0;
  Bytes total_bytes = 0;
  TimeMs total_sim_ms = 0;
  for (int repeat = 0; repeat < spec.workload.repeats; ++repeat) {
    FeedSessionConfig cfg = feed_config(spec, repeat, plan ? &*plan : nullptr);
    FeedSessionResult r = run_feed_session(feed, cfg);
    ++out->sessions;
    qoe_sum += r.instant_play_rate;
    total_bytes += r.bytes_downloaded;
    total_sim_ms += cfg.session_ms;
    tally.add(r);
    fp.u64(r.clips_settled);
    fp.u64(r.clips_instant);
    fp.u64(static_cast<std::uint64_t>(r.bytes_downloaded));
    fp.u64(r.thumbs_substituted);
    fp.u64(r.media_avoided);
  }
  out->qoe = out->sessions > 0 ? qoe_sum / out->sessions : 0;
  out->viewport_p99_ms = -1;  // the feed has no viewport-load notion
  out->goodput_bytes_per_s =
      total_sim_ms > 0 ? total_bytes * 1000.0 / total_sim_ms : 0;
  tally.finish(out);
  out->fingerprint = fp.h;
}

ViewportTrace viewer_trace(const DeviceProfile& device, std::uint64_t seed,
                           TimeMs duration_ms) {
  ViewportTrace::Params tp;
  tp.device = device;
  ViewportTrace trace(tp);
  VideoDragSource source(device, {}, Rng(seed));
  GestureRecognizer recognizer(device);
  TimeMs now = 0;
  while (now < duration_ms) {
    TouchTrace t = source.next_gesture(now);
    now = t.back().time_ms;
    for (const TouchEvent& ev : t)
      if (auto g = recognizer.on_touch_event(ev)) trace.add_gesture(*g);
  }
  return trace;
}

void run_video_cell(const ScenarioSpec& spec, MatrixCellResult* out) {
  VideoAsset::Params vp;
  vp.duration_s = spec.workload.video_segments;
  vp.seed = 6 + spec.seed;  // paper-default seed 1 keeps the stock asset
  VideoAsset video(vp);
  const double top_resolution = video.params().ladder.back().resolution;
  MfHttpTileScheduler scheduler;
  StreamingSessionParams params;

  Fnv fp;
  std::vector<TimeMs> completion_times;
  double qoe_sum = 0;
  Bytes total_bytes = 0;
  for (int viewer = 0; viewer < spec.workload.repeats; ++viewer) {
    const std::uint64_t viewer_seed =
        splitmix64(spec.seed ^ (100 + static_cast<std::uint64_t>(viewer)));
    ViewportTrace trace = viewer_trace(
        spec.device.profile, viewer_seed,
        static_cast<TimeMs>(vp.duration_s) * 1000);
    BandwidthTrace bandwidth = spec.network.client_trace(
        viewer_seed, static_cast<TimeMs>(vp.duration_s) * 1000);
    StreamingSessionResult r =
        run_streaming_session(video, trace, bandwidth, scheduler, params);
    std::vector<TimeMs> replay =
        replay_session_over_http(video, r, bandwidth);
    ++out->sessions;
    qoe_sum += top_resolution > 0 ? r.mean_resolution(video) / top_resolution
                                  : 0;
    total_bytes += r.total_bytes;
    for (TimeMs t : replay) completion_times.push_back(t);
    fp.u64(static_cast<std::uint64_t>(r.total_bytes));
    fp.f64(r.mean_resolution(video));
    for (TimeMs t : replay) fp.u64(static_cast<std::uint64_t>(t));
  }
  out->qoe = out->sessions > 0 ? qoe_sum / out->sessions : 0;
  out->viewport_p99_ms = p99(std::move(completion_times));
  out->goodput_bytes_per_s =
      total_bytes /
      (static_cast<double>(vp.duration_s) *
       std::max(1, spec.workload.repeats));
  out->shed_rate = 0;
  out->cache_hit_ratio = 0;
  out->fingerprint = fp.h;
}

}  // namespace

ScenarioSpec cell_spec(const ScenarioSpec& base, const std::string& device,
                       const std::string& network,
                       const std::string& workload) {
  ScenarioSpec spec = base;
  auto d = DeviceClassSpec::named(device);
  MFHTTP_CHECK_MSG(d.has_value(), "unknown device class in matrix grid");
  spec.device = *d;
  auto n = NetworkProfileSpec::named(network);
  MFHTTP_CHECK_MSG(n.has_value(), "unknown network profile in matrix grid");
  spec.network = *n;
  auto k = workload_kind_from_name(workload);
  MFHTTP_CHECK_MSG(k.has_value(), "unknown workload kind in matrix grid");
  spec.workload.kind = *k;  // knobs (repeats, posts, ...) kept from base
  spec.name = base.name + "/" + device + "/" + network + "/" + workload;
  return spec;
}

MatrixCellResult run_matrix_cell(const ScenarioSpec& spec) {
  const auto wall_start = std::chrono::steady_clock::now();
  MatrixCellResult out;
  out.scenario = spec.name;
  out.device = spec.device.name;
  out.network = spec.network.name;
  out.workload = workload_kind_name(spec.workload.kind);
  switch (spec.workload.kind) {
    case WorkloadKind::kPaperCorpus:
    case WorkloadKind::kClientOnly:
      run_browsing_cell(spec, &out);
      break;
    case WorkloadKind::kSocialFeed:
      run_feed_cell(spec, &out);
      break;
    case WorkloadKind::kTiledVideo:
      run_video_cell(spec, &out);
      break;
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return out;
}

std::string MatrixCellResult::deterministic_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("scenario").value(scenario);
  w.key("device").value(device);
  w.key("network").value(network);
  w.key("workload").value(workload);
  w.key("sessions").value(sessions);
  w.key("qoe").value(qoe);
  w.key("viewport_p99_ms").value(static_cast<long long>(viewport_p99_ms));
  w.key("goodput_bytes_per_s").value(goodput_bytes_per_s);
  w.key("shed_rate").value(shed_rate);
  w.key("cache_hit_ratio").value(cache_hit_ratio);
  w.key("fingerprint").value(static_cast<unsigned long long>(fingerprint));
  w.end_object();
  return w.str();
}

}  // namespace mfhttp::scenario
