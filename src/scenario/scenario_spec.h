// Unified scenario description (DESIGN.md §16): one JSON document that
// composes everything a run needs —
//
//   * a device class: screen geometry + fling-physics calibration feeding
//     scroll/fling, and a per-class scrolling-velocity distribution feeding
//     gesture/synthetic (ScrollTest's finding that scrolling speed and
//     accuracy differ systematically across device classes),
//   * a network profile: client/server link rates and latencies, optional
//     bandwidth variability (net::BandwidthTrace random walk), and cellular
//     handover gaps that compile into fault::FaultPlan link outages,
//   * a workload: the paper's 25-page corpus, the client-only speculative-
//     loading baseline arm ("How Far Can Client-Only Solutions Go for
//     Mobile Browser Speed?"), an infinite-scroll social feed with
//     dynamically appended objects, or the tiled 360° video case,
//   * the existing fault / cache / overload sections, embedded verbatim
//     (fault::FaultPlan, prefetch::CacheConfig, overload::OverloadConfig
//     all parse through util/json_config — one parse path, one line/column
//     diagnostic style).
//
// Schema (every section and field optional; absent fields keep defaults):
//
//   {
//     "name": "paper_default", "seed": 1,
//     "device":   {"class": "phone_flagship", ...field overrides},
//     "network":  {"profile": "wlan", ...field overrides},
//     "workload": {"kind": "paper_corpus", "repeats": 3, ...},
//     "fault":    {...fault/fault_plan.h schema...},
//     "cache":    {...prefetch/cache_config.h schema...},
//     "overload": {...overload/config.h schema...}
//   }
//
// Device classes: phone_flagship (Nexus 6, the paper's test device),
// phone_midrange (Nexus 5), phone_lowend, tablet10. Network profiles:
// wlan (the paper's campus setup), lte, umts3g, nr5g. Workloads:
// paper_corpus, client_only, social_feed, tiled_video.
//
// `paper_default()` — phone_flagship × wlan × paper_corpus, no fault/cache/
// overload sections — reproduces the fig6/fig7 harness byte for byte when
// run through the from_scenario wiring (asserted by bench/scenario_matrix).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fault/fault_plan.h"
#include "gesture/synthetic.h"
#include "net/bandwidth_trace.h"
#include "overload/config.h"
#include "prefetch/cache_config.h"
#include "scroll/device_profile.h"

namespace mfhttp::scenario {

// Device class: screen + fling calibration + velocity distribution.
struct DeviceClassSpec {
  std::string name = "phone_flagship";
  DeviceProfile profile = DeviceProfile::nexus6();
  // Multiplies FlingParams::friction (0.015 baseline). ScrollTest-style
  // calibration: heavier friction = flings die sooner on that device class.
  double fling_friction_scale = 1.0;

  // Scrolling-velocity distribution for sampled gesture streams
  // (BrowsingGestureSource) — per-class means per ScrollTest.
  double mean_speed_px_s = 4000;
  double speed_stddev = 2000;
  double min_speed_px_s = 800;
  double max_speed_px_s = 12000;
  double p_scroll_up = 0.15;

  // Deterministic per-repeat swipe ramp for the browsing workloads: repeat r
  // swipes at base + step * r (the fig7 harness's 3000 + 2500 * session).
  double swipe_speed_base_px_s = 3000;
  double swipe_speed_step_px_s = 2500;

  // Registry lookup; nullopt for an unknown class name.
  static std::optional<DeviceClassSpec> named(std::string_view name);

  BrowsingGestureSource::Params gesture_params() const;
};

// Network profile: link shape + optional variability + handover gaps.
struct NetworkProfileSpec {
  std::string name = "wlan";
  BytesPerSec client_bandwidth = 2.0e6;
  TimeMs client_latency_ms = 8;
  BytesPerSec server_bandwidth = 12.5e6;
  TimeMs server_latency_ms = 4;
  // > 0: the client trace becomes a seeded mean-reverting random walk with
  // this stddev (clamped to [0.1, 2] x mean); 0 keeps it constant.
  BytesPerSec client_bandwidth_stddev = 0;

  // Cellular handover gaps: `count` repeated link outages of `gap_ms`,
  // `period_ms` apart, starting at `first_ms` — compiled into the
  // scenario's fault plan as kOutage windows. period 0 disables.
  TimeMs handover_period_ms = 0;
  TimeMs handover_gap_ms = 0;
  int handover_count = 0;
  TimeMs handover_first_ms = 5000;

  static std::optional<NetworkProfileSpec> named(std::string_view name);

  bool has_handover() const {
    return handover_period_ms > 0 && handover_gap_ms > 0 && handover_count > 0;
  }
  // Client-hop bandwidth trace; `horizon_ms` bounds the random-walk length.
  BandwidthTrace client_trace(std::uint64_t seed, TimeMs horizon_ms) const;
};

enum class WorkloadKind {
  kPaperCorpus,  // 25-page corpus through the MF-HTTP arm (fig7 treatment)
  kClientOnly,   // same corpus, speculative download-everything baseline
  kSocialFeed,   // infinite-scroll feed with dynamically appended objects
  kTiledVideo,   // tiled 360° video session + HTTP replay
};

const char* workload_kind_name(WorkloadKind kind);
std::optional<WorkloadKind> workload_kind_from_name(std::string_view name);

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kPaperCorpus;
  // Browsing: sessions per corpus site. Feed: independent feed sessions.
  // Video: independent streaming sessions.
  int repeats = 3;
  // Browsing workloads: restrict to the first N corpus sites (0 = all 25).
  // The CI smoke grid uses this to keep the sweep short.
  int corpus_sites = 0;
  // Scale/front-door wiring: simulated session count (0 = the target
  // engine's default).
  std::size_t sessions = 0;
  std::size_t gestures_per_session = 40;  // scale-engine sessions

  // social_feed knobs.
  int feed_posts = 60;
  int feed_flings = 4;
  // > 0: the feed reveals this many posts per fling (dynamic appends
  // stressing the incremental knapsack's prefix reuse); 0 = static feed.
  int append_posts_per_fling = 12;

  // tiled_video knobs.
  int video_segments = 30;

  static std::optional<WorkloadSpec> named(std::string_view name);
};

struct ScenarioSpec {
  std::string name = "paper_default";
  std::uint64_t seed = 1;
  DeviceClassSpec device;
  NetworkProfileSpec network;
  WorkloadSpec workload;
  // Optional embedded sections (absent = feature off / defaults).
  std::optional<fault::FaultPlan> fault;
  std::optional<prefetch::CacheConfig> cache;
  std::optional<overload::OverloadConfig> overload;

  // The paper's configuration: phone_flagship x wlan x paper_corpus.
  static ScenarioSpec paper_default();

  static std::optional<ScenarioSpec> from_json(std::string_view json,
                                               std::string* error = nullptr);
  static std::optional<ScenarioSpec> from_value(const JsonValue& doc,
                                                std::string* error = nullptr);
  static std::optional<ScenarioSpec> load(const std::string& path,
                                          std::string* error = nullptr);
  std::string to_json() const;

  // The plan the pipeline actually runs under: the "fault" section merged
  // with the network profile's handover outage windows. nullopt when both
  // are empty (the stack stays pristine — byte-identical to no plan).
  std::optional<fault::FaultPlan> compiled_fault_plan() const;
};

}  // namespace mfhttp::scenario
