#include "scenario/scenario_spec.h"

#include <algorithm>
#include <cmath>

#include "util/json.h"
#include "util/json_config.h"
#include "util/logging.h"
#include "util/rng.h"

namespace mfhttp::scenario {

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

std::optional<DeviceClassSpec> DeviceClassSpec::named(std::string_view name) {
  DeviceClassSpec d;
  if (name == "phone_flagship") {
    // The defaults: Nexus 6, the paper's test device, BrowsingGestureSource
    // baseline velocity distribution.
    d.name = "phone_flagship";
    return d;
  }
  if (name == "phone_midrange") {
    d.name = "phone_midrange";
    d.profile = DeviceProfile::nexus5();
    d.mean_speed_px_s = 3600;
    d.speed_stddev = 1800;
    d.max_speed_px_s = 11000;
    return d;
  }
  if (name == "phone_lowend") {
    d.name = "phone_lowend";
    d.profile = DeviceProfile::lowend();
    // ScrollTest-style calibration: slower, tighter fling distribution and
    // heavier effective friction on low-end hardware.
    d.fling_friction_scale = 1.15;
    d.mean_speed_px_s = 3000;
    d.speed_stddev = 1500;
    d.max_speed_px_s = 9000;
    d.swipe_speed_base_px_s = 2600;
    d.swipe_speed_step_px_s = 2000;
    return d;
  }
  if (name == "tablet10") {
    d.name = "tablet10";
    d.profile = DeviceProfile::tablet10();
    // Larger screens fling faster and scroll back up more (re-reading).
    d.fling_friction_scale = 0.9;
    d.mean_speed_px_s = 4500;
    d.speed_stddev = 2200;
    d.p_scroll_up = 0.2;
    d.swipe_speed_base_px_s = 3400;
    return d;
  }
  return std::nullopt;
}

BrowsingGestureSource::Params DeviceClassSpec::gesture_params() const {
  BrowsingGestureSource::Params p;
  p.mean_speed_px_s = mean_speed_px_s;
  p.speed_stddev = speed_stddev;
  p.min_speed_px_s = min_speed_px_s;
  p.max_speed_px_s = max_speed_px_s;
  p.p_scroll_up = p_scroll_up;
  return p;
}

std::optional<NetworkProfileSpec> NetworkProfileSpec::named(
    std::string_view name) {
  NetworkProfileSpec n;
  if (name == "wlan") {
    // The defaults: the paper's campus WLAN setup (§V).
    n.name = "wlan";
    return n;
  }
  if (name == "lte") {
    n.name = "lte";
    n.client_bandwidth = 1.5e6;
    n.client_latency_ms = 40;
    n.client_bandwidth_stddev = 0.4e6;
    n.handover_period_ms = 30000;
    n.handover_gap_ms = 400;
    n.handover_count = 2;
    return n;
  }
  if (name == "umts3g") {
    n.name = "umts3g";
    n.client_bandwidth = 0.24e6;
    n.client_latency_ms = 120;
    n.client_bandwidth_stddev = 0.08e6;
    n.handover_period_ms = 15000;
    n.handover_gap_ms = 1200;
    n.handover_count = 3;
    return n;
  }
  if (name == "nr5g") {
    n.name = "nr5g";
    n.client_bandwidth = 12.0e6;
    n.client_latency_ms = 12;
    n.client_bandwidth_stddev = 3.0e6;
    return n;
  }
  return std::nullopt;
}

BandwidthTrace NetworkProfileSpec::client_trace(std::uint64_t seed,
                                                TimeMs horizon_ms) const {
  if (client_bandwidth_stddev <= 0)
    return BandwidthTrace::constant(client_bandwidth);
  Rng rng(seed);
  const TimeMs slot_ms = 1000;
  std::size_t slots = static_cast<std::size_t>(
      std::max<TimeMs>(1, (horizon_ms + slot_ms - 1) / slot_ms));
  return BandwidthTrace::random_walk(
      rng, client_bandwidth, client_bandwidth_stddev, 0.1 * client_bandwidth,
      2.0 * client_bandwidth, slots, slot_ms);
}

const char* workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kPaperCorpus: return "paper_corpus";
    case WorkloadKind::kClientOnly: return "client_only";
    case WorkloadKind::kSocialFeed: return "social_feed";
    case WorkloadKind::kTiledVideo: return "tiled_video";
  }
  return "?";
}

std::optional<WorkloadKind> workload_kind_from_name(std::string_view name) {
  if (name == "paper_corpus") return WorkloadKind::kPaperCorpus;
  if (name == "client_only") return WorkloadKind::kClientOnly;
  if (name == "social_feed") return WorkloadKind::kSocialFeed;
  if (name == "tiled_video") return WorkloadKind::kTiledVideo;
  return std::nullopt;
}

std::optional<WorkloadSpec> WorkloadSpec::named(std::string_view name) {
  std::optional<WorkloadKind> kind = workload_kind_from_name(name);
  if (!kind.has_value()) return std::nullopt;
  WorkloadSpec w;
  w.kind = *kind;
  return w;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

// Resolves a registry base ("class"/"profile"/"kind") then layers field
// overrides on top. `lookup` maps the registry name to a base value.
template <typename Spec, typename Lookup>
bool resolve_base(jsoncfg::Fields& f, const char* key, const char* what,
                  Lookup lookup, Spec* out) {
  const JsonValue* name = f.member(key);
  if (name == nullptr) return f.ok();
  if (!name->is_string())
    return f.fail(std::string("'") + key + "' must be a string");
  std::optional<Spec> base = lookup(name->string_value);
  if (!base.has_value())
    return f.fail(std::string("unknown ") + what + " '" + name->string_value +
                  "'");
  *out = *base;
  return true;
}

bool parse_device(const JsonValue& node, DeviceClassSpec* d,
                  std::string* error) {
  jsoncfg::Fields f(node, "device", error);
  resolve_base(f, "class", "device class",
               [](const std::string& n) { return DeviceClassSpec::named(n); },
               d);
  f.number("screen_w_px", 1, &d->profile.screen_w_px);
  f.number("screen_h_px", 1, &d->profile.screen_h_px);
  f.number("ppi", 1, &d->profile.ppi);
  f.number("fling_friction_scale", 1e-6, &d->fling_friction_scale);
  f.number("mean_speed_px_s", 1, &d->mean_speed_px_s);
  f.number("speed_stddev", 0, &d->speed_stddev);
  f.number("min_speed_px_s", 0, &d->min_speed_px_s);
  f.number("max_speed_px_s", 1, &d->max_speed_px_s);
  f.rate("p_scroll_up", &d->p_scroll_up);
  f.number("swipe_speed_base_px_s", 1, &d->swipe_speed_base_px_s);
  f.number("swipe_speed_step_px_s", 0, &d->swipe_speed_step_px_s);
  if (f.ok() && d->min_speed_px_s > d->max_speed_px_s)
    f.fail("'min_speed_px_s' must not exceed 'max_speed_px_s'");
  return f.finish();
}

bool parse_network(const JsonValue& node, NetworkProfileSpec* n,
                   std::string* error) {
  jsoncfg::Fields f(node, "network", error);
  resolve_base(
      f, "profile", "network profile",
      [](const std::string& s) { return NetworkProfileSpec::named(s); }, n);
  f.number("client_bandwidth", 1, &n->client_bandwidth);
  f.time_ms("client_latency_ms", 0, &n->client_latency_ms);
  f.number("server_bandwidth", 1, &n->server_bandwidth);
  f.time_ms("server_latency_ms", 0, &n->server_latency_ms);
  f.number("client_bandwidth_stddev", 0, &n->client_bandwidth_stddev);
  f.time_ms("handover_period_ms", 0, &n->handover_period_ms);
  f.time_ms("handover_gap_ms", 0, &n->handover_gap_ms);
  f.integer("handover_count", 0, &n->handover_count);
  f.time_ms("handover_first_ms", 0, &n->handover_first_ms);
  if (f.ok() && n->handover_count > 0 && n->handover_gap_ms > 0 &&
      n->handover_period_ms > 0 && n->handover_gap_ms >= n->handover_period_ms)
    f.fail("'handover_gap_ms' must be shorter than 'handover_period_ms'");
  return f.finish();
}

bool parse_workload(const JsonValue& node, WorkloadSpec* w,
                    std::string* error) {
  jsoncfg::Fields f(node, "workload", error);
  if (const JsonValue* kind = f.member("kind")) {
    if (!kind->is_string()) {
      f.fail("'kind' must be a string");
    } else if (auto k = workload_kind_from_name(kind->string_value)) {
      w->kind = *k;
    } else {
      f.fail("unknown workload kind '" + kind->string_value + "'");
    }
  }
  f.integer("repeats", 1, &w->repeats);
  f.integer("corpus_sites", 0, &w->corpus_sites);
  f.size("sessions", &w->sessions);
  f.size("gestures_per_session", &w->gestures_per_session);
  f.integer("feed_posts", 1, &w->feed_posts);
  f.integer("feed_flings", 0, &w->feed_flings);
  f.integer("append_posts_per_fling", 0, &w->append_posts_per_fling);
  f.integer("video_segments", 1, &w->video_segments);
  return f.finish();
}

// Parses an embedded section through its owning loader, wrapping its
// diagnostic in this document's section prefix.
template <typename Section, typename Parse>
bool parse_section(jsoncfg::Fields& top, const char* key, Parse parse,
                   std::optional<Section>* out, std::string* error) {
  const JsonValue* node = top.object(key);
  if (node == nullptr) return top.ok();
  std::string why;
  std::optional<Section> section = parse(*node, &why);
  if (!section.has_value())
    return top.fail(std::string("in '") + key + "': " + why);
  *out = std::move(*section);
  (void)error;
  return true;
}

}  // namespace

std::optional<ScenarioSpec> ScenarioSpec::from_value(const JsonValue& doc,
                                                     std::string* error) {
  ScenarioSpec spec;
  jsoncfg::Fields top(doc, "", error);
  top.string("name", &spec.name);
  top.seed("seed", &spec.seed);
  if (const JsonValue* d = top.object("device"))
    if (!parse_device(*d, &spec.device, error)) return std::nullopt;
  if (const JsonValue* n = top.object("network"))
    if (!parse_network(*n, &spec.network, error)) return std::nullopt;
  if (const JsonValue* w = top.object("workload"))
    if (!parse_workload(*w, &spec.workload, error)) return std::nullopt;
  parse_section<fault::FaultPlan>(
      top, "fault",
      [](const JsonValue& v, std::string* e) {
        return fault::FaultPlan::from_value(v, e);
      },
      &spec.fault, error);
  parse_section<prefetch::CacheConfig>(
      top, "cache",
      [](const JsonValue& v, std::string* e) {
        return prefetch::CacheConfig::from_value(v, e);
      },
      &spec.cache, error);
  parse_section<overload::OverloadConfig>(
      top, "overload",
      [](const JsonValue& v, std::string* e) {
        return overload::OverloadConfig::from_value(v, e);
      },
      &spec.overload, error);
  if (!top.finish()) return std::nullopt;
  return spec;
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(std::string_view json,
                                                    std::string* error) {
  std::optional<JsonValue> doc = jsoncfg::parse_object(json, error);
  if (!doc.has_value()) return std::nullopt;
  return from_value(*doc, error);
}

std::optional<ScenarioSpec> ScenarioSpec::load(const std::string& path,
                                               std::string* error) {
  std::optional<JsonValue> doc = jsoncfg::load_object(path, "scenario", error);
  if (!doc.has_value()) return std::nullopt;
  std::string why;
  auto spec = from_value(*doc, &why);
  if (!spec.has_value()) {
    if (error != nullptr) *error = why;
    MFHTTP_ERROR << "scenario '" << path << "': " << why;
  }
  return spec;
}

std::string ScenarioSpec::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(name);
  w.key("seed").value(static_cast<unsigned long long>(seed));

  w.key("device").begin_object();
  w.key("class").value(device.name);
  w.key("screen_w_px").value(device.profile.screen_w_px);
  w.key("screen_h_px").value(device.profile.screen_h_px);
  w.key("ppi").value(device.profile.ppi);
  w.key("fling_friction_scale").value(device.fling_friction_scale);
  w.key("mean_speed_px_s").value(device.mean_speed_px_s);
  w.key("speed_stddev").value(device.speed_stddev);
  w.key("min_speed_px_s").value(device.min_speed_px_s);
  w.key("max_speed_px_s").value(device.max_speed_px_s);
  w.key("p_scroll_up").value(device.p_scroll_up);
  w.key("swipe_speed_base_px_s").value(device.swipe_speed_base_px_s);
  w.key("swipe_speed_step_px_s").value(device.swipe_speed_step_px_s);
  w.end_object();

  w.key("network").begin_object();
  w.key("profile").value(network.name);
  w.key("client_bandwidth").value(network.client_bandwidth);
  w.key("client_latency_ms")
      .value(static_cast<long long>(network.client_latency_ms));
  w.key("server_bandwidth").value(network.server_bandwidth);
  w.key("server_latency_ms")
      .value(static_cast<long long>(network.server_latency_ms));
  w.key("client_bandwidth_stddev").value(network.client_bandwidth_stddev);
  w.key("handover_period_ms")
      .value(static_cast<long long>(network.handover_period_ms));
  w.key("handover_gap_ms")
      .value(static_cast<long long>(network.handover_gap_ms));
  w.key("handover_count").value(network.handover_count);
  w.key("handover_first_ms")
      .value(static_cast<long long>(network.handover_first_ms));
  w.end_object();

  w.key("workload").begin_object();
  w.key("kind").value(workload_kind_name(workload.kind));
  w.key("repeats").value(workload.repeats);
  w.key("corpus_sites").value(workload.corpus_sites);
  w.key("sessions").value(workload.sessions);
  w.key("gestures_per_session").value(workload.gestures_per_session);
  w.key("feed_posts").value(workload.feed_posts);
  w.key("feed_flings").value(workload.feed_flings);
  w.key("append_posts_per_fling").value(workload.append_posts_per_fling);
  w.key("video_segments").value(workload.video_segments);
  w.end_object();

  if (fault.has_value()) w.key("fault").raw(fault->to_json());
  if (cache.has_value()) w.key("cache").raw(cache->to_json());
  if (overload.has_value()) w.key("overload").raw(overload->to_json());
  w.end_object();
  return w.str();
}

ScenarioSpec ScenarioSpec::paper_default() {
  return ScenarioSpec{};  // phone_flagship x wlan x paper_corpus, seed 1
}

std::optional<fault::FaultPlan> ScenarioSpec::compiled_fault_plan() const {
  std::optional<fault::FaultPlan> plan = fault;
  if (network.has_handover()) {
    if (!plan.has_value()) {
      plan.emplace();
      plan->seed = seed;
      plan->name = name + "/handover";
    }
    fault::LinkFaultWindow outage;
    outage.kind = fault::LinkFaultWindow::Kind::kOutage;
    outage.at_ms = network.handover_first_ms;
    outage.duration_ms = network.handover_gap_ms;
    outage.repeat = network.handover_count;
    outage.period_ms = network.handover_period_ms;
    plan->link.push_back(outage);
  }
  return plan;
}

}  // namespace mfhttp::scenario
