#include "scenario/wiring.h"

#include <algorithm>

#include "http/fetch_pipeline.h"
#include "util/rng.h"
#include "sim/frontdoor_load.h"
#include "sim/session_world.h"

namespace mfhttp::scenario {

namespace {

// Trace horizon for random-walk network profiles: long enough to cover any
// session the runners schedule (browsing sessions run 60 s).
constexpr TimeMs kTraceHorizonMs = 120'000;

// Derives the client-hop trace for one session. Constant profiles return
// the same trace regardless of `session_seed` (byte-identity with the
// hand-wired constant-bandwidth configs); variable profiles fold the
// session seed in so repeats see different — but reproducible — weather.
std::optional<BandwidthTrace> session_trace(const ScenarioSpec& spec,
                                            std::uint64_t session_seed) {
  if (spec.network.client_bandwidth_stddev <= 0) return std::nullopt;
  return spec.network.client_trace(splitmix64(spec.seed ^ session_seed),
                                   kTraceHorizonMs);
}

}  // namespace

BrowsingSessionConfig browsing_config(const ScenarioSpec& spec,
                                      const WebPage& page, int repeat,
                                      const fault::FaultPlan* plan) {
  BrowsingSessionConfig cfg;
  cfg.device = spec.device.profile;
  cfg.fling_friction_scale = spec.device.fling_friction_scale;
  cfg.enable_mfhttp = spec.workload.kind != WorkloadKind::kClientOnly;

  cfg.client_bandwidth = spec.network.client_bandwidth;
  cfg.client_latency_ms = spec.network.client_latency_ms;
  cfg.server_bandwidth = spec.network.server_bandwidth;
  cfg.server_latency_ms = spec.network.server_latency_ms;

  // The historical fig6/fig7 session seed was
  //   1000 + site.size() + session * 7919
  // — written as 999 + spec.seed + ... so the paper-default spec (seed 1)
  // reproduces it exactly and other spec seeds decorrelate every session.
  cfg.seed = 999 + spec.seed + static_cast<std::uint64_t>(page.site.size()) +
             static_cast<std::uint64_t>(repeat) * 7919;
  cfg.swipe_speed_px_s = spec.device.swipe_speed_base_px_s +
                         spec.device.swipe_speed_step_px_s * repeat;
  cfg.fill_sample_ms = 0;  // matrix cells score analytically, not by timeline

  cfg.client_bandwidth_trace = session_trace(spec, cfg.seed);
  cfg.fault_plan = plan;
  if (spec.cache.has_value()) {
    cfg.enable_cache = true;
    cfg.cache = spec.cache->cache;
    cfg.enable_prefetch = spec.cache->prefetch_enabled;
  }
  if (spec.overload.has_value()) cfg.admission = spec.overload->admission;
  return cfg;
}

FeedSpec feed_spec(const ScenarioSpec& spec) {
  FeedSpec fs;
  fs.post_count = spec.workload.feed_posts;
  return fs;
}

FeedSessionConfig feed_config(const ScenarioSpec& spec, int repeat,
                              const fault::FaultPlan* plan) {
  FeedSessionConfig cfg;
  cfg.device = spec.device.profile;
  cfg.fling_friction_scale = spec.device.fling_friction_scale;

  cfg.client_bandwidth = spec.network.client_bandwidth;
  cfg.client_latency_ms = spec.network.client_latency_ms;
  cfg.server_bandwidth = spec.network.server_bandwidth;
  cfg.server_latency_ms = spec.network.server_latency_ms;

  cfg.seed = spec.seed + static_cast<std::uint64_t>(repeat) * 7919;
  cfg.fling_count = spec.workload.feed_flings;
  // Flings ramp like the browsing swipes: each repeat a bit hotter.
  cfg.fling_speed_px_s = 2.5 * (spec.device.swipe_speed_base_px_s +
                                spec.device.swipe_speed_step_px_s * repeat);
  cfg.fling_speed_px_s =
      std::min(cfg.fling_speed_px_s, spec.device.max_speed_px_s);

  if (spec.workload.append_posts_per_fling > 0) {
    // Dynamic feed: reserve one append batch per fling; the session opens
    // with whatever prefix remains (at least a couple of screens).
    int reserved = spec.workload.append_posts_per_fling *
                   spec.workload.feed_flings;
    cfg.initial_posts = std::max(8, spec.workload.feed_posts - reserved);
    cfg.append_posts_per_fling = spec.workload.append_posts_per_fling;
  }

  cfg.client_bandwidth_trace = session_trace(spec, cfg.seed);
  cfg.fault_plan = plan;
  if (spec.cache.has_value()) {
    cfg.enable_cache = true;
    cfg.cache = spec.cache->cache;
  }
  if (spec.overload.has_value()) cfg.admission = spec.overload->admission;
  return cfg;
}

}  // namespace mfhttp::scenario

namespace mfhttp {

FetchPipelineBuilder FetchPipelineBuilder::from_scenario(
    Simulator& sim, HttpFetcher* origin, const scenario::ScenarioSpec& spec) {
  FetchPipelineBuilder builder(sim, origin);

  Link::Params client;
  client.bandwidth =
      spec.network.client_trace(spec.seed, /*horizon_ms=*/120'000);
  client.latency_ms = spec.network.client_latency_ms;
  builder.client_link(client);

  // with_faults copies the plan, so the temporary's address is fine; no
  // plan at all (not even an empty one) keeps the stack pristine.
  if (std::optional<fault::FaultPlan> plan = spec.compiled_fault_plan())
    builder.with_faults(&*plan);
  if (spec.cache.has_value()) builder.with_cache(spec.cache->cache);
  if (spec.overload.has_value())
    builder.with_admission(spec.overload->admission);
  return builder;
}

}  // namespace mfhttp

namespace mfhttp::sim {

ScaleSessionConfig ScaleSessionConfig::from_scenario(
    const scenario::ScenarioSpec& spec) {
  ScaleSessionConfig cfg;
  cfg.seed = spec.seed;
  if (spec.workload.sessions > 0) cfg.sessions = spec.workload.sessions;
  cfg.gestures_per_session = spec.workload.gestures_per_session;
  cfg.mean_bandwidth_mbps = spec.network.client_bandwidth * 8.0 / 1e6;
  cfg.device = spec.device.profile;
  cfg.fling_friction_scale = spec.device.fling_friction_scale;
  cfg.gestures = spec.device.gesture_params();
  return cfg;
}

FrontDoorLoadConfig FrontDoorLoadConfig::from_scenario(
    const scenario::ScenarioSpec& spec) {
  FrontDoorLoadConfig cfg;
  cfg.seed = spec.seed;
  if (spec.workload.sessions > 0) cfg.sessions = spec.workload.sessions;
  cfg.touches_per_session = spec.workload.gestures_per_session > 0
                                ? std::min<std::size_t>(
                                      spec.workload.gestures_per_session, 16)
                                : cfg.touches_per_session;
  return cfg;
}

}  // namespace mfhttp::sim
