// Ordered byte-stream transport over a simulated Link — the TCP analogue the
// wire-level HTTP stack runs on.
//
// A BytePipe is unidirectional: bytes written at one end arrive, in order
// and rate-limited by the underlying Link, at the other end's on_data
// callback. A DuplexChannel bundles two pipes into a socket-like pair.
//
// Each pipe owns a FIFO of unsent payload; the Link (which must also be
// FIFO) meters delivery. Closing the pipe delivers any queued bytes first,
// then fires on_close — the reader sees exactly TCP's orderly-shutdown
// semantics (data, then EOF).
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "net/link.h"
#include "sim/simulator.h"

namespace mfhttp {

class BytePipe {
 public:
  using DataFn = std::function<void(std::string_view)>;
  using CloseFn = std::function<void()>;

  // The link must use FIFO sharing: byte order is the contract.
  BytePipe(Simulator& sim, Link* link);

  void set_on_data(DataFn fn) { on_data_ = std::move(fn); }
  void set_on_close(CloseFn fn) { on_close_ = std::move(fn); }

  // Queue bytes for transmission. No-op after close().
  void send(std::string data);

  // Orderly shutdown: queued bytes still arrive, then on_close fires.
  void close();

  bool closed() const { return close_requested_; }
  Bytes bytes_sent() const { return bytes_sent_; }
  Bytes bytes_delivered() const { return bytes_delivered_; }

 private:
  void deliver(Bytes count, bool transfer_complete);
  void maybe_fire_close();

  Simulator& sim_;
  Link* link_;
  DataFn on_data_;
  CloseFn on_close_;
  std::deque<std::string> queue_;  // sent-but-undelivered payload, in order
  std::size_t queue_head_offset_ = 0;
  std::size_t inflight_transfers_ = 0;
  bool close_requested_ = false;
  bool close_fired_ = false;
  Bytes bytes_sent_ = 0;
  Bytes bytes_delivered_ = 0;
};

// A socket-like bidirectional channel: two pipes over two links.
class DuplexChannel {
 public:
  DuplexChannel(Simulator& sim, Link* a_to_b, Link* b_to_a)
      : a_to_b_(sim, a_to_b), b_to_a_(sim, b_to_a) {}

  // End A writes into a_to_b and reads from b_to_a; end B the reverse.
  BytePipe& a_to_b() { return a_to_b_; }
  BytePipe& b_to_a() { return b_to_a_; }

 private:
  BytePipe a_to_b_;
  BytePipe b_to_a_;
};

}  // namespace mfhttp
