// Rate-limited byte pipe on the discrete-event simulator — the simulated
// WLAN/cellular hop between device, middleware proxy, and origin servers.
//
// Transfers submitted to a link share its BandwidthTrace capacity under one
// of two disciplines:
//   * kFifo      — the highest-priority transfer gets all capacity, ties
//                  broken by submission order (priority 0 for everything
//                  reduces to the in-order scheduling Eq. 13 assumes),
//   * kFairShare — active transfers split each quantum evenly (what N
//                  parallel TCP connections through mitmproxy approximate).
//
// Capacity is dispensed in fixed quanta (default 5 ms) while any transfer is
// active; the link is fully idle (no events) otherwise. Each transfer gets
// streaming progress callbacks, so HTTP response bodies arrive incrementally
// just as they would on a socket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/bandwidth_trace.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace mfhttp {

class Link {
 public:
  enum class Sharing { kFifo, kFairShare };

  struct Params {
    BandwidthTrace bandwidth = BandwidthTrace::constant(1e6);
    TimeMs latency_ms = 5;   // one-way propagation delay before first byte
    TimeMs quantum_ms = 5;   // capacity dispensing granularity
    Sharing sharing = Sharing::kFifo;
    bool record_consumption = false;  // keep a per-quantum throughput log
  };

  using TransferId = std::uint64_t;
  static constexpr TransferId kInvalidTransfer = 0;

  // delivered_now: bytes newly delivered; complete: true on the final call.
  using ProgressFn = std::function<void(Bytes delivered_now, bool complete)>;

  Link(Simulator& sim, Params params);
  virtual ~Link();

  // Begin transferring `size` bytes. Progress callbacks start after the
  // link's latency. A zero-size transfer completes after latency alone.
  // Higher `priority` preempts lower in kFifo mode (bytes in flight are not
  // clawed back; preemption applies from the next quantum).
  //
  // Virtual so fault decorators (fault/faulty_link.h) can interpose without
  // touching this happy path. Progress callbacks may re-enter the link:
  // submitting new transfers or cancelling siblings from inside a ProgressFn
  // is safe, and a transfer cancelled that way receives no further callbacks
  // (including deliveries already earned in the same quantum).
  virtual TransferId submit(Bytes size, ProgressFn on_progress, int priority = 0);

  // Abort a transfer; no further callbacks. False if unknown/finished.
  virtual bool cancel(TransferId id);

  std::size_t active_transfers() const { return transfers_.size(); }
  Bytes bytes_delivered_total() const { return delivered_total_; }

  // Per-quantum delivery log (time_ms at quantum start, bytes delivered in
  // that quantum); empty unless record_consumption was set.
  const std::vector<std::pair<TimeMs, Bytes>>& consumption_log() const {
    return consumption_log_;
  }

  const BandwidthTrace& bandwidth() const { return params_.bandwidth; }

 private:
  struct Transfer {
    Bytes remaining;
    ProgressFn on_progress;
    std::uint64_t order;  // FIFO position within a priority class
    int priority = 0;     // higher is served first (kFifo)
    bool started = false; // latency elapsed, eligible for bandwidth
  };

  void arm_tick();
  void tick();
  static void note_transfer_completed();

  Simulator& sim_;
  Params params_;
  TransferId next_id_ = 1;
  std::uint64_t next_order_ = 1;
  std::map<TransferId, Transfer> transfers_;
  Simulator::EventId tick_event_ = Simulator::kInvalidEvent;
  // Fractional bytes carried between quanta so low rates are not rounded away.
  double carry_bytes_ = 0;
  Bytes delivered_total_ = 0;
  std::vector<std::pair<TimeMs, Bytes>> consumption_log_;
};

}  // namespace mfhttp
