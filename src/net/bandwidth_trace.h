// Time-varying available bandwidth B(t) — the quantity the flow controller's
// capacity constraints (Eq. 13) and the simulated link both consume.
//
// Stored as piecewise-constant bytes/s over fixed-width slots; the last slot
// extends to infinity, so a constant trace is a single slot.
#pragma once

#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace mfhttp {

class BandwidthTrace {
 public:
  // Constant rate forever.
  static BandwidthTrace constant(BytesPerSec rate);

  // Explicit per-slot rates.
  static BandwidthTrace from_slots(std::vector<BytesPerSec> rates,
                                   TimeMs slot_ms = 1000);

  // Mean-reverting random walk, clamped to [min, max]; `slots` slots of
  // `slot_ms` each. Used for the Fig. 9/10 variable-bandwidth scenarios.
  static BandwidthTrace random_walk(Rng& rng, BytesPerSec mean, BytesPerSec stddev,
                                    BytesPerSec min, BytesPerSec max,
                                    std::size_t slots, TimeMs slot_ms = 1000);

  // Instantaneous rate at time t (bytes/s).
  BytesPerSec rate_at(TimeMs t_ms) const;

  // Integral of B over [t0, t1), in bytes (exact for the piecewise-constant
  // representation).
  double bytes_between(TimeMs t0_ms, TimeMs t1_ms) const;

  // Cumulative capacity W(t) = integral of B over [0, t) — the knapsack
  // capacity of Eq. 13/14.
  double cumulative_bytes(TimeMs t_ms) const { return bytes_between(0, t_ms); }

  TimeMs slot_ms() const { return slot_ms_; }
  std::size_t slot_count() const { return rates_.size(); }
  const std::vector<BytesPerSec>& slots() const { return rates_; }

 private:
  BandwidthTrace(std::vector<BytesPerSec> rates, TimeMs slot_ms);

  std::vector<BytesPerSec> rates_;
  TimeMs slot_ms_;
};

}  // namespace mfhttp
