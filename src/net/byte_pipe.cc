#include "net/byte_pipe.h"

#include "util/check.h"

namespace mfhttp {

BytePipe::BytePipe(Simulator& sim, Link* link) : sim_(sim), link_(link) {
  MFHTTP_CHECK(link_ != nullptr);
}

void BytePipe::send(std::string data) {
  if (close_requested_ || data.empty()) return;
  auto size = static_cast<Bytes>(data.size());
  bytes_sent_ += size;
  queue_.push_back(std::move(data));
  ++inflight_transfers_;
  link_->submit(size, [this](Bytes chunk, bool complete) {
    deliver(chunk, complete);
  });
}

void BytePipe::deliver(Bytes count, bool transfer_complete) {
  // Slice `count` bytes off the head of the queue and hand them to the
  // reader. The Link is FIFO, so transfer k's chunks arrive before transfer
  // k+1's; queue order matches delivery order.
  std::string out;
  out.reserve(static_cast<std::size_t>(count));
  Bytes remaining = count;
  while (remaining > 0) {
    MFHTTP_CHECK_MSG(!queue_.empty(), "link delivered more bytes than sent");
    std::string& head = queue_.front();
    std::size_t available = head.size() - queue_head_offset_;
    auto take = static_cast<std::size_t>(
        std::min<Bytes>(remaining, static_cast<Bytes>(available)));
    out.append(head, queue_head_offset_, take);
    queue_head_offset_ += take;
    remaining -= static_cast<Bytes>(take);
    if (queue_head_offset_ == head.size()) {
      queue_.pop_front();
      queue_head_offset_ = 0;
    }
  }
  bytes_delivered_ += count;
  if (transfer_complete) {
    MFHTTP_CHECK(inflight_transfers_ > 0);
    --inflight_transfers_;
  }
  if (on_data_ && !out.empty()) on_data_(out);
  maybe_fire_close();
}

void BytePipe::close() {
  if (close_requested_) return;
  close_requested_ = true;
  // Fire asynchronously even when nothing is queued, so a reader never sees
  // EOF re-entrantly inside its own send() call.
  sim_.schedule_after(0, [this] { maybe_fire_close(); });
}

void BytePipe::maybe_fire_close() {
  if (!close_requested_ || close_fired_) return;
  if (inflight_transfers_ > 0) return;  // queued data still in flight
  close_fired_ = true;
  if (on_close_) on_close_();
}

}  // namespace mfhttp
