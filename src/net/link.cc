#include "net/link.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

namespace {

// In-flight transfers across every link (queue-depth gauge).
obs::Gauge& active_transfers_gauge() {
  static obs::Gauge& g = obs::metrics().gauge("net.link.active_transfers");
  return g;
}

}  // namespace

Link::Link(Simulator& sim, Params params) : sim_(sim), params_(std::move(params)) {
  MFHTTP_CHECK(params_.quantum_ms > 0);
  MFHTTP_CHECK(params_.latency_ms >= 0);
}

Link::~Link() {
  // Transfers abandoned with the link leave the in-flight gauge otherwise.
  active_transfers_gauge().sub(static_cast<std::int64_t>(transfers_.size()));
}

Link::TransferId Link::submit(Bytes size, ProgressFn on_progress, int priority) {
  MFHTTP_CHECK(size >= 0);
  MFHTTP_CHECK(on_progress != nullptr);
  TransferId id = next_id_++;
  static obs::Counter& submitted = obs::metrics().counter("net.link.transfers_total");
  submitted.inc();
  active_transfers_gauge().add(1);
  transfers_[id] =
      Transfer{size, std::move(on_progress), next_order_++, priority, false};
  sim_.schedule_after(params_.latency_ms, [this, id] {
    auto it = transfers_.find(id);
    if (it == transfers_.end()) return;  // cancelled during latency
    if (it->second.remaining == 0) {
      ProgressFn cb = std::move(it->second.on_progress);
      transfers_.erase(it);
      note_transfer_completed();
      cb(0, true);
      return;
    }
    it->second.started = true;
    arm_tick();
  });
  return id;
}

bool Link::cancel(TransferId id) {
  if (transfers_.erase(id) == 0) return false;
  static obs::Counter& cancelled =
      obs::metrics().counter("net.link.transfers_cancelled_total");
  cancelled.inc();
  active_transfers_gauge().sub(1);
  return true;
}

void Link::note_transfer_completed() {
  static obs::Counter& completed =
      obs::metrics().counter("net.link.transfers_completed_total");
  completed.inc();
  active_transfers_gauge().sub(1);
}

void Link::arm_tick() {
  if (tick_event_ != Simulator::kInvalidEvent && sim_.pending(tick_event_)) return;
  tick_event_ = sim_.schedule_after(params_.quantum_ms, [this] { tick(); });
}

void Link::tick() {
  tick_event_ = Simulator::kInvalidEvent;
  const TimeMs now = sim_.now();
  const TimeMs quantum_start = now - params_.quantum_ms;
  double budget =
      params_.bandwidth.bytes_between(quantum_start, now) + carry_bytes_;

  // Started transfers: priority first (kFifo serving order), then FIFO.
  std::vector<std::pair<TransferId, Transfer*>> active;
  for (auto& [id, t] : transfers_)
    if (t.started) active.push_back({id, &t});
  std::sort(active.begin(), active.end(), [](auto& a, auto& b) {
    if (a.second->priority != b.second->priority)
      return a.second->priority > b.second->priority;
    return a.second->order < b.second->order;
  });

  struct Delivery {
    TransferId id;
    ProgressFn fn;  // owned copy: callbacks may mutate the transfer table
    Bytes bytes;
    bool complete;
  };
  std::vector<Delivery> deliveries;
  std::vector<TransferId> completed;

  auto give = [&](TransferId id, Transfer& t, double amount) {
    auto grant = static_cast<Bytes>(amount);
    grant = std::min(grant, t.remaining);
    if (grant <= 0) return 0.0;
    t.remaining -= grant;
    delivered_total_ += grant;
    if (t.remaining == 0) {
      deliveries.push_back({id, std::move(t.on_progress), grant, true});
      completed.push_back(id);
    } else {
      deliveries.push_back({id, t.on_progress, grant, false});
    }
    return static_cast<double>(grant);
  };

  Bytes quantum_delivered = 0;
  if (params_.sharing == Sharing::kFifo) {
    for (auto& [id, t] : active) {
      if (budget < 1) break;
      double used = give(id, *t, budget);
      budget -= used;
      quantum_delivered += static_cast<Bytes>(used);
    }
  } else {
    // Water-filling fair share: repeatedly split remaining budget among
    // transfers that still want bytes.
    std::vector<std::pair<TransferId, Transfer*>> wanting = active;
    while (budget >= 1 && !wanting.empty()) {
      double share = budget / static_cast<double>(wanting.size());
      if (share < 1) share = 1;  // avoid infinite splitting
      double spent = 0;
      std::vector<std::pair<TransferId, Transfer*>> still;
      for (auto& [id, t] : wanting) {
        if (budget - spent < 1) break;
        double used = give(id, *t, std::min(share, budget - spent));
        spent += used;
        if (t->remaining > 0) still.push_back({id, t});
      }
      budget -= spent;
      quantum_delivered += static_cast<Bytes>(spent);
      if (spent < 1) break;  // nobody could take more
      wanting = std::move(still);
    }
  }
  // Carry only the sub-byte fraction: whole bytes left over mean the link
  // genuinely idled for part of the quantum, and idle capacity is not banked.
  carry_bytes_ = budget - static_cast<double>(static_cast<Bytes>(budget));

  for (TransferId id : completed) {
    transfers_.erase(id);
    note_transfer_completed();
  }

  if (quantum_delivered > 0) {
    static obs::Counter& delivered =
        obs::metrics().counter("net.link.bytes_delivered_total");
    delivered.inc(static_cast<std::uint64_t>(quantum_delivered));
  }
  if (params_.record_consumption && quantum_delivered > 0)
    consumption_log_.emplace_back(quantum_start, quantum_delivered);

  // Fire callbacks after internal state is consistent (callbacks may submit
  // or cancel transfers on this link). A callback cancelling a *sibling*
  // transfer must silence the sibling's deliveries queued in this same
  // quantum: a transfer that is in neither transfers_ nor this quantum's
  // completed set was erased by cancel() mid-dispatch. Transfers that
  // completed above keep all their deliveries (cancel() on them is a no-op
  // reporting false), including non-final chunks from fair-share rounds.
  const std::unordered_set<TransferId> completed_set(completed.begin(),
                                                     completed.end());
  for (Delivery& d : deliveries) {
    if (!transfers_.contains(d.id) && !completed_set.contains(d.id)) continue;
    d.fn(d.bytes, d.complete);
  }

  bool any_started = std::any_of(transfers_.begin(), transfers_.end(),
                                 [](auto& kv) { return kv.second.started; });
  if (any_started)
    arm_tick();
  else
    carry_bytes_ = 0;  // idle link does not bank capacity
}

}  // namespace mfhttp
