#include "net/bandwidth_trace.h"

#include <algorithm>

#include "util/check.h"

namespace mfhttp {

BandwidthTrace::BandwidthTrace(std::vector<BytesPerSec> rates, TimeMs slot_ms)
    : rates_(std::move(rates)), slot_ms_(slot_ms) {
  MFHTTP_CHECK(!rates_.empty());
  MFHTTP_CHECK(slot_ms_ > 0);
  for (BytesPerSec r : rates_) MFHTTP_CHECK_MSG(r >= 0, "negative bandwidth");
}

BandwidthTrace BandwidthTrace::constant(BytesPerSec rate) {
  return BandwidthTrace({rate}, 1000);
}

BandwidthTrace BandwidthTrace::from_slots(std::vector<BytesPerSec> rates,
                                          TimeMs slot_ms) {
  return BandwidthTrace(std::move(rates), slot_ms);
}

BandwidthTrace BandwidthTrace::random_walk(Rng& rng, BytesPerSec mean,
                                           BytesPerSec stddev, BytesPerSec min,
                                           BytesPerSec max, std::size_t slots,
                                           TimeMs slot_ms) {
  MFHTTP_CHECK(slots > 0);
  MFHTTP_CHECK(min >= 0 && min <= max);
  std::vector<BytesPerSec> rates;
  rates.reserve(slots);
  double cur = std::clamp(mean, min, max);
  for (std::size_t i = 0; i < slots; ++i) {
    // Mean reversion keeps the walk near `mean`; the innovation term makes
    // slot-to-slot variation comparable to real WLAN traces.
    cur += 0.3 * (mean - cur) + rng.normal(0, stddev);
    cur = std::clamp(cur, min, max);
    rates.push_back(cur);
  }
  return BandwidthTrace(std::move(rates), slot_ms);
}

BytesPerSec BandwidthTrace::rate_at(TimeMs t_ms) const {
  if (t_ms < 0) return rates_.front();
  auto slot = static_cast<std::size_t>(t_ms / slot_ms_);
  return rates_[std::min(slot, rates_.size() - 1)];
}

double BandwidthTrace::bytes_between(TimeMs t0_ms, TimeMs t1_ms) const {
  MFHTTP_CHECK(t0_ms <= t1_ms);
  if (t0_ms == t1_ms) return 0;
  double total = 0;
  TimeMs t = t0_ms;
  while (t < t1_ms) {
    auto slot = static_cast<std::size_t>(t / slot_ms_);
    TimeMs slot_end = (slot >= rates_.size() - 1)
                          ? t1_ms  // final slot extends forever
                          : std::min<TimeMs>((static_cast<TimeMs>(slot) + 1) * slot_ms_,
                                             t1_ms);
    BytesPerSec rate = rates_[std::min(slot, rates_.size() - 1)];
    total += rate * static_cast<double>(slot_end - t) / 1000.0;
    t = slot_end;
  }
  return total;
}

}  // namespace mfhttp
