// Loopback HTTP/1.1 origin server on the aio event loop (DESIGN.md §15).
//
// One HttpServer = one TcpListener plus a set of keep-alive connections,
// each pairing a TcpConn with an incremental HttpParser(kRequest). The
// handler is synchronous — the loopback origin answers from an in-memory
// ObjectStore, so there is nothing to await — and every robustness decision
// sits on this side of the wire:
//
//   * header caps    -- HttpParser::Limits breaches answer 431, malformed
//                       requests 400, both followed by a drain-and-close.
//   * request pacing -- a read deadline arms when the first byte of a
//                       request lands and disarms when the message
//                       completes; the idle timeout covers the gaps
//                       between requests (slowloris shows up as one or the
//                       other, never as a stuck connection).
//   * overload       -- an optional shed hook (wired to the pipeline's
//                       AdmissionController by http/transport.cc) may
//                       condemn a parsed request to a fast 503; a write
//                       buffer above its high-water mark sheds the same
//                       way, because queueing more output onto a stuck
//                       client is how buffers stop being bounded.
//   * drain          -- drain() closes the listener and lets in-flight
//                       requests finish; connections close as they go idle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "http/message.h"
#include "http/parser.h"
#include "net/aio/tcp.h"

namespace mfhttp::aio {

struct HttpServerParams {
  TcpConnParams conn;
  HttpParser::Limits limits;
  // Max bytes of one request's header+body span on the wire before the
  // read deadline fires (wall clock; 0 disables).
  TimeMs request_deadline_ms = 2000;
  std::size_t max_connections = 256;
  // Out-pipe level above which new requests on that connection shed (503)
  // instead of queueing more output. 0: half the write buffer cap.
  std::size_t write_high_water = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  // Returns true when the request must be shed with 503 (admission hook).
  using ShedFn = std::function<bool(const HttpRequest&)>;

  struct Stats {
    std::size_t accepted = 0;
    std::size_t requests = 0;
    std::size_t responses = 0;
    std::size_t shed = 0;              // 503 via the shed hook or backpressure
    std::size_t bad_requests = 0;      // 400
    std::size_t header_violations = 0; // 431
    std::size_t timeouts = 0;          // idle/read/write deadline closes
    std::size_t resets = 0;            // peer RST / injected RST
    std::size_t over_capacity = 0;     // accepts beyond max_connections
  };

  // port 0 binds an ephemeral loopback port (see port()).
  HttpServer(EventLoop& loop, std::uint16_t port, Handler handler,
             HttpServerParams params = {}, ByteFaults* faults = nullptr);
  ~HttpServer();

  void set_shed_hook(ShedFn fn) { shed_ = std::move(fn); }

  std::uint16_t port() const { return listener_.port(); }
  std::size_t connection_count() const { return conns_.size(); }
  const Stats& stats() const { return stats_; }

  // Graceful shutdown: stop accepting; idle connections close now, busy
  // ones when their current response drains.
  void drain();
  bool draining() const { return draining_; }

 private:
  struct Conn {
    std::unique_ptr<TcpConn> tcp;
    HttpParser parser;
    bool request_deadline_armed = false;
    explicit Conn(HttpParser::Limits limits)
        : parser(HttpParser::Mode::kRequest, limits) {}
  };

  void on_accept(int fd);
  void on_data(std::uint64_t ordinal);
  void on_closed(std::uint64_t ordinal, TcpConn::CloseReason reason);
  // Serialize + queue a response; returns false when the conn shed/closed.
  bool respond(Conn& conn, const HttpResponse& response, bool close_after);

  EventLoop& loop_;
  Handler handler_;
  HttpServerParams params_;
  ByteFaults* faults_;
  ShedFn shed_;
  bool draining_ = false;
  std::uint64_t next_ordinal_ = 0;
  std::unordered_map<std::uint64_t, Conn> conns_;
  Stats stats_;
  TcpListener listener_;  // last: its accept callback touches the fields above
};

}  // namespace mfhttp::aio
