#include "net/aio/syscall.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace mfhttp::aio {

const char* io_status_name(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kWouldBlock: return "would_block";
    case IoStatus::kEof: return "eof";
    case IoStatus::kReset: return "reset";
    case IoStatus::kError: return "error";
  }
  return "?";
}

int set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int set_cloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

namespace {

bool is_reset_errno(int err) {
  return err == ECONNRESET || err == EPIPE || err == ECONNABORTED;
}

}  // namespace

IoResult read_some(int fd, char* buf, std::size_t len) {
  for (;;) {
    ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    if (n == 0) return {IoStatus::kEof, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::kWouldBlock, 0, 0};
    if (is_reset_errno(errno)) return {IoStatus::kReset, 0, errno};
    return {IoStatus::kError, 0, errno};
  }
}

IoResult write_some(int fd, const char* buf, std::size_t len) {
  for (;;) {
    ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n), 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::kWouldBlock, 0, 0};
    if (is_reset_errno(errno)) return {IoStatus::kReset, 0, errno};
    return {IoStatus::kError, 0, errno};
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void arm_abortive_close(int fd) {
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
}

int listen_loopback(std::uint16_t port, std::uint16_t* bound_port,
                    int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    int saved = errno;
    close_fd(fd);
    errno = saved;
    return -1;
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      int saved = errno;
      close_fd(fd);
      errno = saved;
      return -1;
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

int connect_loopback(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;  // loopback may complete synchronously
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) return fd;
    int saved = errno;
    close_fd(fd);
    errno = saved;
    return -1;
  }
}

int connect_result(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

}  // namespace mfhttp::aio
