// EINTR/EAGAIN/ECONNRESET/SIGPIPE-safe syscall wrappers for the event loop
// (DESIGN.md §15). Every raw read/write/accept/connect in src/net/aio goes
// through these so the failure taxonomy is decided in exactly one place:
//
//   kOk          -- n bytes moved (n > 0)
//   kWouldBlock  -- EAGAIN/EWOULDBLOCK: retry on the next readiness event
//   kEof         -- orderly FIN from the peer (reads only)
//   kReset       -- ECONNRESET/EPIPE/ECONNABORTED: the peer died abruptly
//   kError       -- anything else; `err` holds errno
//
// Writes use send(MSG_NOSIGNAL), never write(2), so a dead peer produces a
// catchable EPIPE instead of a process-killing SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfhttp::aio {

enum class IoStatus { kOk, kWouldBlock, kEof, kReset, kError };

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t n = 0;  // bytes moved when kOk
  int err = 0;        // errno when kReset/kError
};

const char* io_status_name(IoStatus status);

// Both return 0 on success, -1 (with errno) on failure.
int set_nonblocking(int fd);
int set_cloexec(int fd);

IoResult read_some(int fd, char* buf, std::size_t len);
IoResult write_some(int fd, const char* buf, std::size_t len);

// EINTR-safe close. Never retried (Linux closes the fd even on EINTR).
void close_fd(int fd);

// Arm SO_LINGER(0) so the subsequent close_fd emits RST instead of FIN —
// the fault injector's mid-stream connection kill.
void arm_abortive_close(int fd);

// Bind + listen a non-blocking TCP socket on 127.0.0.1. port 0 picks an
// ephemeral port; *bound_port receives the actual one. Returns the listening
// fd, or -1 with errno set.
int listen_loopback(std::uint16_t port, std::uint16_t* bound_port,
                    int backlog = 64);

// Start a non-blocking connect to 127.0.0.1:port. Returns the fd with the
// connect in flight (completion signalled by EPOLLOUT; check
// connect_result), or -1 with errno set.
int connect_loopback(std::uint16_t port);

// SO_ERROR after a non-blocking connect became writable: 0 on success,
// else the connect's errno.
int connect_result(int fd);

}  // namespace mfhttp::aio
