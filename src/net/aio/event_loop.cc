#include "net/aio/event_loop.h"

#include <errno.h>
#include <sys/epoll.h>
#include <time.h>

#include <algorithm>

#include "net/aio/syscall.h"
#include "util/check.h"

namespace mfhttp::aio {

namespace {

std::int64_t monotonic_ns() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000LL + ts.tv_nsec;
}

}  // namespace

EventLoop::EventLoop() : wheel_(kSlots) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  MFHTTP_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  t0_ns_ = monotonic_ns();
}

EventLoop::~EventLoop() { close_fd(epoll_fd_); }

TimeMs EventLoop::now_ms() const {
  return static_cast<TimeMs>((monotonic_ns() - t0_ns_) / 1000000LL);
}

void EventLoop::add_fd(int fd, std::uint32_t events, IoFn fn) {
  MFHTTP_CHECK_MSG(!fds_.contains(fd), "fd already registered");
  auto state = std::make_shared<FdState>();
  state->fn = std::move(fn);
  state->events = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  MFHTTP_CHECK_MSG(rc == 0, "epoll_ctl ADD failed");
  fds_.emplace(fd, std::move(state));
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  auto it = fds_.find(fd);
  MFHTTP_CHECK_MSG(it != fds_.end(), "modify_fd on unregistered fd");
  if (it->second->events == events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  int rc = ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  MFHTTP_CHECK_MSG(rc == 0, "epoll_ctl MOD failed");
  it->second->events = events;
}

void EventLoop::remove_fd(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(it);
}

EventLoop::TimerId EventLoop::add_timer_at(TimeMs deadline_ms, TimerFn fn) {
  TimerId id = next_timer_id_++;
  Timer t;
  t.deadline_ms = std::max<TimeMs>(deadline_ms, 0);
  t.fn = std::move(fn);
  wheel_[slot_of(t.deadline_ms)].push_back(id);
  timers_.emplace(id, std::move(t));
  return id;
}

bool EventLoop::cancel_timer(TimerId id) {
  // Lazy cancellation: the wheel's id entry stays behind and is skipped on
  // the sweep — O(1) cancel, which deadline churn needs.
  return timers_.erase(id) > 0;
}

TimeMs EventLoop::next_deadline() const {
  TimeMs best = -1;
  for (const auto& [id, t] : timers_)
    if (best < 0 || t.deadline_ms < best) best = t.deadline_ms;
  return best;
}

int EventLoop::fire_due_timers() {
  const TimeMs now = now_ms();
  const TimeMs tick = now / kTickMs;
  int fired = 0;
  // Sweep every tick from the last swept one (inclusive: a timer armed for
  // the current tick must fire without waiting a revolution) through the
  // current tick, bounded by one full revolution — past that slots repeat.
  const TimeMs first = last_swept_tick_;
  const TimeMs last =
      std::min(tick, last_swept_tick_ + static_cast<TimeMs>(kSlots) - 1);
  for (TimeMs t = first; t <= last; ++t) {
    std::vector<TimerId>& slot =
        wheel_[static_cast<std::size_t>(t) % kSlots];
    std::vector<TimerId> keep;
    std::vector<TimerId> due;
    keep.reserve(slot.size());
    for (TimerId id : slot) {
      auto it = timers_.find(id);
      if (it == timers_.end()) continue;  // lazily cancelled
      if (it->second.deadline_ms <= now)
        due.push_back(id);  // due this revolution
      else
        keep.push_back(id);  // a later revolution of this slot
    }
    slot = std::move(keep);
    for (TimerId id : due) {
      auto it = timers_.find(id);
      if (it == timers_.end()) continue;  // cancelled by an earlier callback
      TimerFn fn = std::move(it->second.fn);
      timers_.erase(it);
      fn();
      ++fired;
    }
  }
  last_swept_tick_ = std::max(last_swept_tick_, tick);
  return fired;
}

int EventLoop::poll(TimeMs max_wait_ms) {
  TimeMs wait = std::max<TimeMs>(max_wait_ms, 0);
  const TimeMs deadline = next_deadline();
  if (deadline >= 0) {
    const TimeMs until = deadline - now_ms();
    wait = std::min(wait, std::max<TimeMs>(until, 0));
  }

  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, static_cast<int>(wait));
  } while (n < 0 && errno == EINTR);
  MFHTTP_CHECK_MSG(n >= 0, "epoll_wait failed");

  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    auto it = fds_.find(events[i].data.fd);
    if (it == fds_.end()) continue;  // removed by an earlier handler
    // Shared ownership keeps the callback alive through remove_fd from
    // inside itself.
    std::shared_ptr<FdState> state = it->second;
    state->fn(events[i].events);
    ++dispatched;
  }
  dispatched += fire_due_timers();
  return dispatched;
}

bool EventLoop::run_until(const std::function<bool()>& done,
                          TimeMs deadline_ms) {
  while (!done()) {
    const TimeMs left = deadline_ms - now_ms();
    if (left <= 0) return false;
    poll(std::min<TimeMs>(left, 50));
  }
  return true;
}

}  // namespace mfhttp::aio
