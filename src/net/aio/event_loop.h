// Level-triggered epoll event loop with a coarse timer wheel — the real-I/O
// counterpart of sim/simulator.h (DESIGN.md §15).
//
// One loop drives every socket of one transport: the loopback origin
// server's listener and connections plus the client side of each fetch. It
// is strictly single-threaded; poll() is re-entered from SocketOrigin::fetch
// synchronously, never from another thread.
//
// Timers ride a 256-slot x 4 ms wheel keyed by absolute monotonic deadline.
// A slot holds every timer whose deadline lands on that tick modulo one
// revolution (~1 s); when the cursor sweeps a slot, entries are re-examined
// and only those actually due fire — the rest wait for a later revolution.
// This is the classic kernel-style wheel: O(1) insert/cancel and a bounded
// per-tick sweep, which is what per-connection deadline churn (armed and
// disarmed on every request) needs.
//
// Dispatch safety: the callback registered for an fd is copied (via shared
// ownership) before invocation, so a handler that removes its own fd — or
// any other — mid-dispatch never destroys the std::function it is executing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/types.h"

namespace mfhttp::aio {

class EventLoop {
 public:
  // `events` is the EPOLL* bitmask that fired (EPOLLIN, EPOLLOUT, EPOLLHUP,
  // EPOLLERR — level-triggered, no EPOLLET anywhere in this loop).
  using IoFn = std::function<void(std::uint32_t events)>;
  using TimerFn = std::function<void()>;
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Monotonic wall-clock milliseconds since loop construction.
  TimeMs now_ms() const;

  void add_fd(int fd, std::uint32_t events, IoFn fn);
  void modify_fd(int fd, std::uint32_t events);
  void remove_fd(int fd);  // unregisters only; the caller owns the close
  bool watching(int fd) const { return fds_.contains(fd); }

  TimerId add_timer_at(TimeMs deadline_ms, TimerFn fn);
  TimerId add_timer_after(TimeMs delay_ms, TimerFn fn) {
    return add_timer_at(now_ms() + (delay_ms < 0 ? 0 : delay_ms), std::move(fn));
  }
  // False when the timer already fired or was cancelled.
  bool cancel_timer(TimerId id);

  // One epoll_wait pass: dispatch ready fds, then fire due timers. Blocks at
  // most max_wait_ms (clamped down to the next timer deadline); 0 polls.
  // Returns the number of fd events plus timers dispatched.
  int poll(TimeMs max_wait_ms);

  // Drive poll() until done() or the wall deadline. True when done() won.
  bool run_until(const std::function<bool()>& done, TimeMs deadline_ms);

  std::size_t fd_count() const { return fds_.size(); }
  std::size_t timer_count() const { return timers_.size(); }

 private:
  static constexpr TimeMs kTickMs = 4;
  static constexpr std::size_t kSlots = 256;

  struct FdState {
    IoFn fn;
    std::uint32_t events = 0;
  };
  struct Timer {
    TimeMs deadline_ms = 0;
    TimerFn fn;
  };

  std::size_t slot_of(TimeMs deadline_ms) const {
    return static_cast<std::size_t>(deadline_ms / kTickMs) % kSlots;
  }
  // Soonest pending timer deadline, or -1 when none. Linear in the slot the
  // cursor is about to sweep plus the timer map — both small (tens of
  // connections, a few deadlines each).
  TimeMs next_deadline() const;
  int fire_due_timers();

  int epoll_fd_ = -1;
  std::int64_t t0_ns_ = 0;  // CLOCK_MONOTONIC at construction

  std::unordered_map<int, std::shared_ptr<FdState>> fds_;
  std::unordered_map<TimerId, Timer> timers_;
  std::vector<std::vector<TimerId>> wheel_;  // kSlots buckets of timer ids
  TimeMs last_swept_tick_ = 0;
  TimerId next_timer_id_ = 1;
};

}  // namespace mfhttp::aio
