#include "net/aio/byte_pipe.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace mfhttp::aio {

BytePipe::BytePipe(std::size_t initial_capacity, std::size_t max_capacity)
    : buf_(std::max<std::size_t>(initial_capacity, 64)),
      max_capacity_(max_capacity) {}

void BytePipe::ensure_room(std::size_t window) {
  const std::size_t live = (end_ - begin_) + window_;
  if (buf_.size() - end_ >= window) return;  // tail room already suffices
  if (buf_.size() - live >= window) {
    // Compact: slide committed bytes + the outstanding reservation to the
    // front. memmove — the ranges may overlap.
    std::memmove(buf_.data(), buf_.data() + begin_, live);
  } else {
    // Grow to the next power of two that fits; the copy carries the
    // reservation's bytes so a partially filled window survives (the
    // grow-during-reservation contract in the header).
    std::size_t need = (end_ - begin_) + std::max(window, window_);
    std::size_t cap = buf_.size();
    while (cap < need) cap *= 2;
    std::vector<char> grown(cap);
    std::memcpy(grown.data(), buf_.data() + begin_, live);
    buf_ = std::move(grown);
  }
  end_ -= begin_;
  begin_ = 0;
}

BytePipe::WriteWindow BytePipe::push_begin(std::size_t min_size) {
  std::size_t want = std::max(std::max<std::size_t>(min_size, 1), window_);
  if (max_capacity_ > 0) {
    const std::size_t budget = max_capacity_ > size() ? max_capacity_ - size() : 0;
    want = std::min(want, budget);
    if (want == 0) return {nullptr, 0};
  }
  ensure_room(want);
  window_ = std::max(window_, want);
  // Offer all tail room (capped by the bound): short kernel reads cost one
  // syscall either way, big ones fill whatever is there.
  std::size_t offer = buf_.size() - end_;
  if (max_capacity_ > 0) offer = std::min(offer, max_capacity_ - size());
  window_ = std::max(window_, offer);
  return {buf_.data() + end_, window_};
}

void BytePipe::push_finish(std::size_t n) {
  MFHTTP_CHECK_MSG(n <= window_, "push_finish beyond the reserved window");
  end_ += n;
  window_ = 0;
}

bool BytePipe::append(std::string_view data) {
  // Appending would have to leapfrog an open reservation without moving it —
  // impossible without invalidating the window pointer. Writers that mix the
  // two idioms on one pipe must push_finish first.
  MFHTTP_CHECK_MSG(window_ == 0, "append() with an open push_begin window");
  if (data.empty()) return true;
  if (max_capacity_ > 0 && size() + data.size() > max_capacity_) return false;
  ensure_room(data.size());
  std::memcpy(buf_.data() + end_, data.data(), data.size());
  end_ += data.size();
  return true;
}

void BytePipe::consume(std::size_t n) {
  MFHTTP_CHECK_MSG(n <= size(), "consume beyond buffered bytes");
  begin_ += n;
  if (begin_ == end_ && window_ == 0) begin_ = end_ = 0;
}

bool BytePipe::pull_line(std::string_view* line) {
  std::string_view data = peek();
  std::size_t lf = data.find('\n');
  if (lf == std::string_view::npos) return false;
  std::size_t len = (lf > 0 && data[lf - 1] == '\r') ? lf - 1 : lf;
  *line = data.substr(0, len);
  begin_ += lf + 1;
  if (begin_ == end_ && window_ == 0) begin_ = end_ = 0;
  return true;
}

void BytePipe::clear() {
  begin_ = end_ = 0;
  window_ = 0;
}

}  // namespace mfhttp::aio
