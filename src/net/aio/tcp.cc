#include "net/aio/tcp.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "net/aio/syscall.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp::aio {

namespace {

obs::Counter& accepted_counter() {
  static obs::Counter& c = obs::metrics().counter("aio.accepted_total");
  return c;
}

obs::Counter& timeout_counter() {
  static obs::Counter& c = obs::metrics().counter("aio.timeout_total");
  return c;
}

}  // namespace

TcpListener::TcpListener(EventLoop& loop, std::uint16_t port, AcceptFn on_accept)
    : loop_(loop), on_accept_(std::move(on_accept)) {
  fd_ = listen_loopback(port, &port_);
  MFHTTP_CHECK_MSG(fd_ >= 0, "cannot bind loopback listener");
  loop_.add_fd(fd_, EPOLLIN, [this](std::uint32_t) {
    // Drain the accept queue; level-triggered epoll re-fires if more arrive.
    for (;;) {
      int conn = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (conn < 0) {
        if (errno == EINTR) continue;
        // ECONNABORTED: the peer gave up while queued — not our problem.
        if (errno == ECONNABORTED) continue;
        break;  // EAGAIN or a transient kernel error; wait for the next event
      }
      accepted_counter().inc();
      on_accept_(conn);
    }
  });
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() {
  if (fd_ < 0) return;
  loop_.remove_fd(fd_);
  close_fd(fd_);
  fd_ = -1;
}

const char* TcpConn::reason_name(CloseReason reason) {
  switch (reason) {
    case CloseReason::kLocal: return "local";
    case CloseReason::kEof: return "eof";
    case CloseReason::kReset: return "reset";
    case CloseReason::kError: return "error";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kReadTimeout: return "read_timeout";
    case CloseReason::kWriteTimeout: return "write_timeout";
    case CloseReason::kInjected: return "injected";
  }
  return "?";
}

TcpConn::TcpConn(EventLoop& loop, int fd, TcpConnParams params,
                 std::uint64_t ordinal, ByteFaults* faults, bool await_connect)
    : loop_(loop),
      fd_(fd),
      params_(params),
      ordinal_(ordinal),
      faults_(faults),
      in_(4096, params.read_buffer_cap),
      out_(4096, params.write_buffer_cap),
      connected_(!await_connect) {
  MFHTTP_CHECK(fd_ >= 0);
  last_activity_ms_ = loop_.now_ms();
  std::uint32_t events = EPOLLIN;
  if (!connected_) events |= EPOLLOUT;
  loop_.add_fd(fd_, events, [this](std::uint32_t ev) { on_event(ev); });
  arm_idle_timer();
}

TcpConn::~TcpConn() {
  *alive_ = false;
  if (fd_ < 0) return;
  // Silent teardown: the owner is destroying us, no on_closed_.
  loop_.cancel_timer(idle_timer_);
  loop_.cancel_timer(read_timer_);
  loop_.cancel_timer(write_timer_);
  loop_.cancel_timer(stall_timer_);
  loop_.remove_fd(fd_);
  close_fd(fd_);
  fd_ = -1;
}

void TcpConn::on_event(std::uint32_t events) {
  if (fd_ < 0) return;
  // handle_readable() may run on_data_/on_closed_, and either callback may
  // destroy this conn; the sentinel is the only safe thing left to read.
  const std::shared_ptr<bool> alive = alive_;
  if (!connected_ && (events & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
    int err = connect_result(fd_);
    if (err != 0) {
      close(err == ECONNREFUSED || err == ECONNRESET ? CloseReason::kReset
                                                     : CloseReason::kError);
      return;
    }
    connected_ = true;
    update_interest();
  }
  if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) handle_readable();
  if (!*alive) return;
  if (fd_ >= 0 && (events & EPOLLOUT)) handle_writable();
}

void TcpConn::handle_readable() {
  const std::shared_ptr<bool> alive = alive_;
  bool committed = false;
  bool eof = false;
  // Bounded batch: stay fair to the loop's other fds; level-triggered epoll
  // re-fires while bytes remain.
  for (int burst = 0; burst < 32; ++burst) {
    if (fd_ < 0 || !want_read_ || stalled_read_) break;
    BytePipe::WriteWindow w = in_.push_begin(4096);
    if (w.size == 0) {
      // In-pipe at its bound: stop watching EPOLLIN until the consumer
      // drains it (resume_read).
      want_read_ = false;
      update_interest();
      break;
    }
    std::size_t want = w.size;
    if (faults_ != nullptr) {
      ByteFaults::Op op = faults_->on_read(ordinal_, read_ops_++, want);
      if (op.reset) {
        in_.push_finish(0);
        abort(CloseReason::kInjected);
        return;
      }
      if (op.stall_ms > 0) {
        in_.push_finish(0);
        stall(/*read_side=*/true, op.stall_ms);
        break;
      }
      want = std::min(want, std::max<std::size_t>(op.clamp, 1));
    }
    IoResult r = read_some(fd_, w.data, want);
    if (r.status == IoStatus::kOk) {
      in_.push_finish(r.n);
      touch();
      committed = true;
      continue;
    }
    in_.push_finish(0);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status == IoStatus::kEof) {
      eof = true;
      break;
    }
    // Deliver whatever arrived before the failure, then close.
    if (committed && on_data_) on_data_();
    if (!*alive) return;
    if (fd_ >= 0)
      close(r.status == IoStatus::kReset ? CloseReason::kReset
                                         : CloseReason::kError);
    return;
  }
  if (committed && on_data_) on_data_();
  if (!*alive) return;
  if (eof && fd_ >= 0) close(CloseReason::kEof);
}

void TcpConn::handle_writable() {
  while (fd_ >= 0 && !out_.empty() && !stalled_write_) {
    std::string_view data = out_.peek();
    std::size_t want = data.size();
    bool torn = false;
    if (faults_ != nullptr) {
      ByteFaults::Op op = faults_->on_write(ordinal_, write_ops_++, want);
      if (op.reset) {
        abort(CloseReason::kInjected);
        return;
      }
      if (op.stall_ms > 0) {
        stall(/*read_side=*/false, op.stall_ms);
        break;
      }
      if (op.clamp < want) {
        want = std::max<std::size_t>(op.clamp, 1);
        torn = true;
      }
    }
    IoResult r = write_some(fd_, data.data(), want);
    if (r.status == IoStatus::kOk) {
      out_.consume(r.n);
      touch();
      // A torn write ends this pass so the remainder goes out in a separate
      // segment on the next readiness event.
      if (torn) break;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) break;
    close(r.status == IoStatus::kReset ? CloseReason::kReset
                                       : CloseReason::kError);
    return;
  }
  if (fd_ < 0) return;
  if (out_.empty()) {
    disarm_write_deadline();
    if (close_when_drained_) {
      close(CloseReason::kLocal);
      return;
    }
  }
  update_interest();
}

bool TcpConn::send(std::string_view data) {
  if (fd_ < 0) return false;
  const bool was_empty = out_.empty();
  if (!out_.append(data)) return false;  // bounded out-pipe full: shed
  if (was_empty && !out_.empty()) arm_write_deadline();
  // No inline flush: the bytes go out on the next poll pass. Flushing here
  // could invoke on_closed_ (injected RST) beneath a caller still holding
  // `this`.
  update_interest();
  return true;
}

void TcpConn::resume_read() {
  if (fd_ < 0 || want_read_) return;
  want_read_ = true;
  update_interest();
}

void TcpConn::close_when_drained() {
  if (fd_ < 0) return;
  if (out_.empty()) {
    close(CloseReason::kLocal);
    return;
  }
  close_when_drained_ = true;
}

void TcpConn::update_interest() {
  if (fd_ < 0) return;
  std::uint32_t events = 0;
  if (want_read_ && !stalled_read_) events |= EPOLLIN;
  if (!connected_ || (!out_.empty() && !stalled_write_)) events |= EPOLLOUT;
  loop_.modify_fd(fd_, events);
}

void TcpConn::touch() { last_activity_ms_ = loop_.now_ms(); }

void TcpConn::arm_idle_timer() {
  if (params_.idle_timeout_ms <= 0) return;
  // Lazy idle clock: the timer fires at the *earliest possible* expiry and
  // re-arms for the remainder if bytes moved meanwhile — O(1) per byte
  // instead of cancel+insert per read.
  const TimeMs due = last_activity_ms_ + params_.idle_timeout_ms;
  idle_timer_ = loop_.add_timer_at(due, [this] {
    idle_timer_ = EventLoop::kInvalidTimer;
    const TimeMs now = loop_.now_ms();
    if (now - last_activity_ms_ >= params_.idle_timeout_ms) {
      timeout_counter().inc();
      close(CloseReason::kIdleTimeout);
      return;
    }
    arm_idle_timer();
  });
}

void TcpConn::arm_read_deadline(TimeMs after_ms) {
  disarm_read_deadline();
  if (after_ms <= 0) return;
  read_timer_ = loop_.add_timer_after(after_ms, [this] {
    read_timer_ = EventLoop::kInvalidTimer;
    timeout_counter().inc();
    close(CloseReason::kReadTimeout);
  });
}

void TcpConn::disarm_read_deadline() {
  if (read_timer_ == EventLoop::kInvalidTimer) return;
  loop_.cancel_timer(read_timer_);
  read_timer_ = EventLoop::kInvalidTimer;
}

void TcpConn::arm_write_deadline() {
  if (params_.write_deadline_ms <= 0 ||
      write_timer_ != EventLoop::kInvalidTimer)
    return;
  write_timer_ = loop_.add_timer_after(params_.write_deadline_ms, [this] {
    write_timer_ = EventLoop::kInvalidTimer;
    timeout_counter().inc();
    close(CloseReason::kWriteTimeout);
  });
}

void TcpConn::disarm_write_deadline() {
  if (write_timer_ == EventLoop::kInvalidTimer) return;
  loop_.cancel_timer(write_timer_);
  write_timer_ = EventLoop::kInvalidTimer;
}

void TcpConn::stall(bool read_side, TimeMs stall_ms) {
  if (read_side)
    stalled_read_ = true;
  else
    stalled_write_ = true;
  update_interest();
  // One stall window at a time; overlapping draws extend nothing.
  if (stall_timer_ != EventLoop::kInvalidTimer) return;
  stall_timer_ = loop_.add_timer_after(stall_ms, [this] {
    stall_timer_ = EventLoop::kInvalidTimer;
    stalled_read_ = false;
    stalled_write_ = false;
    update_interest();
  });
}

void TcpConn::close(CloseReason reason) {
  if (fd_ < 0) return;
  MFHTTP_TRACE << "aio conn " << ordinal_ << " closed ("
               << reason_name(reason) << ")";
  loop_.cancel_timer(idle_timer_);
  loop_.cancel_timer(read_timer_);
  loop_.cancel_timer(write_timer_);
  loop_.cancel_timer(stall_timer_);
  idle_timer_ = read_timer_ = write_timer_ = stall_timer_ =
      EventLoop::kInvalidTimer;
  loop_.remove_fd(fd_);
  close_fd(fd_);
  fd_ = -1;
  // Strictly last: the callback may destroy this object.
  if (on_closed_) {
    ClosedFn cb = std::move(on_closed_);
    cb(reason);
  }
}

void TcpConn::abort(CloseReason reason) {
  if (fd_ < 0) return;
  arm_abortive_close(fd_);
  close(reason);
}

}  // namespace mfhttp::aio
