// Non-blocking TCP primitives on the aio event loop (DESIGN.md §15).
//
// TcpListener accepts loopback connections; TcpConn owns one connected
// socket plus its two bounded BytePipes and enforces the connection-lifecycle
// robustness contract:
//
//   * read path   -- kernel bytes land in in() via push_begin/push_finish;
//                    when in() hits its bound the conn stops watching
//                    EPOLLIN until the consumer drains it (backpressure,
//                    never unbounded buffering).
//   * write path  -- send() copies into out(); EPOLLOUT is armed only while
//                    out() is non-empty and a full out() fails send()
//                    (the caller sheds instead of buffering without bound).
//   * deadlines   -- an idle timeout (no bytes either direction — the
//                    slowloris guard), an optional read deadline (armed by
//                    the protocol layer for the span of one message), and a
//                    write deadline (pending output must drain) all ride the
//                    loop's timer wheel and close the conn with a taxonomy-
//                    bearing CloseReason.
//
// Byte-level chaos: every kernel read/write first consults the optional
// ByteFaults hook — the seeded fault::SocketFaultInjector implements it —
// which may clamp the operation (short read / torn write), stall the
// direction for a window, or kill the connection with an RST mid-stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/aio/byte_pipe.h"
#include "net/aio/event_loop.h"
#include "util/types.h"

namespace mfhttp::aio {

// Seeded byte-level fault hook (implemented by fault::SocketFaultInjector;
// the interface lives here so aio never depends on the fault layer). All
// decisions must be pure functions of (conn ordinal, op ordinal) so a plan
// replays the same chaos regardless of kernel scheduling.
class ByteFaults {
 public:
  struct Op {
    std::size_t clamp = SIZE_MAX;  // max bytes this op may move
    bool reset = false;            // kill the connection with RST instead
    TimeMs stall_ms = 0;           // pause this direction first
  };
  virtual ~ByteFaults() = default;
  virtual Op on_read(std::uint64_t conn, std::uint64_t op,
                     std::size_t want) = 0;
  virtual Op on_write(std::uint64_t conn, std::uint64_t op,
                      std::size_t want) = 0;
};

class TcpListener {
 public:
  // Receives connected, non-blocking fds. The callee owns the fd.
  using AcceptFn = std::function<void(int fd)>;

  // port 0 binds an ephemeral loopback port (see port()). CHECK-fails when
  // the socket cannot be bound — a transport that silently is not listening
  // would fail every fetch anyway.
  TcpListener(EventLoop& loop, std::uint16_t port, AcceptFn on_accept);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  // Stop accepting (graceful drain: existing conns live on).
  void close();
  bool listening() const { return fd_ >= 0; }

 private:
  EventLoop& loop_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  AcceptFn on_accept_;
};

struct TcpConnParams {
  std::size_t read_buffer_cap = 64 * 1024;
  std::size_t write_buffer_cap = 1024 * 1024;
  TimeMs idle_timeout_ms = 5000;   // no bytes in either direction; 0 disables
  TimeMs write_deadline_ms = 5000; // pending out() must drain; 0 disables
};

class TcpConn {
 public:
  enum class CloseReason {
    kLocal,         // close() — orderly, ours
    kEof,           // orderly FIN from the peer
    kReset,         // RST / EPIPE from the peer
    kError,         // unclassified syscall failure
    kIdleTimeout,   // slowloris guard fired
    kReadTimeout,   // protocol-layer read deadline fired
    kWriteTimeout,  // out() failed to drain within the write deadline
    kInjected,      // ByteFaults ordered an abortive close
  };
  // Fired after new bytes were committed to in().
  using DataFn = std::function<void()>;
  // Fired exactly once, strictly last — the conn may be destroyed from it.
  using ClosedFn = std::function<void(CloseReason)>;

  // Takes ownership of fd (must be non-blocking). `ordinal` feeds the fault
  // hook's per-connection stream; `faults` may be nullptr. await_connect:
  // the fd carries an in-flight non-blocking connect — the first EPOLLOUT
  // checks SO_ERROR and closes with kReset/kError on a failed connect.
  TcpConn(EventLoop& loop, int fd, TcpConnParams params, std::uint64_t ordinal,
          ByteFaults* faults, bool await_connect = false);
  ~TcpConn();
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  void set_on_data(DataFn fn) { on_data_ = std::move(fn); }
  void set_on_closed(ClosedFn fn) { on_closed_ = std::move(fn); }

  BytePipe& in() { return in_; }
  BytePipe& out() { return out_; }

  // Queue bytes; arms EPOLLOUT. False (nothing queued) when out() lacks
  // room — the caller's shed signal.
  bool send(std::string_view data);

  // After in() was drained below its bound, resume watching EPOLLIN.
  void resume_read();

  // Close once out() drains (or immediately if already empty).
  void close_when_drained();
  void close(CloseReason reason = CloseReason::kLocal);
  // Abortive close: RST to the peer, no FIN handshake.
  void abort(CloseReason reason = CloseReason::kReset);

  bool open() const { return fd_ >= 0; }
  std::uint64_t ordinal() const { return ordinal_; }
  static const char* reason_name(CloseReason reason);

  // Protocol-layer read deadline covering one message; re-arming replaces.
  void arm_read_deadline(TimeMs after_ms);
  void disarm_read_deadline();

 private:
  void on_event(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  void update_interest();
  void touch();  // bytes moved: reset the idle clock
  void arm_idle_timer();
  void arm_write_deadline();
  void disarm_write_deadline();
  // Pause one direction for a fault-injected stall window.
  void stall(bool read_side, TimeMs stall_ms);

  EventLoop& loop_;
  int fd_;
  TcpConnParams params_;
  std::uint64_t ordinal_;
  ByteFaults* faults_;

  BytePipe in_;
  BytePipe out_;
  DataFn on_data_;
  ClosedFn on_closed_;

  bool want_read_ = true;
  bool connected_ = true;      // false while a non-blocking connect is in flight
  bool close_when_drained_ = false;
  bool stalled_read_ = false;  // fault window: EPOLLIN masked
  bool stalled_write_ = false;
  TimeMs last_activity_ms_ = 0;  // idle clock (lazily re-armed timer)
  std::uint64_t read_ops_ = 0;   // fault-stream op ordinals
  std::uint64_t write_ops_ = 0;

  EventLoop::TimerId idle_timer_ = EventLoop::kInvalidTimer;
  EventLoop::TimerId read_timer_ = EventLoop::kInvalidTimer;
  EventLoop::TimerId write_timer_ = EventLoop::kInvalidTimer;
  EventLoop::TimerId stall_timer_ = EventLoop::kInvalidTimer;

  // Destruction sentinel. A data/closed callback may destroy this conn
  // (the server erases it from inside on_event's dispatch); frames still
  // on the stack hold a copy and must re-check before touching members.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mfhttp::aio
