#include "net/aio/http_server.h"

#include <utility>

#include "net/aio/syscall.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/strings.h"

namespace mfhttp::aio {

namespace {

obs::Counter& shed_counter() {
  static obs::Counter& c = obs::metrics().counter("aio.server.shed_total");
  return c;
}

obs::Counter& violation_counter() {
  static obs::Counter& c =
      obs::metrics().counter("aio.server.header_violation_total");
  return c;
}

bool bodiless_status(int status) {
  return status / 100 == 1 || status == 204 || status == 304;
}

bool wants_close(const HttpRequest& request) {
  auto connection = request.headers.get_view("Connection");
  return connection && iequals(trim(*connection), "close");
}

}  // namespace

HttpServer::HttpServer(EventLoop& loop, std::uint16_t port, Handler handler,
                       HttpServerParams params, ByteFaults* faults)
    : loop_(loop),
      handler_(std::move(handler)),
      params_(params),
      faults_(faults),
      listener_(loop, port, [this](int fd) { on_accept(fd); }) {
  MFHTTP_CHECK(handler_ != nullptr);
  if (params_.write_high_water == 0)
    params_.write_high_water = params_.conn.write_buffer_cap / 2;
}

HttpServer::~HttpServer() = default;

void HttpServer::drain() {
  draining_ = true;
  listener_.close();
  // Idle connections close now; busy ones when their response drains (the
  // on_data tail handles that).
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = (it++)->second;  // close() may erase via on_closed
    if (conn.parser.between_messages() && !conn.parser.has_message())
      conn.tcp->close_when_drained();
  }
}

void HttpServer::on_accept(int fd) {
  ++stats_.accepted;
  if (draining_) {
    close_fd(fd);
    return;
  }
  if (conns_.size() >= params_.max_connections) {
    // Over the connection cap: refuse outright. An RST is honest — there is
    // no conn state to write a 503 from without growing unbounded.
    ++stats_.over_capacity;
    arm_abortive_close(fd);
    close_fd(fd);
    return;
  }
  const std::uint64_t ordinal = next_ordinal_++;
  Conn& conn = conns_.emplace(ordinal, Conn(params_.limits)).first->second;
  conn.tcp = std::make_unique<TcpConn>(loop_, fd, params_.conn, ordinal,
                                       faults_);
  conn.tcp->set_on_data([this, ordinal] { on_data(ordinal); });
  conn.tcp->set_on_closed([this, ordinal](TcpConn::CloseReason reason) {
    on_closed(ordinal, reason);
  });
}

void HttpServer::on_data(std::uint64_t ordinal) {
  auto it = conns_.find(ordinal);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  std::string_view bytes = conn.tcp->in().peek();
  conn.parser.feed(bytes);
  conn.tcp->in().consume(bytes.size());
  conn.tcp->resume_read();  // the in-pipe bound may have paused EPOLLIN

  // Serve complete requests first — pipelined requests ahead of a malformed
  // one still deserve answers.
  while (conn.parser.has_message()) {
    HttpRequest request = conn.parser.take_request();
    ++stats_.requests;
    const bool close_after = wants_close(request) || draining_;

    const bool backpressured =
        conn.tcp->out().size() > params_.write_high_water;
    if (backpressured || (shed_ && shed_(request))) {
      ++stats_.shed;
      shed_counter().inc();
      HttpResponse response = HttpResponse::make(503, "", "overloaded");
      response.headers.set("x-mfhttp-shed",
                           backpressured ? "backpressure" : "admission");
      if (!respond(conn, response, close_after)) return;
      continue;
    }

    HttpResponse response = handler_(request);
    ++stats_.responses;
    if (!respond(conn, response, close_after)) return;
    if (close_after) return;  // respond() queued the drain-and-close
  }

  if (conn.parser.has_error()) {
    const bool violation = conn.parser.limit_violation();
    if (violation) {
      ++stats_.header_violations;
      violation_counter().inc();
    } else {
      ++stats_.bad_requests;
    }
    MFHTTP_TRACE << "aio server conn " << ordinal << ": "
                 << conn.parser.error();
    HttpResponse response =
        violation ? HttpResponse::make(431, "", "header limits exceeded")
                  : HttpResponse::make(400, "", "malformed request");
    response.headers.set("Connection", "close");
    respond(conn, response, /*close_after=*/true);
    return;
  }

  if (conn.parser.between_messages()) {
    if (conn.request_deadline_armed) {
      conn.tcp->disarm_read_deadline();
      conn.request_deadline_armed = false;
    }
    if (draining_) conn.tcp->close_when_drained();
  } else if (!conn.request_deadline_armed &&
             params_.request_deadline_ms > 0) {
    // First bytes of a request landed: the rest must follow within the
    // deadline — a trickling header (slowloris) dies here.
    conn.tcp->arm_read_deadline(params_.request_deadline_ms);
    conn.request_deadline_armed = true;
  }
}

bool HttpServer::respond(Conn& conn, const HttpResponse& response,
                         bool close_after) {
  HttpResponse out = response;
  if (out.reason.empty()) out.reason = default_reason(out.status);
  // serialize() adds Content-Length only for non-empty bodies; an empty
  // non-bodiless body needs an explicit zero or keep-alive clients would
  // read until close.
  if (out.body.empty() && !bodiless_status(out.status) &&
      !out.headers.contains("Content-Length"))
    out.headers.set("Content-Length", "0");
  if (!conn.tcp->send(out.serialize())) {
    // Out-pipe hard bound: nothing more can queue. Abort — the peer gets a
    // reset, the taxonomy an errored request.
    conn.tcp->abort(TcpConn::CloseReason::kError);
    return false;
  }
  if (close_after) conn.tcp->close_when_drained();
  return true;
}

void HttpServer::on_closed(std::uint64_t ordinal,
                           TcpConn::CloseReason reason) {
  switch (reason) {
    case TcpConn::CloseReason::kIdleTimeout:
    case TcpConn::CloseReason::kReadTimeout:
    case TcpConn::CloseReason::kWriteTimeout:
      ++stats_.timeouts;
      break;
    case TcpConn::CloseReason::kReset:
    case TcpConn::CloseReason::kInjected:
      ++stats_.resets;
      break;
    default:
      break;
  }
  conns_.erase(ordinal);
}

}  // namespace mfhttp::aio
