// Growable contiguous byte queue between a non-blocking socket and the
// incremental HTTP parser (DESIGN.md §15).
//
// The pipe hands the kernel a zero-copy write window and hands the parser a
// zero-copy read view:
//
//   BytePipe::WriteWindow w = pipe.push_begin(4096);   // writable span
//   ssize_t n = read(fd, w.data, w.size);
//   if (n > 0) pipe.push_finish(static_cast<std::size_t>(n));
//   ...
//   std::string_view line;
//   while (pipe.pull_line(&line)) consume_header(line);
//
// The write window ("reservation") survives *any* intervening push_begin:
// re-reserving a larger window may grow or compact the backing store, but
// the bytes already written into the outstanding window are copied along
// with committed data and the new window starts at the same logical offset.
// A caller that partially filled a window and then asked for more room never
// loses bytes (ISSUE 8 satellite: grow-during-reservation).
//
// Capacity may be bounded (max_capacity > 0): push_begin then returns a
// window no larger than the remaining budget — possibly empty — which is the
// backpressure signal the event loop uses to stop reading from a socket
// whose consumer has fallen behind.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace mfhttp::aio {

class BytePipe {
 public:
  struct WriteWindow {
    char* data = nullptr;
    std::size_t size = 0;  // 0: at the bounded-capacity limit
  };

  // max_capacity 0 means unbounded.
  explicit BytePipe(std::size_t initial_capacity = 4096,
                    std::size_t max_capacity = 0);

  // Reserve a writable window of at least min_size bytes (clamped by
  // max_capacity). Calling again before push_finish keeps the window's
  // current contents and returns the same logical window, enlarged.
  WriteWindow push_begin(std::size_t min_size);

  // Commit the first n bytes of the outstanding window. n may be 0
  // (reservation abandoned). Requires n <= the last window's size.
  void push_finish(std::size_t n);

  // Append by copy (convenience for writers that already own the bytes).
  // Returns false — and appends nothing — when a bounded pipe lacks room.
  bool append(std::string_view data);

  // Readable bytes, contiguous. Valid until the next mutating call.
  std::string_view peek() const {
    return {buf_.data() + begin_, end_ - begin_};
  }

  // Drop the first n readable bytes. Requires n <= size().
  void consume(std::size_t n);

  // Extract one LF-terminated line (CR stripped) as a view into the buffer.
  // Valid until the next mutating call. False when no full line is buffered.
  bool pull_line(std::string_view* line);

  void clear();

  std::size_t size() const { return end_ - begin_; }
  bool empty() const { return begin_ == end_; }
  std::size_t capacity() const { return buf_.size(); }
  std::size_t max_capacity() const { return max_capacity_; }
  // Outstanding (reserved, uncommitted) window size.
  std::size_t reserved() const { return window_; }
  // True when a bounded pipe cannot accept at least one more byte.
  bool full() const {
    return max_capacity_ > 0 && size() + window_ >= max_capacity_;
  }

 private:
  // Make room for `window` writable bytes after end_, preferring in-place
  // compaction over reallocation. Preserves [begin_, end_ + window_) — the
  // committed bytes plus the outstanding reservation.
  void ensure_room(std::size_t window);

  std::vector<char> buf_;
  std::size_t max_capacity_;
  std::size_t begin_ = 0;   // first readable byte
  std::size_t end_ = 0;     // one past last committed byte
  std::size_t window_ = 0;  // outstanding reservation [end_, end_ + window_)
};

}  // namespace mfhttp::aio
