#include "sim/arrivals.h"

#include <cmath>

#include "util/check.h"

namespace mfhttp {

std::vector<TimeMs> poisson_arrivals(const ArrivalParams& params, Rng& rng) {
  MFHTTP_CHECK(params.rate_per_s > 0);
  const double mean_gap_ms = 1000.0 / params.rate_per_s;
  std::vector<TimeMs> arrivals;
  double t = static_cast<double>(params.start_ms);
  for (;;) {
    // Max one-ms floor keeps timestamps strictly increasing after rounding.
    t += std::max(1.0, rng.exponential(mean_gap_ms));
    const auto at = static_cast<TimeMs>(std::llround(t));
    if (at >= params.horizon_ms) break;
    arrivals.push_back(at);
  }
  return arrivals;
}

std::vector<TimeMs> uniform_arrivals(const ArrivalParams& params) {
  MFHTTP_CHECK(params.rate_per_s > 0);
  const double gap_ms = std::max(1.0, 1000.0 / params.rate_per_s);
  std::vector<TimeMs> arrivals;
  for (double t = static_cast<double>(params.start_ms) + gap_ms;
       t < static_cast<double>(params.horizon_ms); t += gap_ms) {
    arrivals.push_back(static_cast<TimeMs>(std::llround(t)));
  }
  return arrivals;
}

}  // namespace mfhttp
