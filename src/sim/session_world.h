// Shared-nothing session worlds for the parallel scale engine (DESIGN.md
// §12). Each world is one simulated browsing session: a corpus page with
// multi-version images, a seeded gesture stream, a bandwidth trace, and a
// full middleware stack (touch monitor -> tracker -> flow controller) —
// everything owned by the session, nothing shared between sessions.
//
// This is deliberately NOT overload::run_multi_session. That engine couples
// its sessions through one fair-share downlink and one admission controller
// to study contention, so it is a single discrete-event world and stays
// serial. Scale worlds are independent by construction, which is what makes
// them parallelizable with bit-for-bit deterministic results:
//
//   * session seed = pure function of (master seed, session id),
//   * each world draws only from its own RNG streams,
//   * results land in slots indexed by session id and are merged in id
//     order — never completion order,
//   * wall-clock measurements ride along for the benches but are excluded
//     from deterministic_json(), the byte-comparable artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gesture/synthetic.h"
#include "scroll/device_profile.h"
#include "sim/parallel_runner.h"

namespace mfhttp::scenario {
struct ScenarioSpec;
}

namespace mfhttp::sim {

struct ScaleSessionConfig {
  std::uint64_t seed = 1;
  std::size_t sessions = 16;
  // Worker threads; 0 = hardware concurrency, 1 = the serial baseline any
  // other count must reproduce byte for byte.
  std::size_t workers = 1;
  std::size_t gestures_per_session = 40;
  // Each corpus image is expanded to this many versions (ascending
  // resolution) so the knapsack solves a real multi-version instance.
  std::size_t versions_per_object = 3;
  double mean_bandwidth_mbps = 16.0;
  // Device class driving page layout, fling physics, and gesture sampling
  // (scenario::DeviceClassSpec). The defaults are the historical hardcoded
  // values — BENCH_scale artifacts stay byte-identical.
  DeviceProfile device = DeviceProfile::nexus6();
  double fling_friction_scale = 1.0;
  BrowsingGestureSource::Params gestures;

  // Scale config from a scenario: seed, session count, device class and its
  // gesture distribution. Defined in the mfhttp_scenario library.
  static ScaleSessionConfig from_scenario(const scenario::ScenarioSpec& spec);
};

struct ScaleSessionResult {
  std::size_t session_id = 0;
  std::uint64_t seed = 0;
  std::string site;
  std::size_t objects = 0;
  std::size_t gestures = 0;
  std::size_t scrolls = 0;
  std::size_t involved = 0;     // involved-object decisions across all scrolls
  std::size_t downloads = 0;    // decisions with a version selected
  std::uint64_t planned_bytes = 0;
  double objective_sum = 0;
  double qoe_sum = 0;
  // FNV-1a over every policy's decisions (indices, versions, value bits) —
  // the cheap bit-for-bit equality witness between runs.
  std::uint64_t fingerprint = 0;
  // Wall-clock measurements (excluded from deterministic_json).
  double wall_ms = 0;                    // whole session
  std::vector<double> touch_to_policy_ms;  // one per scroll gesture
};

struct ScaleRunResult {
  ScaleSessionConfig config;
  std::vector<ScaleSessionResult> sessions;  // ordered by session id
  ParallelRunStats stats;
  double wall_ms = 0;  // whole batch, caller-visible speedup numerator

  // Batch totals (merged in session-id order).
  std::size_t total_scrolls = 0;
  std::uint64_t total_planned_bytes = 0;
  double total_objective = 0;

  // One JSON document covering config + every per-session result, with all
  // wall-clock fields omitted: two runs of the same config must produce the
  // same bytes regardless of worker count, machine load, or scheduling.
  std::string deterministic_json() const;
};

// Seed for session `id` under master `seed` (splitmix64 mixing — changing
// either input decorrelates every stream in the session's world).
std::uint64_t session_seed(std::uint64_t seed, std::size_t id);

// Run one session world in isolation. Pure: same (config, id) -> same
// result modulo wall-clock fields.
ScaleSessionResult run_scale_session(const ScaleSessionConfig& config,
                                     std::size_t id);

// Run config.sessions worlds across config.workers threads and merge by
// session id.
ScaleRunResult run_scale_sessions(const ScaleSessionConfig& config);

}  // namespace mfhttp::sim
