#include "sim/frontdoor_load.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace mfhttp::sim {

namespace {

// All draws below map raw std::mt19937_64 output (whose bit sequence the
// standard fully specifies) through explicit inverse CDFs instead of going
// via std:: distributions, whose algorithms are implementation-defined and
// genuinely differ between libstdc++ and libc++/MSVC. This keeps the
// timeline — which bench_gate compares at tolerance zero against checked-in
// baselines — a pure function of the seed across standard libraries. The
// one residual platform input is last-ulp rounding in std::log/std::pow,
// which the integer quantization downstream (millisecond timestamps, URL
// indices) makes unobservable in practice.

// Uniform double in [0, 1): top 53 engine bits.
double draw_u01(Rng& rng) {
  return static_cast<double>(rng.engine()() >> 11) /
         static_cast<double>(1ULL << 53);
}

// Exponential gap via inverse CDF: -mean * ln(1 - u).
double draw_exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - draw_u01(rng));
}

// Uniform integer in [lo, hi] inclusive via modulo over the full 64-bit
// draw (bias over a 1..3 range is ~2^-62: irrelevant, and exact integer
// arithmetic keeps it bit-stable everywhere).
std::uint64_t draw_uniform_int(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng.engine()() % (hi - lo + 1);
}

// Priority mix: mostly viewport work with a speculative/transient fringe
// and a structural floor — the class weights the overload driver measured.
constexpr double kSpeculativeFraction = 0.20;
constexpr double kTransientFraction = 0.25;
constexpr double kViewportFraction = 0.40;  // remainder is structure

std::uint8_t draw_priority(Rng& rng) {
  const double u = draw_u01(rng);
  if (u < kSpeculativeFraction) return 0;
  if (u < kSpeculativeFraction + kTransientFraction) return 1;
  if (u < kSpeculativeFraction + kTransientFraction + kViewportFraction)
    return 2;
  return 3;
}

}  // namespace

std::vector<TouchEvent> generate_frontdoor_load(
    const FrontDoorLoadConfig& config) {
  MFHTTP_CHECK(config.sessions > 0);
  MFHTTP_CHECK(config.url_universe > 0 && config.url_universe <= 65536);
  MFHTTP_CHECK(config.max_urls_per_touch >= 1 && config.max_urls_per_touch <= 3);
  MFHTTP_CHECK(config.touch_rate_per_s > 0);
  MFHTTP_CHECK(config.session_arrival_per_s > 0);

  std::vector<TouchEvent> events;
  events.reserve(config.sessions * config.touches_per_session);
  const double mean_gap_ms = 1000.0 / config.touch_rate_per_s;
  for (std::size_t s = 0; s < config.sessions; ++s) {
    // Same derivation as sim::session_seed: the session's whole stream is a
    // pure function of (seed, id).
    Rng rng(splitmix64(config.seed ^
                       splitmix64(static_cast<std::uint64_t>(s) + 1)));
    // Deterministic staggered arrival: session s comes online at s / rate.
    double t_ms =
        static_cast<double>(s) * 1000.0 / config.session_arrival_per_s;
    for (std::size_t k = 0; k < config.touches_per_session; ++k) {
      t_ms += draw_exponential(rng, mean_gap_ms);
      TouchEvent e;
      e.session = static_cast<std::uint32_t>(s);
      e.seq = static_cast<std::uint32_t>(k);
      e.ts_ms = static_cast<std::uint32_t>(t_ms);
      e.priority = draw_priority(rng);
      e.n_urls = static_cast<std::uint8_t>(
          draw_uniform_int(rng, 1, config.max_urls_per_touch));
      for (std::size_t u = 0; u < e.n_urls; ++u) {
        const double draw = draw_u01(rng);
        const double skewed = std::pow(draw, config.skew_exponent);
        auto idx = static_cast<std::size_t>(
            skewed * static_cast<double>(config.url_universe));
        if (idx >= config.url_universe) idx = config.url_universe - 1;
        e.urls[u] = static_cast<std::uint16_t>(idx);
      }
      events.push_back(e);
    }
  }

  std::sort(events.begin(), events.end(),
            [](const TouchEvent& a, const TouchEvent& b) {
              if (a.ts_ms != b.ts_ms) return a.ts_ms < b.ts_ms;
              if (a.session != b.session) return a.session < b.session;
              return a.seq < b.seq;
            });
  return events;
}

Bytes frontdoor_object_bytes(const FrontDoorLoadConfig& config, std::size_t i) {
  // One stable draw per object: map the mixed (seed, index) hash onto
  // [0, 1), square it to skew small, and scale into [2 KiB, 64 KiB).
  const std::uint64_t h =
      splitmix64(config.seed ^ splitmix64(0xf00d0000ULL + i));
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
  const double sized = 2048.0 + u * u * (65536.0 - 2048.0);
  return static_cast<Bytes>(sized);
}

}  // namespace mfhttp::sim
