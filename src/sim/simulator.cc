#include "sim/simulator.h"

#include <utility>

namespace mfhttp {

Simulator::EventId Simulator::schedule_at(TimeMs time_ms, Callback cb) {
  MFHTTP_CHECK_MSG(time_ms >= now_, "cannot schedule events in the past");
  MFHTTP_CHECK(cb != nullptr);
  EventId id = ++next_id_;
  queue_.push({time_ms, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool Simulator::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    MFHTTP_DCHECK(entry.time >= now_);
    now_ = entry.time;
    cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(TimeMs deadline_ms) {
  MFHTTP_CHECK(deadline_ms >= now_);
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    if (!callbacks_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.time > deadline_ms) break;
    step();
  }
  now_ = deadline_ms;
}

}  // namespace mfhttp
