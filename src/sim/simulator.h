// Single-threaded discrete-event simulator.
//
// Everything time-dependent in the reproduction — link transmission, proxy
// scheduling, scroll animation sampling, player buffering — runs as events
// on this engine, so experiments are exactly reproducible and can simulate
// minutes of wall-clock in milliseconds.
//
// Events at the same timestamp fire in scheduling order (FIFO), which keeps
// causality intuitive: an event scheduled by another event at the same time
// runs after it.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace mfhttp {

class Simulator {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeMs now() const { return now_; }

  // Schedule at an absolute simulated time (>= now).
  EventId schedule_at(TimeMs time_ms, Callback cb);

  // Schedule after a relative delay (>= 0).
  EventId schedule_after(TimeMs delay_ms, Callback cb) {
    return schedule_at(now_ + delay_ms, std::move(cb));
  }

  // Cancel a pending event. Returns false if already fired or cancelled.
  bool cancel(EventId id);

  bool pending(EventId id) const { return callbacks_.contains(id); }
  std::size_t pending_count() const { return callbacks_.size(); }

  // Run the next event; returns false when the queue is empty.
  bool step();

  // Run events until the queue is empty.
  void run();

  // Run all events with time <= deadline, then advance the clock to exactly
  // the deadline (even if no event fired there).
  void run_until(TimeMs deadline_ms);

 private:
  struct QueueEntry {
    TimeMs time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const QueueEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  TimeMs now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace mfhttp
