#include "sim/multi_session.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "http/fetch_pipeline.h"
#include "http/proxy.h"
#include "http/sim_http.h"
#include "net/link.h"
#include "overload/brownout.h"
#include "sim/arrivals.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mfhttp::overload {

namespace {

struct ClassSpec {
  int priority;
  const char* path;
  Bytes bytes;
  TimeMs deadline_ms;
};

// Forwards the request's own priority hint into the intercept decision so
// the proxy's dispatch queue and a kFifo link would order by it.
class HintInterceptor : public Interceptor {
 public:
  InterceptDecision on_request(const HttpRequest& request) override {
    return InterceptDecision::allow(request.priority_hint(kPriorityViewport));
  }
};

struct Outcome {
  int priority = kPriorityViewport;
  TimeMs deadline_ms = 0;
  bool done = false;
  FetchResult result;
  int session = 0;  // shard key: which session issued the request
};

}  // namespace

const char* to_string(Protection protection) {
  switch (protection) {
    case Protection::kNone: return "none";
    case Protection::kBoundedOnly: return "bounded";
    case Protection::kFull: return "full";
  }
  return "?";
}

MultiSessionConfig::MultiSessionConfig() {
  // Driver-scaled defaults: admit roughly twice the downlink's worth of
  // bytes (the dispatch queue and brownout absorb the excess) and keep the
  // in-service population small enough that fair-sharing does not dilute
  // any single transfer below usefulness.
  AdmissionParams& a = overload.admission;
  a.global_rate_per_s = 30;
  a.global_burst = 15;
  a.session_rate_per_s = 4;
  a.session_burst = 3;
  a.max_inflight_upstream = 6;
  a.max_dispatch_queue = 12;
  a.max_deferred_per_session = 8;
  a.max_deferred_global = 64;
  a.seed = seed;

  BrownoutParams& b = overload.brownout;
  b.tick_ms = 200;
  b.queue_depth_high = 12;
  b.deferred_age_high_ms = 1200;
  b.goodput_floor = 10'000;
}

std::string MultiSessionResult::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("protection").value(protection);
  w.key("sessions").value(sessions);
  w.key("rate_per_session_per_s").value(rate_per_session_per_s);
  w.key("requests").value(requests);
  w.key("completed").value(completed);
  w.key("rejected").value(rejected);
  w.key("shed").value(shed);
  w.key("failed").value(failed);
  w.key("stranded").value(stranded);
  w.key("on_time").value(on_time);
  w.key("on_time_bytes").value(static_cast<long long>(on_time_bytes));
  w.key("goodput_bytes_per_s").value(goodput_bytes_per_s);
  w.key("p50_viewport_ms").value(p50_viewport_ms);
  w.key("p99_viewport_ms").value(p99_viewport_ms);
  w.key("makespan_ms").value(static_cast<long long>(makespan_ms));
  w.key("shed_ratio").value(shed_ratio);
  w.key("max_brownout_level").value(max_brownout_level);
  w.key("per_session").begin_array();
  for (const SessionMetrics& s : per_session) {
    w.begin_object();
    w.key("id").value(s.session_id);
    w.key("requests").value(s.requests);
    w.key("completed").value(s.completed);
    w.key("rejected").value(s.rejected);
    w.key("failed").value(s.failed);
    w.key("stranded").value(s.stranded);
    w.key("on_time").value(s.on_time);
    w.key("on_time_bytes").value(static_cast<long long>(s.on_time_bytes));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

MultiSessionResult run_multi_session(const MultiSessionConfig& config) {
  Simulator sim;

  const ClassSpec classes[4] = {
      {kPrioritySpeculative, "/spec.bin", config.speculative_bytes,
       config.speculative_deadline_ms},
      {kPriorityTransient, "/media.bin", config.transient_bytes,
       config.transient_deadline_ms},
      {kPriorityViewport, "/hero.jpg", config.viewport_bytes,
       config.viewport_deadline_ms},
      {kPriorityStructure, "/page.html", config.structure_bytes,
       config.structure_deadline_ms},
  };

  ObjectStore store;
  for (const ClassSpec& c : classes) store.put(c.path, c.bytes);

  Link server_link(sim, {BandwidthTrace::constant(config.server_bytes_per_s),
                         config.server_latency_ms, 5, Link::Sharing::kFifo});
  SimHttpOrigin origin(sim, &store, &server_link, {config.origin_delay_ms});

  AdmissionParams admission_params = config.overload.admission;
  if (config.protection == Protection::kBoundedOnly) {
    admission_params.global_rate_per_s = 0;
    admission_params.session_rate_per_s = 0;
  }
  AdmissionController admission(admission_params);

  HintInterceptor interceptor;
  FetchPipelineBuilder builder(sim, &origin);
  builder
      .client_link(Link::Params{BandwidthTrace::constant(config.client_bytes_per_s),
                                config.client_latency_ms, 5,
                                Link::Sharing::kFairShare})
      .interceptor(&interceptor);
  if (config.protection != Protection::kNone) builder.with_admission(&admission);
  std::unique_ptr<FetchPipeline> pipeline = builder.build();
  MitmProxy& proxy = pipeline->proxy();
  Link& client_link = pipeline->client_link();

  // Brownout supervisor (full arm only): pressure comes from the proxy's
  // waiting queues and the downlink's recent goodput.
  struct GoodputWindow {
    Bytes last_bytes = 0;
    TimeMs last_ms = 0;
  } window;
  int max_level = 0;
  BrownoutSupervisor supervisor(
      sim, config.overload.brownout,
      [&sim, &proxy, &client_link, &admission, &window] {
        BrownoutSignals s;
        s.queue_depth = static_cast<int>(proxy.dispatch_queue_depth() +
                                         proxy.deferred_depth());
        s.max_deferred_age_ms = proxy.oldest_waiting_age_ms();
        s.inflight = admission.inflight_upstream();
        const TimeMs dt = sim.now() - window.last_ms;
        const Bytes moved = client_link.bytes_delivered_total() - window.last_bytes;
        s.goodput = dt > 0 ? static_cast<double>(moved) * 1000.0 /
                                 static_cast<double>(dt)
                           : 0;
        window.last_ms = sim.now();
        window.last_bytes = client_link.bytes_delivered_total();
        return s;
      });
  if (config.protection == Protection::kFull) {
    supervisor.start([&admission, &max_level](BrownoutLevel level) {
      admission.set_brownout_level(level);
      max_level = std::max(max_level, static_cast<int>(level));
    });
    // The supervisor re-arms itself forever; silence it at the horizon so
    // the drain phase can run the event queue dry.
    sim.schedule_at(config.horizon_ms, [&supervisor] { supervisor.stop(); });
  }

  // Pre-draw every session's arrival schedule and class sequence so the
  // trace is a pure function of the seed, independent of service order.
  Rng master(config.seed);
  std::vector<Outcome> outcomes;
  for (int s = 0; s < config.sessions; ++s) {
    Rng arrivals_rng = master.fork();
    Rng class_rng = master.fork();
    const std::string session = "s" + std::to_string(s);
    for (TimeMs at :
         poisson_arrivals({config.rate_per_session_per_s, 0, config.horizon_ms},
                          arrivals_rng)) {
      const double draw = class_rng.uniform(0, 1);
      std::size_t cls = 3;  // structure
      if (draw < config.speculative_fraction) {
        cls = 0;
      } else if (draw < config.speculative_fraction + config.transient_fraction) {
        cls = 1;
      } else if (draw < config.speculative_fraction + config.transient_fraction +
                            config.viewport_fraction) {
        cls = 2;
      }
      const ClassSpec& spec = classes[cls];
      const std::size_t index = outcomes.size();
      outcomes.push_back({spec.priority, spec.deadline_ms, false, {}, s});
      sim.schedule_at(at, [&proxy, &outcomes, index, session, &spec] {
        HttpRequest request =
            HttpRequest::get(std::string("http://origin.test") + spec.path);
        request.set_session(session);
        request.set_priority_hint(spec.priority);
        FetchCallbacks cb;
        cb.on_complete = [&outcomes, index](const FetchResult& r) {
          outcomes[index].done = true;
          outcomes[index].result = r;
        };
        proxy.fetch(request, std::move(cb));
      });
    }
  }

  sim.run();  // arrivals, service, and full drain — nothing may be left over

  MultiSessionResult out;
  out.protection = to_string(config.protection);
  out.sessions = config.sessions;
  out.rate_per_session_per_s = config.rate_per_session_per_s;
  out.max_brownout_level = max_level;

  // Shard every outcome under the session that issued it. The outcomes
  // vector is in pre-drawn arrival order (a pure function of the seed), so
  // nothing below can observe completion order.
  out.per_session.resize(static_cast<std::size_t>(config.sessions));
  for (int s = 0; s < config.sessions; ++s)
    out.per_session[static_cast<std::size_t>(s)].session_id = s;

  Samples viewport_ms;
  for (const Outcome& o : outcomes) {
    SessionMetrics& shard = out.per_session[static_cast<std::size_t>(o.session)];
    ++shard.requests;
    if (!o.done) {
      ++shard.stranded;
      continue;
    }
    if (o.result.rejected) {
      ++shard.rejected;
      continue;
    }
    if (o.result.status != 200) {
      ++shard.failed;
      continue;
    }
    ++shard.completed;
    out.makespan_ms = std::max(out.makespan_ms, o.result.complete_ms);
    if (o.result.latency_ms() <= o.deadline_ms) {
      ++shard.on_time;
      shard.on_time_bytes += o.result.body_size;
    }
    if (o.priority == kPriorityViewport) {
      viewport_ms.add(static_cast<double>(o.result.latency_ms()));
    }
  }

  // Batch totals merge the shards in session-id order — never completion
  // order — so the same trace always folds the same way.
  for (const SessionMetrics& shard : out.per_session) {
    out.requests += shard.requests;
    out.completed += shard.completed;
    out.rejected += shard.rejected;
    out.failed += shard.failed;
    out.stranded += shard.stranded;
    out.on_time += shard.on_time;
    out.on_time_bytes += shard.on_time_bytes;
  }
  out.shed = proxy.stats().shed;
  out.rejected = out.rejected >= out.shed ? out.rejected - out.shed : 0;
  if (out.makespan_ms == 0) out.makespan_ms = config.horizon_ms;
  out.goodput_bytes_per_s = static_cast<double>(out.on_time_bytes) * 1000.0 /
                            static_cast<double>(out.makespan_ms);
  if (viewport_ms.count() > 0) {
    out.p50_viewport_ms = viewport_ms.percentile(50);
    out.p99_viewport_ms = viewport_ms.percentile(99);
  }
  if (!outcomes.empty()) {
    out.shed_ratio = static_cast<double>(out.rejected + out.shed) /
                     static_cast<double>(outcomes.size());
  }
  return out;
}

}  // namespace mfhttp::overload
