#include "sim/session_world.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "core/middleware.h"
#include "gesture/synthetic.h"
#include "net/bandwidth_trace.h"
#include "obs/metrics.h"
#include "scroll/device_profile.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"
#include "web/corpus.h"

namespace mfhttp::sim {

namespace {

// FNV-1a over raw bytes; doubles hash by bit pattern, so the fingerprint
// detects even sub-ulp drift between runs.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* p, std::size_t n) {
    const unsigned char* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i32(std::int32_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
};

// Expand the corpus's single-version images to `versions` ascending
// resolutions, so the flow controller's knapsack chooses quality levels the
// way §3.4 intends (the corpus's single file becomes the middle version).
std::vector<MediaObject> expand_versions(std::vector<MediaObject> images,
                                         std::size_t versions) {
  if (versions <= 1) return images;
  static const double kSizeFactor[] = {0.25, 1.0, 2.5, 5.0, 9.0};
  static const double kResolution[] = {360, 720, 1080, 1440, 2160};
  const std::size_t m =
      versions < std::size(kSizeFactor) ? versions : std::size(kSizeFactor);
  for (MediaObject& obj : images) {
    MFHTTP_CHECK(!obj.versions.empty());
    const MediaVersion base = obj.versions.front();
    obj.versions.clear();
    for (std::size_t j = 0; j < m; ++j) {
      MediaVersion v;
      v.resolution = kResolution[j];
      v.size = static_cast<Bytes>(static_cast<double>(base.size) * kSizeFactor[j]);
      if (v.size < 1) v.size = 1;
      v.url = base.url + "?v=" + std::to_string(j);
      obj.versions.push_back(std::move(v));
    }
  }
  return images;
}

}  // namespace

std::uint64_t session_seed(std::uint64_t seed, std::size_t id) {
  return splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(id) + 1));
}

ScaleSessionResult run_scale_session(const ScaleSessionConfig& config,
                                     std::size_t id) {
  const auto wall_start = std::chrono::steady_clock::now();
  ScaleSessionResult r;
  r.session_id = id;
  r.seed = session_seed(config.seed, id);

  // Every stochastic input forks off this one generator, in a fixed order —
  // the whole world is a pure function of r.seed.
  Rng master(r.seed);
  Rng page_rng = master.fork();
  Rng bw_rng = master.fork();
  Rng gesture_rng = master.fork();

  const DeviceProfile& device = config.device;
  const std::vector<SiteSpec>& specs = alexa25_specs();
  const SiteSpec& spec = specs[id % specs.size()];
  WebPage page = generate_page(spec, device, page_rng);
  std::vector<MediaObject> objects =
      expand_versions(page.images, config.versions_per_object);
  r.site = page.site;
  r.objects = objects.size();

  const double mean_bps = config.mean_bandwidth_mbps * 1e6 / 8.0;
  BandwidthTrace bandwidth = BandwidthTrace::random_walk(
      bw_rng, mean_bps, mean_bps * 0.3, mean_bps * 0.2, mean_bps * 2.0,
      /*slots=*/180);

  Middleware::Params params;
  params.tracker.scroll = ScrollConfig(device);
  params.tracker.scroll.fling.friction *= config.fling_friction_scale;
  params.tracker.content_bounds = page.bounds();
  params.initial_viewport = {0, 0, device.screen_w_px, device.screen_h_px};
  Middleware middleware(std::move(params), std::move(objects),
                        std::move(bandwidth), /*sim=*/nullptr);

  Fnv fp;
  middleware.set_policy_callback(
      [&](const ScrollAnalysis& analysis, const DownloadPolicy& policy) {
        ++r.scrolls;
        r.involved += policy.decisions.size();
        r.planned_bytes += static_cast<std::uint64_t>(policy.total_bytes);
        r.objective_sum += policy.objective;
        fp.u64(policy.decisions.size());
        fp.f64(policy.objective);
        for (const DownloadDecision& d : policy.decisions) {
          if (d.download()) {
            ++r.downloads;
            r.qoe_sum += d.qoe;
          }
          fp.u64(d.object_index);
          fp.i32(d.version);
          fp.f64(d.entry_time_ms);
          fp.f64(d.value);
        }
        fp.f64(analysis.prediction.displacement.y);
        fp.f64(analysis.prediction.duration_ms);
      });

  TouchEventMonitor monitor(
      device, [&](const Gesture& g) { middleware.on_gesture(g); });
  BrowsingGestureSource gestures(device, config.gestures, gesture_rng);

  TimeMs next_down_ms = 0;
  for (std::size_t g = 0; g < config.gestures_per_session; ++g) {
    TouchTrace trace = gestures.next_swipe(next_down_ms);
    MFHTTP_CHECK(!trace.empty());
    const std::size_t scrolls_before = r.scrolls;
    monitor.feed(trace);
    ++r.gestures;
    next_down_ms = trace.back().time_ms;
    if (r.scrolls != scrolls_before)
      r.touch_to_policy_ms.push_back(middleware.last_touch_to_policy_ms());
  }

  r.fingerprint = fp.h;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  return r;
}

ScaleRunResult run_scale_sessions(const ScaleSessionConfig& config) {
  static obs::Counter& sessions_total =
      obs::metrics().counter("sim.scale.sessions_total");
  const auto wall_start = std::chrono::steady_clock::now();

  ScaleRunResult out;
  out.config = config;
  out.sessions.resize(config.sessions);

  // Each task writes only its own slot; the runner guarantees fn(i) runs
  // exactly once. Merging below iterates slots in id order.
  ParallelRunner runner(config.workers);
  out.stats = runner.run(config.sessions, [&](std::size_t i) {
    out.sessions[i] = run_scale_session(config, i);
  });

  for (const ScaleSessionResult& s : out.sessions) {
    out.total_scrolls += s.scrolls;
    out.total_planned_bytes += s.planned_bytes;
    out.total_objective += s.objective_sum;
  }
  sessions_total.inc(config.sessions);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return out;
}

std::string ScaleRunResult::deterministic_json() const {
  // Deliberately excludes wall_ms, touch_to_policy_ms, and stats (worker
  // count, steals): everything here must be identical across runs of the
  // same config at any parallelism.
  JsonWriter w;
  w.begin_object();
  w.key("config").begin_object();
  w.key("seed").value(static_cast<unsigned long long>(config.seed));
  w.key("sessions").value(config.sessions);
  w.key("gestures_per_session").value(config.gestures_per_session);
  w.key("versions_per_object").value(config.versions_per_object);
  w.key("mean_bandwidth_mbps").value(config.mean_bandwidth_mbps);
  w.end_object();
  w.key("totals").begin_object();
  w.key("scrolls").value(total_scrolls);
  w.key("planned_bytes").value(static_cast<unsigned long long>(total_planned_bytes));
  w.key("objective").value(total_objective);
  w.end_object();
  w.key("sessions").begin_array();
  for (const ScaleSessionResult& s : sessions) {
    w.begin_object();
    w.key("id").value(s.session_id);
    w.key("seed").value(static_cast<unsigned long long>(s.seed));
    w.key("site").value(s.site);
    w.key("objects").value(s.objects);
    w.key("gestures").value(s.gestures);
    w.key("scrolls").value(s.scrolls);
    w.key("involved").value(s.involved);
    w.key("downloads").value(s.downloads);
    w.key("planned_bytes").value(static_cast<unsigned long long>(s.planned_bytes));
    w.key("objective_sum").value(s.objective_sum);
    w.key("qoe_sum").value(s.qoe_sum);
    w.key("fingerprint").value(static_cast<unsigned long long>(s.fingerprint));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace mfhttp::sim
