// Multi-session overload driver (ISSUE 3 tentpole, part 4).
//
// Simulates N independent client sessions hammering one MitmProxy over a
// shared fair-share downlink (the proxy's bottleneck hop — what N parallel
// TCP connections through one middleware box approximate). Arrivals are
// open-loop Poisson per session: load keeps coming whether or not earlier
// requests finished, which is what actually pushes a server over the cliff.
//
// Each request carries a session id and a priority-class hint
// (speculative / transient / viewport / structure); the driver runs one of
// three protection arms over the identical seeded arrival trace:
//
//   kNone        — no admission control at all; every request is served and
//                  the downlink degrades collectively,
//   kBoundedOnly — bounded queues + the in-service concurrency cap, but no
//                  rate limiting and no brownout,
//   kFull        — rate limiting, priority guards, concurrency caps, and
//                  the brownout supervisor shedding low classes first.
//
// The result reports the overload-literature triple: on-time goodput (bytes
// of responses that completed within their class deadline, per second of
// makespan), exact P99 viewport-class load time, and the shed ratio —
// plus a stranded count that must be zero (every request either completes
// or is explicitly rejected; nothing may hang forever).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "overload/config.h"
#include "util/types.h"

namespace mfhttp::overload {

enum class Protection { kNone, kBoundedOnly, kFull };

const char* to_string(Protection protection);

struct MultiSessionConfig {
  int sessions = 8;
  double rate_per_session_per_s = 1.5;  // open-loop arrivals per session
  TimeMs horizon_ms = 6000;             // arrivals stop here; drain continues
  std::uint64_t seed = 1;

  // Workload mix (remainder is structure-class).
  double speculative_fraction = 0.25;
  double transient_fraction = 0.25;
  double viewport_fraction = 0.40;

  // Response body per class and the on-time deadline its bytes count under.
  Bytes speculative_bytes = 16'000;
  Bytes transient_bytes = 20'000;
  Bytes viewport_bytes = 24'000;
  Bytes structure_bytes = 8'000;
  TimeMs speculative_deadline_ms = 4000;
  TimeMs transient_deadline_ms = 3000;
  TimeMs viewport_deadline_ms = 2000;
  TimeMs structure_deadline_ms = 1500;

  // Shared bottleneck downlink (fair-share) and the fast origin hop.
  BytesPerSec client_bytes_per_s = 250'000;
  TimeMs client_latency_ms = 5;
  BytesPerSec server_bytes_per_s = 2'000'000;
  TimeMs server_latency_ms = 2;
  TimeMs origin_delay_ms = 10;

  Protection protection = Protection::kFull;
  // Tuning for the protected arms. kBoundedOnly zeroes the rate limiters
  // and skips the brownout supervisor; kNone ignores this entirely.
  OverloadConfig overload;

  MultiSessionConfig();  // fills `overload` with driver-scaled defaults
};

// Per-session shard of the result. Outcomes are attributed to the session
// that issued the request and merged into batch totals by session id — the
// order requests *complete* in (a scheduling artifact) never influences
// what is reported.
struct SessionMetrics {
  int session_id = 0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;  // admission bounce or shed, as the session saw it
  std::size_t failed = 0;
  std::size_t stranded = 0;
  std::size_t on_time = 0;
  Bytes on_time_bytes = 0;
};

struct MultiSessionResult {
  std::string protection;
  int sessions = 0;
  double rate_per_session_per_s = 0;

  // One shard per session, indexed and merged by session id.
  std::vector<SessionMetrics> per_session;

  std::size_t requests = 0;
  std::size_t completed = 0;   // 200, bytes fully delivered
  std::size_t rejected = 0;    // admission bounce (429/503)
  std::size_t shed = 0;        // brownout shed (subset of rejected semantics)
  std::size_t failed = 0;      // non-200, non-rejected
  std::size_t stranded = 0;    // never completed, never rejected — must be 0
  std::size_t on_time = 0;     // completed within the class deadline

  Bytes on_time_bytes = 0;
  double goodput_bytes_per_s = 0;  // on_time_bytes / makespan
  double p50_viewport_ms = 0;      // over completed viewport requests
  double p99_viewport_ms = 0;
  TimeMs makespan_ms = 0;          // last completion (or horizon if none)
  double shed_ratio = 0;           // (rejected + shed) / requests
  int max_brownout_level = 0;

  std::string to_json() const;
};

MultiSessionResult run_multi_session(const MultiSessionConfig& config);

}  // namespace mfhttp::overload
