#include "sim/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp::sim {

namespace {

// One worker's task queue. The owner pops from the front (cache-friendly
// index order within its block); thieves steal from the back (the largest
// indices, minimizing contention on the owner's working end). A plain
// mutex-per-deque keeps the protocol obviously correct — the tasks here are
// whole simulated sessions, so queue operations are nowhere near the
// bottleneck.
struct WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;

  bool pop_front(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.front();
    tasks.pop_front();
    return true;
  }

  bool steal_back(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.back();
    tasks.pop_back();
    return true;
  }
};

}  // namespace

ParallelRunner::ParallelRunner(std::size_t workers) : workers_(workers) {
  if (workers_ == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers_ = hw > 0 ? static_cast<std::size_t>(hw) : 1;
  }
}

ParallelRunStats ParallelRunner::run(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  MFHTTP_CHECK(fn != nullptr);
  ParallelRunStats stats;
  stats.tasks = count;
  stats.workers = std::max<std::size_t>(1, std::min(workers_, std::max<std::size_t>(count, 1)));
  if (count == 0) return stats;

  static obs::Counter& runs_total =
      obs::metrics().counter("sim.parallel.runs_total");
  static obs::Counter& tasks_total =
      obs::metrics().counter("sim.parallel.tasks_total");
  static obs::Counter& steals_total =
      obs::metrics().counter("sim.parallel.steals_total");
  runs_total.inc();
  tasks_total.inc(count);

  if (stats.workers == 1) {
    // Serial baseline: inline, index order. This is the path every parallel
    // run must reproduce bit for bit.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return stats;
  }

  const std::size_t W = stats.workers;
  std::vector<WorkerDeque> deques(W);
  // Block partition: worker w starts with the contiguous index range
  // [w * count / W, (w+1) * count / W). Contiguity keeps each worker's
  // initial sweep in index order; imbalance (sessions are not equal-cost)
  // is absorbed by stealing.
  for (std::size_t w = 0; w < W; ++w) {
    const std::size_t begin = w * count / W;
    const std::size_t end = (w + 1) * count / W;
    for (std::size_t i = begin; i < end; ++i) deques[w].tasks.push_back(i);
  }

  std::atomic<std::uint64_t> steals{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker_loop = [&](std::size_t w) {
    std::size_t task = 0;
    while (!failed.load(std::memory_order_relaxed)) {
      if (deques[w].pop_front(&task)) {
        // fall through to execute
      } else {
        // Own deque dry: scan the others round-robin from our right-hand
        // neighbor and steal their highest-index task.
        bool stole = false;
        for (std::size_t k = 1; k < W && !stole; ++k)
          stole = deques[(w + k) % W].steal_back(&task);
        if (!stole) return;  // every deque empty: batch is drained
        steals.fetch_add(1, std::memory_order_relaxed);
      }
      try {
        fn(task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(W);
  for (std::size_t w = 0; w < W; ++w) threads.emplace_back(worker_loop, w);
  for (std::thread& t : threads) t.join();

  stats.steals = steals.load(std::memory_order_relaxed);
  steals_total.inc(stats.steals);
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

}  // namespace mfhttp::sim
