// Deterministic touch-event load for the sharded front door (DESIGN.md
// §13, http/frontdoor.h).
//
// The front door is judged on how many *concurrent sessions* it can serve,
// so its workload is wide and shallow: up to a million sessions, each
// producing a handful of scroll-touch events, every event naming the small
// set of objects the scroll position made relevant. This generator
// pre-draws that entire timeline from a seeded Rng — per session, from a
// seed that is a pure function of (master seed, session id) via splitmix64
// (the same derivation sim/session_world.h uses) — and returns it globally
// sorted by timestamp. The draws map raw mt19937_64 output (standardized
// bit-for-bit) through explicit inverse CDFs rather than std::
// distributions (whose algorithms are implementation-defined and differ
// between libstdc++ and libc++), so two runs of the same config produce
// the same byte sequence of events across standard libraries, shard
// counts, and thread schedules; all nondeterminism in a front-door run
// lives strictly downstream of this vector.
//
// Events are 20 bytes on purpose: a million-session sweep holds the whole
// timeline in memory while the producer streams it into the shard queues.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace mfhttp::scenario {
struct ScenarioSpec;
}

namespace mfhttp::sim {

struct FrontDoorLoadConfig {
  std::uint64_t seed = 1;
  std::size_t sessions = 1000;
  std::size_t touches_per_session = 4;
  // Distinct objects across the whole deployment (shared working set; the
  // cache-hit ratio is a function of this vs. segment capacity). Capped at
  // 65536 so an event stays pointer-free.
  std::size_t url_universe = 4096;
  // Popularity skew: each reference draws u ~ U[0,1) and touches object
  // floor(u^skew_exponent * universe) — larger exponents concentrate
  // traffic on the hot head, exercising admission + ghost history.
  double skew_exponent = 3.0;
  // Per-session Poisson touch rate once the session has arrived.
  double touch_rate_per_s = 2.0;
  // Open-loop session arrival rate: session s starts at s / rate seconds,
  // so steady-state concurrency is arrival_rate x session lifetime no
  // matter how many total sessions the sweep replays. 0 would mean "all at
  // t=0", which melts any box at a million sessions — keep it positive.
  double session_arrival_per_s = 2000.0;
  std::size_t max_urls_per_touch = 3;  // 1..3 objects per touch

  // Load config from a scenario: seed, session count, touch cadence scaled
  // by the device class. Defined in the mfhttp_scenario library.
  static FrontDoorLoadConfig from_scenario(const scenario::ScenarioSpec& spec);
};

struct TouchEvent {
  std::uint32_t session = 0;
  std::uint32_t seq = 0;        // touch index within the session
  std::uint32_t ts_ms = 0;      // simulated arrival time
  std::uint8_t priority = 2;    // overload::kPriority* class
  std::uint8_t n_urls = 0;
  std::uint16_t urls[3] = {0, 0, 0};  // indices into the URL universe
};

// The full timeline, sorted by (ts_ms, session, seq). Pure function of the
// config. Ties between sessions break by session id, so the global order —
// and with it the byte-identity gate between the unsharded and the
// single-shard front door — is total and stable.
std::vector<TouchEvent> generate_frontdoor_load(
    const FrontDoorLoadConfig& config);

// Object size (bytes) for URL index `i` under this config's seed: a stable
// per-object draw in [2 KiB, 64 KiB), skewed small — hot thumbnails and the
// occasional hero image, matching the paper's page corpus shape.
Bytes frontdoor_object_bytes(const FrontDoorLoadConfig& config, std::size_t i);

}  // namespace mfhttp::sim
