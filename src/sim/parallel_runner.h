// Work-stealing executor for embarrassingly-parallel simulation batches
// (DESIGN.md §12): N independent tasks (one per simulated session) spread
// over W worker threads, with results slotted by task index so the outcome
// of a run is a pure function of (tasks, task bodies) — never of thread
// scheduling.
//
// Determinism contract:
//   * Task bodies must be shared-nothing: each task owns its world (its RNG
//     streams, its middleware stack, its metric shards) and writes only to
//     its own result slot. The runner supplies the index; the caller
//     pre-sizes the result vector.
//   * The runner decides only WHERE and WHEN a task runs, never WHAT it
//     computes. run(count, fn) with workers() == 1 executes inline on the
//     calling thread in index order — the serial baseline any worker count
//     must reproduce bit for bit.
//   * Merging (by the caller) must iterate result slots in index order, not
//     completion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace mfhttp::sim {

struct ParallelRunStats {
  std::size_t tasks = 0;
  std::size_t workers = 1;
  // Tasks a worker executed from another worker's deque. 0 when the initial
  // block partition was perfectly balanced (or workers == 1).
  std::uint64_t steals = 0;
};

class ParallelRunner {
 public:
  // workers == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ParallelRunner(std::size_t workers = 0);

  std::size_t workers() const { return workers_; }

  // Invoke fn(i) exactly once for every i in [0, count), blocking until all
  // are done. Threads are spawned per run (sessions are coarse; pool reuse
  // would buy microseconds) and joined before returning. A task that throws
  // aborts the batch: the first exception is rethrown on the caller after
  // every worker has drained.
  ParallelRunStats run(std::size_t count,
                       const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t workers_;
};

}  // namespace mfhttp::sim
