// Seeded arrival-process generators for load experiments.
//
// Overload studies need open-loop traffic: arrivals keep coming whether or
// not earlier requests finished, which is what actually drives a server into
// saturation (closed-loop clients self-throttle and hide the cliff). The
// generators here pre-draw a full arrival schedule from a seeded Rng so a
// sweep arm can be replayed exactly.
#pragma once

#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace mfhttp {

struct ArrivalParams {
  double rate_per_s = 1.0;  // mean arrival rate
  TimeMs start_ms = 0;      // first arrival no earlier than this
  TimeMs horizon_ms = 0;    // no arrivals at or past this time
};

// Poisson process: exponential i.i.d. gaps with mean 1000/rate_per_s ms.
// Returns strictly increasing timestamps in [start_ms, horizon_ms).
std::vector<TimeMs> poisson_arrivals(const ArrivalParams& params, Rng& rng);

// Deterministic evenly-spaced arrivals with the same envelope — the control
// arm for separating burstiness effects from rate effects.
std::vector<TimeMs> uniform_arrivals(const ArrivalParams& params);

}  // namespace mfhttp
