// The standard flag set every mfhttp bench and example speaks — one RAII
// object built on util/cli_options.h (ISSUE 4 satellite; supersedes the
// fault layer's StandardFlagsGuard):
//
//   --metrics-json <path>    dump the obs registry snapshot at exit,
//   --fault-plan <path>      install an ambient fault::global_plan() for
//                            every session the binary runs,
//   --cache-config <path>    load a prefetch::CacheConfig (cache sizing +
//                            prefetch budget) for tools that take one,
//   --transport sim|socket   origin backend for pipelines built through
//                            FetchPipelineBuilder::with_origin (sim: the
//                            discrete-event SimHttpOrigin; socket: the real
//                            epoll loopback transport, DESIGN.md §15).
//
// Construction registers the flags (plus any binary-specific ones via the
// `extend` hook), parses argv in place, and *loads* the named files —
// exiting 2 with the shared error format when a named payload cannot be
// used, because a bench that silently ran fault-free or cache-free did not
// measure what its command line claims. Destruction writes the metrics
// snapshot and uninstalls the fault plan, so consecutive binaries in one
// test run never leak state into each other.
#pragma once

#include <functional>
#include <string>

#include "http/transport.h"
#include "prefetch/cache_config.h"
#include "util/cli_options.h"

namespace mfhttp::cli {

class StandardOptions {
 public:
  // `extend` registers extra binary-specific flags on the same parser (and
  // shares its error formatting); unrecognized argv entries survive for
  // downstream parsers such as benchmark::Initialize.
  using ExtendFn = std::function<void(CliOptions&)>;
  StandardOptions(int& argc, char** argv, const ExtendFn& extend = {});
  ~StandardOptions();
  StandardOptions(const StandardOptions&) = delete;
  StandardOptions& operator=(const StandardOptions&) = delete;

  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& fault_plan_path() const { return fault_plan_path_; }
  const std::string& cache_config_path() const { return cache_config_path_; }

  // The loaded --cache-config, or default-constructed when absent.
  const prefetch::CacheConfig& cache_config() const { return cache_config_; }
  bool has_cache_config() const { return !cache_config_path_.empty(); }

  // The parsed --transport (default kSim). Binaries pass this to
  // FetchPipelineBuilder::with_transport.
  TransportKind transport() const { return transport_; }

 private:
  std::string metrics_path_;
  std::string fault_plan_path_;
  std::string cache_config_path_;
  std::string transport_name_;
  TransportKind transport_ = TransportKind::kSim;
  prefetch::CacheConfig cache_config_;
};

}  // namespace mfhttp::cli
