// The standard flag set every mfhttp bench and example speaks — one RAII
// object built on util/cli_options.h (ISSUE 4 satellite; supersedes the
// fault layer's StandardFlagsGuard):
//
//   --metrics-json <path>    dump the obs registry snapshot at exit,
//   --scenario <path>        load a scenario::ScenarioSpec (device class +
//                            network profile + workload + fault/cache/
//                            overload sections, DESIGN.md §16) and install
//                            its compiled fault plan as the ambient
//                            fault::global_plan() for every session,
//   --fault-plan <path>      DEPRECATED alias: install a bare fault plan.
//                            Prefer a "fault" section in --scenario,
//   --cache-config <path>    DEPRECATED alias: load a prefetch::CacheConfig.
//                            Prefer a "cache" section in --scenario,
//   --transport sim|socket   origin backend for pipelines built through
//                            FetchPipelineBuilder::with_origin (sim: the
//                            discrete-event SimHttpOrigin; socket: the real
//                            epoll loopback transport, DESIGN.md §15).
//
// Precedence when flags are combined: --scenario loads first and is the
// source of truth; a deprecated alias given *alongside* it overrides the
// matching section of the spec (the override is logged, so a command line
// that contradicts its scenario is visible in the run log). An alias given
// *without* --scenario keeps its historical behavior unchanged — existing
// scripts keep working, they just get a deprecation warning pointing at the
// scenario equivalent.
//
// Construction registers the flags (plus any binary-specific ones via the
// `extend` hook), parses argv in place, and *loads* the named files —
// exiting 2 with the shared error format when a named payload cannot be
// used, because a bench that silently ran fault-free or cache-free did not
// measure what its command line claims. Destruction writes the metrics
// snapshot and uninstalls the fault plan, so consecutive binaries in one
// test run never leak state into each other.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "http/transport.h"
#include "prefetch/cache_config.h"
#include "scenario/scenario_spec.h"
#include "util/cli_options.h"

namespace mfhttp::cli {

class StandardOptions {
 public:
  // `extend` registers extra binary-specific flags on the same parser (and
  // shares its error formatting); unrecognized argv entries survive for
  // downstream parsers such as benchmark::Initialize.
  using ExtendFn = std::function<void(CliOptions&)>;
  StandardOptions(int& argc, char** argv, const ExtendFn& extend = {});
  ~StandardOptions();
  StandardOptions(const StandardOptions&) = delete;
  StandardOptions& operator=(const StandardOptions&) = delete;

  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& fault_plan_path() const { return fault_plan_path_; }
  const std::string& cache_config_path() const { return cache_config_path_; }
  const std::string& scenario_path() const { return scenario_path_; }

  // The loaded --scenario (with any deprecated-alias overrides applied);
  // nullopt when the flag was absent.
  bool has_scenario() const { return scenario_.has_value(); }
  const scenario::ScenarioSpec& scenario() const { return *scenario_; }

  // The effective cache configuration: the --scenario spec's "cache"
  // section, unless the deprecated --cache-config override was given.
  // Default-constructed when neither was.
  const prefetch::CacheConfig& cache_config() const { return cache_config_; }
  bool has_cache_config() const { return has_cache_config_; }

  // The parsed --transport (default kSim). Binaries pass this to
  // FetchPipelineBuilder::with_transport.
  TransportKind transport() const { return transport_; }

 private:
  std::string metrics_path_;
  std::string fault_plan_path_;
  std::string cache_config_path_;
  std::string scenario_path_;
  std::string transport_name_;
  TransportKind transport_ = TransportKind::kSim;
  std::optional<scenario::ScenarioSpec> scenario_;
  prefetch::CacheConfig cache_config_;
  bool has_cache_config_ = false;
  bool fault_plan_installed_ = false;
};

}  // namespace mfhttp::cli
