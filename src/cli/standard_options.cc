#include "cli/standard_options.h"

#include <optional>
#include <utility>

#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace mfhttp::cli {

StandardOptions::StandardOptions(int& argc, char** argv,
                                 const ExtendFn& extend) {
  CliOptions options(argc > 0 ? argv[0] : "mfhttp");
  options
      .add_string("--metrics-json", "path",
                  "write the metrics registry snapshot here at exit",
                  &metrics_path_)
      .add_string("--fault-plan", "path",
                  "install this fault plan for every session in the binary",
                  &fault_plan_path_)
      .add_string("--cache-config", "path",
                  "cache sizing + prefetch budget (prefetch/cache_config.h)",
                  &cache_config_path_)
      .add_string("--transport", "sim|socket",
                  "origin backend: discrete-event sim or real epoll loopback",
                  &transport_name_);
  if (extend) extend(options);
  options.parse_or_exit(argc, argv);

  if (!transport_name_.empty()) {
    auto kind = transport_kind_from_name(transport_name_);
    if (!kind.has_value())
      CliOptions::fail("--transport", transport_name_, "expected sim or socket");
    transport_ = *kind;
  }

  if (!fault_plan_path_.empty()) {
    std::string why;
    auto plan = fault::FaultPlan::load(fault_plan_path_, &why);
    if (!plan.has_value()) CliOptions::fail("--fault-plan", fault_plan_path_, why);
    MFHTTP_INFO << "fault plan '"
                << (plan->name.empty() ? fault_plan_path_ : plan->name)
                << "' installed (seed " << plan->seed << ")";
    fault::set_global_plan(std::move(plan));
  }

  if (!cache_config_path_.empty()) {
    std::string why;
    auto config = prefetch::CacheConfig::load(cache_config_path_, &why);
    if (!config.has_value())
      CliOptions::fail("--cache-config", cache_config_path_, why);
    cache_config_ = *std::move(config);
  }
}

StandardOptions::~StandardOptions() {
  if (!fault_plan_path_.empty()) fault::set_global_plan(std::nullopt);
  if (!metrics_path_.empty()) obs::write_snapshot_file(metrics_path_);
}

}  // namespace mfhttp::cli
