#include "cli/standard_options.h"

#include <utility>

#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace mfhttp::cli {

StandardOptions::StandardOptions(int& argc, char** argv,
                                 const ExtendFn& extend) {
  CliOptions options(argc > 0 ? argv[0] : "mfhttp");
  options
      .add_string("--metrics-json", "path",
                  "write the metrics registry snapshot here at exit",
                  &metrics_path_)
      .add_string("--scenario", "path",
                  "scenario spec: device x network x workload + fault/cache/"
                  "overload sections (src/scenario/scenario_spec.h)",
                  &scenario_path_)
      .add_string("--fault-plan", "path",
                  "DEPRECATED: bare fault plan; prefer a 'fault' section in "
                  "--scenario",
                  &fault_plan_path_)
      .add_string("--cache-config", "path",
                  "DEPRECATED: bare cache config; prefer a 'cache' section "
                  "in --scenario",
                  &cache_config_path_)
      .add_string("--transport", "sim|socket",
                  "origin backend: discrete-event sim or real epoll loopback",
                  &transport_name_);
  if (extend) extend(options);
  options.parse_or_exit(argc, argv);

  if (!transport_name_.empty()) {
    auto kind = transport_kind_from_name(transport_name_);
    if (!kind.has_value())
      CliOptions::fail("--transport", transport_name_, "expected sim or socket");
    transport_ = *kind;
  }

  if (!scenario_path_.empty()) {
    std::string why;
    scenario_ = scenario::ScenarioSpec::load(scenario_path_, &why);
    if (!scenario_.has_value())
      CliOptions::fail("--scenario", scenario_path_, why);
    MFHTTP_INFO << "scenario '" << scenario_->name << "' loaded ("
                << scenario_->device.name << " x " << scenario_->network.name
                << " x " << workload_kind_name(scenario_->workload.kind)
                << ", seed " << scenario_->seed << ")";
    if (scenario_->cache.has_value()) {
      cache_config_ = *scenario_->cache;
      has_cache_config_ = true;
    }
  }

  if (!fault_plan_path_.empty()) {
    std::string why;
    auto plan = fault::FaultPlan::load(fault_plan_path_, &why);
    if (!plan.has_value()) CliOptions::fail("--fault-plan", fault_plan_path_, why);
    MFHTTP_WARN << "--fault-plan is deprecated; prefer a \"fault\" section "
                   "in --scenario";
    if (scenario_.has_value()) {
      // Alias-beside-scenario: the explicit plan overrides the spec's fault
      // section, so every consumer (scenario wiring included) sees it.
      MFHTTP_INFO << "--fault-plan overrides scenario '" << scenario_->name
                  << "' fault section";
      scenario_->fault = *plan;
    }
    MFHTTP_INFO << "fault plan '"
                << (plan->name.empty() ? fault_plan_path_ : plan->name)
                << "' installed (seed " << plan->seed << ")";
    fault::set_global_plan(std::move(plan));
    fault_plan_installed_ = true;
  } else if (scenario_.has_value()) {
    // The scenario's fault section plus any network-profile handover
    // windows become the ambient plan, exactly as --fault-plan would.
    if (auto plan = scenario_->compiled_fault_plan()) {
      MFHTTP_INFO << "fault plan '" << plan->name << "' installed from "
                  << "scenario (seed " << plan->seed << ")";
      fault::set_global_plan(std::move(plan));
      fault_plan_installed_ = true;
    }
  }

  if (!cache_config_path_.empty()) {
    std::string why;
    auto config = prefetch::CacheConfig::load(cache_config_path_, &why);
    if (!config.has_value())
      CliOptions::fail("--cache-config", cache_config_path_, why);
    MFHTTP_WARN << "--cache-config is deprecated; prefer a \"cache\" section "
                   "in --scenario";
    if (scenario_.has_value()) {
      MFHTTP_INFO << "--cache-config overrides scenario '" << scenario_->name
                  << "' cache section";
      scenario_->cache = *config;
    }
    cache_config_ = *std::move(config);
    has_cache_config_ = true;
  }
}

StandardOptions::~StandardOptions() {
  if (fault_plan_installed_) fault::set_global_plan(std::nullopt);
  if (!metrics_path_.empty()) obs::write_snapshot_file(metrics_path_);
}

}  // namespace mfhttp::cli
