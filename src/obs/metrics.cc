#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "util/check.h"
#include "util/json.h"
#include "util/logging.h"

namespace mfhttp::obs {

std::size_t Counter::this_thread_shard() {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t shard =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  MFHTTP_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  MFHTTP_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end(),
                                  [](double a, double b) { return a <= b; }),
                   "histogram bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) {
  // First bound >= v; everything beyond the last bound lands in the
  // overflow bucket at index bounds_.size().
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> needs C++20 library support; a CAS loop is
  // portable and the histogram path is not contended in practice.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based); walk buckets until the running
  // count reaches it, then interpolate linearly inside that bucket.
  const double rank = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow: clamp
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  MFHTTP_CHECK(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double start, double factor, int count) {
  MFHTTP_CHECK(start > 0 && factor > 1 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

std::vector<double> linear_bounds(double start, double width, int count) {
  MFHTTP_CHECK(width > 0 && count >= 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i, b += width) bounds.push_back(b);
  return bounds;
}

const std::vector<double>& latency_ms_bounds() {
  static const std::vector<double> bounds = exponential_bounds(0.001, 4.0, 11);
  return bounds;
}

const std::vector<double>& stall_ms_bounds() {
  // Supervision stalls live between a scheduler hiccup (~1 ms) and a dead
  // worker (~multi-second): 1 ms .. ~8 s, 2x steps.
  static const std::vector<double> bounds = exponential_bounds(1.0, 2.0, 14);
  return bounds;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  MFHTTP_CHECK_MSG(!gauges_.count(std::string(name)) &&
                       !histograms_.count(std::string(name)),
                   "metric name already registered with a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  MFHTTP_CHECK_MSG(!counters_.count(std::string(name)) &&
                       !histograms_.count(std::string(name)),
                   "metric name already registered with a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  MFHTTP_CHECK_MSG(!counters_.count(std::string(name)) &&
                       !gauges_.count(std::string(name)),
                   "metric name already registered with a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    MFHTTP_CHECK_MSG(!bounds.empty(),
                     "first registration of a histogram must supply bounds");
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

std::int64_t Registry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

void Registry::write_snapshot(JsonWriter& w) const {
  // Lock-scope rule (DESIGN.md §12): mu_ guards only the name->metric maps.
  // Collect stable metric pointers under the lock, then release it before
  // reading values and formatting JSON — snapshotting a registry must never
  // stall worker threads that are registering (or looking up) metrics.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
      histograms.emplace_back(name, h.get());
  }
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges)
    w.key(name).value(static_cast<long long>(g->value()));
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("buckets").begin_array();
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      w.begin_object();
      w.key("le");
      if (i < h->bounds().size())
        w.value(h->bounds()[i]);
      else
        w.null();  // overflow bucket
      w.key("count").value(h->bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::snapshot_json() const {
  JsonWriter w;
  write_snapshot(w);
  return w.str();
}

Registry& metrics() {
  static Registry* registry = new Registry();  // never destroyed: references
  return *registry;                            // stay valid through exit paths
}

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(&histogram),
      start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

void ScopedTimer::stop() {
  if (histogram_ == nullptr) return;
  auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  histogram_->observe(static_cast<double>(now_ns - start_ns_) / 1e6);
  histogram_ = nullptr;
}

bool write_snapshot_file(const std::string& path) {
  std::string doc = metrics().snapshot_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    MFHTTP_ERROR << "metrics: cannot open " << path << " for writing";
    return false;
  }
  bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fclose(f) == 0 && ok;
  if (ok)
    MFHTTP_INFO << "metrics: snapshot written to " << path;
  else
    MFHTTP_ERROR << "metrics: short write to " << path;
  return ok;
}

}  // namespace mfhttp::obs
