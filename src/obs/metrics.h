// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, cheap enough for the simulator's inner loops.
//
// Hot-path updates are single relaxed atomic operations; the registry mutex
// guards only name->metric registration (cold). Counters are additionally
// *sharded*: each counter owns kShards cache-line-padded cells and a thread
// increments only the cell its thread-local shard slot maps to, so the
// parallel session runner (sim/parallel_runner.h) never bounces one hot
// cache line between workers. value() merges the cells by summation —
// commutative over unsigned integers, so the merged value is deterministic
// no matter which worker incremented which cell. Instrumentation sites look
// a metric up once and cache the reference in a function-local static:
//
//   static obs::Counter& c = obs::metrics().counter("core.flow.policies_total");
//   c.inc();
//
// References returned by the registry are stable for the process lifetime;
// Registry::reset() zeroes values but never invalidates them. Snapshots
// export every registered metric as one JSON document (util/json), the
// format behind the benches' --metrics-json flag.
//
// Naming convention: "<subsystem>.<component>.<metric>", monotonic counters
// suffixed _total, durations suffixed _ms. DESIGN.md "Observability" lists
// every metric the library exports.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mfhttp {
class JsonWriter;
}

namespace mfhttp::obs {

// Monotonically increasing event count, sharded per worker thread (see the
// file comment). Reads sum every cell; resets zero them all.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void inc(std::uint64_t delta = 1) {
    cells_[this_thread_shard()].value.fetch_add(delta,
                                                std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_)
      total += cell.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  // Threads are spread over the shards round-robin at first use; the slot is
  // cached thread_local so the hot path is one TLS read + one relaxed add.
  static std::size_t this_thread_shard();

  Cell cells_[kShards];
};

// Instantaneous level (queue depth, buffer occupancy). May go negative only
// through unmatched add/sub pairs — that is a bug at the instrumentation site.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(std::int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
// (cumulative "le" semantics, first matching bucket only); one implicit
// overflow bucket at index bounds().size() catches everything larger.
class Histogram {
 public:
  // `bounds` are strictly ascending finite upper bounds; at least one.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  // Quantile estimate (q in [0, 1]) by linear interpolation within the
  // containing bucket — the estimator dashboards apply to "le" buckets.
  // Observations in the overflow bucket clamp to the largest bound; 0 when
  // empty. Exact only up to bucket resolution; use util::Samples when an
  // experiment needs exact percentiles.
  double quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

// Thread-local batching front for a Counter. A shard worker that counts an
// event per request would otherwise pay one atomic RMW per event even on
// the sharded cells; a BatchedCounter accumulates in a plain integer owned
// by its thread and flushes the sum into the underlying Counter every
// `batch` increments (and on flush()/destruction), so the global metrics
// snapshot stays one JSON document while the hot path touches no atomics
// at all. NOT thread-safe: one instance per worker thread, by construction
// (the sharded front door owns one set per shard). Readers see the counter
// lag by at most `batch - 1` events until the owning worker flushes.
class BatchedCounter {
 public:
  explicit BatchedCounter(Counter& counter, std::uint64_t batch = 1024)
      : counter_(counter), batch_(batch) {}
  ~BatchedCounter() { flush(); }
  BatchedCounter(const BatchedCounter&) = delete;
  BatchedCounter& operator=(const BatchedCounter&) = delete;

  void inc(std::uint64_t delta = 1) {
    pending_ += delta;
    if (pending_ >= batch_) flush();
  }
  void flush() {
    if (pending_ == 0) return;
    counter_.inc(pending_);
    pending_ = 0;
  }
  std::uint64_t pending() const { return pending_; }

 private:
  Counter& counter_;
  std::uint64_t batch_;
  std::uint64_t pending_ = 0;
};

// Bucket-bound generators: {start, start*factor, ...} / {start, start+width, ...}.
std::vector<double> exponential_bounds(double start, double factor, int count);
std::vector<double> linear_bounds(double start, double width, int count);
// Default bounds for wall-clock latencies: 1 µs .. ~4 s, 4x steps.
const std::vector<double>& latency_ms_bounds();
// Default bounds for supervision stall durations: 1 ms .. ~8 s, 2x steps
// (http.frontdoor.supervisor.stall_ms and friends, DESIGN.md §14).
const std::vector<double>& stall_ms_bounds();

class Registry {
 public:
  // First call registers the metric; later calls with the same name return
  // the same instance. A histogram's bounds are fixed by the first call
  // (later callers may omit them); registering an existing name as a
  // different metric kind aborts.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  // Zero every value. Registrations — and references already handed out —
  // survive; tests and repeated bench runs use this between iterations.
  void reset();

  // Point-in-time values; 0 if the metric was never registered.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // {"counters": {name: n, ...}, "gauges": {...}, "histograms": {name:
  // {"count": n, "sum": s, "buckets": [{"le": bound|null, "count": n}...]}}}
  // Keys are sorted; the overflow bucket's "le" is null.
  void write_snapshot(JsonWriter& w) const;
  std::string snapshot_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The process-wide registry every built-in instrumentation site uses.
Registry& metrics();

// Observes the wall-clock (steady_clock) milliseconds between construction
// and stop()/destruction into a histogram. Simulated time never touches
// this: scoped timers measure the cost of running the middleware itself.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Record once; further calls (and destruction) are no-ops.
  void stop();

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

// Writes metrics().snapshot_json() to `path`; false (with a log line) on
// I/O failure. The "--metrics-json" flag that names the path is handled by
// cli::StandardOptions (util/cli_options.h does the argv surgery).
bool write_snapshot_file(const std::string& path);

}  // namespace mfhttp::obs
