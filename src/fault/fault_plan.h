// Deterministic, seeded fault-plan engine (ISSUE 2 / DESIGN.md §9).
//
// A FaultPlan is a JSON-loadable schedule of network and origin misbehaviour
// — link outages, bandwidth collapses, latency spikes, transfer stalls and
// truncations, origin 5xx/429 and abrupt connection closes — that the fault
// decorators (FaultyLink, FaultyFetcher) execute against the simulated
// stack. All randomness derives from the plan's seed and is consumed in
// simulation-event order, so the same plan + seed reproduces the exact same
// failure trace byte for byte.
//
// The engine never touches the decorated components' happy paths: an empty
// plan leaves every byte and timestamp identical to an undecorated run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/bandwidth_trace.h"
#include "util/types.h"

namespace mfhttp {
struct JsonValue;
}

namespace mfhttp::fault {

// One scheduled link-level fault window, optionally repeating.
struct LinkFaultWindow {
  enum class Kind { kOutage, kCollapse, kLatencySpike };

  Kind kind = Kind::kOutage;
  TimeMs at_ms = 0;        // first occurrence start
  TimeMs duration_ms = 0;  // length of each occurrence
  int repeat = 1;          // number of occurrences
  TimeMs period_ms = 0;    // start-to-start spacing when repeat > 1
  double factor = 0.0;     // kCollapse: bandwidth multiplier in-window
  TimeMs extra_latency_ms = 0;  // kLatencySpike: added before first byte

  // Is some occurrence of this window covering simulated time t?
  bool active_at(TimeMs t_ms) const;
  // End of the last occurrence.
  TimeMs end_ms() const;
};

// Per-transfer faults drawn (seeded) at submit/progress time. A stall models
// a TCP timeout + slow-start reset: delivery pauses mid-flight and resumes
// from zero window after stall_ms. A truncation models a connection dying:
// the transfer "completes" early having delivered only a prefix.
struct TransferFaults {
  double stall_rate = 0;        // probability a transfer stalls once
  TimeMs stall_ms = 0;          // pause length
  double stall_fraction = 0.5;  // progress point where the stall hits
  double truncate_rate = 0;     // probability a transfer is cut short
  double truncate_fraction = 0.5;  // fraction delivered before the cut

  bool any() const { return stall_rate > 0 || truncate_rate > 0; }
};

// Origin-side faults: synthesized error responses and abrupt closes.
struct OriginFaults {
  double error_rate = 0;  // probability a request draws an error response
  std::vector<int> error_statuses = {503};  // drawn uniformly per error
  TimeMs error_delay_ms = 10;               // server think time for errors
  Bytes error_body_size = 256;
  double abrupt_close_rate = 0;  // probability the response dies mid-body
  double abrupt_close_fraction = 0.5;  // body fraction delivered before close

  bool any() const { return error_rate > 0 || abrupt_close_rate > 0; }
};

// Front-door shard faults (ISSUE 7 chaos harness, DESIGN.md §14). Unlike
// the link/transfer/origin faults above — which live inside a shard's
// simulated pipeline — these target the shard *worker thread* itself, the
// thing the FrontDoorSupervisor exists to catch. Triggers are indexed by
// the shard's Nth consumed event rather than by wall time, so a fault
// lands on the same logical work item no matter how fast the host runs.
struct ShardFault {
  enum class Kind {
    kStall,       // worker sleeps stall_ms (wall clock), once, at event K
    kCrash,       // worker stops serving at event K; its queue drains as sheds
    kOriginSlow,  // shard's origin think time multiplied by `factor`
    kSaturate,    // worker sleeps stall_ms before EACH of events [K, K+count)
  };

  Kind kind = Kind::kStall;
  int shard = 0;             // target shard index; -1 hits every shard
  std::size_t at_event = 0;  // shard-local consumed-event index K
  TimeMs stall_ms = 0;       // kStall / kSaturate sleep length
  std::size_t count = 0;     // kSaturate: number of slowed events
  double factor = 1.0;       // kOriginSlow: think-time multiplier (>= 1)

  bool applies_to(std::size_t shard_index) const {
    return shard < 0 || static_cast<std::size_t>(shard) == shard_index;
  }
};

// Byte-level faults on real loopback connections (ISSUE 8, DESIGN.md §15).
// Consumed by fault::SocketFaultInjector inside the aio transport — never by
// the sim-side decorators — and drawn as a pure function of (plan seed,
// connection ordinal, operation ordinal), so the same plan replays the same
// chaos regardless of kernel scheduling or host speed.
struct SocketFaults {
  double short_read_rate = 0;       // clamp a kernel read to a few bytes
  std::size_t short_read_cap = 16;  // max bytes a shortened read may move
  double torn_write_rate = 0;       // clamp a send(), splitting the segment
  std::size_t torn_write_cap = 16;
  double reset_rate = 0;            // abortive close (RST) instead of the op
  double stall_rate = 0;            // pause the direction for stall_ms
  TimeMs stall_ms = 0;

  bool any() const {
    return short_read_rate > 0 || torn_write_rate > 0 || reset_rate > 0 ||
           (stall_rate > 0 && stall_ms > 0);
  }
};

struct FaultPlan {
  std::uint64_t seed = 1;
  std::string name;  // optional label, echoed in logs/benches
  std::vector<LinkFaultWindow> link;
  TransferFaults transfer;
  OriginFaults origin;
  std::vector<ShardFault> frontdoor;
  SocketFaults socket;

  // Faults the FetchPipelineBuilder decorators (FaultyLink/FaultyFetcher)
  // execute. The front-door shard faults and byte-level socket faults are
  // deliberately excluded: the former are consumed by the shard workers,
  // the latter by the aio transport's SocketFaultInjector, and a plan
  // carrying only those must not cost an undecorated pipeline anything.
  bool pipeline_empty() const {
    return link.empty() && !transfer.any() && !origin.any();
  }
  bool empty() const {
    return pipeline_empty() && frontdoor.empty() && !socket.any();
  }

  // End of the last scheduled window (0 if none).
  TimeMs horizon_ms() const;

  // Sum of active latency-spike penalties at t.
  TimeMs extra_latency_at(TimeMs t_ms) const;

  // True while any outage window covers t.
  bool in_outage(TimeMs t_ms) const;

  // Bandwidth trace with outages zeroed and collapses scaled in, resampled
  // at <= 100 ms granularity up to the fault horizon; beyond the horizon the
  // base trace continues untouched.
  BandwidthTrace shape(const BandwidthTrace& base) const;

  // JSON schema (DESIGN.md §9, §14, §15): top-level {"seed", "name",
  // "link": [...], "transfer": {...}, "origin": {...}, "frontdoor":
  // [{"kind": "stall|crash|origin_slow|saturate", "shard", "at_event",
  // "stall_ms", "count", "factor"}, ...], "socket": {"short_read_rate",
  // "short_read_cap", "torn_write_rate", "torn_write_cap", "reset_rate",
  // "stall_rate", "stall_ms"}}. Returns nullopt on malformed JSON
  // or schema violations (unknown kind, negative rate, ...). The `error`
  // out-param (may be nullptr) receives a human-readable cause — malformed
  // JSON reports "line L, column C: why"; schema violations name the field.
  static std::optional<FaultPlan> from_json(std::string_view json,
                                            std::string* error = nullptr);
  // Same schema over an already-parsed document node, for configs that embed
  // a fault plan as a section (scenario::ScenarioSpec) — one parse path, no
  // re-serialization.
  static std::optional<FaultPlan> from_value(const JsonValue& doc,
                                             std::string* error = nullptr);
  static std::optional<FaultPlan> load(const std::string& path,
                                       std::string* error = nullptr);
  std::string to_json() const;

  // The acceptance scenario from ISSUE 2: repeated 3-second link outages
  // plus 10% origin 5xx — the canonical lossy-cellular stress plan.
  static FaultPlan lossy_cellular(std::uint64_t seed = 7);

  // The acceptance scenario from ISSUE 7: one shard of the front door
  // stalls mid-run for `stall_ms` after consuming `at_event` events — the
  // canonical shard-stall chaos plan the supervised/unsupervised arms of
  // bench/chaos_matrix are compared under.
  static FaultPlan shard_stall(int shard, std::size_t at_event, TimeMs stall_ms,
                               std::uint64_t seed = 7);

  // The acceptance scenario from ISSUE 8: short reads, torn writes, RSTs
  // and stall windows on real loopback connections — the canonical plan the
  // faulty-socket arms of bench/loopback_matrix run under. Socket-only: the
  // sim-side pipeline stays undecorated.
  static FaultPlan flaky_socket(std::uint64_t seed = 7);
};

// Ambient process-wide plan installed by the --fault-plan flag (flags.h) and
// consumed by the session runners when a config does not name its own plan.
// nullptr when no plan is installed.
const FaultPlan* global_plan();
void set_global_plan(std::optional<FaultPlan> plan);

}  // namespace mfhttp::fault
