#include "fault/faulty_socket.h"

#include <algorithm>

#include "util/rng.h"

namespace mfhttp::fault {

namespace {

// Independent uniform in [0, 1) for one (coordinate, lane) pair. splitmix64
// is a bijective finalizer, so distinct lanes of one coordinate are
// decorrelated without any sequential state.
double lane_uniform(std::uint64_t coordinate, std::uint64_t lane) {
  const std::uint64_t h = splitmix64(coordinate ^ (lane * 0xd1342543de82ef95ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t lane_bits(std::uint64_t coordinate, std::uint64_t lane) {
  return splitmix64(coordinate ^ (lane * 0xd1342543de82ef95ULL));
}

}  // namespace

aio::ByteFaults::Op SocketFaultInjector::decide(std::uint64_t conn,
                                                std::uint64_t op,
                                                std::size_t want,
                                                std::uint64_t direction) const {
  aio::ByteFaults::Op out;
  if (!faults_.any()) return out;
  // One stateless coordinate per operation; all randomness derives from it.
  const std::uint64_t coordinate =
      splitmix64(seed_ ^ splitmix64(conn + 0x9e3779b97f4a7c15ULL) ^
                 splitmix64(op) ^ direction);

  if (faults_.reset_rate > 0 &&
      lane_uniform(coordinate, 1) < faults_.reset_rate) {
    out.reset = true;
    return out;
  }
  if (faults_.stall_rate > 0 && faults_.stall_ms > 0 &&
      lane_uniform(coordinate, 2) < faults_.stall_rate) {
    out.stall_ms = faults_.stall_ms;
    return out;
  }
  const bool clamping = direction == kReadTag
                            ? faults_.short_read_rate > 0 &&
                                  lane_uniform(coordinate, 3) <
                                      faults_.short_read_rate
                            : faults_.torn_write_rate > 0 &&
                                  lane_uniform(coordinate, 3) <
                                      faults_.torn_write_rate;
  if (clamping) {
    const std::size_t cap = direction == kReadTag ? faults_.short_read_cap
                                                  : faults_.torn_write_cap;
    const std::size_t drawn =
        1 + static_cast<std::size_t>(lane_bits(coordinate, 4) %
                                     std::max<std::size_t>(cap, 1));
    out.clamp = std::min(drawn, std::max<std::size_t>(want, 1));
  }
  return out;
}

}  // namespace mfhttp::fault
