#include "fault/flags.h"

#include <cstdio>
#include <cstdlib>

#include "fault/fault_plan.h"
#include "util/flags.h"
#include "util/logging.h"

namespace mfhttp::fault {

StandardFlagsGuard::StandardFlagsGuard(int& argc, char** argv)
    : metrics_guard_(argc, argv),
      fault_plan_path_(extract_string_flag(argc, argv, "--fault-plan")) {
  if (fault_plan_path_.empty()) return;
  // A plan the caller named but we cannot use must never degrade to a silent
  // fault-free run — a bench that "passed" without its faults is a lie.
  std::string why;
  auto plan = FaultPlan::load(fault_plan_path_, &why);
  if (!plan.has_value()) {
    std::fprintf(stderr, "error: --fault-plan %s: %s\n", fault_plan_path_.c_str(),
                 why.c_str());
    std::exit(2);
  }
  MFHTTP_INFO << "fault plan '" << (plan->name.empty() ? fault_plan_path_ : plan->name)
              << "' installed (seed " << plan->seed << ")";
  set_global_plan(std::move(plan));
}

StandardFlagsGuard::~StandardFlagsGuard() {
  if (!fault_plan_path_.empty()) set_global_plan(std::nullopt);
}

}  // namespace mfhttp::fault
