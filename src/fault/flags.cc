#include "fault/flags.h"

#include "fault/fault_plan.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/logging.h"

namespace mfhttp::fault {

StandardFlagsGuard::StandardFlagsGuard(int& argc, char** argv)
    : metrics_guard_(argc, argv),
      fault_plan_path_(extract_string_flag(argc, argv, "--fault-plan")) {
  if (fault_plan_path_.empty()) return;
  auto plan = FaultPlan::load(fault_plan_path_);
  MFHTTP_CHECK_MSG(plan.has_value(), "--fault-plan: cannot load plan");
  MFHTTP_INFO << "fault plan '" << (plan->name.empty() ? fault_plan_path_ : plan->name)
              << "' installed (seed " << plan->seed << ")";
  set_global_plan(std::move(plan));
}

StandardFlagsGuard::~StandardFlagsGuard() {
  if (!fault_plan_path_.empty()) set_global_plan(std::nullopt);
}

}  // namespace mfhttp::fault
