// HttpFetcher decorator executing a FaultPlan's origin-side faults.
//
// Two misbehaviours, drawn per request from the plan's seeded Rng:
//   * synthesized errors  — the request never reaches the inner fetcher; an
//                           error status (drawn from origin.error_statuses)
//                           comes back after error_delay_ms with a small
//                           error body, mimicking a 5xx/429 from the origin,
//   * abrupt closes       — the inner response dies mid-body: delivery stops
//                           at a fraction of the advertised size and
//                           on_complete fires once with status 0 (the
//                           connection-reset sentinel) and the bytes that
//                           actually arrived.
//
// Everything else passes through untouched. Fetch ids are the decorator's
// own; cancel() translates to the inner fetcher where one is in flight.
#pragma once

#include <unordered_map>

#include "fault/fault_plan.h"
#include "http/sim_http.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mfhttp::fault {

class FaultyFetcher : public HttpFetcher {
 public:
  FaultyFetcher(Simulator& sim, HttpFetcher* inner, const FaultPlan& plan);
  ~FaultyFetcher() override;

  FetchId fetch(const HttpRequest& request, FetchCallbacks callbacks) override;
  bool cancel(FetchId id) override;

  std::size_t inflight() const { return shadows_.size(); }

 private:
  // One decorated fetch. Exactly one of `event` (synthesized error pending)
  // and `inner` (live inner fetch) is armed.
  struct Shadow {
    FetchId inner = kInvalidFetch;
    Simulator::EventId event = Simulator::kInvalidEvent;
    FetchCallbacks callbacks;
    std::string url;
    TimeMs request_ms = 0;
    Bytes received = 0;
    Bytes close_at = 0;  // 0 = no abrupt close armed
    double close_fraction = 0;
  };

  Simulator& sim_;
  HttpFetcher* inner_;
  FaultPlan plan_;
  Rng rng_;
  FetchId next_id_ = 1;
  std::unordered_map<FetchId, Shadow> shadows_;
};

}  // namespace mfhttp::fault
