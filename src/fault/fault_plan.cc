#include "fault/fault_plan.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"

namespace mfhttp::fault {

namespace {

std::optional<FaultPlan>& global_plan_slot() {
  static std::optional<FaultPlan> plan;
  return plan;
}

const char* kind_name(LinkFaultWindow::Kind kind) {
  switch (kind) {
    case LinkFaultWindow::Kind::kOutage: return "outage";
    case LinkFaultWindow::Kind::kCollapse: return "collapse";
    case LinkFaultWindow::Kind::kLatencySpike: return "latency_spike";
  }
  return "?";
}

std::optional<LinkFaultWindow::Kind> kind_from_name(std::string_view name) {
  if (name == "outage") return LinkFaultWindow::Kind::kOutage;
  if (name == "collapse") return LinkFaultWindow::Kind::kCollapse;
  if (name == "latency_spike") return LinkFaultWindow::Kind::kLatencySpike;
  return std::nullopt;
}

const char* shard_kind_name(ShardFault::Kind kind) {
  switch (kind) {
    case ShardFault::Kind::kStall: return "stall";
    case ShardFault::Kind::kCrash: return "crash";
    case ShardFault::Kind::kOriginSlow: return "origin_slow";
    case ShardFault::Kind::kSaturate: return "saturate";
  }
  return "?";
}

std::optional<ShardFault::Kind> shard_kind_from_name(std::string_view name) {
  if (name == "stall") return ShardFault::Kind::kStall;
  if (name == "crash") return ShardFault::Kind::kCrash;
  if (name == "origin_slow") return ShardFault::Kind::kOriginSlow;
  if (name == "saturate") return ShardFault::Kind::kSaturate;
  return std::nullopt;
}

TimeMs time_field(const JsonValue& obj, std::string_view key, TimeMs fallback) {
  const JsonValue* v = obj.find(key);
  return v ? static_cast<TimeMs>(v->number_or(static_cast<double>(fallback)))
           : fallback;
}

double rate_field(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v ? v->number_or(fallback) : fallback;
}

bool valid_rate(double r) { return r >= 0.0 && r <= 1.0; }
bool valid_fraction(double f) { return f > 0.0 && f < 1.0; }

}  // namespace

bool LinkFaultWindow::active_at(TimeMs t_ms) const {
  if (duration_ms <= 0) return false;
  for (int i = 0; i < std::max(repeat, 1); ++i) {
    TimeMs start = at_ms + static_cast<TimeMs>(i) * period_ms;
    if (t_ms >= start && t_ms < start + duration_ms) return true;
    if (period_ms <= 0) break;  // repeats without spacing coincide
  }
  return false;
}

TimeMs LinkFaultWindow::end_ms() const {
  int n = std::max(repeat, 1);
  TimeMs last_start = at_ms + static_cast<TimeMs>(n - 1) * std::max<TimeMs>(period_ms, 0);
  return last_start + duration_ms;
}

TimeMs FaultPlan::horizon_ms() const {
  TimeMs h = 0;
  for (const LinkFaultWindow& w : link) h = std::max(h, w.end_ms());
  return h;
}

TimeMs FaultPlan::extra_latency_at(TimeMs t_ms) const {
  TimeMs extra = 0;
  for (const LinkFaultWindow& w : link)
    if (w.kind == LinkFaultWindow::Kind::kLatencySpike && w.active_at(t_ms))
      extra += w.extra_latency_ms;
  return extra;
}

bool FaultPlan::in_outage(TimeMs t_ms) const {
  for (const LinkFaultWindow& w : link)
    if (w.kind == LinkFaultWindow::Kind::kOutage && w.active_at(t_ms)) return true;
  return false;
}

BandwidthTrace FaultPlan::shape(const BandwidthTrace& base) const {
  const TimeMs horizon = horizon_ms();
  if (horizon <= 0) return base;  // no windows touch the rate
  const TimeMs slot = std::min<TimeMs>(base.slot_ms(), 100);
  std::vector<BytesPerSec> rates;
  rates.reserve(static_cast<std::size_t>(horizon / slot) + 2);
  for (TimeMs t = 0; t < horizon; t += slot) {
    double rate = base.rate_at(t);
    for (const LinkFaultWindow& w : link) {
      if (!w.active_at(t)) continue;
      if (w.kind == LinkFaultWindow::Kind::kOutage)
        rate = 0;
      else if (w.kind == LinkFaultWindow::Kind::kCollapse)
        rate *= w.factor;
    }
    rates.push_back(rate);
  }
  // The final slot extends to infinity: the base trace, unfaulted. This is
  // exact only for bases that are constant past the horizon (every plan the
  // benches use); piecewise bases flatten to their rate at the horizon.
  rates.push_back(base.rate_at(horizon));
  return BandwidthTrace::from_slots(std::move(rates), slot);
}

std::optional<FaultPlan> FaultPlan::from_json(std::string_view json,
                                              std::string* error) {
  auto fail = [error](const char* why) -> std::optional<FaultPlan> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  JsonParseError parse_error;
  std::optional<JsonValue> doc = parse_json(json, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = parse_error.to_string();
    return std::nullopt;
  }
  if (!doc->is_object()) return fail("top level must be an object");
  FaultPlan plan;
  if (const JsonValue* seed = doc->find("seed")) {
    if (!seed->is_number() || seed->number_value < 0)
      return fail("'seed' must be a non-negative number");
    plan.seed = static_cast<std::uint64_t>(seed->number_value);
  }
  if (const JsonValue* name = doc->find("name")) plan.name = name->string_or("");

  if (const JsonValue* link = doc->find("link")) {
    if (!link->is_array()) return fail("'link' must be an array");
    for (const JsonValue& entry : link->array_value) {
      if (!entry.is_object()) return fail("'link' entries must be objects");
      const JsonValue* kind = entry.find("kind");
      if (kind == nullptr || !kind->is_string())
        return fail("link window needs a string 'kind'");
      auto parsed_kind = kind_from_name(kind->string_value);
      if (!parsed_kind)
        return fail("unknown link 'kind' (outage|collapse|latency_spike)");
      LinkFaultWindow w;
      w.kind = *parsed_kind;
      w.at_ms = time_field(entry, "at_ms", 0);
      w.duration_ms = time_field(entry, "duration_ms", 0);
      w.repeat = static_cast<int>(rate_field(entry, "repeat", 1));
      w.period_ms = time_field(entry, "period_ms", 0);
      w.factor = rate_field(entry, "factor", 0.0);
      w.extra_latency_ms = time_field(entry, "extra_latency_ms", 0);
      if (w.at_ms < 0 || w.duration_ms < 0 || w.repeat < 1 || w.period_ms < 0)
        return fail("link window times must be non-negative, repeat >= 1");
      if (w.repeat > 1 && w.period_ms < w.duration_ms)
        return fail("repeating link window needs period_ms >= duration_ms");
      if (w.kind == LinkFaultWindow::Kind::kCollapse &&
          (w.factor < 0 || w.factor >= 1))
        return fail("collapse 'factor' must be in [0, 1)");
      if (w.kind == LinkFaultWindow::Kind::kLatencySpike && w.extra_latency_ms < 0)
        return fail("latency_spike 'extra_latency_ms' must be >= 0");
      plan.link.push_back(w);
    }
  }

  if (const JsonValue* transfer = doc->find("transfer")) {
    if (!transfer->is_object()) return fail("'transfer' must be an object");
    TransferFaults& t = plan.transfer;
    t.stall_rate = rate_field(*transfer, "stall_rate", 0.0);
    t.stall_ms = time_field(*transfer, "stall_ms", 0);
    t.stall_fraction = rate_field(*transfer, "stall_fraction", 0.5);
    t.truncate_rate = rate_field(*transfer, "truncate_rate", 0.0);
    t.truncate_fraction = rate_field(*transfer, "truncate_fraction", 0.5);
    if (!valid_rate(t.stall_rate) || !valid_rate(t.truncate_rate) ||
        !valid_fraction(t.stall_fraction) || !valid_fraction(t.truncate_fraction) ||
        t.stall_ms < 0)
      return fail("transfer rates must be in [0,1], fractions in (0,1), stall_ms >= 0");
  }

  if (const JsonValue* origin = doc->find("origin")) {
    if (!origin->is_object()) return fail("'origin' must be an object");
    OriginFaults& o = plan.origin;
    o.error_rate = rate_field(*origin, "error_rate", 0.0);
    o.error_delay_ms = time_field(*origin, "error_delay_ms", 10);
    o.error_body_size = static_cast<Bytes>(rate_field(*origin, "error_body_size", 256));
    o.abrupt_close_rate = rate_field(*origin, "abrupt_close_rate", 0.0);
    o.abrupt_close_fraction = rate_field(*origin, "abrupt_close_fraction", 0.5);
    if (const JsonValue* statuses = origin->find("error_statuses")) {
      if (!statuses->is_array() || statuses->array_value.empty())
        return fail("'error_statuses' must be a non-empty array");
      o.error_statuses.clear();
      for (const JsonValue& s : statuses->array_value) {
        if (!s.is_number()) return fail("'error_statuses' entries must be numbers");
        int status = static_cast<int>(s.number_value);
        if (status < 400 || status > 599)
          return fail("'error_statuses' entries must be 4xx/5xx");
        o.error_statuses.push_back(status);
      }
    }
    if (!valid_rate(o.error_rate) || !valid_rate(o.abrupt_close_rate) ||
        !valid_fraction(o.abrupt_close_fraction) || o.error_delay_ms < 0 ||
        o.error_body_size < 0)
      return fail("origin rates must be in [0,1], fraction in (0,1), sizes >= 0");
  }

  if (const JsonValue* frontdoor = doc->find("frontdoor")) {
    if (!frontdoor->is_array()) return fail("'frontdoor' must be an array");
    for (const JsonValue& entry : frontdoor->array_value) {
      if (!entry.is_object()) return fail("'frontdoor' entries must be objects");
      const JsonValue* kind = entry.find("kind");
      if (kind == nullptr || !kind->is_string())
        return fail("frontdoor fault needs a string 'kind'");
      auto parsed_kind = shard_kind_from_name(kind->string_value);
      if (!parsed_kind)
        return fail("unknown frontdoor 'kind' (stall|crash|origin_slow|saturate)");
      ShardFault f;
      f.kind = *parsed_kind;
      f.shard = static_cast<int>(rate_field(entry, "shard", 0));
      f.at_event = static_cast<std::size_t>(rate_field(entry, "at_event", 0));
      f.stall_ms = time_field(entry, "stall_ms", 0);
      f.count = static_cast<std::size_t>(rate_field(entry, "count", 0));
      f.factor = rate_field(entry, "factor", 1.0);
      if (f.shard < -1) return fail("frontdoor 'shard' must be >= -1");
      if (f.stall_ms < 0) return fail("frontdoor 'stall_ms' must be >= 0");
      if ((f.kind == ShardFault::Kind::kStall ||
           f.kind == ShardFault::Kind::kSaturate) &&
          f.stall_ms <= 0)
        return fail("stall/saturate frontdoor faults need stall_ms > 0");
      if (f.kind == ShardFault::Kind::kSaturate && f.count == 0)
        return fail("saturate frontdoor faults need count > 0");
      if (f.kind == ShardFault::Kind::kOriginSlow && f.factor < 1.0)
        return fail("origin_slow frontdoor 'factor' must be >= 1");
      plan.frontdoor.push_back(f);
    }
  }

  if (const JsonValue* socket = doc->find("socket")) {
    if (!socket->is_object()) return fail("'socket' must be an object");
    SocketFaults& s = plan.socket;
    s.short_read_rate = rate_field(*socket, "short_read_rate", 0.0);
    s.short_read_cap =
        static_cast<std::size_t>(rate_field(*socket, "short_read_cap", 16));
    s.torn_write_rate = rate_field(*socket, "torn_write_rate", 0.0);
    s.torn_write_cap =
        static_cast<std::size_t>(rate_field(*socket, "torn_write_cap", 16));
    s.reset_rate = rate_field(*socket, "reset_rate", 0.0);
    s.stall_rate = rate_field(*socket, "stall_rate", 0.0);
    s.stall_ms = time_field(*socket, "stall_ms", 0);
    if (!valid_rate(s.short_read_rate) || !valid_rate(s.torn_write_rate) ||
        !valid_rate(s.reset_rate) || !valid_rate(s.stall_rate) ||
        s.stall_ms < 0)
      return fail("socket rates must be in [0,1], stall_ms >= 0");
    if ((s.short_read_rate > 0 && s.short_read_cap == 0) ||
        (s.torn_write_rate > 0 && s.torn_write_cap == 0))
      return fail("socket short_read_cap/torn_write_cap must be >= 1");
    if (s.stall_rate > 0 && s.stall_ms <= 0)
      return fail("socket stalls need stall_ms > 0");
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::load(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open file";
    MFHTTP_ERROR << "fault plan: cannot open " << path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string why;
  auto plan = from_json(buffer.str(), &why);
  if (!plan) {
    if (error != nullptr) *error = why;
    MFHTTP_ERROR << "fault plan: " << path << ": " << why;
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("seed").value(static_cast<unsigned long long>(seed));
  if (!name.empty()) w.key("name").value(name);
  w.key("link").begin_array();
  for (const LinkFaultWindow& win : link) {
    w.begin_object();
    w.key("kind").value(kind_name(win.kind));
    w.key("at_ms").value(static_cast<long long>(win.at_ms));
    w.key("duration_ms").value(static_cast<long long>(win.duration_ms));
    w.key("repeat").value(win.repeat);
    w.key("period_ms").value(static_cast<long long>(win.period_ms));
    if (win.kind == LinkFaultWindow::Kind::kCollapse)
      w.key("factor").value(win.factor);
    if (win.kind == LinkFaultWindow::Kind::kLatencySpike)
      w.key("extra_latency_ms").value(static_cast<long long>(win.extra_latency_ms));
    w.end_object();
  }
  w.end_array();
  w.key("transfer").begin_object();
  w.key("stall_rate").value(transfer.stall_rate);
  w.key("stall_ms").value(static_cast<long long>(transfer.stall_ms));
  w.key("stall_fraction").value(transfer.stall_fraction);
  w.key("truncate_rate").value(transfer.truncate_rate);
  w.key("truncate_fraction").value(transfer.truncate_fraction);
  w.end_object();
  w.key("origin").begin_object();
  w.key("error_rate").value(origin.error_rate);
  w.key("error_statuses").begin_array();
  for (int s : origin.error_statuses) w.value(s);
  w.end_array();
  w.key("error_delay_ms").value(static_cast<long long>(origin.error_delay_ms));
  w.key("error_body_size").value(static_cast<long long>(origin.error_body_size));
  w.key("abrupt_close_rate").value(origin.abrupt_close_rate);
  w.key("abrupt_close_fraction").value(origin.abrupt_close_fraction);
  w.end_object();
  w.key("frontdoor").begin_array();
  for (const ShardFault& f : frontdoor) {
    w.begin_object();
    w.key("kind").value(shard_kind_name(f.kind));
    w.key("shard").value(f.shard);
    w.key("at_event").value(static_cast<unsigned long long>(f.at_event));
    if (f.kind == ShardFault::Kind::kStall ||
        f.kind == ShardFault::Kind::kSaturate)
      w.key("stall_ms").value(static_cast<long long>(f.stall_ms));
    if (f.kind == ShardFault::Kind::kSaturate)
      w.key("count").value(static_cast<unsigned long long>(f.count));
    if (f.kind == ShardFault::Kind::kOriginSlow)
      w.key("factor").value(f.factor);
    w.end_object();
  }
  w.end_array();
  w.key("socket").begin_object();
  w.key("short_read_rate").value(socket.short_read_rate);
  w.key("short_read_cap").value(socket.short_read_cap);
  w.key("torn_write_rate").value(socket.torn_write_rate);
  w.key("torn_write_cap").value(socket.torn_write_cap);
  w.key("reset_rate").value(socket.reset_rate);
  w.key("stall_rate").value(socket.stall_rate);
  w.key("stall_ms").value(static_cast<long long>(socket.stall_ms));
  w.end_object();
  w.end_object();
  return w.str();
}

FaultPlan FaultPlan::lossy_cellular(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.name = "lossy-cellular";
  LinkFaultWindow outage;
  outage.kind = LinkFaultWindow::Kind::kOutage;
  outage.at_ms = 2000;
  outage.duration_ms = 3000;  // repeated 3-s dead air
  outage.repeat = 6;
  outage.period_ms = 9000;
  plan.link.push_back(outage);
  plan.transfer.stall_rate = 0.05;
  plan.transfer.stall_ms = 800;
  plan.origin.error_rate = 0.10;  // 10% 5xx/429
  plan.origin.error_statuses = {503, 502, 429};
  plan.origin.abrupt_close_rate = 0.03;
  return plan;
}

FaultPlan FaultPlan::shard_stall(int shard, std::size_t at_event,
                                 TimeMs stall_ms, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.name = "shard-stall";
  ShardFault f;
  f.kind = ShardFault::Kind::kStall;
  f.shard = shard;
  f.at_event = at_event;
  f.stall_ms = stall_ms;
  plan.frontdoor.push_back(f);
  return plan;
}

FaultPlan FaultPlan::flaky_socket(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.name = "flaky-socket";
  plan.socket.short_read_rate = 0.20;
  plan.socket.short_read_cap = 7;
  plan.socket.torn_write_rate = 0.15;
  plan.socket.torn_write_cap = 11;
  plan.socket.reset_rate = 0.02;
  plan.socket.stall_rate = 0.05;
  plan.socket.stall_ms = 20;  // short: chaos, not a bench-stalling sleep
  return plan;
}

const FaultPlan* global_plan() {
  const std::optional<FaultPlan>& plan = global_plan_slot();
  return plan ? &*plan : nullptr;
}

void set_global_plan(std::optional<FaultPlan> plan) {
  global_plan_slot() = std::move(plan);
}

}  // namespace mfhttp::fault
