#include "fault/fault_plan.h"

#include <algorithm>

#include "util/json.h"
#include "util/json_config.h"
#include "util/logging.h"

namespace mfhttp::fault {

namespace {

std::optional<FaultPlan>& global_plan_slot() {
  static std::optional<FaultPlan> plan;
  return plan;
}

const char* kind_name(LinkFaultWindow::Kind kind) {
  switch (kind) {
    case LinkFaultWindow::Kind::kOutage: return "outage";
    case LinkFaultWindow::Kind::kCollapse: return "collapse";
    case LinkFaultWindow::Kind::kLatencySpike: return "latency_spike";
  }
  return "?";
}

std::optional<LinkFaultWindow::Kind> kind_from_name(std::string_view name) {
  if (name == "outage") return LinkFaultWindow::Kind::kOutage;
  if (name == "collapse") return LinkFaultWindow::Kind::kCollapse;
  if (name == "latency_spike") return LinkFaultWindow::Kind::kLatencySpike;
  return std::nullopt;
}

const char* shard_kind_name(ShardFault::Kind kind) {
  switch (kind) {
    case ShardFault::Kind::kStall: return "stall";
    case ShardFault::Kind::kCrash: return "crash";
    case ShardFault::Kind::kOriginSlow: return "origin_slow";
    case ShardFault::Kind::kSaturate: return "saturate";
  }
  return "?";
}

std::optional<ShardFault::Kind> shard_kind_from_name(std::string_view name) {
  if (name == "stall") return ShardFault::Kind::kStall;
  if (name == "crash") return ShardFault::Kind::kCrash;
  if (name == "origin_slow") return ShardFault::Kind::kOriginSlow;
  if (name == "saturate") return ShardFault::Kind::kSaturate;
  return std::nullopt;
}

}  // namespace

bool LinkFaultWindow::active_at(TimeMs t_ms) const {
  if (duration_ms <= 0) return false;
  for (int i = 0; i < std::max(repeat, 1); ++i) {
    TimeMs start = at_ms + static_cast<TimeMs>(i) * period_ms;
    if (t_ms >= start && t_ms < start + duration_ms) return true;
    if (period_ms <= 0) break;  // repeats without spacing coincide
  }
  return false;
}

TimeMs LinkFaultWindow::end_ms() const {
  int n = std::max(repeat, 1);
  TimeMs last_start = at_ms + static_cast<TimeMs>(n - 1) * std::max<TimeMs>(period_ms, 0);
  return last_start + duration_ms;
}

TimeMs FaultPlan::horizon_ms() const {
  TimeMs h = 0;
  for (const LinkFaultWindow& w : link) h = std::max(h, w.end_ms());
  return h;
}

TimeMs FaultPlan::extra_latency_at(TimeMs t_ms) const {
  TimeMs extra = 0;
  for (const LinkFaultWindow& w : link)
    if (w.kind == LinkFaultWindow::Kind::kLatencySpike && w.active_at(t_ms))
      extra += w.extra_latency_ms;
  return extra;
}

bool FaultPlan::in_outage(TimeMs t_ms) const {
  for (const LinkFaultWindow& w : link)
    if (w.kind == LinkFaultWindow::Kind::kOutage && w.active_at(t_ms)) return true;
  return false;
}

BandwidthTrace FaultPlan::shape(const BandwidthTrace& base) const {
  const TimeMs horizon = horizon_ms();
  if (horizon <= 0) return base;  // no windows touch the rate
  const TimeMs slot = std::min<TimeMs>(base.slot_ms(), 100);
  std::vector<BytesPerSec> rates;
  rates.reserve(static_cast<std::size_t>(horizon / slot) + 2);
  for (TimeMs t = 0; t < horizon; t += slot) {
    double rate = base.rate_at(t);
    for (const LinkFaultWindow& w : link) {
      if (!w.active_at(t)) continue;
      if (w.kind == LinkFaultWindow::Kind::kOutage)
        rate = 0;
      else if (w.kind == LinkFaultWindow::Kind::kCollapse)
        rate *= w.factor;
    }
    rates.push_back(rate);
  }
  // The final slot extends to infinity: the base trace, unfaulted. This is
  // exact only for bases that are constant past the horizon (every plan the
  // benches use); piecewise bases flatten to their rate at the horizon.
  rates.push_back(base.rate_at(horizon));
  return BandwidthTrace::from_slots(std::move(rates), slot);
}

std::optional<FaultPlan> FaultPlan::from_json(std::string_view json,
                                              std::string* error) {
  std::optional<JsonValue> doc = jsoncfg::parse_object(json, error);
  if (!doc.has_value()) return std::nullopt;
  return from_value(*doc, error);
}

std::optional<FaultPlan> FaultPlan::from_value(const JsonValue& doc,
                                               std::string* error) {
  FaultPlan plan;
  jsoncfg::Fields top(doc, "", error);
  top.seed("seed", &plan.seed);
  top.string("name", &plan.name);

  if (const JsonValue* link = top.array("link")) {
    for (std::size_t i = 0; i < link->array_value.size(); ++i) {
      jsoncfg::Fields f(link->array_value[i], "link[" + std::to_string(i) + "]",
                        error);
      const JsonValue* kind = f.member("kind");
      if (kind == nullptr || !kind->is_string()) {
        f.fail("needs a string 'kind'");
        return std::nullopt;
      }
      auto parsed_kind = kind_from_name(kind->string_value);
      if (!parsed_kind) {
        f.fail("unknown 'kind' (outage|collapse|latency_spike)");
        return std::nullopt;
      }
      LinkFaultWindow w;
      w.kind = *parsed_kind;
      f.time_ms("at_ms", 0, &w.at_ms);
      f.time_ms("duration_ms", 0, &w.duration_ms);
      f.integer("repeat", 1, &w.repeat);
      f.time_ms("period_ms", 0, &w.period_ms);
      f.number("factor", 0, &w.factor);
      f.time_ms("extra_latency_ms", 0, &w.extra_latency_ms);
      if (f.ok() && w.repeat > 1 && w.period_ms < w.duration_ms)
        f.fail("repeating window needs period_ms >= duration_ms");
      if (f.ok() && w.kind == LinkFaultWindow::Kind::kCollapse && w.factor >= 1)
        f.fail("collapse 'factor' must be in [0, 1)");
      if (!f.finish()) return std::nullopt;
      plan.link.push_back(w);
    }
  }

  if (const JsonValue* transfer = top.object("transfer")) {
    jsoncfg::Fields f(*transfer, "transfer", error);
    TransferFaults& t = plan.transfer;
    f.rate("stall_rate", &t.stall_rate);
    f.time_ms("stall_ms", 0, &t.stall_ms);
    f.fraction("stall_fraction", &t.stall_fraction);
    f.rate("truncate_rate", &t.truncate_rate);
    f.fraction("truncate_fraction", &t.truncate_fraction);
    if (!f.finish()) return std::nullopt;
  }

  if (const JsonValue* origin = top.object("origin")) {
    jsoncfg::Fields f(*origin, "origin", error);
    OriginFaults& o = plan.origin;
    f.rate("error_rate", &o.error_rate);
    f.time_ms("error_delay_ms", 0, &o.error_delay_ms);
    f.bytes("error_body_size", 0, &o.error_body_size);
    f.rate("abrupt_close_rate", &o.abrupt_close_rate);
    f.fraction("abrupt_close_fraction", &o.abrupt_close_fraction);
    if (const JsonValue* statuses = f.array("error_statuses")) {
      if (statuses->array_value.empty())
        f.fail("'error_statuses' must be a non-empty array");
      o.error_statuses.clear();
      for (const JsonValue& s : statuses->array_value) {
        int status = s.is_number() ? static_cast<int>(s.number_value) : -1;
        if (status < 400 || status > 599) {
          f.fail("'error_statuses' entries must be 4xx/5xx");
          break;
        }
        o.error_statuses.push_back(status);
      }
    }
    if (!f.finish()) return std::nullopt;
  }

  if (const JsonValue* frontdoor = top.array("frontdoor")) {
    for (std::size_t i = 0; i < frontdoor->array_value.size(); ++i) {
      jsoncfg::Fields f(frontdoor->array_value[i],
                        "frontdoor[" + std::to_string(i) + "]", error);
      const JsonValue* kind = f.member("kind");
      if (kind == nullptr || !kind->is_string()) {
        f.fail("needs a string 'kind'");
        return std::nullopt;
      }
      auto parsed_kind = shard_kind_from_name(kind->string_value);
      if (!parsed_kind) {
        f.fail("unknown 'kind' (stall|crash|origin_slow|saturate)");
        return std::nullopt;
      }
      ShardFault sf;
      sf.kind = *parsed_kind;
      f.integer("shard", -1, &sf.shard);
      f.size("at_event", &sf.at_event);
      f.time_ms("stall_ms", 0, &sf.stall_ms);
      f.size("count", &sf.count);
      f.number("factor", 1.0, &sf.factor);
      if (f.ok() &&
          (sf.kind == ShardFault::Kind::kStall ||
           sf.kind == ShardFault::Kind::kSaturate) &&
          sf.stall_ms <= 0)
        f.fail("stall/saturate faults need stall_ms > 0");
      if (f.ok() && sf.kind == ShardFault::Kind::kSaturate && sf.count == 0)
        f.fail("saturate faults need count > 0");
      if (!f.finish()) return std::nullopt;
      plan.frontdoor.push_back(sf);
    }
  }

  if (const JsonValue* socket = top.object("socket")) {
    jsoncfg::Fields f(*socket, "socket", error);
    SocketFaults& s = plan.socket;
    f.rate("short_read_rate", &s.short_read_rate);
    f.size("short_read_cap", &s.short_read_cap);
    f.rate("torn_write_rate", &s.torn_write_rate);
    f.size("torn_write_cap", &s.torn_write_cap);
    f.rate("reset_rate", &s.reset_rate);
    f.rate("stall_rate", &s.stall_rate);
    f.time_ms("stall_ms", 0, &s.stall_ms);
    if (f.ok() && ((s.short_read_rate > 0 && s.short_read_cap == 0) ||
                   (s.torn_write_rate > 0 && s.torn_write_cap == 0)))
      f.fail("short_read_cap/torn_write_cap must be >= 1");
    if (f.ok() && s.stall_rate > 0 && s.stall_ms <= 0)
      f.fail("stalls need stall_ms > 0");
    if (!f.finish()) return std::nullopt;
  }

  if (!top.finish()) return std::nullopt;
  return plan;
}

std::optional<FaultPlan> FaultPlan::load(const std::string& path,
                                         std::string* error) {
  std::optional<JsonValue> doc = jsoncfg::load_object(path, "fault plan", error);
  if (!doc.has_value()) return std::nullopt;
  std::string why;
  auto plan = from_value(*doc, &why);
  if (!plan) {
    if (error != nullptr) *error = why;
    MFHTTP_ERROR << "fault plan '" << path << "': " << why;
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("seed").value(static_cast<unsigned long long>(seed));
  if (!name.empty()) w.key("name").value(name);
  w.key("link").begin_array();
  for (const LinkFaultWindow& win : link) {
    w.begin_object();
    w.key("kind").value(kind_name(win.kind));
    w.key("at_ms").value(static_cast<long long>(win.at_ms));
    w.key("duration_ms").value(static_cast<long long>(win.duration_ms));
    w.key("repeat").value(win.repeat);
    w.key("period_ms").value(static_cast<long long>(win.period_ms));
    if (win.kind == LinkFaultWindow::Kind::kCollapse)
      w.key("factor").value(win.factor);
    if (win.kind == LinkFaultWindow::Kind::kLatencySpike)
      w.key("extra_latency_ms").value(static_cast<long long>(win.extra_latency_ms));
    w.end_object();
  }
  w.end_array();
  w.key("transfer").begin_object();
  w.key("stall_rate").value(transfer.stall_rate);
  w.key("stall_ms").value(static_cast<long long>(transfer.stall_ms));
  w.key("stall_fraction").value(transfer.stall_fraction);
  w.key("truncate_rate").value(transfer.truncate_rate);
  w.key("truncate_fraction").value(transfer.truncate_fraction);
  w.end_object();
  w.key("origin").begin_object();
  w.key("error_rate").value(origin.error_rate);
  w.key("error_statuses").begin_array();
  for (int s : origin.error_statuses) w.value(s);
  w.end_array();
  w.key("error_delay_ms").value(static_cast<long long>(origin.error_delay_ms));
  w.key("error_body_size").value(static_cast<long long>(origin.error_body_size));
  w.key("abrupt_close_rate").value(origin.abrupt_close_rate);
  w.key("abrupt_close_fraction").value(origin.abrupt_close_fraction);
  w.end_object();
  w.key("frontdoor").begin_array();
  for (const ShardFault& f : frontdoor) {
    w.begin_object();
    w.key("kind").value(shard_kind_name(f.kind));
    w.key("shard").value(f.shard);
    w.key("at_event").value(static_cast<unsigned long long>(f.at_event));
    if (f.kind == ShardFault::Kind::kStall ||
        f.kind == ShardFault::Kind::kSaturate)
      w.key("stall_ms").value(static_cast<long long>(f.stall_ms));
    if (f.kind == ShardFault::Kind::kSaturate)
      w.key("count").value(static_cast<unsigned long long>(f.count));
    if (f.kind == ShardFault::Kind::kOriginSlow)
      w.key("factor").value(f.factor);
    w.end_object();
  }
  w.end_array();
  w.key("socket").begin_object();
  w.key("short_read_rate").value(socket.short_read_rate);
  w.key("short_read_cap").value(socket.short_read_cap);
  w.key("torn_write_rate").value(socket.torn_write_rate);
  w.key("torn_write_cap").value(socket.torn_write_cap);
  w.key("reset_rate").value(socket.reset_rate);
  w.key("stall_rate").value(socket.stall_rate);
  w.key("stall_ms").value(static_cast<long long>(socket.stall_ms));
  w.end_object();
  w.end_object();
  return w.str();
}

FaultPlan FaultPlan::lossy_cellular(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.name = "lossy-cellular";
  LinkFaultWindow outage;
  outage.kind = LinkFaultWindow::Kind::kOutage;
  outage.at_ms = 2000;
  outage.duration_ms = 3000;  // repeated 3-s dead air
  outage.repeat = 6;
  outage.period_ms = 9000;
  plan.link.push_back(outage);
  plan.transfer.stall_rate = 0.05;
  plan.transfer.stall_ms = 800;
  plan.origin.error_rate = 0.10;  // 10% 5xx/429
  plan.origin.error_statuses = {503, 502, 429};
  plan.origin.abrupt_close_rate = 0.03;
  return plan;
}

FaultPlan FaultPlan::shard_stall(int shard, std::size_t at_event,
                                 TimeMs stall_ms, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.name = "shard-stall";
  ShardFault f;
  f.kind = ShardFault::Kind::kStall;
  f.shard = shard;
  f.at_event = at_event;
  f.stall_ms = stall_ms;
  plan.frontdoor.push_back(f);
  return plan;
}

FaultPlan FaultPlan::flaky_socket(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.name = "flaky-socket";
  plan.socket.short_read_rate = 0.20;
  plan.socket.short_read_cap = 7;
  plan.socket.torn_write_rate = 0.15;
  plan.socket.torn_write_cap = 11;
  plan.socket.reset_rate = 0.02;
  plan.socket.stall_rate = 0.05;
  plan.socket.stall_ms = 20;  // short: chaos, not a bench-stalling sleep
  return plan;
}

const FaultPlan* global_plan() {
  const std::optional<FaultPlan>& plan = global_plan_slot();
  return plan ? &*plan : nullptr;
}

void set_global_plan(std::optional<FaultPlan> plan) {
  global_plan_slot() = std::move(plan);
}

}  // namespace mfhttp::fault
