// Link decorator executing a FaultPlan against every transfer.
//
// Construction shapes the link's bandwidth trace with the plan's outage and
// collapse windows; submit() then overlays the per-transfer faults:
//   * latency spikes   — the real submission is delayed by the spike penalty
//                        active at submit time,
//   * stalls           — delivery pauses mid-flight for stall_ms (a TCP
//                        timeout + slow-start reset: the remainder re-enters
//                        the link as a fresh transfer),
//   * truncations      — the transfer completes early with only a prefix
//                        delivered (the peer closed the connection).
//
// Callers interact with the decorator exactly as with a Link; transfer ids
// are the decorator's own, and cancel() tears down whichever stage (delay
// timer, live transfer, stall gap) the faulted transfer is in. All fault
// draws come from one Rng seeded by the plan and consumed in submit/progress
// order, so a given plan + workload yields one exact failure trace.
#pragma once

#include <map>
#include <memory>

#include "fault/fault_plan.h"
#include "net/link.h"
#include "util/rng.h"

namespace mfhttp::fault {

class FaultyLink : public Link {
 public:
  FaultyLink(Simulator& sim, Link::Params params, const FaultPlan& plan);
  ~FaultyLink() override;

  TransferId submit(Bytes size, ProgressFn on_progress, int priority = 0) override;
  bool cancel(TransferId id) override;

  const FaultPlan& plan() const { return plan_; }

 private:
  // One decorated transfer. At any instant at most one of `pending` (delay
  // or stall-gap timer) and `inner` (live base transfer) is armed.
  struct Shadow {
    Bytes size = 0;
    Bytes delivered = 0;
    int priority = 0;
    ProgressFn on_progress;
    Link::TransferId inner = Link::kInvalidTransfer;
    Simulator::EventId pending = Simulator::kInvalidEvent;
    Bytes truncate_at = 0;  // 0 = no truncation armed
    Bytes stall_at = 0;     // 0 = no stall armed (or already spent)
  };

  void start_inner(TransferId id, Bytes bytes);
  void on_inner_progress(TransferId id, Bytes chunk, bool complete);

  // Shadow ids live far above the base Link's id sequence so pass-through
  // transfers (tiny bodies, fault-free plans) can share cancel() safely.
  static constexpr TransferId kShadowIdBase = TransferId{1} << 62;

  Simulator& fault_sim_;
  FaultPlan plan_;
  Rng rng_;
  bool transfer_faults_active_ = false;
  TransferId next_shadow_id_ = kShadowIdBase;
  std::map<TransferId, Shadow> shadows_;
};

}  // namespace mfhttp::fault
