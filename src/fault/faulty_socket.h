// Seeded byte-level fault injector for real loopback connections
// (ISSUE 8, DESIGN.md §15) — the socket counterpart of FaultyLink and
// FaultyFetcher.
//
// Implements aio::ByteFaults: the aio transport consults it before every
// kernel read/write. Unlike the sim decorators, real I/O offers no global
// event order to consume randomness in — kernel scheduling decides how many
// reads a request takes — so determinism is anchored differently: every
// decision is a *pure function* of (plan seed, connection ordinal, operation
// ordinal, direction), with no internal state at all. Same plan + same
// (conn, op) coordinate → same decision, on any machine, in any
// interleaving. The FaultySocket determinism tests in tests/test_transport.cc
// pin exactly this contract by comparing whole decision streams.
//
// Decision precedence per operation: reset beats stall beats clamp — a
// connection ordered dead does not also dribble.
#pragma once

#include <cstdint>

#include "fault/fault_plan.h"
#include "net/aio/tcp.h"

namespace mfhttp::fault {

class SocketFaultInjector : public aio::ByteFaults {
 public:
  explicit SocketFaultInjector(const FaultPlan& plan)
      : faults_(plan.socket), seed_(plan.seed) {}

  aio::ByteFaults::Op on_read(std::uint64_t conn, std::uint64_t op,
                              std::size_t want) override {
    return decide(conn, op, want, /*direction=*/kReadTag);
  }
  aio::ByteFaults::Op on_write(std::uint64_t conn, std::uint64_t op,
                               std::size_t want) override {
    return decide(conn, op, want, /*direction=*/kWriteTag);
  }

  const SocketFaults& faults() const { return faults_; }

 private:
  static constexpr std::uint64_t kReadTag = 0x52;   // 'R'
  static constexpr std::uint64_t kWriteTag = 0x57;  // 'W'

  aio::ByteFaults::Op decide(std::uint64_t conn, std::uint64_t op,
                             std::size_t want, std::uint64_t direction) const;

  SocketFaults faults_;
  std::uint64_t seed_;
};

}  // namespace mfhttp::fault
