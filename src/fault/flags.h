// Shared CLI flag handling for benches and examples.
//
// StandardFlagsGuard deduplicates the per-binary boilerplate: it extracts
//   --metrics-json <path>   (dump the obs registry snapshot at exit), and
//   --fault-plan <path>     (load a FaultPlan and install it as the ambient
//                            fault::global_plan() for every session run),
// leaving all other arguments in place for benchmark::Initialize or ad-hoc
// parsing. The plan is uninstalled when the guard dies so consecutive test
// binaries never leak faults into each other.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace mfhttp::fault {

class StandardFlagsGuard {
 public:
  StandardFlagsGuard(int& argc, char** argv);
  ~StandardFlagsGuard();
  StandardFlagsGuard(const StandardFlagsGuard&) = delete;
  StandardFlagsGuard& operator=(const StandardFlagsGuard&) = delete;

  const std::string& metrics_path() const { return metrics_guard_.path(); }
  const std::string& fault_plan_path() const { return fault_plan_path_; }

 private:
  obs::MetricsDumpGuard metrics_guard_;
  std::string fault_plan_path_;
};

}  // namespace mfhttp::fault
