#include "fault/faulty_link.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace mfhttp::fault {

namespace {

Link::Params shaped_params(Link::Params params, const FaultPlan& plan) {
  params.bandwidth = plan.shape(params.bandwidth);
  return params;
}

// Clamp a fault point to a deliverable prefix: at least one byte delivered,
// at least one byte left to matter.
Bytes fault_point(Bytes size, double fraction) {
  return std::clamp<Bytes>(static_cast<Bytes>(static_cast<double>(size) * fraction),
                           1, size - 1);
}

}  // namespace

FaultyLink::FaultyLink(Simulator& sim, Link::Params params, const FaultPlan& plan)
    : Link(sim, shaped_params(std::move(params), plan)),
      fault_sim_(sim),
      plan_(plan),
      rng_(plan.seed) {
  for (const LinkFaultWindow& w : plan_.link)
    if (w.kind == LinkFaultWindow::Kind::kLatencySpike)
      transfer_faults_active_ = true;
  transfer_faults_active_ = transfer_faults_active_ || plan_.transfer.any();
}

FaultyLink::~FaultyLink() {
  for (auto& [id, sh] : shadows_) {
    if (sh.pending != Simulator::kInvalidEvent) fault_sim_.cancel(sh.pending);
    // Live inner transfers die with the base Link.
  }
}

Link::TransferId FaultyLink::submit(Bytes size, ProgressFn on_progress,
                                    int priority) {
  MFHTTP_CHECK(on_progress != nullptr);
  // Faultable transfers need a proper body; tiny ones — and every transfer
  // when the plan has no per-transfer faults — pass straight through (the
  // shaped bandwidth trace still applies).
  if (size < 2 || !transfer_faults_active_)
    return Link::submit(size, std::move(on_progress), priority);

  const TransferId id = next_shadow_id_++;
  Shadow& sh = shadows_[id];
  sh.size = size;
  sh.priority = priority;
  sh.on_progress = std::move(on_progress);

  // Seeded draws, strictly in submission order.
  const bool truncate =
      plan_.transfer.truncate_rate > 0 && rng_.chance(plan_.transfer.truncate_rate);
  const bool stall =
      plan_.transfer.stall_rate > 0 && rng_.chance(plan_.transfer.stall_rate);
  if (truncate) {
    sh.truncate_at = fault_point(size, plan_.transfer.truncate_fraction);
    static obs::Counter& truncations =
        obs::metrics().counter("fault.link.truncations_total");
    truncations.inc();
  } else if (stall && plan_.transfer.stall_ms > 0) {
    sh.stall_at = fault_point(size, plan_.transfer.stall_fraction);
    static obs::Counter& stalls = obs::metrics().counter("fault.link.stalls_total");
    stalls.inc();
  }

  const TimeMs extra = plan_.extra_latency_at(fault_sim_.now());
  if (extra > 0) {
    static obs::Counter& delayed =
        obs::metrics().counter("fault.link.delayed_starts_total");
    delayed.inc();
    sh.pending = fault_sim_.schedule_after(extra, [this, id] {
      auto it = shadows_.find(id);
      if (it == shadows_.end()) return;  // cancelled during the spike
      it->second.pending = Simulator::kInvalidEvent;
      start_inner(id, it->second.size);
    });
  } else {
    start_inner(id, size);
  }
  return id;
}

void FaultyLink::start_inner(TransferId id, Bytes bytes) {
  auto it = shadows_.find(id);
  MFHTTP_CHECK(it != shadows_.end());
  it->second.inner = Link::submit(
      bytes, [this, id](Bytes chunk, bool complete) { on_inner_progress(id, chunk, complete); },
      it->second.priority);
}

void FaultyLink::on_inner_progress(TransferId id, Bytes chunk, bool complete) {
  auto it = shadows_.find(id);
  if (it == shadows_.end()) return;  // cancelled from a sibling callback
  Shadow& sh = it->second;
  sh.delivered += chunk;

  // Truncation: the connection dies after this chunk — the transfer reports
  // completion with only the prefix delivered.
  if (sh.truncate_at > 0 && sh.delivered >= sh.truncate_at && !complete) {
    Link::cancel(sh.inner);
    ProgressFn cb = std::move(sh.on_progress);
    shadows_.erase(it);
    cb(chunk, true);
    return;
  }

  // Stall: pause mid-flight, then resubmit the remainder (slow-start reset —
  // the remainder re-queues behind whatever else is on the link).
  if (sh.stall_at > 0 && sh.delivered >= sh.stall_at && !complete) {
    sh.stall_at = 0;  // one stall per transfer
    Link::cancel(sh.inner);
    sh.inner = Link::kInvalidTransfer;
    const Bytes remaining = sh.size - sh.delivered;
    sh.pending = fault_sim_.schedule_after(plan_.transfer.stall_ms, [this, id,
                                                                     remaining] {
      auto sit = shadows_.find(id);
      if (sit == shadows_.end()) return;  // cancelled during the gap
      sit->second.pending = Simulator::kInvalidEvent;
      start_inner(id, remaining);
    });
    sh.on_progress(chunk, false);
    return;
  }

  if (complete) {
    ProgressFn cb = std::move(sh.on_progress);
    shadows_.erase(it);
    cb(chunk, true);
    return;
  }
  sh.on_progress(chunk, false);
}

bool FaultyLink::cancel(TransferId id) {
  auto it = shadows_.find(id);
  if (it == shadows_.end()) {
    // Pass-through transfers (empty plan / tiny sizes) live in the base map.
    return Link::cancel(id);
  }
  Shadow& sh = it->second;
  if (sh.pending != Simulator::kInvalidEvent) fault_sim_.cancel(sh.pending);
  if (sh.inner != Link::kInvalidTransfer) Link::cancel(sh.inner);
  shadows_.erase(it);
  return true;
}

}  // namespace mfhttp::fault
