// Hysteresis state machine for graceful-degradation modes.
//
// Policy layers (flow controller, block-list controller, tile scheduler)
// observe a stream of good/bad outcomes — delivery slip, failed fetches,
// playback stalls — and flip into a degraded mode after `enter_after`
// consecutive bad observations, back to normal after `exit_after`
// consecutive good ones. The asymmetry means one lucky fetch during an
// outage does not bounce the policy out of its safe mode.
//
// Each instance registers its own metrics under fault.degraded.<name>.*.
#pragma once

#include <cstdint>
#include <string>

namespace mfhttp::obs {
class Counter;
class Gauge;
}  // namespace mfhttp::obs

namespace mfhttp::fault {

struct DegradationParams {
  int enter_after = 3;  // consecutive bad observations to degrade
  int exit_after = 5;   // consecutive good observations to recover
};

class DegradationState {
 public:
  using Params = DegradationParams;

  explicit DegradationState(std::string name, Params params = {});

  bool degraded() const { return degraded_; }

  // Feed one observation. Returns true when the mode flipped.
  bool observe_bad();
  bool observe_good();

  // Unconditional override (breaker-open wiring). Returns true on change.
  bool force(bool degraded);

  std::uint64_t entries() const { return entries_; }
  std::uint64_t exits() const { return exits_; }

 private:
  void flip(bool degraded);

  std::string name_;
  Params params_;
  bool degraded_ = false;
  int bad_streak_ = 0;
  int good_streak_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t exits_ = 0;
  obs::Counter* entries_counter_;
  obs::Counter* exits_counter_;
  obs::Gauge* active_gauge_;
};

}  // namespace mfhttp::fault
