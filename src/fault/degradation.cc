#include "fault/degradation.h"

#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp::fault {

DegradationState::DegradationState(std::string name, Params params)
    : name_(std::move(name)), params_(params) {
  MFHTTP_CHECK(params_.enter_after > 0);
  MFHTTP_CHECK(params_.exit_after > 0);
  const std::string prefix = "fault.degraded." + name_;
  entries_counter_ = &obs::metrics().counter(prefix + ".entries_total");
  exits_counter_ = &obs::metrics().counter(prefix + ".exits_total");
  active_gauge_ = &obs::metrics().gauge(prefix + ".active");
}

bool DegradationState::observe_bad() {
  good_streak_ = 0;
  if (degraded_) return false;
  if (++bad_streak_ < params_.enter_after) return false;
  flip(true);
  return true;
}

bool DegradationState::observe_good() {
  bad_streak_ = 0;
  if (!degraded_) return false;
  if (++good_streak_ < params_.exit_after) return false;
  flip(false);
  return true;
}

bool DegradationState::force(bool degraded) {
  bad_streak_ = 0;
  good_streak_ = 0;
  if (degraded == degraded_) return false;
  flip(degraded);
  return true;
}

void DegradationState::flip(bool degraded) {
  degraded_ = degraded;
  bad_streak_ = 0;
  good_streak_ = 0;
  if (degraded_) {
    ++entries_;
    entries_counter_->inc();
    active_gauge_->set(1);
  } else {
    ++exits_;
    exits_counter_->inc();
    active_gauge_->set(0);
  }
}

}  // namespace mfhttp::fault
