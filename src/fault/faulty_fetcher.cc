#include "fault/faulty_fetcher.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp::fault {

namespace {

std::string request_url(const HttpRequest& request) {
  if (auto url = request.url()) return url->to_string();
  return request.target;
}

}  // namespace

FaultyFetcher::FaultyFetcher(Simulator& sim, HttpFetcher* inner,
                             const FaultPlan& plan)
    : sim_(sim), inner_(inner), plan_(plan), rng_(plan.seed ^ 0x0f0f0f0f) {
  MFHTTP_CHECK(inner_ != nullptr);
}

FaultyFetcher::~FaultyFetcher() {
  // Wrapped callbacks capture `this`; tear down anything still in flight.
  for (auto& [id, sh] : shadows_) {
    if (sh.event != Simulator::kInvalidEvent) sim_.cancel(sh.event);
    if (sh.inner != kInvalidFetch) inner_->cancel(sh.inner);
  }
}

HttpFetcher::FetchId FaultyFetcher::fetch(const HttpRequest& request,
                                          FetchCallbacks callbacks) {
  MFHTTP_CHECK(callbacks.on_complete != nullptr);
  if (!plan_.origin.any()) return inner_->fetch(request, std::move(callbacks));

  const FetchId id = next_id_++;
  Shadow& sh = shadows_[id];
  sh.callbacks = std::move(callbacks);
  sh.url = request_url(request);
  sh.request_ms = sim_.now();

  // Seeded draws, strictly in request order.
  const bool error =
      plan_.origin.error_rate > 0 && rng_.chance(plan_.origin.error_rate);
  const bool abrupt_close = plan_.origin.abrupt_close_rate > 0 &&
                            rng_.chance(plan_.origin.abrupt_close_rate);

  if (error) {
    static obs::Counter& errors = obs::metrics().counter("fault.origin.errors_total");
    errors.inc();
    const auto& statuses = plan_.origin.error_statuses;
    const int status = statuses[rng_.uniform_int(
        0, static_cast<int>(statuses.size()) - 1)];
    sh.event = sim_.schedule_after(plan_.origin.error_delay_ms, [this, id, status] {
      auto it = shadows_.find(id);
      if (it == shadows_.end()) return;
      Shadow shadow = std::move(it->second);
      shadows_.erase(it);
      if (shadow.callbacks.on_headers)
        shadow.callbacks.on_headers(
            {status, plan_.origin.error_body_size, "text/plain", ""});
      if (shadow.callbacks.on_progress)
        shadow.callbacks.on_progress(plan_.origin.error_body_size,
                                     plan_.origin.error_body_size,
                                     plan_.origin.error_body_size);
      FetchResult result;
      result.url = shadow.url;
      result.status = status;
      result.body_size = plan_.origin.error_body_size;
      result.request_ms = shadow.request_ms;
      result.complete_ms = sim_.now();
      shadow.callbacks.on_complete(result);
    });
    return id;
  }

  if (abrupt_close) sh.close_fraction = plan_.origin.abrupt_close_fraction;

  FetchCallbacks wrapped;
  wrapped.on_headers = [this, id](const SimResponseMeta& meta) {
    auto it = shadows_.find(id);
    if (it == shadows_.end()) return;
    Shadow& shadow = it->second;
    // An abrupt close needs a real body to die inside; one-byte and empty
    // responses complete normally.
    if (shadow.close_fraction > 0 && meta.body_size > 1)
      shadow.close_at = std::clamp<Bytes>(
          static_cast<Bytes>(static_cast<double>(meta.body_size) *
                             shadow.close_fraction),
          1, meta.body_size - 1);
    if (shadow.callbacks.on_headers) shadow.callbacks.on_headers(meta);
  };
  wrapped.on_progress = [this, id](Bytes chunk, Bytes received, Bytes total) {
    auto it = shadows_.find(id);
    if (it == shadows_.end()) return;
    Shadow& shadow = it->second;
    shadow.received = received;
    if (shadow.close_at > 0 && received >= shadow.close_at) {
      static obs::Counter& closes =
          obs::metrics().counter("fault.origin.abrupt_closes_total");
      closes.inc();
      Shadow dying = std::move(shadow);
      shadows_.erase(it);
      inner_->cancel(dying.inner);
      if (dying.callbacks.on_progress)
        dying.callbacks.on_progress(chunk, received, total);
      FetchResult result;
      result.url = dying.url;
      result.status = 0;  // connection reset, no usable response
      result.body_size = dying.received;
      result.request_ms = dying.request_ms;
      result.complete_ms = sim_.now();
      dying.callbacks.on_complete(result);
      return;
    }
    if (shadow.callbacks.on_progress)
      shadow.callbacks.on_progress(chunk, received, total);
  };
  wrapped.on_complete = [this, id](const FetchResult& result) {
    auto it = shadows_.find(id);
    if (it == shadows_.end()) return;
    Shadow shadow = std::move(it->second);
    shadows_.erase(it);
    shadow.callbacks.on_complete(result);
  };
  sh.inner = inner_->fetch(request, std::move(wrapped));
  return id;
}

bool FaultyFetcher::cancel(FetchId id) {
  if (!plan_.origin.any()) return inner_->cancel(id);
  auto it = shadows_.find(id);
  if (it == shadows_.end()) return false;
  Shadow shadow = std::move(it->second);
  shadows_.erase(it);
  if (shadow.event != Simulator::kInvalidEvent) sim_.cancel(shadow.event);
  if (shadow.inner != kInvalidFetch) inner_->cancel(shadow.inner);
  return true;
}

}  // namespace mfhttp::fault
