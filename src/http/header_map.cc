#include "http/header_map.h"

#include <algorithm>
#include <cstdlib>

#include "util/strings.h"

namespace mfhttp {

void HeaderMap::add(std::string_view name, std::string_view value) {
  entries_.push_back({std::string(name), std::string(value)});
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  for (const Entry& e : entries_)
    if (iequals(e.name, name)) return e.value;
  return std::nullopt;
}

std::vector<std::string> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_)
    if (iequals(e.name, name)) out.push_back(e.value);
  return out;
}

std::size_t HeaderMap::remove(std::string_view name) {
  std::size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return iequals(e.name, name); }),
                 entries_.end());
  return before - entries_.size();
}

std::optional<long long> HeaderMap::content_length() const {
  auto v = get("Content-Length");
  if (!v) return std::nullopt;
  std::string_view s = trim(*v);
  if (s.empty()) return std::nullopt;
  long long out = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    if (out > (1LL << 56)) return std::nullopt;  // absurd length
    out = out * 10 + (c - '0');
  }
  return out;
}

}  // namespace mfhttp
