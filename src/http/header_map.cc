#include "http/header_map.h"

#include "http/header_names.h"
#include "util/strings.h"

namespace mfhttp {

void HeaderMap::add(std::string_view name, std::string_view value) {
  Entry e;
  std::string_view canon = intern_header_name(name);
  if (!canon.empty() && canon == name) {
    e.interned_ = canon;  // canonical spelling: share the static bytes
  } else {
    e.owned_name_.assign(name);
  }
  e.value_.assign(value);
  if (inline_count_ < kInlineCapacity)
    inline_[inline_count_++] = std::move(e);
  else
    overflow_.push_back(std::move(e));
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

const HeaderMap::Entry* HeaderMap::find(std::string_view name) const {
  const std::string_view canon = intern_header_name(name);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const Entry& e = entry(i);
    if (e.interned_.data() != nullptr) {
      // Interned entries can only match via the interner: same pointer or
      // nothing (a non-vocabulary query can never case-fold onto one).
      if (e.interned_.data() == canon.data()) return &e;
    } else if (iequals(e.owned_name_, name)) {
      return &e;
    }
  }
  return nullptr;
}

std::optional<std::string_view> HeaderMap::get_view(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) return std::nullopt;
  return std::string_view(e->value_);
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) return std::nullopt;
  return e->value_;
}

std::vector<std::string> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string> out;
  const std::string_view canon = intern_header_name(name);
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const Entry& e = entry(i);
    const bool match = e.interned_.data() != nullptr
                           ? e.interned_.data() == canon.data()
                           : iequals(e.owned_name_, name);
    if (match) out.push_back(e.value_);
  }
  return out;
}

std::size_t HeaderMap::remove(std::string_view name) {
  const std::string_view canon = intern_header_name(name);
  const std::size_t n = size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Entry& e = entry_mut(i);
    const bool match = e.interned_.data() != nullptr
                           ? e.interned_.data() == canon.data()
                           : iequals(e.owned_name_, name);
    if (match) continue;
    if (kept != i) entry_mut(kept) = std::move(e);
    ++kept;
  }
  // Overflow is only ever populated once the inline array is full, so the
  // compacted prefix maps back onto the same storage split.
  if (kept <= inline_count_) {
    for (std::size_t i = kept; i < inline_count_; ++i) inline_[i] = Entry{};
    inline_count_ = kept;
    overflow_.clear();
  } else {
    overflow_.resize(kept - inline_count_);
  }
  return n - kept;
}

std::optional<long long> HeaderMap::content_length() const {
  auto v = get_view("Content-Length");
  if (!v) return std::nullopt;
  std::string_view s = trim(*v);
  if (s.empty()) return std::nullopt;
  long long out = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    if (out > (1LL << 56)) return std::nullopt;  // absurd length
    out = out * 10 + (c - '0');
  }
  return out;
}

bool HeaderMap::operator==(const HeaderMap& other) const {
  if (size() != other.size()) return false;
  for (std::size_t i = 0; i < size(); ++i) {
    const Entry& a = entry(i);
    const Entry& b = other.entry(i);
    if (a.name() != b.name() || a.value_ != b.value_) return false;
  }
  return true;
}

}  // namespace mfhttp
