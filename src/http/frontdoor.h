// Sharded million-session front door (ISSUE 6 tentpole, DESIGN.md §13).
//
// PR 5 made the *simulation* side scale (shared-nothing session worlds on a
// work-stealing runner); the serving path itself — MitmProxy + shared
// HttpCache + AdmissionController — was still one box behind coarse locks.
// This front door shards that box across per-core workers:
//
//   * routing     — a session lands on shard splitmix64(id) % N, a pure
//                   function of (session, N): stable across runs, machines,
//                   and restarts, so per-session state never migrates;
//   * dispatch    — each shard owns one bounded lock-free MPSC queue
//                   (util/mpsc_queue.h). Producers (session/touch event
//                   sources) push; the shard's worker thread is the queue's
//                   single consumer. A full queue back-pressures the
//                   producer (spin-yield), never drops silently;
//   * serving     — each shard owns a full pipeline built through
//                   FetchPipelineBuilder exactly like the single box:
//                   SimHttpOrigin -> MitmProxy with a per-shard HttpCache
//                   *segment* (1/N capacity, TinyLFU admission against the
//                   SHARED CacheGhosts so cross-shard popularity history
//                   survives) and a per-shard AdmissionController holding
//                   1/N of the box's token/queue budget
//                   (overload::shard_slice);
//   * metrics     — shard workers count locally through obs::BatchedCounter
//                   and flush in batches, so the process metrics snapshot
//                   stays ONE JSON document with no per-event atomic
//                   traffic on the hot path.
//
// Determinism contract: the per-session outcome stream is a function of the
// order a shard consumes events in. With the single in-order producer the
// benches use, every shard consumes its sessions' events in global
// timestamp order — and shards=1 consumes the IDENTICAL total order the
// unsharded inline path serves, making run_front_door(p, kThreaded) with
// one shard byte-identical (deterministic_json) to run_front_door(p,
// kInline). That N=1 gate is what lets every existing single-box bench and
// test keep its meaning unchanged. At N>1 the routing table, event/request
// totals, and each shard's consumption order stay exact, but the SHARED
// ghost list is bumped by all workers concurrently: its decay epochs land
// on interleaving-dependent op counts, so cache admission — and with it
// hit ratios and fingerprints — may wobble slightly between repeat runs.
// That is the price of cross-shard popularity history; gates on N>1 rows
// compare ratios within tolerance, never bytes.
//
// Lock/thread order (extends DESIGN.md §12): a shard worker owns its
// Simulator, proxy, and admission controller outright (externally
// synchronized, never shared). The only cross-shard objects are the MPSC
// queues (lock-free), the shared CacheGhosts (leaf mutex below the cache's,
// see http/cache.h), the obs registry (leaf), and the per-session stats
// slots — which are partitioned by routing, each slot written by exactly
// one worker and read only after join.
//
// ISSUE 7 layers self-healing on top (DESIGN.md §14): per-shard heartbeats
// watched by a FrontDoorSupervisor (healthy → slow → wedged with
// hysteresis), rendezvous-hash failover of NEW sessions off wedged shards
// (in-flight sessions never migrate — the determinism contract survives),
// deadline-aware enqueue and serve (stale events shed with an explicit 503
// verdict instead of blocking the producer or serving dead air), admission
// budget re-distribution over the healthy cohort, and seeded chaos faults
// (fault::ShardFault) that stall, crash, or slow individual shard workers.
// With supervision enabled but no faults firing, nothing sheds and nothing
// fails over: the shards=1 kInline/kThreaded byte-identity gate holds
// unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "http/cache.h"
#include "http/frontdoor_supervisor.h"
#include "http/proxy.h"
#include "http/resilient_fetcher.h"
#include "overload/admission.h"
#include "sim/frontdoor_load.h"
#include "util/rng.h"
#include "util/types.h"

namespace mfhttp {

// Stable session -> shard routing. Pure, total, and platform-independent.
inline std::size_t shard_of(std::uint64_t session, std::size_t shards) {
  return shards <= 1 ? 0 : static_cast<std::size_t>(splitmix64(session) %
                                                    static_cast<std::uint64_t>(shards));
}

// FNV-1a over the whole routing table — the cheap witness the TSan smoke
// compares across recomputations to assert routing is deterministic.
std::uint64_t routing_fingerprint(std::size_t sessions, std::size_t shards);

// Failover routing: rendezvous (highest-random-weight) hash over the
// healthy set. Every caller computes the same substitute shard from
// (session, shards, mask) alone — no coordination, no routing table to
// replicate — and when a shard recovers, only sessions first seen during
// its outage stay re-routed; everything else keeps its shard_of home.
// Falls back to shard_of when the mask is empty (nothing to fail over to).
std::size_t failover_shard_of(std::uint64_t session, std::size_t shards,
                              std::uint64_t healthy_mask);

struct FrontDoorParams {
  std::size_t shards = 1;
  sim::FrontDoorLoadConfig load;

  // Whole-box budgets, divided across shards at build time.
  Bytes cache_capacity_total = 8 * 1024 * 1024;
  TimeMs cache_ttl_ms = 0;  // 0: immortal entries (working-set study)
  overload::AdmissionParams admission;  // sliced via overload::shard_slice

  // Shard egress/ingress link shape (per shard = total / shards).
  BytesPerSec client_bytes_per_s_total = 400'000'000;
  BytesPerSec server_bytes_per_s_total = 800'000'000;
  TimeMs client_latency_ms = 2;
  TimeMs server_latency_ms = 1;
  TimeMs origin_delay_ms = 5;

  std::size_t queue_capacity = 8192;     // per-shard MPSC bound
  std::uint64_t counter_flush_batch = 1024;  // obs::BatchedCounter batch

  // ---- Self-healing (ISSUE 7, DESIGN.md §14) -------------------------
  // Shard health supervision + failover. Only the kThreaded path runs a
  // watchdog (kInline has no workers to watch); the flag still echoes into
  // the result so both modes emit identical deterministic_json bytes.
  SupervisorParams supervisor;
  // Per-event freshness budget from the touch's enqueue stamp. The
  // producer's bounded push sheds once the deadline passes instead of
  // spinning, and a worker sheds a dequeued event that is already past it
  // (a scrolled-away viewport is not worth serving). 0 = no deadline: the
  // legacy block-forever producer, now with its wait time counted.
  TimeMs enqueue_deadline_ms = 0;
  // Per-shard retry/breaker stack (PR-2 ResilientFetcher) inside each
  // shard's pipeline; per-shard breaker state surfaces in the report.
  std::optional<ResilientFetcherParams> resilience;
  // Chaos plan: pipeline faults (link/transfer/origin) decorate each
  // shard's stack with per-shard remixed seeds; frontdoor shard faults
  // (fault::ShardFault) stall/crash/slow the workers themselves.
  std::optional<fault::FaultPlan> fault_plan;

  // Fill `admission` with budgets scaled to the configured load: the token
  // rate is provisioned at 50% of the expected gross request rate (fresh
  // cache hits bypass admission, so tokens only meet the miss stream) plus
  // a 25% burst allowance, so a saturating sweep sheds the overflow instead
  // of queueing it forever.
  void apply_scaled_admission();
};

enum class FrontDoorMode {
  kInline,    // the historical single-box path: caller thread, no queues
  kThreaded,  // producer -> per-shard MPSC queues -> shard worker threads
};

// Per-session outcome slot. Padded to a cache line: neighbouring sessions
// usually route to different shards, and two workers must never share a
// line. fingerprint folds (status, delivered bytes, completion time,
// verdict) of every one of the session's requests in completion order.
struct alignas(64) FrontDoorSessionStats {
  std::uint32_t requests = 0;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;   // admission bounce or shed (429/503)
  std::uint32_t failed = 0;     // non-2xx, non-rejected
  std::uint64_t bytes_to_client = 0;
  std::uint64_t fingerprint = 1469598103934665603ULL;  // FNV-1a offset
};

struct FrontDoorShardReport {
  std::size_t shard = 0;
  std::size_t sessions = 0;     // sessions routed here
  std::size_t events = 0;       // touch events consumed
  std::size_t requests = 0;
  std::size_t max_queue_depth = 0;  // producer-side high-water mark
  MitmProxy::Stats proxy;
  HttpCache::Stats cache;

  // §14 self-healing fields. worker_sheds counts events this shard drained
  // as 503s (crashed worker, or already past their serve deadline);
  // `breaker` is the shard's per-origin circuit-breaker state ("off" when
  // resilience is not configured). Supervision outcome fields are filled
  // from the supervisor after join and are all zero in healthy runs.
  std::size_t worker_sheds = 0;
  std::string breaker = "off";
  ShardHealth final_health = ShardHealth::kHealthy;
  std::uint64_t wedged_spells = 0;
  double time_to_detect_ms = 0;   // wall; excluded from deterministic_json
  double time_to_recover_ms = 0;  // wall; excluded from deterministic_json
};

struct FrontDoorResult {
  std::size_t shards = 0;
  bool threaded = false;
  sim::FrontDoorLoadConfig load;

  // Deterministic aggregates (merged in session-id / shard-index order).
  std::size_t events = 0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;  // admission 429 + brownout/queue 503
  std::size_t failed = 0;
  std::size_t cache_hits = 0;
  Bytes bytes_to_client = 0;
  Bytes upstream_bytes_saved = 0;
  double cache_hit_ratio = 0;  // cache_hits / requests
  double shed_rate = 0;        // rejected / requests
  std::uint64_t fingerprint = 0;          // fold of per-session fingerprints
  std::uint64_t routing_fp = 0;           // routing_fingerprint(sessions, shards)
  std::vector<FrontDoorShardReport> per_shard;

  // §14 self-healing aggregates. All zero when no fault fires, which keeps
  // them safe to include in deterministic_json(): the byte-identity gate
  // only ever compares fault-free runs. `shed_events` counts whole touch
  // events shed (producer deadline/wedged sheds + worker drains); their
  // requests are already inside `rejected`.
  bool supervised = false;
  std::size_t failover_sessions = 0;  // sessions re-routed off wedged shards
  std::size_t shed_events = 0;
  std::size_t deadline_shed_events = 0;  // subset of shed_events

  // Wall-clock measurements — excluded from deterministic_json().
  double wall_ms = 0;
  double sessions_per_sec = 0;  // load.sessions / wall seconds
  double events_per_sec = 0;
  double p50_touch_to_policy_us = 0;  // enqueue -> policy verdict issued
  double p99_touch_to_policy_us = 0;
  std::uint64_t wedged_declared = 0;  // supervisor wedged declarations
  double first_detect_ms = 0;   // earliest shard time-to-detect (0: none)
  double first_recover_ms = 0;  // earliest shard time-to-recover (0: none)

  // One JSON document over config + every deterministic field above. The
  // byte-comparable artifact: kInline and kThreaded with shards=1 must
  // produce the same bytes.
  std::string deterministic_json() const;
};

// Run the configured load through an N-shard front door. kThreaded spawns
// params.shards worker threads plus uses the calling thread as the single
// in-order producer; kInline serves every event on the calling thread in
// the same global order (the unsharded reference path when shards == 1).
FrontDoorResult run_front_door(const FrontDoorParams& params,
                               FrontDoorMode mode);

}  // namespace mfhttp
