// Sharded million-session front door (ISSUE 6 tentpole, DESIGN.md §13).
//
// PR 5 made the *simulation* side scale (shared-nothing session worlds on a
// work-stealing runner); the serving path itself — MitmProxy + shared
// HttpCache + AdmissionController — was still one box behind coarse locks.
// This front door shards that box across per-core workers:
//
//   * routing     — a session lands on shard splitmix64(id) % N, a pure
//                   function of (session, N): stable across runs, machines,
//                   and restarts, so per-session state never migrates;
//   * dispatch    — each shard owns one bounded lock-free MPSC queue
//                   (util/mpsc_queue.h). Producers (session/touch event
//                   sources) push; the shard's worker thread is the queue's
//                   single consumer. A full queue back-pressures the
//                   producer (spin-yield), never drops silently;
//   * serving     — each shard owns a full pipeline built through
//                   FetchPipelineBuilder exactly like the single box:
//                   SimHttpOrigin -> MitmProxy with a per-shard HttpCache
//                   *segment* (1/N capacity, TinyLFU admission against the
//                   SHARED CacheGhosts so cross-shard popularity history
//                   survives) and a per-shard AdmissionController holding
//                   1/N of the box's token/queue budget
//                   (overload::shard_slice);
//   * metrics     — shard workers count locally through obs::BatchedCounter
//                   and flush in batches, so the process metrics snapshot
//                   stays ONE JSON document with no per-event atomic
//                   traffic on the hot path.
//
// Determinism contract: the per-session outcome stream is a function of the
// order a shard consumes events in. With the single in-order producer the
// benches use, every shard consumes its sessions' events in global
// timestamp order — and shards=1 consumes the IDENTICAL total order the
// unsharded inline path serves, making run_front_door(p, kThreaded) with
// one shard byte-identical (deterministic_json) to run_front_door(p,
// kInline). That N=1 gate is what lets every existing single-box bench and
// test keep its meaning unchanged. At N>1 the routing table, event/request
// totals, and each shard's consumption order stay exact, but the SHARED
// ghost list is bumped by all workers concurrently: its decay epochs land
// on interleaving-dependent op counts, so cache admission — and with it
// hit ratios and fingerprints — may wobble slightly between repeat runs.
// That is the price of cross-shard popularity history; gates on N>1 rows
// compare ratios within tolerance, never bytes.
//
// Lock/thread order (extends DESIGN.md §12): a shard worker owns its
// Simulator, proxy, and admission controller outright (externally
// synchronized, never shared). The only cross-shard objects are the MPSC
// queues (lock-free), the shared CacheGhosts (leaf mutex below the cache's,
// see http/cache.h), the obs registry (leaf), and the per-session stats
// slots — which are partitioned by routing, each slot written by exactly
// one worker and read only after join.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/cache.h"
#include "http/proxy.h"
#include "overload/admission.h"
#include "sim/frontdoor_load.h"
#include "util/rng.h"
#include "util/types.h"

namespace mfhttp {

// Stable session -> shard routing. Pure, total, and platform-independent.
inline std::size_t shard_of(std::uint64_t session, std::size_t shards) {
  return shards <= 1 ? 0 : static_cast<std::size_t>(splitmix64(session) %
                                                    static_cast<std::uint64_t>(shards));
}

// FNV-1a over the whole routing table — the cheap witness the TSan smoke
// compares across recomputations to assert routing is deterministic.
std::uint64_t routing_fingerprint(std::size_t sessions, std::size_t shards);

struct FrontDoorParams {
  std::size_t shards = 1;
  sim::FrontDoorLoadConfig load;

  // Whole-box budgets, divided across shards at build time.
  Bytes cache_capacity_total = 8 * 1024 * 1024;
  TimeMs cache_ttl_ms = 0;  // 0: immortal entries (working-set study)
  overload::AdmissionParams admission;  // sliced via overload::shard_slice

  // Shard egress/ingress link shape (per shard = total / shards).
  BytesPerSec client_bytes_per_s_total = 400'000'000;
  BytesPerSec server_bytes_per_s_total = 800'000'000;
  TimeMs client_latency_ms = 2;
  TimeMs server_latency_ms = 1;
  TimeMs origin_delay_ms = 5;

  std::size_t queue_capacity = 8192;     // per-shard MPSC bound
  std::uint64_t counter_flush_batch = 1024;  // obs::BatchedCounter batch

  // Fill `admission` with budgets scaled to the configured load: the token
  // rate is provisioned at 50% of the expected gross request rate (fresh
  // cache hits bypass admission, so tokens only meet the miss stream) plus
  // a 25% burst allowance, so a saturating sweep sheds the overflow instead
  // of queueing it forever.
  void apply_scaled_admission();
};

enum class FrontDoorMode {
  kInline,    // the historical single-box path: caller thread, no queues
  kThreaded,  // producer -> per-shard MPSC queues -> shard worker threads
};

// Per-session outcome slot. Padded to a cache line: neighbouring sessions
// usually route to different shards, and two workers must never share a
// line. fingerprint folds (status, delivered bytes, completion time,
// verdict) of every one of the session's requests in completion order.
struct alignas(64) FrontDoorSessionStats {
  std::uint32_t requests = 0;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;   // admission bounce or shed (429/503)
  std::uint32_t failed = 0;     // non-2xx, non-rejected
  std::uint64_t bytes_to_client = 0;
  std::uint64_t fingerprint = 1469598103934665603ULL;  // FNV-1a offset
};

struct FrontDoorShardReport {
  std::size_t shard = 0;
  std::size_t sessions = 0;     // sessions routed here
  std::size_t events = 0;       // touch events consumed
  std::size_t requests = 0;
  std::size_t max_queue_depth = 0;  // producer-side high-water mark
  MitmProxy::Stats proxy;
  HttpCache::Stats cache;
};

struct FrontDoorResult {
  std::size_t shards = 0;
  bool threaded = false;
  sim::FrontDoorLoadConfig load;

  // Deterministic aggregates (merged in session-id / shard-index order).
  std::size_t events = 0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;  // admission 429 + brownout/queue 503
  std::size_t failed = 0;
  std::size_t cache_hits = 0;
  Bytes bytes_to_client = 0;
  Bytes upstream_bytes_saved = 0;
  double cache_hit_ratio = 0;  // cache_hits / requests
  double shed_rate = 0;        // rejected / requests
  std::uint64_t fingerprint = 0;          // fold of per-session fingerprints
  std::uint64_t routing_fp = 0;           // routing_fingerprint(sessions, shards)
  std::vector<FrontDoorShardReport> per_shard;

  // Wall-clock measurements — excluded from deterministic_json().
  double wall_ms = 0;
  double sessions_per_sec = 0;  // load.sessions / wall seconds
  double events_per_sec = 0;
  double p50_touch_to_policy_us = 0;  // enqueue -> policy verdict issued
  double p99_touch_to_policy_us = 0;

  // One JSON document over config + every deterministic field above. The
  // byte-comparable artifact: kInline and kThreaded with shards=1 must
  // produce the same bytes.
  std::string deterministic_json() const;
};

// Run the configured load through an N-shard front door. kThreaded spawns
// params.shards worker threads plus uses the calling thread as the single
// in-order producer; kInline serves every event on the calling thread in
// the same global order (the unsharded reference path when shards == 1).
FrontDoorResult run_front_door(const FrontDoorParams& params,
                               FrontDoorMode mode);

}  // namespace mfhttp
