#include "http/resilient_fetcher.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp {

namespace {

std::string breaker_key(const HttpRequest& request) {
  if (auto url = request.url()) return url->host;
  return request.target;
}

std::string request_url_string(const HttpRequest& request) {
  if (auto url = request.url()) return url->to_string();
  return request.target;
}

}  // namespace

ResilientFetcher::ResilientFetcher(Simulator& sim, HttpFetcher* inner,
                                   Params params)
    : sim_(sim),
      inner_(inner),
      params_(params),
      breaker_(params.breaker),
      rng_(params.seed ^ 0xb0ffb0ff) {
  MFHTTP_CHECK(inner_ != nullptr);
  MFHTTP_CHECK(params_.max_attempts >= 1);
  MFHTTP_CHECK(params_.backoff_jitter >= 0 && params_.backoff_jitter < 1);
  breaker_.set_on_transition([this](const std::string& key,
                                    CircuitBreaker::State /*from*/,
                                    CircuitBreaker::State to) {
    if (!degraded_fn_) return;
    if (to == CircuitBreaker::State::kOpen) degraded_fn_(key, true);
    if (to == CircuitBreaker::State::kClosed) degraded_fn_(key, false);
  });
}

ResilientFetcher::~ResilientFetcher() {
  for (auto& [id, a] : attempts_) {
    if (a.timeout_event != Simulator::kInvalidEvent) sim_.cancel(a.timeout_event);
    if (a.backoff_event != Simulator::kInvalidEvent) sim_.cancel(a.backoff_event);
    if (a.inner != kInvalidFetch) inner_->cancel(a.inner);
  }
}

HttpFetcher::FetchId ResilientFetcher::fetch(const HttpRequest& request,
                                             FetchCallbacks callbacks) {
  MFHTTP_CHECK(callbacks.on_complete != nullptr);
  const FetchId id = next_id_++;
  Attempt& a = attempts_[id];
  a.request = request;
  a.callbacks = std::move(callbacks);
  a.key = breaker_key(request);
  a.url = request_url_string(request);
  a.request_ms = sim_.now();

  if (!breaker_.allow(a.key, sim_.now())) {
    // Fast-fail: the origin is known-bad; answer 503 without touching it.
    // Still asynchronous — callers never see on_complete inside fetch().
    static obs::Counter& fast =
        obs::metrics().counter("http.resilient.fast_fails_total");
    fast.inc();
    a.backoff_event = sim_.schedule_after(0, [this, id] {
      auto it = attempts_.find(id);
      if (it == attempts_.end()) return;
      it->second.backoff_event = Simulator::kInvalidEvent;
      FetchResult result;
      result.url = it->second.url;
      result.status = 503;
      result.request_ms = it->second.request_ms;
      result.complete_ms = sim_.now();
      finish(id, std::move(result));
    });
    return id;
  }

  start_attempt(id);
  return id;
}

void ResilientFetcher::start_attempt(FetchId id) {
  Attempt& a = attempts_.at(id);
  static obs::Counter& attempts =
      obs::metrics().counter("http.resilient.attempts_total");
  attempts.inc();

  if (params_.attempt_timeout_ms > 0) {
    a.timeout_event = sim_.schedule_after(params_.attempt_timeout_ms, [this, id] {
      auto it = attempts_.find(id);
      if (it == attempts_.end()) return;
      Attempt& at = it->second;
      at.timeout_event = Simulator::kInvalidEvent;
      inner_->cancel(at.inner);
      at.inner = kInvalidFetch;
      static obs::Counter& timeouts =
          obs::metrics().counter("http.resilient.timeouts_total");
      timeouts.inc();
      FetchResult result;
      result.url = at.url;
      result.status = 504;  // deadline exceeded
      result.request_ms = at.request_ms;
      result.complete_ms = sim_.now();
      on_attempt_complete(id, result);
    });
  }

  FetchCallbacks wrapped;
  wrapped.on_headers = [this, id](const SimResponseMeta& meta) {
    auto it = attempts_.find(id);
    if (it == attempts_.end()) return;
    it->second.expected = meta.body_size;
    // Hold back headers that announce a retryable error while retries
    // remain: downstream consumers (the proxy's cut-through stream) commit
    // to the first headers they see, and these are about to be superseded.
    const bool retryable_status = meta.status == 429 || meta.status >= 500;
    if (retryable_status && it->second.attempt < params_.max_attempts) return;
    if (it->second.callbacks.on_headers) it->second.callbacks.on_headers(meta);
  };
  wrapped.on_progress = [this, id](Bytes chunk, Bytes received, Bytes total) {
    auto it = attempts_.find(id);
    if (it == attempts_.end()) return;
    if (it->second.callbacks.on_progress)
      it->second.callbacks.on_progress(chunk, received, total);
  };
  wrapped.on_complete = [this, id](const FetchResult& result) {
    auto it = attempts_.find(id);
    if (it == attempts_.end()) return;
    Attempt& at = it->second;
    at.inner = kInvalidFetch;
    if (at.timeout_event != Simulator::kInvalidEvent) {
      sim_.cancel(at.timeout_event);
      at.timeout_event = Simulator::kInvalidEvent;
    }
    on_attempt_complete(id, result);
  };
  a.inner = inner_->fetch(a.request, std::move(wrapped));
}

bool ResilientFetcher::retryable(int status, Bytes body_size, Bytes expected,
                                 bool blocked) const {
  if (blocked) return false;  // middleware policy, not a fault
  if (status == 0 || status == 429 || status >= 500) return true;
  if (params_.retry_truncated && status == 200 && expected > 0 &&
      body_size < expected)
    return true;
  return false;
}

void ResilientFetcher::on_attempt_complete(FetchId id, const FetchResult& result) {
  Attempt& a = attempts_.at(id);

  if (!retryable(result.status, result.body_size, a.expected, result.blocked)) {
    breaker_.record_success(a.key, sim_.now());
    if (a.attempt > 1) {
      static obs::Counter& recovered =
          obs::metrics().counter("http.resilient.recovered_total");
      recovered.inc();
    }
    FetchResult adjusted = result;
    adjusted.request_ms = a.request_ms;  // latency spans every attempt
    finish(id, std::move(adjusted));
    return;
  }

  breaker_.record_failure(a.key, sim_.now());

  const bool attempts_left = a.attempt < params_.max_attempts;
  if (!attempts_left || !breaker_.allow(a.key, sim_.now())) {
    static obs::Counter& failures =
        obs::metrics().counter("http.resilient.failures_total");
    failures.inc();
    FetchResult adjusted = result;
    adjusted.request_ms = a.request_ms;
    finish(id, std::move(adjusted));
    return;
  }

  static obs::Counter& retries = obs::metrics().counter("http.resilient.retries_total");
  retries.inc();
  a.attempt += 1;
  a.expected = 0;
  TimeMs delay = std::min(
      params_.backoff_cap_ms,
      params_.backoff_base_ms * (TimeMs{1} << std::min(a.attempt - 2, 20)));
  if (params_.backoff_jitter > 0 && delay > 0) {
    const double spread = params_.backoff_jitter * static_cast<double>(delay);
    delay += static_cast<TimeMs>(rng_.uniform(-spread, spread));
    delay = std::max<TimeMs>(delay, 0);
  }
  a.backoff_event = sim_.schedule_after(delay, [this, id] {
    auto it = attempts_.find(id);
    if (it == attempts_.end()) return;
    it->second.backoff_event = Simulator::kInvalidEvent;
    start_attempt(id);
  });
}

void ResilientFetcher::finish(FetchId id, FetchResult result) {
  auto it = attempts_.find(id);
  MFHTTP_CHECK(it != attempts_.end());
  FetchCallbacks callbacks = std::move(it->second.callbacks);
  attempts_.erase(it);
  callbacks.on_complete(result);
}

bool ResilientFetcher::cancel(FetchId id) {
  auto it = attempts_.find(id);
  if (it == attempts_.end()) return false;
  Attempt a = std::move(it->second);
  attempts_.erase(it);
  if (a.timeout_event != Simulator::kInvalidEvent) sim_.cancel(a.timeout_event);
  if (a.backoff_event != Simulator::kInvalidEvent) sim_.cancel(a.backoff_event);
  if (a.inner != kInvalidFetch) {
    inner_->cancel(a.inner);
    breaker_.abandon(a.key);  // free a half-open probe slot if we held it
  }
  return true;
}

}  // namespace mfhttp
