// Resilient fetch layer: retries, per-attempt deadlines, and a per-origin
// circuit breaker over any HttpFetcher.
//
// Failure classification (what gets retried):
//   * status 0            — connection reset / abrupt close,
//   * status 429 or 5xx   — origin overload and server errors,
//   * per-attempt timeout — synthesized as status 504,
//   * truncated 200       — fewer body bytes than the headers advertised
//                           (when retry_truncated, the default).
// Everything else — 2xx, 404, middleware blocks — is terminal.
//
// Retries back off exponentially (base * 2^(attempt-1), capped) with seeded
// jitter so herds of retries never synchronize yet every run is exactly
// reproducible. Consecutive failures trip the origin's circuit breaker;
// while it is open, fetches fast-fail with a synthesized 503 without
// touching the origin, and a degradation callback lets policy layers shed
// work until the origin recovers.
//
// Forwarded results carry the ORIGINAL request time, so latency spans all
// attempts. on_progress is forwarded transparently, which means a retried
// fetch can report more cumulative progress bytes than the body size —
// exactly like real re-downloads over a flaky network.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "http/circuit_breaker.h"
#include "http/sim_http.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mfhttp {

struct ResilientFetcherParams {
  int max_attempts = 3;
  TimeMs attempt_timeout_ms = 0;  // per-attempt deadline; 0 disables
  TimeMs backoff_base_ms = 100;
  TimeMs backoff_cap_ms = 2000;
  double backoff_jitter = 0.5;  // +/- fraction of the computed delay
  std::uint64_t seed = 1;
  bool retry_truncated = true;
  CircuitBreaker::Params breaker;
};

class ResilientFetcher : public HttpFetcher {
 public:
  using Params = ResilientFetcherParams;

  ResilientFetcher(Simulator& sim, HttpFetcher* inner, Params params = {});
  ~ResilientFetcher() override;

  FetchId fetch(const HttpRequest& request, FetchCallbacks callbacks) override;
  bool cancel(FetchId id) override;

  CircuitBreaker& breaker() { return breaker_; }
  std::size_t inflight() const { return attempts_.size(); }

  // Fired when an origin's breaker opens (open=true) or fully closes again
  // (open=false). Policy layers hook this to enter/leave degraded modes.
  using DegradedFn = std::function<void(const std::string& host, bool open)>;
  void set_degraded_callback(DegradedFn fn) { degraded_fn_ = std::move(fn); }

 private:
  struct Attempt {
    HttpRequest request;
    FetchCallbacks callbacks;
    std::string key;   // breaker key: origin host
    std::string url;
    TimeMs request_ms = 0;  // first attempt's issue time
    int attempt = 1;
    Bytes expected = 0;     // body size advertised by the latest headers
    FetchId inner = kInvalidFetch;
    Simulator::EventId timeout_event = Simulator::kInvalidEvent;
    Simulator::EventId backoff_event = Simulator::kInvalidEvent;
  };

  void start_attempt(FetchId id);
  void on_attempt_complete(FetchId id, const FetchResult& result);
  bool retryable(int status, Bytes body_size, Bytes expected, bool blocked) const;
  void finish(FetchId id, FetchResult result);

  Simulator& sim_;
  HttpFetcher* inner_;
  Params params_;
  CircuitBreaker breaker_;
  Rng rng_;
  DegradedFn degraded_fn_;
  FetchId next_id_ = 1;
  std::unordered_map<FetchId, Attempt> attempts_;
};

}  // namespace mfhttp
