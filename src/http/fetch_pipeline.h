// One assembly point for the middleware fetch stack (ISSUE 4 satellite).
//
// Every experiment, bench, and example used to hand-wire the same decorator
// chain — client link (optionally fault-injected), SimHttpOrigin, optional
// FaultyFetcher, optional ResilientFetcher, MitmProxy with its cache and
// admission controller — and each copy had to repeat the layer ordering.
// FetchPipelineBuilder defines that ordering exactly once:
//
//   origin → FaultyFetcher (origin faults) → ResilientFetcher (retries,
//   breaker) → MitmProxy (interception, cache, admission) → client link
//   (FaultyLink when a plan is active).
//
// The builder is a fluent one-shot: configure the layers you want, call
// build(), and the returned FetchPipeline owns every decorator it created.
// Layers the caller supplies by pointer (a shared HttpCache, a shared
// AdmissionController, an external client Link) are *not* owned and must
// outlive the pipeline — that is what lets N per-session pipelines share
// one middleware-server cache (§4.2) and one admission front door.
//
// Fault plans resolve the same way run_browsing_session always did:
// an explicit with_faults(plan) wins, otherwise the ambient
// fault::global_plan() applies, and an empty plan is no plan — the stack
// stays pristine (no decorators, no watchdog), preserving byte-identical
// seed behavior. Client-hop fault injection requires a builder-owned link
// (FaultyLink shapes the link's own bandwidth trace at construction), so an
// external link only ever receives origin-side faults.
#pragma once

#include <memory>

#include "fault/fault_plan.h"
#include "fault/faulty_fetcher.h"
#include "http/cache.h"
#include "http/proxy.h"
#include "http/resilient_fetcher.h"
#include "http/transport.h"
#include "net/link.h"
#include "overload/admission.h"
#include "sim/simulator.h"

namespace mfhttp::scenario {
struct ScenarioSpec;
}

namespace mfhttp {

// The built stack. Accessors expose the layers policy code hooks into:
// proxy() for fetching and interception, client_link() for byte accounting,
// resilient() for the degraded-mode callback, cache()/admission() for stats.
class FetchPipeline {
 public:
  ~FetchPipeline();
  FetchPipeline(const FetchPipeline&) = delete;
  FetchPipeline& operator=(const FetchPipeline&) = delete;

  MitmProxy& proxy() { return *proxy_; }
  Link& client_link() { return *client_link_; }
  const Link& client_link() const { return *client_link_; }

  // Null when the corresponding layer was not configured.
  HttpCache* cache() { return cache_; }
  ResilientFetcher* resilient() { return resilient_.get(); }
  overload::AdmissionController* admission() { return admission_; }

  // The plan the pipeline was built under (null when fault-free).
  const fault::FaultPlan* fault_plan() const { return plan_ ? &*plan_ : nullptr; }

  // The innermost fetcher the decorator chain wraps. Always non-null.
  HttpFetcher& origin() { return *origin_; }
  // Which backend serves origin fetches (--transport; DESIGN.md §15).
  TransportKind transport_kind() const { return transport_kind_; }
  // The real-socket backend; null under --transport=sim.
  SocketTransport* transport() { return transport_.get(); }

 private:
  friend class FetchPipelineBuilder;
  FetchPipeline() = default;

  // Destruction runs bottom-up (members in reverse order): the proxy dies
  // first, then the upstream decorators, then the owned origin/transport,
  // then the owned link.
  std::optional<fault::FaultPlan> plan_;
  std::optional<fault::FaultPlan> socket_plan_;  // transport-side chaos
  TransportKind transport_kind_ = TransportKind::kSim;
  std::unique_ptr<SocketTransport> transport_;
  std::unique_ptr<SimHttpOrigin> owned_origin_;
  HttpFetcher* origin_ = nullptr;
  std::unique_ptr<Link> owned_link_;
  Link* client_link_ = nullptr;
  std::unique_ptr<HttpCache> owned_cache_;
  HttpCache* cache_ = nullptr;
  std::unique_ptr<overload::AdmissionController> owned_admission_;
  overload::AdmissionController* admission_ = nullptr;
  std::unique_ptr<fault::FaultyFetcher> faulty_;
  std::unique_ptr<ResilientFetcher> resilient_;
  std::unique_ptr<MitmProxy> proxy_;
};

class FetchPipelineBuilder {
 public:
  // origin: the innermost HttpFetcher (usually a SimHttpOrigin). Not owned.
  FetchPipelineBuilder(Simulator& sim, HttpFetcher* origin);

  // A builder pre-wired from a scenario (scenario/scenario_spec.h): client
  // link from the network profile (constant or random-walk trace), fault
  // plan from the compiled scenario plan (fault section + handover gaps),
  // cache and admission from their sections when present. Defined in the
  // mfhttp_scenario library — callers of this factory must link it.
  static FetchPipelineBuilder from_scenario(Simulator& sim, HttpFetcher* origin,
                                            const scenario::ScenarioSpec& spec);

  // Origin-less form: the builder creates the origin itself from an
  // ObjectStore + origin access link, honoring with_transport() — a
  // SimHttpOrigin under kSim, a SocketTransport (real epoll loopback
  // origin) under kSocket. Requires with_origin() before build().
  explicit FetchPipelineBuilder(Simulator& sim);

  // Store + origin link the builder-owned origin serves from (both
  // caller-owned, must outlive the pipeline). Replaces any constructor-
  // supplied origin.
  FetchPipelineBuilder& with_origin(const ObjectStore* store, Link* origin_link,
                                    SimHttpOriginParams params = {});

  // Select the origin transport backend (default kSim). kSocket requires
  // with_origin(). When config.plan is null, the socket section of the
  // with_faults() plan (if any) drives the wire chaos.
  FetchPipelineBuilder& with_transport(TransportConfig config);

  // Client (bottleneck) hop. Params → pipeline-owned link, wrapped in
  // FaultyLink when a fault plan is active; pointer → caller-owned, used
  // as-is. Default: an owned link with default Link::Params.
  FetchPipelineBuilder& client_link(Link::Params params);
  FetchPipelineBuilder& client_link(Link* link);

  // Install a fault plan. Explicit plan wins; nullptr falls back to the
  // ambient fault::global_plan(); an empty plan disables injection.
  FetchPipelineBuilder& with_faults(const fault::FaultPlan* plan = nullptr);
  // True when build() will inject faults — callers gate resilience and
  // defer-watchdog tuning on this, exactly as the hand-wired stacks did.
  bool has_faults() const { return plan_.has_value(); }

  FetchPipelineBuilder& with_resilience(ResilientFetcher::Params params = {});

  // Middleware-server cache: params → pipeline-owned; pointer → shared
  // across pipelines (the multi-session deployment).
  FetchPipelineBuilder& with_cache(CacheParams params);
  FetchPipelineBuilder& with_cache(HttpCache* cache);

  // Overload protection: params → pipeline-owned; pointer → shared.
  FetchPipelineBuilder& with_admission(overload::AdmissionParams params);
  FetchPipelineBuilder& with_admission(overload::AdmissionController* admission);

  FetchPipelineBuilder& proxy_params(MitmProxy::Params params);
  FetchPipelineBuilder& interceptor(Interceptor* interceptor);

  // Assembles the stack in the canonical order. The builder is one-shot.
  std::unique_ptr<FetchPipeline> build();

 private:
  Simulator& sim_;
  HttpFetcher* origin_;
  const ObjectStore* origin_store_ = nullptr;
  Link* origin_link_ = nullptr;
  SimHttpOriginParams origin_params_;
  TransportConfig transport_config_;
  std::optional<fault::FaultPlan> socket_plan_;
  Link::Params link_params_;
  Link* external_link_ = nullptr;
  std::optional<fault::FaultPlan> plan_;
  std::optional<ResilientFetcher::Params> resilience_;
  std::optional<CacheParams> cache_params_;
  HttpCache* shared_cache_ = nullptr;
  std::optional<overload::AdmissionParams> admission_params_;
  overload::AdmissionController* shared_admission_ = nullptr;
  MitmProxy::Params proxy_params_;
  Interceptor* interceptor_ = nullptr;
  bool built_ = false;
};

}  // namespace mfhttp
