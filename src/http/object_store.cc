#include "http/object_store.h"

#include "util/check.h"

namespace mfhttp {

void ObjectStore::put(std::string path, Bytes size, std::string content_type) {
  MFHTTP_CHECK(size >= 0);
  MFHTTP_CHECK(!path.empty() && path[0] == '/');
  objects_[std::move(path)] = StoredObject{size, std::move(content_type), std::nullopt};
}

void ObjectStore::put_body(std::string path, std::string body,
                           std::string content_type) {
  MFHTTP_CHECK(!path.empty() && path[0] == '/');
  auto size = static_cast<Bytes>(body.size());
  objects_[std::move(path)] =
      StoredObject{size, std::move(content_type), std::move(body)};
}

const StoredObject* ObjectStore::find(std::string_view path) const {
  auto it = objects_.find(std::string(path));
  return it == objects_.end() ? nullptr : &it->second;
}

Bytes ObjectStore::total_bytes() const {
  Bytes total = 0;
  for (const auto& [path, obj] : objects_) total += obj.wire_size();
  return total;
}

}  // namespace mfhttp
