#include "http/object_store.h"

#include "util/check.h"

namespace mfhttp {

std::string ObjectStore::next_etag() {
  return "\"v" + std::to_string(++version_) + "\"";
}

void ObjectStore::put(std::string path, Bytes size, std::string content_type) {
  MFHTTP_CHECK(size >= 0);
  MFHTTP_CHECK(!path.empty() && path[0] == '/');
  objects_[std::move(path)] =
      StoredObject{size, std::move(content_type), std::nullopt, next_etag()};
}

void ObjectStore::put_body(std::string path, std::string body,
                           std::string content_type) {
  MFHTTP_CHECK(!path.empty() && path[0] == '/');
  auto size = static_cast<Bytes>(body.size());
  objects_[std::move(path)] =
      StoredObject{size, std::move(content_type), std::move(body), next_etag()};
}

bool ObjectStore::bump(std::string_view path) {
  auto it = objects_.find(std::string(path));
  if (it == objects_.end()) return false;
  it->second.etag = next_etag();
  return true;
}

const StoredObject* ObjectStore::find(std::string_view path) const {
  auto it = objects_.find(std::string(path));
  return it == objects_.end() ? nullptr : &it->second;
}

Bytes ObjectStore::total_bytes() const {
  Bytes total = 0;
  for (const auto& [path, obj] : objects_) total += obj.wire_size();
  return total;
}

}  // namespace mfhttp
