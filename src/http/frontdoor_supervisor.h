// Shard health supervision for the self-healing front door (ISSUE 7
// tentpole, DESIGN.md §14).
//
// Each shard worker publishes a ShardHeartbeat: a monotonic progress
// counter bumped once per consumed event, a `busy` flag raised while the
// worker is inside process(), and a `serving` flag it lowers if it crashes.
// The FrontDoorSupervisor samples those heartbeats — from a watchdog thread
// during real runs, or directly via sample(now_ns) with a synthetic clock
// in tests — and classifies each shard:
//
//   healthy — progress moved since the last sample, or the shard is
//             genuinely idle (not busy, queue empty);
//   slow    — no progress for >= slow_after_ms while work is pending.
//             Informational: routing is untouched;
//   wedged  — no progress for >= wedged_after_ms, debounced through a
//             fault::DegradationState (enter_after consecutive breaching
//             samples to declare, exit_after progressing samples to
//             recover) so one scheduler hiccup never triggers failover.
//             A worker that lowered `serving` is force-declared wedged on
//             the next sample — a crashed worker knows it crashed, no
//             inference needed.
//
// Progress — not sim time — is the health signal on purpose: a healthy
// shard's discrete-event Simulator leaps through simulated milliseconds
// instantaneously, so "sim time stopped" cannot distinguish a wedged
// worker from one between events. The watchdog is sim-time *aware* the
// same way the PR-2 MitmProxy deferred-queue watchdog is: it watches for
// the world failing to advance at all, on the wall clock, with hysteresis.
//
// The healthy set is published as one atomic bitmask (+ epoch bumped on
// every change): the producer reads it with a single load per event, and
// an optional on_mask_change callback lets the front door re-distribute
// the wedged shard's admission budget (overload::failover_slice) through
// the shards' own control queues.
//
// Thread/lock order (extends DESIGN.md §12–13): sample() mutates only
// supervisor-private state plus the atomics above and must be serialized
// (the watchdog thread OR a test driver, never both — start() owns it).
// It reads heartbeats and queue depths lock-free and may call
// on_mask_change, which pushes into shard MPSC queues (lock-free, multi-
// producer safe) and touches the obs registry (leaf). It takes no mutex,
// so it can never deadlock against a wedged worker — the one property a
// watchdog must not lose.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/degradation.h"
#include "util/types.h"

namespace mfhttp::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace mfhttp::obs

namespace mfhttp {

enum class ShardHealth { kHealthy, kSlow, kWedged };
const char* to_string(ShardHealth health);

struct SupervisorParams {
  bool enabled = false;   // master switch; off = PR-6 behavior exactly
  bool failover = true;   // re-route NEW sessions off wedged shards
  TimeMs check_interval_ms = 2;  // watchdog sampling period
  TimeMs slow_after_ms = 20;     // pending work + no progress => slow
  TimeMs wedged_after_ms = 60;   // no progress this long breaches wedged
  // Consecutive breaching samples to declare wedged / progressing samples
  // to recover (fault::DegradationState semantics).
  fault::DegradationParams hysteresis{2, 2};
};

// Published by a shard worker, read by the supervisor. One cache line per
// shard so heartbeat stores never contend with a neighbour's.
struct alignas(64) ShardHeartbeat {
  // Monotonic consumed-event count (served, shed, or control). The release
  // store pairs with the supervisor's acquire load.
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> busy{false};     // worker is inside process()
  std::atomic<bool> serving{true};   // lowered once by a crashed worker
  // Wall stamp of the first chaos fault firing on this shard (0 = none);
  // lets the supervisor report time-to-detect against the true onset.
  std::atomic<std::uint64_t> fault_onset_ns{0};
};

class FrontDoorSupervisor {
 public:
  struct ShardStats {
    ShardHealth final_health = ShardHealth::kHealthy;
    std::uint64_t wedged_spells = 0;
    // First fault onset -> wedged declared (0 when never detected or no
    // recorded onset) and first wedged spell -> recovered (0 when the
    // shard never came back).
    double time_to_detect_ms = 0;
    double time_to_recover_ms = 0;
  };

  using DepthFn = std::function<std::size_t()>;
  using MaskChangeFn =
      std::function<void(std::uint64_t healthy_mask, std::size_t healthy)>;

  // At most 64 shards: the healthy set is one bitmask word.
  FrontDoorSupervisor(SupervisorParams params, std::size_t shards);
  ~FrontDoorSupervisor();

  FrontDoorSupervisor(const FrontDoorSupervisor&) = delete;
  FrontDoorSupervisor& operator=(const FrontDoorSupervisor&) = delete;

  // Wire shard `shard`'s heartbeat and (racy, gauge-grade) queue-depth
  // probe. Call for every shard before start()/sample().
  void attach(std::size_t shard, ShardHeartbeat* heartbeat, DepthFn depth);

  // Fired from within sample() on every healthy-mask change, after the
  // mask/epoch are published. Used for admission re-distribution.
  void set_on_mask_change(MaskChangeFn fn);

  // One classification pass at wall time `now_ns`. Transitions are a pure
  // function of the observation stream, which is what makes the state
  // machine unit-testable under a synthetic clock. Must be serialized;
  // never called concurrently with the watchdog thread.
  void sample(std::uint64_t now_ns);

  // Spawn / join the watchdog thread (samples every check_interval_ms of
  // real time). stop() is idempotent; the destructor calls it.
  void start();
  void stop();

  ShardHealth health(std::size_t shard) const;
  // Bit i set = shard i is NOT wedged. Starts all-healthy.
  std::uint64_t healthy_mask() const {
    return mask_.load(std::memory_order_acquire);
  }
  std::size_t healthy_count() const;
  // Bumped on every mask change; lets pollers detect churn cheaply.
  std::uint32_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  std::uint64_t wedged_declared_total() const { return wedged_total_; }
  std::uint64_t recovered_total() const { return recovered_total_; }
  // Per-shard outcome stats. Read after stop() (or between samples).
  ShardStats shard_stats(std::size_t shard) const;

 private:
  struct Tracked {
    Tracked(std::string name, fault::DegradationParams hysteresis)
        : wedge(std::move(name), hysteresis) {}

    ShardHeartbeat* heartbeat = nullptr;
    DepthFn depth;
    fault::DegradationState wedge;  // debounces the wedged classification
    std::uint64_t last_progress = 0;
    std::uint64_t last_change_ns = 0;  // 0 until the first sample
    std::uint64_t wedged_at_ns = 0;
    double detect_ms = 0;
    double recover_ms = 0;
    std::uint64_t spells = 0;
  };

  void declare_wedged(std::size_t shard, Tracked& t, std::uint64_t now_ns,
                      double stall_ms);
  void declare_recovered(std::size_t shard, Tracked& t, std::uint64_t now_ns);
  void publish_mask_change(std::uint64_t mask);

  SupervisorParams params_;
  std::vector<Tracked> tracked_;
  // Health is published per shard for lock-free readers; Tracked holds the
  // supervisor-private remainder.
  std::unique_ptr<std::atomic<std::uint8_t>[]> health_;
  std::atomic<std::uint64_t> mask_{0};
  std::atomic<std::uint32_t> epoch_{0};
  MaskChangeFn on_mask_change_;
  std::uint64_t wedged_total_ = 0;
  std::uint64_t recovered_total_ = 0;

  std::thread watchdog_;
  std::atomic<bool> stop_{false};
  bool running_ = false;

  obs::Counter* wedged_counter_;
  obs::Counter* recovered_counter_;
  obs::Gauge* healthy_gauge_;
  obs::Histogram* stall_histogram_;
};

}  // namespace mfhttp
