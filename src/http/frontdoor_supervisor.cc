#include "http/frontdoor_supervisor.h"

#include <chrono>

#include "obs/metrics.h"
#include "util/check.h"

namespace mfhttp {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* to_string(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kSlow: return "slow";
    case ShardHealth::kWedged: return "wedged";
  }
  return "?";
}

FrontDoorSupervisor::FrontDoorSupervisor(SupervisorParams params,
                                         std::size_t shards)
    : params_(params),
      health_(std::make_unique<std::atomic<std::uint8_t>[]>(shards)),
      wedged_counter_(
          &obs::metrics().counter("http.frontdoor.supervisor.wedged_total")),
      recovered_counter_(
          &obs::metrics().counter("http.frontdoor.supervisor.recovered_total")),
      healthy_gauge_(
          &obs::metrics().gauge("http.frontdoor.supervisor.healthy_shards")),
      stall_histogram_(&obs::metrics().histogram(
          "http.frontdoor.supervisor.stall_ms", obs::stall_ms_bounds())) {
  MFHTTP_CHECK(shards >= 1 && shards <= 64);
  MFHTTP_CHECK(params_.check_interval_ms > 0);
  MFHTTP_CHECK(params_.slow_after_ms > 0 &&
               params_.wedged_after_ms >= params_.slow_after_ms);
  tracked_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    tracked_.emplace_back("frontdoor.shard" + std::to_string(i),
                          params_.hysteresis);
    health_[i].store(static_cast<std::uint8_t>(ShardHealth::kHealthy),
                     std::memory_order_relaxed);
  }
  const std::uint64_t all = shards == 64 ? ~0ULL : (1ULL << shards) - 1;
  mask_.store(all, std::memory_order_release);
  healthy_gauge_->set(static_cast<std::int64_t>(shards));
}

FrontDoorSupervisor::~FrontDoorSupervisor() { stop(); }

void FrontDoorSupervisor::attach(std::size_t shard, ShardHeartbeat* heartbeat,
                                 DepthFn depth) {
  MFHTTP_CHECK(shard < tracked_.size() && heartbeat != nullptr);
  tracked_[shard].heartbeat = heartbeat;
  tracked_[shard].depth = std::move(depth);
}

void FrontDoorSupervisor::set_on_mask_change(MaskChangeFn fn) {
  on_mask_change_ = std::move(fn);
}

void FrontDoorSupervisor::publish_mask_change(std::uint64_t mask) {
  mask_.store(mask, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  const std::size_t healthy = healthy_count();
  healthy_gauge_->set(static_cast<std::int64_t>(healthy));
  if (on_mask_change_) on_mask_change_(mask, healthy);
}

void FrontDoorSupervisor::declare_wedged(std::size_t shard, Tracked& t,
                                         std::uint64_t now_ns,
                                         double stall_ms) {
  ++wedged_total_;
  ++t.spells;
  t.wedged_at_ns = now_ns;
  wedged_counter_->inc();
  stall_histogram_->observe(stall_ms);
  if (t.detect_ms == 0 && t.heartbeat != nullptr) {
    const std::uint64_t onset =
        t.heartbeat->fault_onset_ns.load(std::memory_order_relaxed);
    if (onset != 0 && now_ns > onset)
      t.detect_ms = static_cast<double>(now_ns - onset) / 1e6;
  }
  publish_mask_change(mask_.load(std::memory_order_relaxed) &
                      ~(1ULL << shard));
}

void FrontDoorSupervisor::declare_recovered(std::size_t shard, Tracked& t,
                                            std::uint64_t now_ns) {
  ++recovered_total_;
  recovered_counter_->inc();
  if (t.recover_ms == 0 && t.wedged_at_ns != 0 && now_ns > t.wedged_at_ns)
    t.recover_ms = static_cast<double>(now_ns - t.wedged_at_ns) / 1e6;
  publish_mask_change(mask_.load(std::memory_order_relaxed) |
                      (1ULL << shard));
}

void FrontDoorSupervisor::sample(std::uint64_t now_ns) {
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    Tracked& t = tracked_[i];
    if (t.heartbeat == nullptr) continue;
    const std::uint64_t progress =
        t.heartbeat->progress.load(std::memory_order_acquire);
    const bool serving = t.heartbeat->serving.load(std::memory_order_relaxed);
    if (t.last_change_ns == 0) {
      // First look at this shard: arm the stall clock, classify next time.
      t.last_change_ns = now_ns;
      t.last_progress = progress;
      continue;
    }

    bool progressing = false;
    if (progress != t.last_progress) {
      t.last_progress = progress;
      t.last_change_ns = now_ns;
      progressing = true;
    } else if (serving && !t.heartbeat->busy.load(std::memory_order_relaxed) &&
               (!t.depth || t.depth() == 0)) {
      // Idle, not stuck: nothing queued, worker between events. The stall
      // clock re-arms so a later burst is judged from its own start.
      t.last_change_ns = now_ns;
      progressing = true;
    }
    const double stall_ms =
        static_cast<double>(now_ns - t.last_change_ns) / 1e6;

    if (!serving) {
      // Crash fast path: the worker self-reported, skip the hysteresis.
      if (!t.wedge.degraded()) {
        t.wedge.force(true);
        declare_wedged(i, t, now_ns, stall_ms);
      }
    } else if (progressing) {
      // Fed even when healthy: a progressing sample must reset the bad
      // streak, or two stall blips separated by real work would add up to
      // a wedged declaration ("consecutive" is the whole contract).
      if (t.wedge.observe_good()) declare_recovered(i, t, now_ns);
    } else if (stall_ms >= static_cast<double>(params_.wedged_after_ms)) {
      if (!t.wedge.degraded() && t.wedge.observe_bad())
        declare_wedged(i, t, now_ns, stall_ms);
    }
    // Stalls between the two thresholds feed the hysteresis nothing: the
    // machine holds whichever state it is in (that IS the hysteresis band).

    ShardHealth health = ShardHealth::kHealthy;
    if (t.wedge.degraded())
      health = ShardHealth::kWedged;
    else if (!progressing &&
             stall_ms >= static_cast<double>(params_.slow_after_ms))
      health = ShardHealth::kSlow;
    health_[i].store(static_cast<std::uint8_t>(health),
                     std::memory_order_release);
  }
}

void FrontDoorSupervisor::start() {
  MFHTTP_CHECK(!running_);
  running_ = true;
  stop_.store(false, std::memory_order_release);
  watchdog_ = std::thread([this] {
    const auto interval =
        std::chrono::milliseconds(params_.check_interval_ms);
    while (!stop_.load(std::memory_order_acquire)) {
      sample(wall_ns());
      std::this_thread::sleep_for(interval);
    }
  });
}

void FrontDoorSupervisor::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  running_ = false;
}

ShardHealth FrontDoorSupervisor::health(std::size_t shard) const {
  MFHTTP_CHECK(shard < tracked_.size());
  return static_cast<ShardHealth>(
      health_[shard].load(std::memory_order_acquire));
}

std::size_t FrontDoorSupervisor::healthy_count() const {
  std::uint64_t mask = mask_.load(std::memory_order_acquire);
  std::size_t n = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++n;
  }
  return n;
}

FrontDoorSupervisor::ShardStats FrontDoorSupervisor::shard_stats(
    std::size_t shard) const {
  MFHTTP_CHECK(shard < tracked_.size());
  const Tracked& t = tracked_[shard];
  ShardStats s;
  s.final_health = static_cast<ShardHealth>(
      health_[shard].load(std::memory_order_acquire));
  s.wedged_spells = t.spells;
  s.time_to_detect_ms = t.detect_ms;
  s.time_to_recover_ms = t.recover_ms;
  return s;
}

}  // namespace mfhttp
