// Minimal URL parsing: scheme://host[:port]/path[?query].
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace mfhttp {

struct Url {
  std::string scheme;  // "http"
  std::string host;
  int port = 80;
  std::string path = "/";   // always starts with '/'
  std::string query;        // without '?'

  std::string path_and_query() const {
    return query.empty() ? path : path + "?" + query;
  }
  std::string to_string() const;
};

// Parses an absolute URL; returns nullopt on malformed input.
std::optional<Url> parse_url(std::string_view s);

}  // namespace mfhttp
