#include "http/parser.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace mfhttp {

namespace {
constexpr std::size_t kMaxStartLine = 16 * 1024;

// Extract one CRLF-terminated line from buf (also tolerates bare LF).
// Returns true and sets `line` (without terminator) if a full line exists.
bool take_line(std::string& buf, std::string& line) {
  std::size_t lf = buf.find('\n');
  if (lf == std::string::npos) return false;
  std::size_t end = (lf > 0 && buf[lf - 1] == '\r') ? lf - 1 : lf;
  line = buf.substr(0, end);
  buf.erase(0, lf + 1);
  return true;
}
}  // namespace

void HttpParser::fail(std::string msg) {
  state_ = State::kError;
  error_ = std::move(msg);
}

void HttpParser::fail_limit(std::string msg) {
  limit_violation_ = true;
  fail(std::move(msg));
}

// Cumulative header-section accounting (Limits). `line` is one header or
// trailer field line; returns false (parser failed) on a cap breach.
bool HttpParser::count_header_line(std::string_view line) {
  header_bytes_ += line.size() + 2;  // + CRLF
  if (limits_.max_header_bytes > 0 && header_bytes_ > limits_.max_header_bytes) {
    fail_limit("headers too large");
    return false;
  }
  if (!line.empty() && limits_.max_header_count > 0 &&
      ++header_count_ > limits_.max_header_count) {
    fail_limit("too many headers");
    return false;
  }
  return true;
}

HeaderMap& HttpParser::current_headers() {
  return mode_ == Mode::kRequest ? req_.headers : resp_.headers;
}

std::string& HttpParser::current_body() {
  return mode_ == Mode::kRequest ? req_.body : resp_.body;
}

bool HttpParser::parse_start_line(std::string_view line) {
  if (mode_ == Mode::kRequest) {
    // method SP target SP version
    std::size_t s1 = line.find(' ');
    std::size_t s2 = line.rfind(' ');
    if (s1 == std::string_view::npos || s2 == s1) {
      fail("malformed request line");
      return false;
    }
    req_ = HttpRequest{};
    req_.method = std::string(line.substr(0, s1));
    req_.target = std::string(trim(line.substr(s1 + 1, s2 - s1 - 1)));
    req_.version = std::string(line.substr(s2 + 1));
    if (req_.method.empty() || req_.target.empty() ||
        !starts_with(req_.version, "HTTP/")) {
      fail("malformed request line");
      return false;
    }
  } else {
    // version SP status SP reason
    std::size_t s1 = line.find(' ');
    if (s1 == std::string_view::npos || !starts_with(line, "HTTP/")) {
      fail("malformed status line");
      return false;
    }
    resp_ = HttpResponse{};
    resp_.version = std::string(line.substr(0, s1));
    std::string_view rest = line.substr(s1 + 1);
    std::size_t s2 = rest.find(' ');
    std::string_view code = s2 == std::string_view::npos ? rest : rest.substr(0, s2);
    if (code.size() != 3) {
      fail("malformed status code");
      return false;
    }
    int status = 0;
    for (char c : code) {
      if (c < '0' || c > '9') {
        fail("malformed status code");
        return false;
      }
      status = status * 10 + (c - '0');
    }
    resp_.status = status;
    resp_.reason =
        s2 == std::string_view::npos ? "" : std::string(trim(rest.substr(s2 + 1)));
  }
  return true;
}

bool HttpParser::parse_header_line(std::string_view line) {
  std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail("malformed header line");
    return false;
  }
  std::string_view name = trim(line.substr(0, colon));
  std::string_view value = trim(line.substr(colon + 1));
  if (name.empty()) {
    fail("empty header name");
    return false;
  }
  current_headers().add(name, value);
  return true;
}

void HttpParser::on_headers_complete() {
  const HeaderMap& headers = current_headers();
  read_until_close_ = false;
  auto te = headers.get_view("Transfer-Encoding");
  bool chunked = te && iequals(trim(*te), "chunked");

  if (mode_ == Mode::kResponse) {
    bool bodiless = resp_.status / 100 == 1 || resp_.status == 204 ||
                    resp_.status == 304 || head_response_;
    if (bodiless) {
      head_response_ = false;
      complete_message();
      return;
    }
  }

  if (chunked) {
    state_ = State::kChunkSize;
    return;
  }
  auto len = headers.content_length();
  if (len) {
    if (*len == 0) {
      complete_message();
      return;
    }
    body_remaining_ = *len;
    state_ = State::kBody;
    return;
  }
  if (mode_ == Mode::kRequest) {
    // Requests without a length have no body.
    complete_message();
  } else {
    // Response body delimited by connection close.
    read_until_close_ = true;
    body_remaining_ = -1;
    state_ = State::kBody;
  }
}

void HttpParser::complete_message() {
  if (mode_ == Mode::kRequest)
    requests_.push_back(std::move(req_));
  else
    responses_.push_back(std::move(resp_));
  req_ = HttpRequest{};
  resp_ = HttpResponse{};
  state_ = State::kStartLine;
}

bool HttpParser::feed(std::string_view data) {
  if (state_ == State::kError) return false;
  buffer_.append(data);

  std::string line;
  while (state_ != State::kError) {
    switch (state_) {
      case State::kStartLine: {
        // Skip blank lines between messages (robustness, RFC 9112 §2.2).
        while (!buffer_.empty() && (buffer_[0] == '\r' || buffer_[0] == '\n')) {
          std::size_t n = (buffer_.size() >= 2 && buffer_[0] == '\r' &&
                           buffer_[1] == '\n') ? 2 : 1;
          buffer_.erase(0, n);
        }
        if (!take_line(buffer_, line)) {
          if (buffer_.size() > kMaxStartLine) fail("start line too long");
          return state_ != State::kError;
        }
        if (!parse_start_line(line)) return false;
        header_bytes_ = 0;
        header_count_ = 0;
        state_ = State::kHeaders;
        break;
      }
      case State::kHeaders: {
        if (!take_line(buffer_, line)) {
          // No line break yet: the flood case. Count what is buffered so an
          // attacker cannot park max_header_bytes per feed() indefinitely.
          if (limits_.max_header_bytes > 0 &&
              header_bytes_ + buffer_.size() > limits_.max_header_bytes)
            fail_limit("headers too large");
          return state_ != State::kError;
        }
        if (!count_header_line(line)) return false;
        if (line.empty()) {
          on_headers_complete();
        } else if (!parse_header_line(line)) {
          return false;
        }
        break;
      }
      case State::kBody: {
        if (read_until_close_) {
          current_body().append(buffer_);
          buffer_.clear();
          return true;  // completes on finish()
        }
        std::size_t want = static_cast<std::size_t>(body_remaining_);
        std::size_t take = std::min(want, buffer_.size());
        current_body().append(buffer_, 0, take);
        buffer_.erase(0, take);
        body_remaining_ -= static_cast<long long>(take);
        if (body_remaining_ > 0) return true;  // need more input
        complete_message();
        break;
      }
      case State::kChunkSize: {
        if (!take_line(buffer_, line)) return true;
        // chunk-size [;extensions]
        std::string_view sz = trim(line);
        std::size_t semi = sz.find(';');
        if (semi != std::string_view::npos) sz = trim(sz.substr(0, semi));
        if (sz.empty()) {
          fail("empty chunk size");
          return false;
        }
        long long size = 0;
        for (char c : sz) {
          int digit;
          if (c >= '0' && c <= '9') digit = c - '0';
          else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
          else {
            fail("bad chunk size");
            return false;
          }
          size = size * 16 + digit;
          if (size > (1LL << 40)) {
            fail("chunk too large");
            return false;
          }
        }
        if (size == 0) {
          state_ = State::kTrailers;
        } else {
          body_remaining_ = size;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkData: {
        std::size_t want = static_cast<std::size_t>(body_remaining_);
        std::size_t take = std::min(want, buffer_.size());
        current_body().append(buffer_, 0, take);
        buffer_.erase(0, take);
        body_remaining_ -= static_cast<long long>(take);
        if (body_remaining_ > 0) return true;
        state_ = State::kChunkDataEnd;
        break;
      }
      case State::kChunkDataEnd: {
        if (!take_line(buffer_, line)) return true;
        if (!line.empty()) {
          fail("missing CRLF after chunk data");
          return false;
        }
        state_ = State::kChunkSize;
        break;
      }
      case State::kTrailers: {
        if (!take_line(buffer_, line)) {
          if (limits_.max_header_bytes > 0 &&
              header_bytes_ + buffer_.size() > limits_.max_header_bytes)
            fail_limit("headers too large");
          return state_ != State::kError;
        }
        // Trailers fold into the main header map, so they share its caps.
        if (!count_header_line(line)) return false;
        if (line.empty()) {
          complete_message();
        } else {
          if (!parse_header_line(line)) return false;
        }
        break;
      }
      case State::kError:
        return false;
    }
    if (buffer_.empty() &&
        (state_ == State::kStartLine || state_ == State::kHeaders ||
         state_ == State::kChunkSize || state_ == State::kChunkDataEnd ||
         state_ == State::kTrailers))
      return true;
  }
  return false;
}

void HttpParser::finish() {
  if (state_ == State::kError) return;
  if (state_ == State::kBody && read_until_close_) {
    complete_message();
    return;
  }
  if (state_ != State::kStartLine || !buffer_.empty())
    fail("stream truncated mid-message");
}

HttpRequest HttpParser::take_request() {
  MFHTTP_CHECK(mode_ == Mode::kRequest && !requests_.empty());
  HttpRequest out = std::move(requests_.front());
  requests_.pop_front();
  return out;
}

HttpResponse HttpParser::take_response() {
  MFHTTP_CHECK(mode_ == Mode::kResponse && !responses_.empty());
  HttpResponse out = std::move(responses_.front());
  responses_.pop_front();
  return out;
}

}  // namespace mfhttp
