#include "http/sim_http.h"

#include <memory>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace mfhttp {

SimHttpOrigin::SimHttpOrigin(Simulator& sim, const ObjectStore* store, Link* link,
                             Params params)
    : sim_(sim), store_(store), link_(link), params_(params) {
  MFHTTP_CHECK(store_ != nullptr);
  MFHTTP_CHECK(link_ != nullptr);
}

HttpFetcher::FetchId SimHttpOrigin::fetch(const HttpRequest& request,
                                          FetchCallbacks callbacks) {
  MFHTTP_CHECK(callbacks.on_complete != nullptr);
  FetchId id = next_id_++;
  auto url = request.url();
  std::string url_str = url ? url->to_string() : request.target;
  std::string path = url ? url->path : request.target;
  std::string if_none_match(
      request.headers.get_view("If-None-Match").value_or(std::string_view{}));
  TimeMs request_ms = sim_.now();

  Inflight& fl = inflight_[id];
  fl.pending_event = sim_.schedule_after(params_.request_delay_ms, [this, id, path,
                                                                    url_str, request_ms,
                                                                    if_none_match,
                                                                    cbs = std::move(
                                                                        callbacks)] {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) return;  // cancelled
    it->second.pending_event = Simulator::kInvalidEvent;

    const StoredObject* obj = store_->find(path);
    const bool not_modified =
        obj != nullptr && !obj->etag.empty() && if_none_match == obj->etag;
    SimResponseMeta meta;
    meta.status = obj ? (not_modified ? 304 : 200) : 404;
    meta.body_size =
        not_modified ? 0 : (obj ? obj->wire_size() : params_.error_body_size);
    meta.content_type = obj ? obj->content_type : "text/plain";
    meta.etag = obj ? obj->etag : "";
    if (cbs.on_headers) cbs.on_headers(meta);

    // The headers callback may have cancelled this fetch.
    it = inflight_.find(id);
    if (it == inflight_.end()) return;

    if (not_modified) {
      // 304 carries headers only: complete without touching the link.
      inflight_.erase(it);
      FetchResult result;
      result.url = url_str;
      result.status = 304;
      result.body_size = 0;
      result.request_ms = request_ms;
      result.complete_ms = sim_.now();
      cbs.on_complete(result);
      return;
    }

    auto received = std::make_shared<Bytes>(0);
    Bytes total = meta.body_size;
    int status = meta.status;
    it->second.transfer = link_->submit(
        total, [this, id, url_str, request_ms, total, status, received,
                cbs](Bytes chunk, bool complete) {
          *received += chunk;
          if (cbs.on_progress) cbs.on_progress(chunk, *received, total);
          if (complete) {
            inflight_.erase(id);
            FetchResult result;
            result.url = url_str;
            result.status = status;
            result.body_size = *received;
            result.request_ms = request_ms;
            result.complete_ms = sim_.now();
            cbs.on_complete(result);
          }
        });
  });
  return id;
}

bool SimHttpOrigin::cancel(FetchId id) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) return false;
  if (it->second.pending_event != Simulator::kInvalidEvent)
    sim_.cancel(it->second.pending_event);
  if (it->second.transfer != Link::kInvalidTransfer)
    link_->cancel(it->second.transfer);
  inflight_.erase(it);
  return true;
}

}  // namespace mfhttp
