// Case-insensitive HTTP header collection preserving insertion order.
//
// Hot-path representation (DESIGN.md §17): the first kInlineCapacity entries
// live in a fixed in-object array — a mobile request/response carries a
// handful of headers, so the common map never touches the heap for its
// spine. Names spelled exactly like a well-known vocabulary entry
// (http/header_names.h) are stored as a pointer into the interner's static
// table: no copy on add, pointer-identity comparison on lookup. Values and
// novel names ride std::string, whose small-buffer optimization keeps
// typical short fields allocation-free too.
//
// The read side — get_view() / contains() / content_length() / iteration —
// never allocates, whatever the contents. The zero-steady-state-allocation
// contract for proxied requests is asserted by tests/test_header_alloc.cc
// with a counting global allocator and tracked per PR by bench/micro_matrix.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mfhttp {

class HeaderMap {
 public:
  static constexpr std::size_t kInlineCapacity = 8;

  class Entry {
   public:
    // Original spelling (interned names point into static storage).
    std::string_view name() const {
      return interned_.data() != nullptr ? interned_
                                         : std::string_view(owned_name_);
    }
    const std::string& value() const { return value_; }

   private:
    friend class HeaderMap;
    std::string_view interned_;  // empty(): name is in owned_name_
    std::string owned_name_;
    std::string value_;
  };

  // Append a header (duplicates allowed, as in HTTP).
  void add(std::string_view name, std::string_view value);

  // Replace all occurrences of `name` with a single entry.
  void set(std::string_view name, std::string_view value);

  // First value for `name` (case-insensitive) as a view into this map;
  // never allocates. The view is invalidated by any mutation of the map.
  std::optional<std::string_view> get_view(std::string_view name) const;

  // First value for `name`, copied (legacy convenience; allocates).
  std::optional<std::string> get(std::string_view name) const;

  // All values for `name`.
  std::vector<std::string> get_all(std::string_view name) const;

  // Case-insensitive membership; never allocates.
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  // Remove all occurrences; returns number removed.
  std::size_t remove(std::string_view name);

  // Parsed Content-Length, if present and a valid non-negative integer;
  // never allocates.
  std::optional<long long> content_length() const;

  std::size_t size() const { return inline_count_ + overflow_.size(); }
  bool empty() const { return size() == 0; }

  const Entry& entry(std::size_t i) const {
    return i < inline_count_ ? inline_[i] : overflow_[i - inline_count_];
  }

  class const_iterator {
   public:
    const_iterator(const HeaderMap* map, std::size_t i) : map_(map), i_(i) {}
    const Entry& operator*() const { return map_->entry(i_); }
    const Entry* operator->() const { return &map_->entry(i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator&) const = default;

   private:
    const HeaderMap* map_;
    std::size_t i_;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  // Semantic equality: same sequence of (spelling, value) pairs.
  bool operator==(const HeaderMap& other) const;

 private:
  const Entry* find(std::string_view name) const;
  Entry& entry_mut(std::size_t i) {
    return i < inline_count_ ? inline_[i] : overflow_[i - inline_count_];
  }

  std::array<Entry, kInlineCapacity> inline_;
  std::size_t inline_count_ = 0;
  std::vector<Entry> overflow_;
};

}  // namespace mfhttp
