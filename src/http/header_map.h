// Case-insensitive HTTP header collection preserving insertion order.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mfhttp {

class HeaderMap {
 public:
  struct Entry {
    std::string name;
    std::string value;
  };

  // Append a header (duplicates allowed, as in HTTP).
  void add(std::string_view name, std::string_view value);

  // Replace all occurrences of `name` with a single entry.
  void set(std::string_view name, std::string_view value);

  // First value for `name` (case-insensitive), if any.
  std::optional<std::string> get(std::string_view name) const;

  // All values for `name`.
  std::vector<std::string> get_all(std::string_view name) const;

  bool contains(std::string_view name) const { return get(name).has_value(); }

  // Remove all occurrences; returns number removed.
  std::size_t remove(std::string_view name);

  // Parsed Content-Length, if present and a valid non-negative integer.
  std::optional<long long> content_length() const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  bool operator==(const HeaderMap&) const = default;

 private:
  std::vector<Entry> entries_;
};

}  // namespace mfhttp
