// HTTP/1.1 request and response models with wire serialization.
#pragma once

#include <string>
#include <string_view>

#include "http/header_map.h"
#include "http/url.h"

namespace mfhttp {

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";  // origin-form or absolute-form (proxy requests)
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  // Absolute URL of the request: absolute-form target if present, otherwise
  // reconstructed from the Host header (http scheme assumed).
  std::optional<Url> url() const;

  // Multi-session serving identity (overload/admission.h). Carried as an
  // x-mfhttp-session header so it survives serialization and every proxy
  // hop without a side channel. Empty when unset — single-session callers
  // never need to think about it.
  std::string session() const;
  void set_session(std::string_view session);

  // Priority-class hint for admission control and link scheduling, carried
  // as x-mfhttp-priority (see overload::kPriority* constants). Returns
  // `fallback` when absent or unparsable.
  int priority_hint(int fallback) const;
  void set_priority_hint(int priority);

  // Serialize to wire format (adds Content-Length for non-empty bodies if
  // absent).
  std::string serialize() const;

  static HttpRequest get(const Url& url);
  static HttpRequest get(std::string_view absolute_url);
};

struct HttpResponse {
  std::string version = "HTTP/1.1";
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  std::string body;

  std::string serialize() const;

  static HttpResponse make(int status, std::string_view reason,
                           std::string body = {},
                           std::string_view content_type = "text/plain");
};

// Default reason phrase for a status code ("OK", "Not Found", ...).
std::string_view default_reason(int status);

}  // namespace mfhttp
