// Event-level HTTP fetch service over the simulated network.
//
// HttpFetcher is the interface both the origin server and the MITM proxy
// implement, so a client (browser / video player) is wired identically with
// or without the middleware in the path — exactly how the paper's prototype
// redirects traffic through mitmdump (§4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "http/message.h"
#include "http/object_store.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace mfhttp {

// Response metadata, available when "headers" arrive.
struct SimResponseMeta {
  int status = 200;
  Bytes body_size = 0;
  std::string content_type;
  std::string etag;  // validator for conditional refetches (empty: none)
};

// Outcome of a completed fetch.
struct FetchResult {
  std::string url;
  int status = 0;
  Bytes body_size = 0;      // bytes actually delivered
  TimeMs request_ms = 0;    // when the request was issued
  TimeMs complete_ms = 0;   // when the last byte arrived
  bool blocked = false;     // terminated by middleware policy, not served
  bool rejected = false;    // bounced by admission control (429/503 fast-fail)

  TimeMs latency_ms() const { return complete_ms - request_ms; }
};

struct FetchCallbacks {
  // All optional except on_complete.
  std::function<void(const SimResponseMeta&)> on_headers;
  // chunk: bytes in this delivery; received/total: running count and goal.
  std::function<void(Bytes chunk, Bytes received, Bytes total)> on_progress;
  std::function<void(const FetchResult&)> on_complete;
};

class HttpFetcher {
 public:
  using FetchId = std::uint64_t;
  static constexpr FetchId kInvalidFetch = 0;

  virtual ~HttpFetcher() = default;

  // Issue a GET; callbacks fire as the simulation progresses.
  virtual FetchId fetch(const HttpRequest& request, FetchCallbacks callbacks) = 0;

  // Abort; no further callbacks. False if unknown or already complete.
  virtual bool cancel(FetchId id) = 0;
};

struct SimHttpOriginParams {
  TimeMs request_delay_ms = 10;  // uplink latency + server processing
  Bytes error_body_size = 256;
};

// Origin server + its access link. Unknown paths produce 404 with a small
// error body; known paths stream `wire_size()` bytes over the link. A
// conditional GET (If-None-Match matching the stored ETag) answers 304 with
// no body — only the request-delay latency is paid, no link bytes.
class SimHttpOrigin : public HttpFetcher {
 public:
  using Params = SimHttpOriginParams;

  SimHttpOrigin(Simulator& sim, const ObjectStore* store, Link* link,
                Params params = {});

  FetchId fetch(const HttpRequest& request, FetchCallbacks callbacks) override;
  bool cancel(FetchId id) override;

  std::size_t inflight() const { return inflight_.size(); }

 private:
  struct Inflight {
    Simulator::EventId pending_event = Simulator::kInvalidEvent;
    Link::TransferId transfer = Link::kInvalidTransfer;
  };

  Simulator& sim_;
  const ObjectStore* store_;
  Link* link_;
  Params params_;
  FetchId next_id_ = 1;
  std::unordered_map<FetchId, Inflight> inflight_;
};

}  // namespace mfhttp
