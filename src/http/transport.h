// Transport selection: the same middleware stack over the discrete-event
// sim or over real loopback sockets (ISSUE 8 tentpole, DESIGN.md §15).
//
// The sim backend is SimHttpOrigin, unchanged. The socket backend stands up
// a real HTTP/1.1 origin — aio::HttpServer on an epoll EventLoop, answering
// from the same ObjectStore — and fronts it with SocketOrigin, an
// HttpFetcher whose fetch():
//
//   1. serializes the request and performs the full loopback round trip
//      *synchronously* on the event loop (real bytes, real parser, real
//      deadlines, real faults), then
//   2. replays the outcome into the simulation with exactly
//      SimHttpOrigin's event shape: request_delay_ms of think time, an
//      on_headers callback, body bytes streamed over the origin Link,
//      completion timestamps in sim time.
//
// That split is the parity contract: on a clean wire, a fetch through
// either backend produces byte-identical HTTP outcomes AND identical sim
// timestamps, so every bench, test, and policy layer runs unchanged on
// both — which is what lets bench/loopback_matrix assert sim-vs-socket
// equivalence in-binary. Transport failures (reset, deadline, parse error)
// complete with status 0, the taxonomy code ResilientFetcher already
// treats as retryable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "http/sim_http.h"
#include "net/aio/event_loop.h"
#include "net/aio/http_server.h"
#include "net/aio/tcp.h"

namespace mfhttp {

namespace fault {
struct FaultPlan;
class SocketFaultInjector;
}  // namespace fault

namespace overload {
class AdmissionController;
}  // namespace overload

enum class TransportKind { kSim, kSocket };

const char* transport_kind_name(TransportKind kind);
// "sim" / "socket"; nullopt otherwise.
std::optional<TransportKind> transport_kind_from_name(std::string_view name);

struct TransportConfig {
  TransportKind kind = TransportKind::kSim;

  // Socket-backend knobs (wall-clock milliseconds; ignored by kSim).
  std::uint16_t port = 0;              // 0: ephemeral loopback port
  TimeMs fetch_deadline_ms = 5000;     // client round-trip budget
  TimeMs idle_timeout_ms = 2000;       // server slowloris guard
  TimeMs request_deadline_ms = 2000;   // server per-request read deadline
  TimeMs write_deadline_ms = 2000;     // both sides: pending output drain
  std::size_t max_header_bytes = 64 * 1024;  // 431 past this (0 disables)
  std::size_t max_header_count = 256;        // 431 past this (0 disables)
  std::size_t max_connections = 64;

  // Byte-level chaos for the server side of the wire (plan->socket section;
  // nullptr or an empty section leaves the wire clean). Not owned.
  const fault::FaultPlan* plan = nullptr;
  // Optional server-side shed hook: requests the controller sheds answer
  // 503 before reaching the origin handler. Not owned. Leave null when the
  // MitmProxy already fronts the same controller, or requests get charged
  // twice.
  overload::AdmissionController* admission = nullptr;
};

// The socket backend: one event loop, one loopback origin server, one
// keep-alive client connection. Owned by the FetchPipeline that selected
// --transport=socket; must outlive every fetch it serves.
class SocketTransport {
 public:
  // `store` and `origin_link` play exactly their SimHttpOrigin roles; the
  // link carries the replayed body bytes so sim-side byte accounting and
  // congestion behave identically across backends.
  SocketTransport(Simulator& sim, const ObjectStore* store, Link* origin_link,
                  SimHttpOriginParams origin_params, TransportConfig config);
  ~SocketTransport();
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  struct ClientStats {
    std::size_t connects = 0;
    std::size_t responses = 0;
    std::size_t transport_errors = 0;  // status-0 completions
  };

  HttpFetcher& origin();
  std::uint16_t port() const { return server_->port(); }
  aio::EventLoop& loop() { return loop_; }
  const aio::HttpServer::Stats& server_stats() const {
    return server_->stats();
  }
  const ClientStats& client_stats() const;

  // Graceful shutdown: stop accepting, let in-flight requests finish.
  void drain();

 private:
  class SocketOrigin;

  aio::EventLoop loop_;
  std::unique_ptr<fault::SocketFaultInjector> injector_;
  std::unique_ptr<aio::HttpServer> server_;
  std::unique_ptr<SocketOrigin> origin_;
};

}  // namespace mfhttp
