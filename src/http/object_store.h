// Content repository backing a simulated HTTP origin server.
//
// Experiments care about object *sizes* (what the link transfers and the
// knapsack weighs), so bodies are stored as sizes; codec-level demos and
// tests may attach real payload bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/types.h"

namespace mfhttp {

struct StoredObject {
  Bytes size = 0;                 // response body size on the wire
  std::string content_type = "application/octet-stream";
  std::optional<std::string> body;  // real payload (optional; size wins if both)
  std::string etag;               // validator; changes on every put()/bump()

  Bytes wire_size() const { return body ? static_cast<Bytes>(body->size()) : size; }
};

class ObjectStore {
 public:
  // Register an object by path ("/img/3.jpg"). Replaces existing (and
  // assigns a fresh ETag — replacement is new content).
  void put(std::string path, Bytes size,
           std::string content_type = "application/octet-stream");

  // Register an object with a real payload.
  void put_body(std::string path, std::string body,
                std::string content_type = "text/plain");

  // The object's content changed in place: assign it a fresh ETag so
  // conditional fetches stop matching. Returns false if the path is unknown.
  bool bump(std::string_view path);

  const StoredObject* find(std::string_view path) const;
  bool contains(std::string_view path) const { return find(path) != nullptr; }
  std::size_t size() const { return objects_.size(); }
  Bytes total_bytes() const;

 private:
  std::string next_etag();

  std::unordered_map<std::string, StoredObject> objects_;
  std::uint64_t version_ = 0;
};

}  // namespace mfhttp
