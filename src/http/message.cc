#include "http/message.h"

#include "util/strings.h"

namespace mfhttp {

std::optional<Url> HttpRequest::url() const {
  if (starts_with(target, "http://") || starts_with(target, "https://"))
    return parse_url(target);
  auto host = headers.get_view("Host");
  if (!host) return std::nullopt;
  std::string absolute;
  absolute.reserve(7 + host->size() + target.size());
  absolute += "http://";
  absolute += *host;
  absolute += target;
  return parse_url(absolute);
}

std::string HttpRequest::session() const {
  auto v = headers.get_view("x-mfhttp-session");
  return v ? std::string(*v) : std::string();
}

void HttpRequest::set_session(std::string_view session) {
  headers.set("x-mfhttp-session", session);
}

int HttpRequest::priority_hint(int fallback) const {
  auto v = headers.get_view("x-mfhttp-priority");
  if (!v || v->empty()) return fallback;
  int out = 0;
  for (char c : *v) {
    if (c < '0' || c > '9') return fallback;
    out = out * 10 + (c - '0');
    if (out > 1000) return fallback;
  }
  return out;
}

void HttpRequest::set_priority_hint(int priority) {
  headers.set("x-mfhttp-priority", std::to_string(priority));
}

namespace {
std::string serialize_common(std::string start_line, const HeaderMap& headers,
                             const std::string& body) {
  std::string out = std::move(start_line);
  bool has_length = headers.contains("Content-Length") ||
                    headers.contains("Transfer-Encoding");
  for (const auto& e : headers) {
    out += e.name();
    out += ": ";
    out += e.value();
    out += "\r\n";
  }
  if (!has_length && !body.empty())
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}
}  // namespace

std::string HttpRequest::serialize() const {
  return serialize_common(method + " " + target + " " + version + "\r\n", headers,
                          body);
}

HttpRequest HttpRequest::get(const Url& url) {
  HttpRequest req;
  req.method = "GET";
  req.target = url.path_and_query();
  req.headers.set("Host", url.port == 80 ? url.host
                                         : url.host + ":" + std::to_string(url.port));
  return req;
}

HttpRequest HttpRequest::get(std::string_view absolute_url) {
  auto url = parse_url(absolute_url);
  if (!url) {
    HttpRequest req;
    req.target = std::string(absolute_url);
    return req;
  }
  return get(*url);
}

std::string HttpResponse::serialize() const {
  return serialize_common(
      version + " " + std::to_string(status) + " " + reason + "\r\n", headers, body);
}

HttpResponse HttpResponse::make(int status, std::string_view reason, std::string body,
                                std::string_view content_type) {
  HttpResponse resp;
  resp.status = status;
  resp.reason = reason.empty() ? std::string(default_reason(status))
                               : std::string(reason);
  resp.body = std::move(body);
  resp.headers.set("Content-Type", content_type);
  resp.headers.set("Content-Length", std::to_string(resp.body.size()));
  return resp;
}

std::string_view default_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace mfhttp
