#include "http/url.h"

#include "util/strings.h"

namespace mfhttp {

std::string Url::to_string() const {
  std::string out = scheme + "://" + host;
  if (!(scheme == "http" && port == 80) && !(scheme == "https" && port == 443))
    out += ":" + std::to_string(port);
  out += path_and_query();
  return out;
}

std::optional<Url> parse_url(std::string_view s) {
  Url url;
  std::size_t scheme_end = s.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) return std::nullopt;
  url.scheme = to_lower(s.substr(0, scheme_end));
  if (url.scheme != "http" && url.scheme != "https") return std::nullopt;
  url.port = url.scheme == "https" ? 443 : 80;
  s.remove_prefix(scheme_end + 3);

  std::size_t path_start = s.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? s : s.substr(0, path_start);
  if (authority.empty()) return std::nullopt;

  std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    std::string_view port_sv = authority.substr(colon + 1);
    if (port_sv.empty()) return std::nullopt;
    int port = 0;
    for (char c : port_sv) {
      if (c < '0' || c > '9') return std::nullopt;
      port = port * 10 + (c - '0');
      if (port > 65535) return std::nullopt;
    }
    url.port = port;
    url.host = std::string(authority.substr(0, colon));
  } else {
    url.host = std::string(authority);
  }
  if (url.host.empty()) return std::nullopt;
  url.host = to_lower(url.host);

  if (path_start == std::string_view::npos) return url;
  std::string_view rest = s.substr(path_start);
  std::size_t q = rest.find('?');
  if (q == std::string_view::npos) {
    url.path = std::string(rest);
  } else {
    url.path = std::string(rest.substr(0, q));
    url.query = std::string(rest.substr(q + 1));
  }
  return url;
}

}  // namespace mfhttp
